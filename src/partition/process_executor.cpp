// The "process" component executor and the worker-side entry point behind
// `pgl_layout --component-worker`. Components are farmed to child
// processes over the formats the repo already trusts:
//
//   parent                          child (pgl_layout --component-worker)
//   ------                          -------------------------------------
//   write c<id>.pgg  ------------>  read_pgg_file (bit-identical graph)
//   fork/exec with --worker-spec    parse_worker_spec -> run_component_graph
//   read status pipe (fd 3)  <----  "result <updates> <skipped> <seconds>"
//                            <----  "telemetry\n<snapshot_wire>"
//   waitpid, read c<id>.lay  <----  write_layout_file (atomic temp+rename)
//
// Status frames are length-prefixed (u32 LE length, then payload) so the
// parent never guesses at message boundaries. Crash containment falls out
// of the file formats: the worker publishes its .lay atomically, so a
// child killed mid-run leaves no partial layout — the parent sees the
// signal in waitpid (or a missing result frame / missing .lay), records a
// diagnostic for that component, lets every other component finish, and
// only then throws. The parent merges each worker's telemetry wire
// snapshot into its own Registry, so --timing and --trace aggregate
// process-tree-wide exactly as they do in-process.
//
// Between fork() and execv() only async-signal-safe calls are made (the
// argv block is built before forking): this executor runs inside a
// ThreadPool, and another thread's malloc lock must not deadlock a child.
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "core/config_canon.hpp"
#include "core/thread_pool.hpp"
#include "io/lay_io.hpp"
#include "io/pgg_io.hpp"
#include "partition/executor.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::partition {

namespace {

namespace fs = std::filesystem;

/// write(2) the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, const void* data, std::size_t n) noexcept {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/// One length-prefixed status frame: u32 LE payload length, then payload.
bool write_frame(int fd, const std::string& payload) noexcept {
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    if (!write_all(fd, &len, sizeof len)) return false;
    return write_all(fd, payload.data(), payload.size());
}

/// read(2) exactly n bytes. Returns 1 on success, 0 on clean EOF before
/// the first byte, -1 on error or EOF mid-record.
int read_exact(int fd, void* data, std::size_t n) noexcept {
    char* p = static_cast<char*>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            return -1;
        }
        if (r == 0) return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

/// What a worker reported over its status pipe.
struct WorkerReport {
    bool have_result = false;
    std::uint64_t updates = 0;
    std::uint64_t skipped = 0;
    double seconds = 0.0;
    std::string telemetry;
};

/// Drains status frames until EOF (child exit closes the pipe). Unknown
/// frame kinds are skipped so the protocol can grow without breaking old
/// parents. Returns false on a torn frame (child died mid-write).
bool read_reports(int fd, WorkerReport& report) noexcept {
    constexpr std::uint32_t kMaxFrame = 64u << 20;  // corrupt-length guard
    for (;;) {
        std::uint32_t len = 0;
        const int h = read_exact(fd, &len, sizeof len);
        if (h == 0) return true;
        if (h < 0 || len > kMaxFrame) return false;
        std::string payload(len, '\0');
        if (read_exact(fd, payload.data(), len) != 1) return false;
        if (payload.rfind("result ", 0) == 0) {
            unsigned long long updates = 0, skipped = 0;
            double seconds = 0.0;
            if (std::sscanf(payload.c_str(), "result %llu %llu %lf", &updates,
                            &skipped, &seconds) == 3) {
                report.have_result = true;
                report.updates = updates;
                report.skipped = skipped;
                report.seconds = seconds;
            }
        } else if (payload.rfind("telemetry\n", 0) == 0) {
            report.telemetry = payload.substr(10);
        }
    }
}

/// Worker binary resolution order: explicit option, PGL_LAYOUT_WORKER,
/// then the pgl_layout sitting next to this executable (every build
/// target lands in the same build directory, so benches and the serve
/// daemon resolve it without configuration).
std::string resolve_worker_binary(const SchedulerOptions& opt) {
    if (!opt.worker_binary.empty()) return opt.worker_binary;
    if (const char* env = std::getenv("PGL_LAYOUT_WORKER"); env && *env) {
        return env;
    }
    std::error_code ec;
    const fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (!ec) {
        const fs::path sibling = self.parent_path() / "pgl_layout";
        if (fs::exists(sibling, ec) && !ec) return sibling.string();
    }
    throw std::runtime_error(
        "process executor: cannot resolve the pgl_layout worker binary "
        "(set SchedulerOptions::worker_binary or PGL_LAYOUT_WORKER, or run "
        "from a directory containing pgl_layout)");
}

/// Scratch directory for the per-component .pgg/.lay files, removed on
/// scope exit (success or throw).
struct ScratchDir {
    fs::path path;
    explicit ScratchDir() {
        static std::atomic<std::uint64_t> seq{0};
        const auto n = seq.fetch_add(1, std::memory_order_relaxed);
        path = fs::temp_directory_path() /
               ("pgl-mp-" + std::to_string(::getpid()) + "-" +
                std::to_string(n));
        fs::create_directories(path);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(path, ec);  // best effort; scratch only
    }
};

/// Spawns one worker, streams its status pipe to EOF, reaps it, and
/// explains any failure. On success fills `result` (layout read back from
/// the worker's .lay) and returns an empty string; otherwise returns the
/// diagnostic.
std::string run_one_worker(const std::string& worker,
                           const fs::path& graph_path,
                           const fs::path& lay_path, const std::string& spec,
                           core::LayoutResult& result) {
    // argv must be fully materialized before fork(): no allocation is
    // allowed on the child side.
    const std::string graph_arg = graph_path.string();
    const std::string lay_arg = lay_path.string();
    std::vector<std::string> args = {
        worker, "--component-worker", "--load-graph", graph_arg,
        "-o",   lay_arg,              "--worker-spec", spec,
        "--status-fd", "3"};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    // O_CLOEXEC on both ends: a concurrently-spawned sibling's exec must
    // not inherit this pipe's write end, or EOF would stall until that
    // unrelated child exits. The child re-arms its own end via dup2 onto
    // fd 3, which clears the flag on the duplicate only.
    int pfd[2];
    if (::pipe2(pfd, O_CLOEXEC) != 0) {
        return std::string("pipe2 failed: ") + std::strerror(errno);
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int err = errno;
        ::close(pfd[0]);
        ::close(pfd[1]);
        return std::string("fork failed: ") + std::strerror(err);
    }
    if (pid == 0) {
        // Child: async-signal-safe calls only.
        if (::dup2(pfd[1], 3) < 0) _exit(126);
        ::execv(argv[0], argv.data());
        _exit(127);  // exec failed; 127 is the shell's "not runnable"
    }
    ::close(pfd[1]);

    WorkerReport report;
    const bool frames_ok = read_reports(pfd[0], report);
    ::close(pfd[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {
            return std::string("waitpid failed: ") + std::strerror(errno);
        }
    }

    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        return "worker killed by signal " + std::to_string(sig) + " (" +
               ::strsignal(sig) + ")";
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        return "worker exited with status " +
               std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    }
    if (!frames_ok || !report.have_result) {
        return "worker exited cleanly but sent no result frame";
    }
    std::error_code ec;
    if (!fs::exists(lay_path, ec) || ec) {
        return "worker reported success but wrote no layout file";
    }

    result.layout = io::read_layout_file(lay_path.string());
    result.updates = report.updates;
    result.skipped = report.skipped;
    result.seconds = report.seconds;
    if (!report.telemetry.empty()) {
        telemetry::merge_snapshot_wire(report.telemetry);
    }
    return std::string();
}

class ProcessExecutor final : public Executor {
public:
    std::string_view name() const noexcept override { return "process"; }

    std::vector<core::LayoutResult> run(
        const Decomposition& d, const SchedulerOptions& opt,
        const ComponentHook& hook) const override {
        const std::uint32_t n = d.count();
        std::vector<core::LayoutResult> results(n);
        if (n == 0) return results;

        const std::string worker = resolve_worker_binary(opt);
        ScratchDir scratch;

        // Same largest-first admission as the thread executor: the queue
        // order is shared policy, only the mechanism differs.
        std::vector<std::uint32_t> order(n);
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return d.components[a].graph.node_count() >
                                    d.components[b].graph.node_count();
                         });

        std::atomic<std::uint32_t> next{0};
        std::atomic<std::uint32_t> completed{0};
        std::mutex hook_mutex;
        std::mutex failure_mutex;
        std::vector<std::string> failures;

        const auto work = [&](std::uint32_t) {
            for (;;) {
                const std::uint32_t k =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (k >= n) return;
                const std::uint32_t c = order[k];
                telemetry::StageSpan span("component",
                                          "c" + std::to_string(c));
                const fs::path gpath =
                    scratch.path / ("c" + std::to_string(c) + ".pgg");
                const fs::path lpath =
                    scratch.path / ("c" + std::to_string(c) + ".lay");
                const std::string spec = encode_worker_spec(
                    opt, component_seed(opt.config.seed, c));

                std::string error;
                try {
                    io::write_pgg_graph_file(d.components[c].graph,
                                             gpath.string());
                    error = run_one_worker(worker, gpath, lpath, spec,
                                           results[c]);
                } catch (const std::exception& e) {
                    error = e.what();
                }
                const std::uint32_t done =
                    completed.fetch_add(1, std::memory_order_relaxed) + 1;
                if (!error.empty()) {
                    std::lock_guard<std::mutex> lock(failure_mutex);
                    failures.push_back("component " + std::to_string(c) +
                                       ": " + error);
                    continue;
                }
                if (hook) {
                    ComponentProgress p;
                    p.component = c;
                    p.completed = done;
                    p.total = n;
                    p.nodes = d.components[c].graph.node_count();
                    p.updates = results[c].updates;
                    p.seconds = results[c].seconds;
                    std::lock_guard<std::mutex> lock(hook_mutex);
                    hook(p);
                }
            }
        };

        const std::uint32_t procs = opt.processes == 0 ? 1 : opt.processes;
        core::ThreadPool pool(procs <= 1 ? 0 : std::min(procs, n));
        pool.run(work);

        if (!failures.empty()) {
            std::sort(failures.begin(), failures.end());
            std::string msg = "multi-process partition failed (" +
                              std::to_string(failures.size()) + " of " +
                              std::to_string(n) + " components):";
            for (const std::string& f : failures) {
                msg += "\n  ";
                msg += f;
            }
            throw std::runtime_error(msg);
        }
        return results;
    }
};

}  // namespace

namespace detail {

std::unique_ptr<Executor> make_process_executor() {
    return std::make_unique<ProcessExecutor>();
}

}  // namespace detail

int run_component_worker(const std::string& graph_path,
                         const std::string& out_path, const std::string& spec,
                         int status_fd) {
    try {
        const SchedulerOptions opt = parse_worker_spec(spec);
        graph::LeanIngest ingest = io::read_pgg_file(graph_path);

        // Crash-injection hook for the containment tests: when the env
        // var's value is a substring of the output path (e.g. "/c0.lay"),
        // this worker dies exactly as an OOM-killed child would — after
        // loading the graph, before publishing any output.
        if (const char* crash = std::getenv("PGL_COMPONENT_WORKER_CRASH");
            crash && *crash && out_path.find(crash) != std::string::npos) {
            ::raise(SIGKILL);
        }

        const core::LayoutResult r = run_component_graph(ingest.graph, opt);
        io::write_layout_file(r.layout, out_path);
        if (status_fd >= 0) {
            const std::string result_frame =
                "result " + std::to_string(r.updates) + " " +
                std::to_string(r.skipped) + " " +
                core::canonical_double(r.seconds);
            if (!write_frame(status_fd, result_frame) ||
                !write_frame(status_fd,
                             "telemetry\n" + telemetry::snapshot_wire())) {
                std::fprintf(stderr,
                             "pgl_layout --component-worker: status pipe "
                             "write failed\n");
                return 1;
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "pgl_layout --component-worker: %s\n", e.what());
        return 1;
    }
}

}  // namespace pgl::partition

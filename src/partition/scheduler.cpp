#include "partition/scheduler.hpp"

#include <stdexcept>

#include "core/kernels/update_kernel.hpp"
#include "partition/executor.hpp"
#include "rng/splitmix64.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::partition {

std::uint64_t component_seed(std::uint64_t base_seed,
                             std::uint32_t component) noexcept {
    rng::SplitMix64 mix(base_seed ^ (0x9e3779b97f4a7c15ULL * (component + 1)));
    return mix.next();
}

core::LayoutResult run_component(const ComponentSubgraph& component,
                                 std::uint32_t component_id,
                                 const SchedulerOptions& opt) {
    // The component span carries the id in its category, so a trace shows
    // one "component" span per component on whichever worker track ran it,
    // with the engine/multilevel pass spans nested inside.
    telemetry::StageSpan span("component",
                              "c" + std::to_string(component_id));
    SchedulerOptions mixed = opt;
    mixed.config.seed = component_seed(opt.config.seed, component_id);
    return run_component_graph(component.graph, mixed);
}

std::vector<core::LayoutResult> ComponentScheduler::run(
    const Decomposition& d) const {
    if (!core::EngineRegistry::instance().contains(opt_.backend)) {
        throw std::invalid_argument("unknown partition backend: " + opt_.backend);
    }
    // Fail before any component runs, not from inside a worker thread (or
    // a worker process).
    if (!core::KernelRegistry::instance().contains(opt_.config.kernel)) {
        throw std::invalid_argument("unknown update kernel: " +
                                    opt_.config.kernel);
    }
    const auto executor = make_executor(opt_.executor);  // validates the name
    const std::uint32_t n = d.count();
    if (n == 0) return std::vector<core::LayoutResult>(n);
    telemetry::Registry::instance().counter("partition.components").add(n);
    return executor->run(d, opt_, hook_);
}

}  // namespace pgl::partition

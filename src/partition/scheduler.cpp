#include "partition/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "core/kernels/update_kernel.hpp"
#include "core/thread_pool.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::partition {

std::uint64_t component_seed(std::uint64_t base_seed,
                             std::uint32_t component) noexcept {
    rng::SplitMix64 mix(base_seed ^ (0x9e3779b97f4a7c15ULL * (component + 1)));
    return mix.next();
}

core::LayoutResult run_component(const ComponentSubgraph& component,
                                 std::uint32_t component_id,
                                 const SchedulerOptions& opt) {
    // The component span carries the id in its category, so a trace shows
    // one "component" span per component on whichever worker track ran it,
    // with the engine/multilevel pass spans nested inside.
    telemetry::StageSpan span("component",
                              "c" + std::to_string(component_id));
    core::LayoutConfig cfg = opt.config;
    cfg.seed = component_seed(opt.config.seed, component_id);

    if (component.graph.total_path_steps() == 0) {
        // No sampleable terms (isolated nodes, edge-only clusters): the SGD
        // objective is empty, so the linear initial layout is the answer.
        rng::Xoshiro256Plus rng(cfg.seed);
        core::LayoutResult r;
        r.layout =
            core::make_linear_initial_layout(component.graph, rng, cfg.init_jitter);
        return r;
    }

    auto engine = core::make_engine(opt.backend);
    if (opt.multilevel) {
        const multilevel::LayoutPlan plan = multilevel::build_plan(
            cfg, opt.multilevel_opt,
            static_cast<double>(component.graph.max_path_nuc_length()));
        multilevel::MultilevelResult ml =
            multilevel::run_plan(plan, component.graph, *engine, cfg);
        core::LayoutResult r;
        r.layout = std::move(ml.layout);
        r.updates = ml.updates;
        r.skipped = ml.skipped;
        r.seconds = ml.engine_seconds;
        return r;
    }
    engine->init(component.graph, cfg);
    return engine->run();
}

std::vector<core::LayoutResult> ComponentScheduler::run(
    const Decomposition& d) const {
    if (!core::EngineRegistry::instance().contains(opt_.backend)) {
        throw std::invalid_argument("unknown partition backend: " + opt_.backend);
    }
    // Fail before any component runs, not from inside a worker thread.
    if (!core::KernelRegistry::instance().contains(opt_.config.kernel)) {
        throw std::invalid_argument("unknown update kernel: " +
                                    opt_.config.kernel);
    }
    const std::uint32_t n = d.count();
    std::vector<core::LayoutResult> results(n);
    if (n == 0) return results;
    telemetry::Registry::instance().counter("partition.components").add(n);

    // Largest-first (LPT) order; ties broken by component id so the queue
    // order — though not the results, which land in id-indexed slots — is
    // deterministic too.
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return d.components[a].graph.node_count() >
                                d.components[b].graph.node_count();
                     });

    std::atomic<std::uint32_t> next{0};
    std::atomic<std::uint32_t> completed{0};
    std::mutex hook_mutex;
    const auto work = [&](std::uint32_t) {
        for (;;) {
            const std::uint32_t k = next.fetch_add(1, std::memory_order_relaxed);
            if (k >= n) return;
            const std::uint32_t c = order[k];
            results[c] = run_component(d.components[c], c, opt_);
            const std::uint32_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (hook_) {
                ComponentProgress p;
                p.component = c;
                p.completed = done;
                p.total = n;
                p.nodes = d.components[c].graph.node_count();
                p.updates = results[c].updates;
                p.seconds = results[c].seconds;
                std::lock_guard<std::mutex> lock(hook_mutex);
                hook_(p);
            }
        }
    };

    // A pool of size 0 runs the job inline on the caller — the right
    // degenerate form for workers <= 1 (no pool thread, no sync cost).
    core::ThreadPool pool(opt_.workers <= 1 ? 0
                                            : std::min(opt_.workers, n));
    pool.run(work);
    return results;
}

}  // namespace pgl::partition

#pragma once
// Canvas stitching — layer 3 of the partition subsystem.
//
// Each component's layout lives in its own coordinate frame; stitching
// translates every frame onto one shared canvas with a deterministic shelf
// packing (largest bounding-box area first, shelves filled left to right).
// Components are only ever translated — never scaled or rotated — so all
// within-component geometry is preserved: per-path metrics such as path
// stress are component-local and therefore unaffected up to float rounding
// of the single translation add.
//
// The packing is a pure function of the per-component bounding boxes: it
// does not depend on scheduling order, worker count or wall-clock, so a
// stitched canvas is byte-reproducible whenever the component layouts are.
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/layout.hpp"
#include "partition/components.hpp"

namespace pgl::partition {

struct StitchOptions {
    /// Gap between neighbouring components, as a fraction of the mean
    /// component extent (max of width/height, averaged over components).
    double margin_frac = 0.05;
    /// Target canvas aspect ratio (width / height) the shelf width aims for.
    double aspect = 1.0;
};

/// Where one component landed on the canvas.
struct ComponentPlacement {
    float dx = 0.0f, dy = 0.0f;  ///< translation applied to every coordinate
    float min_x = 0.0f, min_y = 0.0f;  ///< source bounding box (pre-translation)
    float max_x = 0.0f, max_y = 0.0f;
};

struct StitchResult {
    core::Layout layout;  ///< the stitched canvas, indexed by global node id
    std::vector<ComponentPlacement> placements;  ///< per component id
    double width = 0.0, height = 0.0;  ///< extent of the packed canvas
};

/// Packs the per-component layouts (indexed by component id, local node
/// order) onto one canvas. Throws std::invalid_argument when the layout
/// count or a layout's size does not match the decomposition.
StitchResult stitch(const Decomposition& d,
                    const std::vector<core::Layout>& component_layouts,
                    const StitchOptions& opt = {});

/// Same, reading the layouts straight out of the scheduler's results —
/// avoids copying every component's coordinates into a temporary vector.
StitchResult stitch(const Decomposition& d,
                    const std::vector<core::LayoutResult>& component_results,
                    const StitchOptions& opt = {});

}  // namespace pgl::partition

#include "partition/components.hpp"

#include <cassert>
#include <utility>

#include "core/union_find.hpp"
#include "graph/gfa_stream.hpp"

namespace pgl::partition {

namespace {

using core::UnionFind;

/// Compresses union-find roots into dense component ids numbered by the
/// smallest node id in each component (scan order).
ComponentLabels finalize_labels(UnionFind& uf, std::uint32_t n_nodes) {
    (void)n_nodes;
    assert(uf.element_count() == n_nodes);
    auto dense = core::dense_labels(uf);
    ComponentLabels labels;
    labels.count = dense.count;
    labels.node_component = std::move(dense.label);
    return labels;
}

/// Builds the subgraphs + remap tables common to both decompose overloads.
/// `node_length(v)` and the path walks come from the source graph via the
/// two callables, so the rich and lean paths share one implementation.
template <typename NodeLengthFn, typename PathStepsFn>
Decomposition build_decomposition(ComponentLabels labels, std::uint32_t n_nodes,
                                  std::uint64_t n_paths, NodeLengthFn&& node_length,
                                  PathStepsFn&& path_steps) {
    Decomposition d;
    d.labels = std::move(labels);
    d.components.resize(d.labels.count);
    d.local_node.assign(n_nodes, 0);

    // Node remap: local ids ascend with global ids inside each component.
    for (std::uint32_t v = 0; v < n_nodes; ++v) {
        auto& comp = d.components[d.labels.node_component[v]];
        d.local_node[v] = static_cast<std::uint32_t>(comp.global_node.size());
        comp.global_node.push_back(v);
    }

    // Per-component node lengths and sliced path walks.
    std::vector<std::vector<std::uint32_t>> lengths(d.labels.count);
    std::vector<std::vector<std::vector<graph::Handle>>> walks(d.labels.count);
    for (std::uint32_t c = 0; c < d.labels.count; ++c) {
        lengths[c].reserve(d.components[c].global_node.size());
        for (const graph::NodeId v : d.components[c].global_node) {
            lengths[c].push_back(node_length(v));
        }
    }
    for (std::uint64_t p = 0; p < n_paths; ++p) {
        // label_components already assigned the path; kNoComponent marks an
        // empty path, which belongs to no component.
        const std::uint32_t c = d.labels.path_component[p];
        if (c == kNoComponent) continue;
        decltype(auto) steps = path_steps(p);
        std::vector<graph::Handle> local;
        local.reserve(steps.size());
        for (const graph::Handle& h : steps) {
            assert(d.labels.node_component[h.id()] == c);
            local.push_back(graph::Handle::make(d.local_node[h.id()], h.is_reverse()));
        }
        d.components[c].global_path.push_back(static_cast<std::uint32_t>(p));
        walks[c].push_back(std::move(local));
    }

    for (std::uint32_t c = 0; c < d.labels.count; ++c) {
        d.components[c].graph =
            graph::LeanGraph::from_parts(std::move(lengths[c]), walks[c]);
    }
    return d;
}

}  // namespace

ComponentLabels label_components(const graph::VariationGraph& g) {
    const auto n = static_cast<std::uint32_t>(g.node_count());
    UnionFind uf(n);
    for (const graph::Edge& e : g.edges()) {
        uf.unite(e.from.id(), e.to.id());
    }
    // add_path materializes traversed edges, but a single-step path adds
    // none; step adjacency keeps such paths attached to their node anyway.
    for (const graph::PathRecord& p : g.paths()) {
        for (std::size_t i = 1; i < p.steps.size(); ++i) {
            uf.unite(p.steps[i - 1].id(), p.steps[i].id());
        }
    }
    ComponentLabels labels = finalize_labels(uf, n);
    labels.path_component.assign(g.path_count(), kNoComponent);
    for (std::uint64_t p = 0; p < g.path_count(); ++p) {
        const auto& steps = g.path(p).steps;
        if (!steps.empty()) {
            labels.path_component[p] = labels.node_component[steps.front().id()];
        }
    }
    return labels;
}

ComponentLabels label_components(const graph::LeanGraph& g) {
    UnionFind uf(g.node_count());
    for (std::uint32_t p = 0; p < g.path_count(); ++p) {
        const std::uint32_t n_steps = g.path_step_count(p);
        for (std::uint32_t i = 1; i < n_steps; ++i) {
            uf.unite(g.step_node(p, i - 1), g.step_node(p, i));
        }
    }
    ComponentLabels labels = finalize_labels(uf, g.node_count());
    labels.path_component.assign(g.path_count(), kNoComponent);
    for (std::uint32_t p = 0; p < g.path_count(); ++p) {
        if (g.path_step_count(p) > 0) {
            labels.path_component[p] = labels.node_component[g.step_node(p, 0)];
        }
    }
    return labels;
}

ComponentLabels take_labels(graph::LeanIngest& ing) {
    ComponentLabels labels;
    labels.count = ing.component_count;
    labels.node_component = std::move(ing.node_component);
    labels.path_component = std::move(ing.path_component);
    ing.component_count = 0;
    return labels;
}

Decomposition decompose(const graph::VariationGraph& g) {
    return build_decomposition(
        label_components(g), static_cast<std::uint32_t>(g.node_count()),
        g.path_count(), [&](graph::NodeId v) { return g.node_length(v); },
        [&](std::uint64_t p) -> const std::vector<graph::Handle>& {
            return g.path(p).steps;
        });
}

Decomposition decompose(const graph::LeanGraph& g) {
    return decompose(g, label_components(g));
}

Decomposition decompose(const graph::LeanGraph& g, ComponentLabels labels) {
    return build_decomposition(
        std::move(labels), g.node_count(), g.path_count(),
        [&](graph::NodeId v) { return g.node_length(v); },
        [&](std::uint64_t p) {
            const auto pi = static_cast<std::uint32_t>(p);
            std::vector<graph::Handle> steps;
            steps.reserve(g.path_step_count(pi));
            for (std::uint32_t i = 0; i < g.path_step_count(pi); ++i) {
                steps.push_back(graph::Handle::make(g.step_node(pi, i),
                                                    g.step_is_reverse(pi, i)));
            }
            return steps;
        });
}

}  // namespace pgl::partition

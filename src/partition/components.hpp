#pragma once
// Connected-component decomposition — layer 1 of the partition subsystem.
//
// Whole-genome pangenomes are inherently multi-component (one component per
// chromosome plus unplaced contigs), yet PG-SGD lays out one connected
// graph at a time: a stress term never crosses a path, and a path never
// crosses a component, so disconnected components are independent layout
// problems. This module labels components with a union-find over the node
// set and slices the graph into per-component LeanGraph subgraphs with
// stable remap tables, so every downstream consumer (engines, metrics,
// IO, rendering) sees an ordinary single-component graph.
//
// Component numbering is deterministic: components are numbered by their
// smallest global node id, and inside a component local node ids ascend
// with the global ids. Path slicing is exact — a path's steps all live in
// one component, so the sliced walk is the original walk verbatim (same
// orientations, same recomputed cumulative positions).
#include <cstdint>
#include <vector>

#include "graph/lean_graph.hpp"
#include "graph/variation_graph.hpp"

namespace pgl::graph {
struct LeanIngest;  // graph/gfa_stream.hpp
}

namespace pgl::partition {

/// Sentinel for "not assigned to any component" (only empty paths).
inline constexpr std::uint32_t kNoComponent = 0xFFFFFFFFu;

/// Node/path -> component labeling.
struct ComponentLabels {
    std::uint32_t count = 0;
    std::vector<std::uint32_t> node_component;  ///< node id -> component id
    std::vector<std::uint32_t> path_component;  ///< path index -> component id
                                                ///< (kNoComponent for an empty path)
};

/// Labels components using both edge and path-step adjacency (the full
/// connectivity of the rich graph).
ComponentLabels label_components(const graph::VariationGraph& g);

/// Labels components using path-step adjacency only — all the connectivity
/// a LeanGraph retains. Nodes touched by no path become singleton
/// components.
ComponentLabels label_components(const graph::LeanGraph& g);

/// Adopts the labels a streaming ingest computed while parsing (edge +
/// path connectivity, same numbering as the rich-graph labeler). Moves the
/// label vectors out of `ing`; its graph and name tables are untouched.
ComponentLabels take_labels(graph::LeanIngest& ing);

/// One connected component, sliced out as a standalone lean graph.
struct ComponentSubgraph {
    graph::LeanGraph graph;                    ///< local node ids are dense
    std::vector<graph::NodeId> global_node;    ///< local -> global node id, ascending
    std::vector<std::uint32_t> global_path;    ///< local -> global path index, ascending
};

/// The full decomposition: labels, per-component subgraphs, and the inverse
/// node remap (global id -> local id within its component).
struct Decomposition {
    ComponentLabels labels;
    std::vector<ComponentSubgraph> components;
    std::vector<std::uint32_t> local_node;  ///< global node id -> local node id

    std::uint32_t count() const noexcept {
        return static_cast<std::uint32_t>(components.size());
    }
    std::uint64_t global_node_count() const noexcept { return local_node.size(); }
};

/// Decomposes the rich graph (edge + path connectivity); node lengths come
/// from the sequences, as LeanGraph::from_graph would take them.
Decomposition decompose(const graph::VariationGraph& g);

/// Decomposes a lean graph (path connectivity only).
Decomposition decompose(const graph::LeanGraph& g);

/// Decomposes a lean graph using precomputed labels — the entry point for
/// the streaming ingestion path, whose reader builds edge + path
/// connectivity with a union-find while parsing (graph::LeanIngest), so the
/// decomposition matches the rich-graph overload without a VariationGraph
/// ever existing. `labels` must cover exactly the graph's nodes and paths.
Decomposition decompose(const graph::LeanGraph& g, ComponentLabels labels);

}  // namespace pgl::partition

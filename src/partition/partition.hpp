#pragma once
// The partition facade: decompose -> schedule per-component engines ->
// stitch, in one call. This is the explode/squeeze workflow the odgi
// pipeline wraps around the paper's PG-SGD artifact, turned into a library
// entry point: feed it a (possibly multi-component) whole-genome graph and
// get back one canvas-level core::Layout that flows unchanged into lay_io,
// path_stress and the SVG/PPM renderers.
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "partition/components.hpp"
#include "partition/scheduler.hpp"
#include "partition/stitch.hpp"

namespace pgl::partition {

struct PartitionOptions {
    SchedulerOptions schedule;
    StitchOptions stitching;
    ComponentHook progress;  ///< optional per-component completion hook
};

struct PartitionResult {
    Decomposition decomposition;
    std::vector<core::LayoutResult> component_results;  ///< by component id
    StitchResult stitched;
    std::uint64_t updates = 0;  ///< summed over components
    std::uint64_t skipped = 0;
    double engine_seconds = 0.0;  ///< summed engine wall-clock (CPU work)
    double seconds = 0.0;         ///< wall-clock of the whole pipeline
    double stitch_seconds = 0.0;  ///< wall-clock of the stitch pass
};

/// Decomposes with edge + path connectivity (the rich graph), then lays out
/// and stitches.
PartitionResult partition_layout(const graph::VariationGraph& g,
                                 const PartitionOptions& opt);

/// Decomposes with path connectivity only (all a LeanGraph retains), then
/// lays out and stitches.
PartitionResult partition_layout(const graph::LeanGraph& g,
                                 const PartitionOptions& opt);

/// Decomposes a lean graph with precomputed labels (the streaming ingest
/// path: graph::LeanIngest carries edge + path connectivity computed while
/// parsing), then lays out and stitches. Byte-identical to the rich-graph
/// overload on the same input file.
PartitionResult partition_layout(const graph::LeanGraph& g,
                                 ComponentLabels labels,
                                 const PartitionOptions& opt);

/// Schedules and stitches an existing decomposition (shared by both
/// overloads; useful when the caller wants to reuse the decomposition).
PartitionResult partition_layout(Decomposition d, const PartitionOptions& opt);

}  // namespace pgl::partition

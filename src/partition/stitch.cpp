#include "partition/stitch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace pgl::partition {

namespace {

void bounding_box(const core::Layout& l, ComponentPlacement& p) {
    p.min_x = p.min_y = std::numeric_limits<float>::max();
    p.max_x = p.max_y = std::numeric_limits<float>::lowest();
    for (std::size_t i = 0; i < l.size(); ++i) {
        p.min_x = std::min({p.min_x, l.start_x[i], l.end_x[i]});
        p.max_x = std::max({p.max_x, l.start_x[i], l.end_x[i]});
        p.min_y = std::min({p.min_y, l.start_y[i], l.end_y[i]});
        p.max_y = std::max({p.max_y, l.start_y[i], l.end_y[i]});
    }
    if (l.size() == 0) {
        p.min_x = p.min_y = p.max_x = p.max_y = 0.0f;
    }
}

StitchResult stitch_views(const Decomposition& d,
                          const std::vector<const core::Layout*>& component_layouts,
                          const StitchOptions& opt) {
    if (component_layouts.size() != d.components.size()) {
        throw std::invalid_argument("stitch: layout count != component count");
    }
    const std::size_t n = component_layouts.size();
    StitchResult out;
    out.placements.resize(n);
    out.layout.resize(d.global_node_count());
    if (n == 0) return out;

    double sum_extent = 0.0, total_area = 0.0, max_w = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        if (component_layouts[c]->size() != d.components[c].graph.node_count()) {
            throw std::invalid_argument("stitch: layout size != component size");
        }
        bounding_box(*component_layouts[c], out.placements[c]);
        const auto& p = out.placements[c];
        const double w = double(p.max_x) - p.min_x;
        const double h = double(p.max_y) - p.min_y;
        sum_extent += std::max(w, h);
        total_area += w * h;
        max_w = std::max(max_w, w);
    }
    double margin = opt.margin_frac * sum_extent / static_cast<double>(n);
    if (margin <= 0.0) margin = 1.0;  // degenerate boxes still get separated

    // Shelf (next-fit decreasing-area) packing. The target width balances
    // total area against the requested aspect; the widest component always
    // fits on a shelf of its own.
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         const auto& pa = out.placements[a];
                         const auto& pb = out.placements[b];
                         const double area_a = (double(pa.max_x) - pa.min_x) *
                                               (double(pa.max_y) - pa.min_y);
                         const double area_b = (double(pb.max_x) - pb.min_x) *
                                               (double(pb.max_y) - pb.min_y);
                         return area_a > area_b;
                     });
    const double target_w =
        std::max(max_w, std::sqrt(std::max(total_area, margin * margin) *
                                  std::max(opt.aspect, 1e-3)));

    double cursor_x = 0.0, shelf_y = 0.0, shelf_h = 0.0;
    for (const std::uint32_t c : order) {
        ComponentPlacement& p = out.placements[c];
        const double w = double(p.max_x) - p.min_x;
        const double h = double(p.max_y) - p.min_y;
        if (cursor_x > 0.0 && cursor_x + w > target_w) {
            shelf_y += shelf_h + margin;
            cursor_x = 0.0;
            shelf_h = 0.0;
        }
        p.dx = static_cast<float>(cursor_x - p.min_x);
        p.dy = static_cast<float>(shelf_y - p.min_y);
        cursor_x += w + margin;
        shelf_h = std::max(shelf_h, h);
        out.width = std::max(out.width, cursor_x - margin);
        out.height = std::max(out.height, shelf_y + h);
    }

    // Translate every component into its slot. Single float add per
    // coordinate — the "modulo deterministic stitch translation" of the
    // equivalence contract.
    for (std::size_t c = 0; c < n; ++c) {
        const core::Layout& src = *component_layouts[c];
        const ComponentPlacement& p = out.placements[c];
        const auto& global = d.components[c].global_node;
        for (std::size_t i = 0; i < src.size(); ++i) {
            const graph::NodeId g = global[i];
            out.layout.start_x[g] = src.start_x[i] + p.dx;
            out.layout.start_y[g] = src.start_y[i] + p.dy;
            out.layout.end_x[g] = src.end_x[i] + p.dx;
            out.layout.end_y[g] = src.end_y[i] + p.dy;
        }
    }
    return out;
}

}  // namespace

StitchResult stitch(const Decomposition& d,
                    const std::vector<core::Layout>& component_layouts,
                    const StitchOptions& opt) {
    std::vector<const core::Layout*> views;
    views.reserve(component_layouts.size());
    for (const core::Layout& l : component_layouts) views.push_back(&l);
    return stitch_views(d, views, opt);
}

StitchResult stitch(const Decomposition& d,
                    const std::vector<core::LayoutResult>& component_results,
                    const StitchOptions& opt) {
    std::vector<const core::Layout*> views;
    views.reserve(component_results.size());
    for (const core::LayoutResult& r : component_results) views.push_back(&r.layout);
    return stitch_views(d, views, opt);
}

}  // namespace pgl::partition

#pragma once
// Pluggable component-executor layer — how a partitioned run actually
// spends its parallelism. The ComponentScheduler owns policy (validation,
// largest-first order, id-indexed result slots, progress aggregation
// inputs); an Executor owns mechanism: given the decomposition and the
// scheduler options, produce one LayoutResult per component. Two
// implementations are registered:
//
//   "thread"   components run on a core::ThreadPool inside this process —
//              the historical behaviour, byte for byte.
//   "process"  components are farmed to child `pgl_layout
//              --component-worker` processes (fork/exec) over the existing
//              .pgg/.lay file formats plus a length-prefixed status pipe.
//              Same largest-first admission, bounded by
//              SchedulerOptions::processes; a crashed child fails only its
//              component. See process_executor.cpp for the protocol.
//
// Determinism contract (both executors, enforced by ctest): for a fixed
// (seed, backend, engine threads) the per-component byte streams are
// identical regardless of executor, worker/process count, or completion
// order — every component is laid out by run_component_graph with the same
// mixed seed, in-process or in a child.
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "partition/components.hpp"
#include "partition/scheduler.hpp"

namespace pgl::partition {

/// The one per-component layout leaf both executors (and the worker
/// process) execute: pathless graphs short-circuit through
/// core::empty_objective_result, otherwise a fresh `opt.backend` engine
/// runs flat or through the multilevel plan. `opt.config.seed` must
/// already be the *mixed* per-component seed (component_seed) — this
/// function does no mixing, which is exactly what makes a worker process
/// reproduce the in-process bytes: the parent mixes, the leaf is shared.
core::LayoutResult run_component_graph(const graph::LeanGraph& g,
                                       const SchedulerOptions& opt);

/// Serializes the execution-relevant slice of SchedulerOptions for a
/// worker process: "backend=<name>;" + core::canonical_config of the
/// config with `mixed_seed` substituted, + "multilevel=<0|levels>;" and,
/// when multilevel, the ml.* fields. Same `name=value;` grammar as the
/// canonical config, so the worker parses it with the same machinery.
std::string encode_worker_spec(const SchedulerOptions& opt,
                               std::uint64_t mixed_seed);

/// Inverse of encode_worker_spec. The returned options always have
/// executor "thread", workers 1 — a worker lays out exactly one component
/// in-process. Throws std::invalid_argument on malformed input.
SchedulerOptions parse_worker_spec(std::string_view spec);

/// Body of `pgl_layout --component-worker`: loads the component's .pgg,
/// runs run_component_graph(parse_worker_spec(spec)), writes the layout
/// atomically to `out_path`, and reports over `status_fd` (when >= 0) as
/// length-prefixed frames — "result <updates> <skipped> <seconds>" then
/// "telemetry\n<snapshot_wire>". Returns the process exit code (0 on
/// success); failures print to stderr and return 1 so the parent sees a
/// clean nonzero exit rather than an aborted pipe.
int run_component_worker(const std::string& graph_path,
                         const std::string& out_path, const std::string& spec,
                         int status_fd);

/// Execution mechanism for one decomposition. Implementations must honour
/// the scheduler's contract: results indexed by component id, hook called
/// once per finished component (serialized), largest-first admission.
class Executor {
public:
    virtual ~Executor() = default;

    virtual std::string_view name() const noexcept = 0;

    /// Lays out every component of `d` under `opt`. Throws
    /// std::runtime_error if any component fails (after running the rest,
    /// for the process executor). `hook` may be empty.
    virtual std::vector<core::LayoutResult> run(
        const Decomposition& d, const SchedulerOptions& opt,
        const ComponentHook& hook) const = 0;
};

/// String-keyed executor factory (the shared FactoryRegistry behaviour).
/// "thread" and "process" are registered on first use; tests register
/// doubles the same way engines do.
class ExecutorRegistry : public core::FactoryRegistry<Executor> {
public:
    static ExecutorRegistry& instance();

private:
    ExecutorRegistry() = default;
};

/// Creates a registered executor or throws std::invalid_argument listing
/// the available names.
std::unique_ptr<Executor> make_executor(const std::string& name);

namespace detail {
std::unique_ptr<Executor> make_thread_executor();
std::unique_ptr<Executor> make_process_executor();
}  // namespace detail

}  // namespace pgl::partition

#include "partition/executor.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <system_error>

#include "core/config_canon.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "multilevel/plan.hpp"

namespace pgl::partition {

core::LayoutResult run_component_graph(const graph::LeanGraph& g,
                                       const SchedulerOptions& opt) {
    const core::LayoutConfig& cfg = opt.config;
    if (auto done = core::empty_objective_result(g, cfg)) {
        return std::move(*done);
    }
    auto engine = core::make_engine(opt.backend);
    if (opt.multilevel) {
        const multilevel::LayoutPlan plan = multilevel::build_plan(
            cfg, opt.multilevel_opt,
            static_cast<double>(g.max_path_nuc_length()));
        multilevel::MultilevelResult ml =
            multilevel::run_plan(plan, g, *engine, cfg);
        core::LayoutResult r;
        r.layout = std::move(ml.layout);
        r.updates = ml.updates;
        r.skipped = ml.skipped;
        r.seconds = ml.engine_seconds;
        return r;
    }
    engine->init(g, cfg);
    return engine->run();
}

std::string encode_worker_spec(const SchedulerOptions& opt,
                               std::uint64_t mixed_seed) {
    core::LayoutConfig cfg = opt.config;
    cfg.seed = mixed_seed;
    std::string s = "backend=" + opt.backend + ";";
    s += core::canonical_config(cfg);
    s += "multilevel=";
    s += std::to_string(opt.multilevel ? opt.multilevel_opt.levels : 0u);
    s += ';';
    // Execution-only placement knobs ride the spec explicitly (they are
    // not canonical-config fields): a worker process should pin and place
    // the way its parent would have in-process.
    s += "pin=";
    s += cfg.pin ? '1' : '0';
    s += ";numa=" + cfg.numa + ';';
    if (opt.multilevel) {
        s += "ml.coarse_iters=" +
             std::to_string(opt.multilevel_opt.coarse_iters) + ";";
        s += "ml.refine_iters=" +
             std::to_string(opt.multilevel_opt.refine_iters) + ";";
        s += "ml.refine_eta=" +
             core::canonical_double(opt.multilevel_opt.refine_eta) + ";";
        s += "ml.exact_tail=";
        s += opt.multilevel_opt.exact_tail ? '1' : '0';
        s += ';';
    }
    return s;
}

namespace {

template <typename T>
T parse_spec_number(std::string_view name, std::string_view value) {
    T v{};
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
        throw std::invalid_argument("worker spec field " + std::string(name) +
                                    " has a malformed value: '" +
                                    std::string(value) + "'");
    }
    return v;
}

}  // namespace

SchedulerOptions parse_worker_spec(std::string_view spec) {
    SchedulerOptions opt;
    opt.workers = 1;
    opt.executor = "thread";
    while (!spec.empty()) {
        const std::size_t semi = spec.find(';');
        if (semi == std::string_view::npos) {
            throw std::invalid_argument("worker spec is not ';'-terminated: '" +
                                        std::string(spec) + "'");
        }
        const std::string_view field = spec.substr(0, semi);
        spec.remove_prefix(semi + 1);
        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) {
            throw std::invalid_argument("worker spec field without '=': '" +
                                        std::string(field) + "'");
        }
        const std::string_view name = field.substr(0, eq);
        const std::string_view value = field.substr(eq + 1);
        if (name == "backend") {
            opt.backend = std::string(value);
        } else if (name == "multilevel") {
            const auto levels = parse_spec_number<std::uint32_t>(name, value);
            opt.multilevel = levels != 0;
            if (levels != 0) opt.multilevel_opt.levels = levels;
        } else if (name == "ml.coarse_iters") {
            opt.multilevel_opt.coarse_iters =
                parse_spec_number<std::uint32_t>(name, value);
        } else if (name == "ml.refine_iters") {
            opt.multilevel_opt.refine_iters =
                parse_spec_number<std::uint32_t>(name, value);
        } else if (name == "ml.refine_eta") {
            opt.multilevel_opt.refine_eta =
                parse_spec_number<double>(name, value);
        } else if (name == "ml.exact_tail") {
            opt.multilevel_opt.exact_tail =
                parse_spec_number<std::uint32_t>(name, value) != 0;
        } else if (name == "pin") {
            opt.config.pin = parse_spec_number<std::uint32_t>(name, value) != 0;
        } else if (name == "numa") {
            // Validated here so a malformed spec fails at parse, not
            // mid-run inside an engine.
            core::parse_numa_policy(value);
            opt.config.numa = std::string(value);
        } else if (!core::apply_canonical_field(opt.config, name, value)) {
            throw std::invalid_argument("unknown worker spec field: " +
                                        std::string(name));
        }
    }
    return opt;
}

namespace {

/// The historical in-process mechanism: a work-stealing loop over the
/// largest-first order across a core::ThreadPool. The single-queue path is
/// verbatim from ComponentScheduler::run, so "thread" stays byte- and
/// schedule-identical to every release before the executor seam existed.
///
/// With an active placement (config.pin / config.numa) on a multi-node
/// topology, components are instead assigned whole to nodes largest-first
/// (LPT over per-node queues): a pinned worker drains its own node's queue
/// first and steals across nodes only when it runs dry, and each component
/// engine inherits "node:<k>" memory placement for its assigned node — a
/// component's store, shard buffers and workers all stay on one node.
/// Results are identical either way: node assignment only reorders which
/// worker runs which component, and the per-component seeds don't care.
class ThreadExecutor final : public Executor {
public:
    std::string_view name() const noexcept override { return "thread"; }

    std::vector<core::LayoutResult> run(
        const Decomposition& d, const SchedulerOptions& opt,
        const ComponentHook& hook) const override {
        const std::uint32_t n = d.count();
        std::vector<core::LayoutResult> results(n);

        // Largest-first (LPT) order; ties broken by component id so the
        // queue order — though not the results, which land in id-indexed
        // slots — is deterministic too.
        std::vector<std::uint32_t> order(n);
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return d.components[a].graph.node_count() >
                                    d.components[b].graph.node_count();
                         });

        std::atomic<std::uint32_t> completed{0};
        std::mutex hook_mutex;
        const auto report = [&](std::uint32_t c) {
            const std::uint32_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (!hook) return;
            ComponentProgress p;
            p.component = c;
            p.completed = done;
            p.total = n;
            p.nodes = d.components[c].graph.node_count();
            p.updates = results[c].updates;
            p.seconds = results[c].seconds;
            std::lock_guard<std::mutex> lock(hook_mutex);
            hook(p);
        };

        const std::uint32_t n_workers =
            opt.workers <= 1 ? 0 : std::min(opt.workers, n);
        const core::PlacementContext place =
            core::resolve_placement(opt.config, n_workers);
        const std::uint32_t n_nodes =
            place.topo ? place.topo->node_count() : 1;

        if (!place.active() || n_nodes <= 1 || n_workers <= 1) {
            // The historical single-queue path, byte for byte.
            std::atomic<std::uint32_t> next{0};
            const auto work = [&](std::uint32_t) {
                for (;;) {
                    const std::uint32_t k =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (k >= n) return;
                    const std::uint32_t c = order[k];
                    results[c] = run_component(d.components[c], c, opt);
                    report(c);
                }
            };
            // A pool of size 0 runs the job inline on the caller — the
            // right degenerate form for workers <= 1.
            core::ThreadPool pool(n_workers, place.plan);
            pool.run(work);
            return results;
        }

        // LPT across nodes: walk the largest-first order, handing each
        // component to the least-loaded node (ties -> lowest index), load
        // measured in graph nodes.
        std::vector<std::vector<std::uint32_t>> queues(n_nodes);
        std::vector<std::uint64_t> load(n_nodes, 0);
        for (const std::uint32_t c : order) {
            std::uint32_t best = 0;
            for (std::uint32_t k = 1; k < n_nodes; ++k) {
                if (load[k] < load[best]) best = k;
            }
            queues[best].push_back(c);
            load[best] += d.components[c].graph.node_count();
        }

        // A component engine placed with its node: override the memory
        // policy to the assigned node for the spreading policies. An
        // explicit node:K request is respected as-is, and pin-without-numa
        // keeps memory placement off (the pinned worker's first touch is
        // already node-local for single-threaded component engines). numa
        // is execution-only, so the override can never change bytes.
        std::vector<SchedulerOptions> node_opt(n_nodes, opt);
        if (place.policy.mode == core::NumaMode::kAuto ||
            place.policy.mode == core::NumaMode::kInterleave) {
            for (std::uint32_t k = 0; k < n_nodes; ++k) {
                node_opt[k].config.numa = "node:" + std::to_string(k);
            }
        }

        auto heads = std::make_unique<std::atomic<std::uint32_t>[]>(n_nodes);
        for (std::uint32_t k = 0; k < n_nodes; ++k) heads[k].store(0);

        const auto work = [&](std::uint32_t tid) {
            const std::uint32_t home = tid < place.plan.slots.size()
                                           ? place.plan.slots[tid].node
                                           : tid % n_nodes;
            for (;;) {
                std::uint32_t c = n;  // sentinel: nothing left anywhere
                std::uint32_t src = home;
                for (std::uint32_t off = 0; off < n_nodes; ++off) {
                    const std::uint32_t q = (home + off) % n_nodes;
                    const std::uint32_t k =
                        heads[q].fetch_add(1, std::memory_order_relaxed);
                    // Overshooting an exhausted queue just leaves its head
                    // past the end — harmless.
                    if (k < queues[q].size()) {
                        c = queues[q][k];
                        src = q;
                        break;
                    }
                }
                if (c >= n) return;
                results[c] = run_component(d.components[c], c, node_opt[src]);
                report(c);
            }
        };

        core::ThreadPool pool(n_workers, place.plan);
        pool.run(work);
        return results;
    }
};

}  // namespace

namespace detail {

std::unique_ptr<Executor> make_thread_executor() {
    return std::make_unique<ThreadExecutor>();
}

}  // namespace detail

ExecutorRegistry& ExecutorRegistry::instance() {
    static ExecutorRegistry registry = [] {
        ExecutorRegistry r;
        r.add("thread", [] { return detail::make_thread_executor(); });
        r.add("process", [] { return detail::make_process_executor(); });
        return r;
    }();
    return registry;
}

std::unique_ptr<Executor> make_executor(const std::string& name) {
    auto exec = ExecutorRegistry::instance().create(name);
    if (!exec) {
        std::string msg = "unknown partition executor \"" + name +
                          "\"; available:";
        for (const auto& n : ExecutorRegistry::instance().names()) {
            msg += ' ';
            msg += n;
        }
        throw std::invalid_argument(msg);
    }
    return exec;
}

}  // namespace pgl::partition

#include "partition/partition.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace pgl::partition {

PartitionResult partition_layout(Decomposition d, const PartitionOptions& opt) {
    const auto t0 = std::chrono::steady_clock::now();
    PartitionResult out;
    out.decomposition = std::move(d);

    {
        // The flat scheduling phase is this pipeline's "layout" stage; a
        // multilevel run gets its layout stage from the per-pass spans in
        // run_plan instead, so the span here only carries the trace name.
        const char* span_name =
            opt.schedule.multilevel ? "schedule" : "layout";
        telemetry::StageSpan span(span_name, "partition");
        ComponentScheduler scheduler(opt.schedule);
        if (opt.progress) scheduler.set_progress_hook(opt.progress);
        out.component_results = scheduler.run(out.decomposition);
    }

    for (const core::LayoutResult& r : out.component_results) {
        out.updates += r.updates;
        out.skipped += r.skipped;
        out.engine_seconds += r.seconds;
    }
    const auto t_stitch = std::chrono::steady_clock::now();
    {
        telemetry::StageSpan span("stitch", "partition");
        out.stitched =
            stitch(out.decomposition, out.component_results, opt.stitching);
    }
    out.stitch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_stitch)
            .count();

    out.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
}

PartitionResult partition_layout(const graph::VariationGraph& g,
                                 const PartitionOptions& opt) {
    return partition_layout(decompose(g), opt);
}

PartitionResult partition_layout(const graph::LeanGraph& g,
                                 const PartitionOptions& opt) {
    return partition_layout(decompose(g), opt);
}

PartitionResult partition_layout(const graph::LeanGraph& g,
                                 ComponentLabels labels,
                                 const PartitionOptions& opt) {
    return partition_layout(decompose(g, std::move(labels)), opt);
}

}  // namespace pgl::partition

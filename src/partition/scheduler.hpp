#pragma once
// Per-component layout orchestration — layer 2 of the partition subsystem.
//
// Components are independent layout problems, so the scheduler runs one
// LayoutEngine per component and spreads the runs across core::ThreadPool
// workers, largest component first (classic LPT ordering: the big
// chromosomes dominate wall-clock, so they must start first).
//
// Determinism contract: every component gets its own engine instance seeded
// with component_seed(cfg.seed, component_id) — a SplitMix64 mix, so
// component streams never overlap — and engines are deterministic for a
// fixed (seed, threads). Results land in slots indexed by component id.
// Consequently a partitioned run is byte-reproducible for a fixed
// (seed, backend, engine threads) regardless of how many scheduler workers
// raced over the queue or which finished first.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "multilevel/plan.hpp"
#include "partition/components.hpp"

namespace pgl::partition {

/// Deterministic per-component seed: one SplitMix64 step over the base
/// seed XOR the component id, so neighbouring components get uncorrelated
/// engine streams.
std::uint64_t component_seed(std::uint64_t base_seed,
                             std::uint32_t component) noexcept;

/// Aggregated progress snapshot, emitted once per finished component.
struct ComponentProgress {
    std::uint32_t component = 0;  ///< component that just finished
    std::uint32_t completed = 0;  ///< components finished so far (including this)
    std::uint32_t total = 0;      ///< components in the decomposition
    std::uint64_t nodes = 0;      ///< node count of the finished component
    std::uint64_t updates = 0;    ///< engine updates spent on it
    double seconds = 0.0;         ///< engine wall-clock for it
};

using ComponentHook = std::function<void(const ComponentProgress&)>;

struct SchedulerOptions {
    std::string backend = "cpu-batched";  ///< EngineRegistry name
    core::LayoutConfig config;            ///< per-engine config; cfg.seed is the
                                          ///< base seed mixed per component
    std::uint32_t workers = 1;            ///< components laid out concurrently
    /// Lay each component out through the multilevel pass plan
    /// (coarsen -> coarse anneal -> interpolate -> refine) instead of a
    /// flat run. Composes with the determinism contract unchanged: the
    /// plan is derived per component from the same mixed seed config.
    bool multilevel = false;
    multilevel::MultilevelOptions multilevel_opt;
};

/// Lays out one component exactly as the scheduler would: a fresh engine of
/// `opt.backend`, seeded with component_seed(opt.config.seed, component_id).
/// A component whose lean graph has no sampleable path terms (zero total
/// path steps) skips SGD and returns the deterministic linear initial
/// layout — the alias table cannot even be built for it. Exposed so tests
/// can produce the standalone per-component runs the partitioned result
/// must match byte-for-byte.
///
/// Each call runs under a telemetry `component` stage span (category
/// "c<id>"), so multilevel pass seconds aggregate process-wide in the
/// `span.coarsen` / `span.layout` / `span.interpolate` / `span.refine`
/// histograms — the source `pgl_layout --timing` now reads instead of the
/// retired StageSeconds out-parameter.
core::LayoutResult run_component(const ComponentSubgraph& component,
                                 std::uint32_t component_id,
                                 const SchedulerOptions& opt);

/// Runs one engine per component across a ThreadPool of opt.workers.
class ComponentScheduler {
public:
    explicit ComponentScheduler(SchedulerOptions opt) : opt_(std::move(opt)) {}

    void set_progress_hook(ComponentHook hook) { hook_ = std::move(hook); }

    const SchedulerOptions& options() const noexcept { return opt_; }

    /// Returns one LayoutResult per component, indexed by component id.
    std::vector<core::LayoutResult> run(const Decomposition& d) const;

private:
    SchedulerOptions opt_;
    ComponentHook hook_;
};

}  // namespace pgl::partition

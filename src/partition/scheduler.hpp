#pragma once
// Per-component layout orchestration — layer 2 of the partition subsystem.
//
// Components are independent layout problems, so the scheduler runs one
// LayoutEngine per component and spreads the runs across core::ThreadPool
// workers, largest component first (classic LPT ordering: the big
// chromosomes dominate wall-clock, so they must start first).
//
// Determinism contract: every component gets its own engine instance seeded
// with component_seed(cfg.seed, component_id) — a SplitMix64 mix, so
// component streams never overlap — and engines are deterministic for a
// fixed (seed, threads). Results land in slots indexed by component id.
// Consequently a partitioned run is byte-reproducible for a fixed
// (seed, backend, engine threads) regardless of how many scheduler workers
// raced over the queue or which finished first.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "multilevel/plan.hpp"
#include "partition/components.hpp"

namespace pgl::partition {

/// Deterministic per-component seed: one SplitMix64 step over the base
/// seed XOR the component id, so neighbouring components get uncorrelated
/// engine streams.
std::uint64_t component_seed(std::uint64_t base_seed,
                             std::uint32_t component) noexcept;

/// Aggregated progress snapshot, emitted once per finished component.
struct ComponentProgress {
    std::uint32_t component = 0;  ///< component that just finished
    std::uint32_t completed = 0;  ///< components finished so far (including this)
    std::uint32_t total = 0;      ///< components in the decomposition
    std::uint64_t nodes = 0;      ///< node count of the finished component
    std::uint64_t updates = 0;    ///< engine updates spent on it
    double seconds = 0.0;         ///< engine wall-clock for it
};

using ComponentHook = std::function<void(const ComponentProgress&)>;

struct SchedulerOptions {
    std::string backend = "cpu-batched";  ///< EngineRegistry name
    core::LayoutConfig config;            ///< per-engine config; cfg.seed is the
                                          ///< base seed mixed per component
    std::uint32_t workers = 1;            ///< components laid out concurrently
                                          ///< ("thread" executor)
    /// Lay each component out through the multilevel pass plan
    /// (coarsen -> coarse anneal -> interpolate -> refine) instead of a
    /// flat run. Composes with the determinism contract unchanged: the
    /// plan is derived per component from the same mixed seed config.
    bool multilevel = false;
    multilevel::MultilevelOptions multilevel_opt;
    /// Execution mechanism (ExecutorRegistry name): "thread" runs
    /// components in-process on a ThreadPool; "process" farms them to
    /// child `pgl_layout --component-worker` processes. Execution-only —
    /// the laid-out bytes are identical by contract, so this never enters
    /// a canonical request / cache key.
    std::string executor = "thread";
    /// Concurrent worker processes ("process" executor; 0 treated as 1).
    std::uint32_t processes = 1;
    /// Worker binary override for the "process" executor. Empty resolves
    /// PGL_LAYOUT_WORKER, then the pgl_layout next to /proc/self/exe.
    std::string worker_binary;
};

/// Lays out one component exactly as the scheduler would: a fresh engine of
/// `opt.backend`, seeded with component_seed(opt.config.seed, component_id).
/// A component whose lean graph has no sampleable path terms short-circuits
/// through core::empty_objective_result — the one definition of the
/// degenerate-graph rule, shared with the multilevel plan interpreter and
/// both executors. Exposed so tests can produce the standalone
/// per-component runs the partitioned result must match byte-for-byte.
///
/// Each call runs under a telemetry `component` stage span (category
/// "c<id>"), so multilevel pass seconds aggregate process-wide in the
/// `span.coarsen` / `span.layout` / `span.interpolate` / `span.refine`
/// histograms — the source `pgl_layout --timing` now reads instead of the
/// retired StageSeconds out-parameter.
core::LayoutResult run_component(const ComponentSubgraph& component,
                                 std::uint32_t component_id,
                                 const SchedulerOptions& opt);

/// Policy layer over the pluggable executors (partition/executor.hpp):
/// validates the backend/kernel/executor names up front, counts the
/// components into telemetry, then hands the decomposition to the
/// configured Executor ("thread" or "process") for the actual runs.
class ComponentScheduler {
public:
    explicit ComponentScheduler(SchedulerOptions opt) : opt_(std::move(opt)) {}

    void set_progress_hook(ComponentHook hook) { hook_ = std::move(hook); }

    const SchedulerOptions& options() const noexcept { return opt_; }

    /// Returns one LayoutResult per component, indexed by component id.
    std::vector<core::LayoutResult> run(const Decomposition& d) const;

private:
    SchedulerOptions opt_;
    ComponentHook hook_;
};

}  // namespace pgl::partition

#pragma once
// Multilevel layout, prolongation step — projects a converged coarse
// layout down to the finer graph it was coarsened from. Every fine node is
// placed on the line segment of its run's coarse node, at the parameter
// positions matching its nucleotide offsets within the run, so reference
// distances *inside* a run are already exact in the interpolated layout
// and the refinement pass only has to bend runs, not stretch them.
//
// Exactness contract (tests rely on it): a singleton run's fine segment is
// byte-identical to its coarse segment — the interpolation parameters 0
// and 1 reproduce the coarse endpoints exactly, with no rounding.
#include "core/layout.hpp"
#include "multilevel/coarsen.hpp"

namespace pgl::multilevel {

/// Projects `coarse` (a layout of map.coarse_count() nodes) through `map`
/// onto `fine` (the graph the level was built from). Throws
/// std::invalid_argument on a size mismatch.
core::Layout interpolate(const CoarseMap& map, const core::Layout& coarse,
                         const graph::LeanGraph& fine);

}  // namespace pgl::multilevel

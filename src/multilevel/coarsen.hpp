#pragma once
// Multilevel layout, level builder (coarsener) — collapses maximal linear
// runs of the LeanGraph path space into single coarse nodes, the way unitig
// compaction collapses non-branching chains of a de Bruijn graph.
//
// A *run* is a maximal chain of nodes traversed consecutively by the same
// set of path visits: every traversal of any node in the chain crosses the
// whole chain (in either direction — runs are bidirected, so an inversion
// walk keeps its run intact). Formally, the link u -> v is contractible when
// every occurrence of u in the doubled path readings (each path read
// forward and, with flipped orientations, backward) is followed by v with a
// consistent orientation, and every occurrence of v is preceded by u. Nodes
// with branching context — bubble arms, variant sites, path endpoints —
// become singleton runs.
//
// The coarse graph preserves the layout problem exactly at run granularity:
// a coarse node's length is the run's total nucleotide length, and a coarse
// path is the fine path with each complete run traversal collapsed to one
// oriented step, so every reference distance between run boundaries is
// unchanged. PG-SGD on the coarse graph therefore anneals the *same*
// global objective with far fewer nodes and far fewer sampled terms per
// iteration — which is what buys the multilevel wall-clock win.
//
// Everything here is deterministic: runs are discovered in ascending
// fine-node order, coarse ids ascend with the smallest fine id of their
// run, and a run's orientation is canonicalized so its first fine node id
// is smaller than its last.
#include <cstdint>
#include <vector>

#include "graph/lean_graph.hpp"

namespace pgl::multilevel {

/// Bidirectional fine <-> coarse node mapping of one coarsening level.
struct CoarseMap {
    // --- fine -> coarse ---
    std::vector<std::uint32_t> coarse_of;  ///< fine node -> coarse node
    std::vector<std::uint64_t> offset_of;  ///< nucleotide offset of the fine
                                           ///< node's start within its run,
                                           ///< measured in run direction
    std::vector<std::uint8_t> flipped;     ///< 1 = fine node lies reverse-
                                           ///< oriented within its run

    // --- coarse -> fine (CSR, nodes in run order) ---
    std::vector<std::uint32_t> run_offset;  ///< size coarse_count() + 1
    std::vector<std::uint32_t> run_nodes;   ///< fine ids, run order
    std::vector<std::uint64_t> run_length;  ///< coarse node -> run nucleotides

    std::uint32_t fine_count() const noexcept {
        return static_cast<std::uint32_t>(coarse_of.size());
    }
    std::uint32_t coarse_count() const noexcept {
        return static_cast<std::uint32_t>(run_length.size());
    }
    /// Fine nodes of coarse node c, in run order.
    std::span<const std::uint32_t> run(std::uint32_t c) const {
        return std::span<const std::uint32_t>(run_nodes)
            .subspan(run_offset[c], run_offset[c + 1] - run_offset[c]);
    }
};

/// One coarsening level: the coarse graph plus the mapping back to the
/// finer graph it was built from.
struct CoarseLevel {
    graph::LeanGraph graph;
    CoarseMap map;
};

/// Builds one coarsening level. Always succeeds; on a graph with no
/// collapsible runs the coarse graph is node-for-node identical to the
/// fine one (every run a singleton).
CoarseLevel coarsen(const graph::LeanGraph& fine);

}  // namespace pgl::multilevel

#include "multilevel/coarsen.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>

#include "graph/handle.hpp"

namespace pgl::multilevel {

namespace {

// Oriented-handle encoding over 2N slots: h = 2*node + orient, flip = h^1.
// succ_[h] holds the unique handle following h across every doubled path
// reading, or one of the two sentinels.
constexpr std::uint32_t kNone = 0xFFFFFFFFu;   // never followed
constexpr std::uint32_t kMulti = 0xFFFFFFFEu;  // followed inconsistently

inline std::uint32_t flip(std::uint32_t h) noexcept { return h ^ 1u; }
inline std::uint32_t hnode(std::uint32_t h) noexcept { return h >> 1; }

/// Successor / terminal tables over the doubled path readings.
struct LinkTables {
    std::vector<std::uint32_t> succ;
    std::vector<std::uint8_t> terminal;

    explicit LinkTables(const graph::LeanGraph& g)
        : succ(2 * static_cast<std::size_t>(g.node_count()), kNone),
          terminal(2 * static_cast<std::size_t>(g.node_count()), 0) {
        const auto records = g.step_records();
        const auto offsets = g.path_offsets();
        for (std::uint32_t p = 0; p + 1 < offsets.size(); ++p) {
            const std::uint32_t begin = offsets[p];
            const std::uint32_t end = offsets[p + 1];
            if (begin == end) continue;
            const std::uint32_t first = handle_of(records[begin]);
            const std::uint32_t last = handle_of(records[end - 1]);
            // A reading ends at the path's last handle; the backward
            // reading ends at the flip of its first.
            terminal[last] = 1;
            terminal[flip(first)] = 1;
            for (std::uint32_t i = begin; i + 1 < end; ++i) {
                const std::uint32_t a = handle_of(records[i]);
                const std::uint32_t b = handle_of(records[i + 1]);
                add(a, b);
                add(flip(b), flip(a));
            }
        }
    }

    static std::uint32_t handle_of(const graph::PathStepRecord& r) noexcept {
        return 2 * r.node + (r.orient ? 1u : 0u);
    }

    void add(std::uint32_t a, std::uint32_t b) noexcept {
        if (succ[a] == kNone) {
            succ[a] = b;
        } else if (succ[a] != b) {
            succ[a] = kMulti;
        }
    }

    /// True when the link h -> succ[h] may be contracted: every doubled
    /// reading that visits h continues to succ[h], and every reading that
    /// visits succ[h] arrived from h. Self-links (same node) stay, so a
    /// run never contains a node twice via an immediate repeat.
    bool contractible(std::uint32_t h) const noexcept {
        const std::uint32_t g = succ[h];
        if (g >= kMulti) return false;  // kNone or kMulti
        if (hnode(g) == hnode(h)) return false;
        if (terminal[h] || terminal[flip(g)]) return false;
        return succ[flip(g)] == flip(h);
    }
};

}  // namespace

CoarseLevel coarsen(const graph::LeanGraph& fine) {
    const std::uint32_t n = fine.node_count();
    const LinkTables links(fine);

    CoarseLevel out;
    CoarseMap& map = out.map;
    map.coarse_of.assign(n, kNone);
    map.offset_of.assign(n, 0);
    map.flipped.assign(n, 0);
    map.run_offset.push_back(0);

    // Position of each fine node within its run, for the continuation
    // check while rebuilding paths. Local: derivable from the CSR.
    std::vector<std::uint32_t> pos_in_run(n, 0);

    // Chain discovery in ascending fine-node order; the smallest unassigned
    // node seeds each chain, so coarse ids ascend with the smallest fine id
    // they cover — fully deterministic, no hashing, no path order effects.
    std::vector<std::uint8_t> in_chain(n, 0);
    std::vector<std::pair<std::uint32_t, std::uint8_t>> chain;  // (node, orient)
    std::vector<std::pair<std::uint32_t, std::uint8_t>> left;
    for (std::uint32_t u = 0; u < n; ++u) {
        if (map.coarse_of[u] != kNone) continue;
        chain.clear();
        left.clear();
        chain.emplace_back(u, 0);
        in_chain[u] = 1;

        // Extend rightward from u+.
        for (std::uint32_t h = 2 * u; links.contractible(h);) {
            const std::uint32_t g = links.succ[h];
            const std::uint32_t v = hnode(g);
            if (in_chain[v]) break;  // cycle: the whole loop is one chain
            chain.emplace_back(v, static_cast<std::uint8_t>(g & 1u));
            in_chain[v] = 1;
            h = g;
        }
        // Extend leftward by walking rightward from u-; the discovered
        // orientations are relative to the reversed direction, so they
        // flip when spliced in front.
        for (std::uint32_t h = 2 * u + 1; links.contractible(h);) {
            const std::uint32_t g = links.succ[h];
            const std::uint32_t v = hnode(g);
            if (in_chain[v]) break;
            left.emplace_back(v, static_cast<std::uint8_t>((g & 1u) ^ 1u));
            in_chain[v] = 1;
            h = g;
        }
        if (!left.empty()) {
            chain.insert(chain.begin(), left.rbegin(), left.rend());
        }
        // Canonical direction: smaller fine id first.
        if (chain.back().first < chain.front().first) {
            std::reverse(chain.begin(), chain.end());
            for (auto& e : chain) e.second ^= 1u;
        }
        for (const auto& e : chain) in_chain[e.first] = 0;

        // Emit the chain as one coarse node — split only in the (absurd)
        // case a run's nucleotide total overflows a node-length uint32.
        constexpr std::uint64_t kMaxLen =
            std::numeric_limits<std::uint32_t>::max();
        std::size_t i = 0;
        while (i < chain.size()) {
            const std::uint32_t c = map.coarse_count();
            std::uint64_t len = 0;
            std::uint32_t pos = 0;
            while (i < chain.size()) {
                const auto [v, o] = chain[i];
                const std::uint64_t vl = fine.node_length(v);
                if (pos > 0 && len + vl > kMaxLen) break;
                map.coarse_of[v] = c;
                map.offset_of[v] = len;
                map.flipped[v] = o;
                pos_in_run[v] = pos;
                map.run_nodes.push_back(v);
                len += vl;
                ++pos;
                ++i;
            }
            map.run_offset.push_back(
                static_cast<std::uint32_t>(map.run_nodes.size()));
            map.run_length.push_back(len);
        }
    }

    // Coarse graph: node c's length is its run's nucleotide total; each
    // fine path becomes the sequence of runs it crosses, one oriented step
    // per complete traversal. Partial crossings cannot occur — a run is
    // only formed when *every* visit of its nodes crosses the whole chain —
    // so the continuation check below is an invariant walk, not a guess.
    graph::LeanGraphBuilder b;
    b.reserve_nodes(map.coarse_count());
    for (std::uint32_t c = 0; c < map.coarse_count(); ++c) {
        b.add_node(static_cast<std::uint32_t>(map.run_length[c]));
    }
    b.reserve_paths(fine.path_count());

    const auto records = fine.step_records();
    const auto offsets = fine.path_offsets();
    for (std::uint32_t p = 0; p + 1 < offsets.size(); ++p) {
        b.begin_path();
        std::uint32_t prev_c = kNone;
        std::uint8_t prev_o = 0;
        std::uint32_t prev_pos = 0;
        for (std::uint32_t s = offsets[p]; s < offsets[p + 1]; ++s) {
            const graph::PathStepRecord& r = records[s];
            const std::uint32_t c = map.coarse_of[r.node];
            const std::uint8_t o =
                static_cast<std::uint8_t>((r.orient ? 1u : 0u) ^
                                          map.flipped[r.node]);
            const std::uint32_t pos = pos_in_run[r.node];
            // Continuation of the current traversal: same run, same
            // direction, adjacent run position (ascending when the run is
            // walked forward, descending when reversed).
            if (prev_c == c && prev_o == o &&
                (o == 0 ? pos == prev_pos + 1
                        : prev_pos == pos + 1)) {
                prev_pos = pos;
                continue;
            }
            b.add_step(graph::Handle::make(c, o != 0));
            prev_c = c;
            prev_o = o;
            prev_pos = pos;
        }
        b.end_path();
    }
    out.graph = b.finish();
    return out;
}

}  // namespace pgl::multilevel

#include "multilevel/interpolate.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pgl::multilevel {

namespace {

/// Endpoint-exact lerp: t == 0 returns a bit-exactly, t == 1 returns b
/// bit-exactly (the arithmetic below is exact for those parameters in
/// double, and the float round-trip of a float is the identity).
inline float lerp(float a, float b, double t) {
    return static_cast<float>((1.0 - t) * static_cast<double>(a) +
                              t * static_cast<double>(b));
}

}  // namespace

core::Layout interpolate(const CoarseMap& map, const core::Layout& coarse,
                         const graph::LeanGraph& fine) {
    if (coarse.size() != map.coarse_count()) {
        throw std::invalid_argument(
            "multilevel::interpolate: coarse layout holds " +
            std::to_string(coarse.size()) + " segments for " +
            std::to_string(map.coarse_count()) + " coarse nodes");
    }
    if (fine.node_count() != map.fine_count()) {
        throw std::invalid_argument(
            "multilevel::interpolate: fine graph holds " +
            std::to_string(fine.node_count()) + " nodes but the map covers " +
            std::to_string(map.fine_count()));
    }

    core::Layout out;
    out.resize(fine.node_count());
    for (std::uint32_t v = 0; v < fine.node_count(); ++v) {
        const std::uint32_t c = map.coarse_of[v];
        const double len = static_cast<double>(map.run_length[c]);
        const double off = static_cast<double>(map.offset_of[v]);
        const double t_entry = len > 0.0 ? off / len : 0.0;
        const double t_exit =
            len > 0.0 ? (off + static_cast<double>(fine.node_length(v))) / len
                      : 0.0;
        // The run crosses v from its start endpoint when v lies forward in
        // the run, from its end endpoint when flipped.
        const double t_start = map.flipped[v] ? t_exit : t_entry;
        const double t_end = map.flipped[v] ? t_entry : t_exit;
        out.start_x[v] = lerp(coarse.start_x[c], coarse.end_x[c], t_start);
        out.start_y[v] = lerp(coarse.start_y[c], coarse.end_y[c], t_start);
        out.end_x[v] = lerp(coarse.start_x[c], coarse.end_x[c], t_end);
        out.end_y[v] = lerp(coarse.start_y[c], coarse.end_y[c], t_end);
    }
    return out;
}

}  // namespace pgl::multilevel

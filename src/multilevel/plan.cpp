#include "multilevel/plan.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/layout.hpp"
#include "multilevel/interpolate.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::multilevel {

const char* pass_kind_name(PassKind k) noexcept {
    switch (k) {
        case PassKind::kCoarsen: return "coarsen";
        case PassKind::kLayout: return "layout";
        case PassKind::kInterpolate: return "interpolate";
        case PassKind::kRefine: return "refine";
    }
    return "?";
}

std::uint32_t resolve_refine_iters(const core::LayoutConfig& cfg,
                                   const MultilevelOptions& opt) noexcept {
    if (opt.refine_iters > 0) return opt.refine_iters;
    return std::max<std::uint32_t>(2, cfg.schedule_length() / 2);
}

std::uint32_t resolve_coarse_iters(const core::LayoutConfig& cfg,
                                   const MultilevelOptions& opt) noexcept {
    if (opt.coarse_iters > 0) return opt.coarse_iters;
    return std::max<std::uint32_t>(2, (5 * cfg.schedule_length() + 2) / 6);
}

double refine_eta_max(double max_dref, double eps, std::uint32_t iter_max,
                      std::uint32_t refine_iters) noexcept {
    // Mirror make_eta_schedule's clamps so the tail identity holds bit for
    // bit: eta_max = d^2 with d >= 1, eps clamped into (0, eta_max].
    const double d = std::max(1.0, max_dref);
    const double emax = std::max(d * d, 1e-30);
    const double emin = std::min(std::max(eps, 1e-30), emax);
    if (refine_iters >= iter_max || iter_max <= 1) return emax;
    const double lambda =
        std::log(emax / emin) / static_cast<double>(iter_max - 1);
    return emax * std::exp(-lambda * static_cast<double>(iter_max - refine_iters));
}

LayoutPlan build_plan(const core::LayoutConfig& cfg,
                      const MultilevelOptions& opt, double max_dref) {
    if (opt.levels == 0) {
        throw std::invalid_argument(
            "multilevel: levels must be >= 1 (0 would be a flat run)");
    }
    const std::uint32_t iters = cfg.schedule_length();
    const std::uint32_t refine = resolve_refine_iters(cfg, opt);
    const std::uint32_t coarse = std::min(resolve_coarse_iters(cfg, opt), iters);

    LayoutPlan plan;
    plan.passes.reserve(2 * static_cast<std::size_t>(opt.levels) + 2);
    for (std::uint32_t l = 0; l < opt.levels; ++l) {
        plan.passes.push_back({PassKind::kCoarsen, l, 0, 0.0});
    }
    // The coarse anneal is the flat schedule's hot prefix: the full
    // I-iteration eta curve, truncated after `coarse` iterations.
    plan.passes.push_back({PassKind::kLayout, opt.levels, coarse, 0.0, iters});
    for (std::uint32_t l = opt.levels; l > 0; --l) {
        plan.passes.push_back({PassKind::kInterpolate, l, 0, 0.0});
    }
    double eta = opt.refine_eta;  // 0 = adaptive, derived at execution
    if (opt.exact_tail) {
        eta = refine_eta_max(max_dref, cfg.eps, iters, refine);
    }
    plan.passes.push_back({PassKind::kRefine, 0, refine, eta});
    return plan;
}

namespace {

[[noreturn]] void reject(std::size_t i, const Pass& p, const char* why) {
    throw std::invalid_argument("multilevel plan: pass " + std::to_string(i) +
                                " (" + pass_kind_name(p.kind) + " at level " +
                                std::to_string(p.level) + ") " + why);
}

}  // namespace

double adaptive_refine_eta(const graph::LeanGraph& coarse) {
    std::vector<std::uint32_t> lens(coarse.node_lengths().begin(),
                                    coarse.node_lengths().end());
    if (lens.empty()) return 0.0;
    const std::size_t k =
        std::min(lens.size() - 1,
                 static_cast<std::size_t>(static_cast<double>(lens.size()) * 0.95));
    std::nth_element(lens.begin(), lens.begin() + static_cast<std::ptrdiff_t>(k),
                     lens.end());
    const double p95 = static_cast<double>(lens[k]);
    return (p95 / 8.0) * (p95 / 8.0);
}

void validate_plan(const LayoutPlan& plan) {
    if (plan.passes.empty()) {
        throw std::invalid_argument("multilevel plan: empty pass list");
    }
    std::uint32_t level = 0;
    bool have_layout = false;
    for (std::size_t i = 0; i < plan.passes.size(); ++i) {
        const Pass& p = plan.passes[i];
        switch (p.kind) {
            case PassKind::kCoarsen:
                if (have_layout) reject(i, p, "coarsens after a layout exists");
                if (p.level != level) reject(i, p, "consumes the wrong level");
                ++level;
                break;
            case PassKind::kLayout:
                if (have_layout) reject(i, p, "would discard an earlier layout");
                if (p.level != level) reject(i, p, "runs at the wrong level");
                if (p.iter_max == 0) reject(i, p, "has no iterations");
                if (p.schedule_iters != 0 && p.schedule_iters < p.iter_max) {
                    reject(i, p, "has a schedule shorter than its iterations");
                }
                have_layout = true;
                break;
            case PassKind::kInterpolate:
                if (!have_layout) reject(i, p, "has no layout to project");
                if (level == 0) reject(i, p, "is already at full resolution");
                if (p.level != level) reject(i, p, "consumes the wrong level");
                --level;
                break;
            case PassKind::kRefine:
                if (!have_layout) reject(i, p, "has no layout to refine");
                if (p.level != level) reject(i, p, "runs at the wrong level");
                if (p.iter_max == 0) reject(i, p, "has no iterations");
                if (p.schedule_iters != 0 && p.schedule_iters < p.iter_max) {
                    reject(i, p, "has a schedule shorter than its iterations");
                }
                break;
        }
    }
    if (!have_layout) {
        throw std::invalid_argument("multilevel plan: no layout pass");
    }
    if (level != 0) {
        throw std::invalid_argument(
            "multilevel plan: ends at level " + std::to_string(level) +
            ", not full resolution");
    }
}

std::string describe(const LayoutPlan& plan) {
    std::string out;
    for (const Pass& p : plan.passes) {
        if (!out.empty()) out += "; ";
        out += pass_kind_name(p.kind);
        switch (p.kind) {
            case PassKind::kCoarsen:
                out += " L" + std::to_string(p.level) + "->L" +
                       std::to_string(p.level + 1);
                break;
            case PassKind::kInterpolate:
                out += " L" + std::to_string(p.level) + "->L" +
                       std::to_string(p.level - 1);
                break;
            case PassKind::kLayout:
            case PassKind::kRefine:
                out += " L" + std::to_string(p.level) + " x" +
                       std::to_string(p.iter_max);
                if (p.schedule_iters != 0 && p.schedule_iters != p.iter_max) {
                    out += "/" + std::to_string(p.schedule_iters);
                }
                break;
        }
    }
    return out;
}

MultilevelResult run_plan(const LayoutPlan& plan, const graph::LeanGraph& fine,
                          core::LayoutEngine& engine,
                          const core::LayoutConfig& cfg) {
    validate_plan(plan);

    MultilevelResult out;
    out.level_nodes.push_back(fine.node_count());

    if (auto done = core::empty_objective_result(fine, cfg)) {
        out.layout = std::move(done->layout);
        return out;
    }

    using clock = std::chrono::steady_clock;
    // levels[l - 1] maps level l-1 -> level l; level 0 is `fine` itself.
    std::vector<CoarseLevel> levels;
    const auto graph_at = [&](std::uint32_t l) -> const graph::LeanGraph& {
        return l == 0 ? fine : levels[l - 1].graph;
    };

    core::Layout current;
    std::uint32_t level = 0;
    for (const Pass& p : plan.passes) {
        const auto t0 = clock::now();
        // One stage span per pass: `span.coarsen` / `span.layout` /
        // `span.interpolate` / `span.refine` aggregate across components
        // under --partition, and the trace shows each pass nested inside
        // its component/job span. PassTiming stays: bench_multilevel reads
        // per-pass wall-clock from the result, not the process registry.
        telemetry::StageSpan pass_span(pass_kind_name(p.kind), "multilevel");
        switch (p.kind) {
            case PassKind::kCoarsen: {
                levels.push_back(coarsen(graph_at(level)));
                ++level;
                out.level_nodes.push_back(graph_at(level).node_count());
                break;
            }
            case PassKind::kLayout:
            case PassKind::kRefine: {
                core::LayoutConfig pass_cfg = cfg;
                pass_cfg.iter_max = p.iter_max;
                pass_cfg.schedule_iter_max = p.schedule_iters;
                pass_cfg.eta_max = p.eta_max;
                if (p.kind == PassKind::kRefine && p.eta_max == 0.0) {
                    if (!levels.empty()) {
                        pass_cfg.eta_max =
                            adaptive_refine_eta(levels.front().graph);
                    }
                    if (pass_cfg.eta_max == 0.0) {
                        pass_cfg.eta_max = refine_eta_max(
                            static_cast<double>(
                                graph_at(level).max_path_nuc_length()),
                            cfg.eps, cfg.schedule_length(), p.iter_max);
                    } else {
                        // Adaptive restart: also raise the schedule floor
                        // to the nucleotide scale — cooling below it
                        // wastes the short tail (see kRefineEtaFloor).
                        pass_cfg.eps = std::max(cfg.eps, kRefineEtaFloor);
                    }
                }
                if (p.kind == PassKind::kRefine) {
                    // The tail of the flat anneal is entirely inside the
                    // cooling phase; a warm-started refinement stays there.
                    pass_cfg.cooling_start = 0.0;
                    pass_cfg.initial_layout =
                        std::make_shared<const core::Layout>(
                            std::move(current));
                }
                engine.init(graph_at(level), pass_cfg);
                core::LayoutResult r = engine.run();
                current = std::move(r.layout);
                out.updates += r.updates;
                out.skipped += r.skipped;
                out.engine_seconds += r.seconds;
                break;
            }
            case PassKind::kInterpolate: {
                current = interpolate(levels[level - 1].map, current,
                                      graph_at(level - 1));
                --level;
                break;
            }
        }
        out.timings.push_back(
            {p.kind, p.level,
             std::chrono::duration<double>(clock::now() - t0).count()});
    }
    out.layout = std::move(current);
    return out;
}

}  // namespace pgl::multilevel

#pragma once
// Multilevel layout, plan layer. A multilevel run is described as an
// explicit ordered list of passes — coarsen / layout / interpolate /
// refine — built as plain data, validated as a whole, then executed by a
// small interpreter. The pass list is the single source of truth: the CLI
// prints it, the bench times it per entry, and tests rewrite it to probe
// the validator, the same "schedule as rewritable IR" shape a compiler
// lowering pipeline uses.
//
// The default plan (build_plan) is the V-shaped schedule the paper's
// multigrid framing suggests:
//
//   coarsen x L  ->  layout (hot anneal prefix, coarsest graph)
//     ->  interpolate x L  ->  refine (short anneal tail, full resolution)
//
// The default schedule splits the flat run's single cooling curve across
// resolutions. The coarse layout pass walks the *same* I-iteration eta
// curve a flat run would (coarsening preserves every path's nucleotide
// length, so the graph-derived eta ceiling is identical) but stops after
// the hot five-sixths — by then eta has swept the whole inter-run band,
// and relative run placement, the only geometry the coarse graph can
// represent, is converged. Interpolation lifts the layout, leaving only
// intra-run curvature: a sub-run-wavelength residual the straight-segment
// interpolator cannot draw. The refine pass anneals exactly that band at
// full resolution, restarting at (p95 run nucleotide length / 8)^2 — the
// measured optimum on the whole-genome workload, flat across a wide
// plateau (roughly /4 to /16 of the half-run temperature) but distinctly
// worse when restarted a full run-scale hot, which wastes the short tail
// re-shaking converged runs — and cooling to the one-nucleotide scale
// (kRefineEtaFloor), the smallest distance the nucleotide-unit layout can
// resolve. Cooling further (e.g. to the flat run's 0.01 default) spends
// the tail on moves too small to fix anything and measurably stalls
// short of flat-final quality. The conservative alternative
// (MultilevelOptions::exact_tail) instead picks refine_eta_max so the
// R-iteration refine schedule reproduces — to the last bit — the final R
// entries of the flat schedule's anneal.
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/lean_graph.hpp"
#include "multilevel/coarsen.hpp"

namespace pgl::multilevel {

enum class PassKind : std::uint8_t {
    kCoarsen,      ///< build the next-coarser level from the current graph
    kLayout,       ///< cold full anneal on the current (coarsest) graph
    kInterpolate,  ///< project the layout one level finer
    kRefine,       ///< warm-started anneal tail on the current graph
};

const char* pass_kind_name(PassKind k) noexcept;

/// One step of a multilevel schedule. `level` is the graph level the pass
/// *consumes*: 0 is full resolution, each coarsen raises it by one. The
/// iteration fields apply to the engine passes only.
struct Pass {
    PassKind kind;
    std::uint32_t level = 0;
    std::uint32_t iter_max = 0;  ///< kLayout/kRefine: iterations to run
    double eta_max = 0.0;        ///< kRefine: restart temperature. 0 derives
                                 ///< (p95 run nuc length / 8)^2 from the
                                 ///< first coarse level at execution time
                                 ///< (the flat tail eta when no level
                                 ///< exists), with the schedule floor
                                 ///< raised to kRefineEtaFloor.
    std::uint32_t schedule_iters = 0;  ///< kLayout/kRefine: when non-zero,
                                       ///< the eta curve is built for this
                                       ///< many iterations and the pass runs
                                       ///< only the first iter_max of them
                                       ///< (the hot prefix). 0 = iter_max.
};

struct LayoutPlan {
    std::vector<Pass> passes;
};

struct MultilevelOptions {
    /// Coarsening levels (>= 1).
    std::uint32_t levels = 1;
    /// Coarse-level layout iterations; 0 means the hot five-sixths of the
    /// flat schedule, max(2, (5 * iter_max + 2) / 6) — the prefix that
    /// cools from the graph-scale eta ceiling through the whole inter-run
    /// band, where coarse-node geometry stops improving.
    std::uint32_t coarse_iters = 0;
    /// Full-resolution refinement iterations; 0 means the default tail of
    /// max(2, iter_max / 2) — half the flat schedule at full resolution,
    /// the shortest tail that reliably reaches flat-final quality.
    std::uint32_t refine_iters = 0;
    /// Explicit refine restart temperature; 0 derives it at execution time
    /// as (p95 run nucleotide length of the first coarse level / 8)^2, the
    /// sub-run scale of the straight-run interpolation error.
    double refine_eta = 0.0;
    /// Replaces the adaptive restart temperature with the flat schedule's
    /// own: the refine schedule becomes the last R entries of the flat
    /// I-iteration anneal, bit for bit (see refine_eta_max). Overrides
    /// refine_eta.
    bool exact_tail = false;
};

/// The refinement tail length `opt` resolves to under `cfg`.
std::uint32_t resolve_refine_iters(const core::LayoutConfig& cfg,
                                   const MultilevelOptions& opt) noexcept;

/// The coarse-level layout iteration count `opt` resolves to under `cfg`.
std::uint32_t resolve_coarse_iters(const core::LayoutConfig& cfg,
                                   const MultilevelOptions& opt) noexcept;

/// Restart temperature for an R-iteration refinement tail of a flat
/// I-iteration schedule over (max_dref, eps): the eta the flat schedule
/// would reach at iteration I - R, so the refine schedule equals the flat
/// schedule's last R entries exactly. Returns the full eta_max when
/// R >= I (the tail is the whole schedule).
double refine_eta_max(double max_dref, double eps, std::uint32_t iter_max,
                      std::uint32_t refine_iters) noexcept;

/// The adaptive refine restart temperature: (p95 nucleotide length of
/// `coarse`'s nodes / 8)^2. After the five-sixths coarse prefix, run
/// placement is converged and the interpolation residual is intra-run
/// curvature at sub-run wavelength; p95 (not max) keeps one pathological
/// run from overheating the whole pass. Returns 0 for an empty graph.
double adaptive_refine_eta(const graph::LeanGraph& coarse);

/// The adaptive refine schedule floor: the one-nucleotide scale (eta has
/// squared-length units, so 1.0). The layout's unit is the nucleotide, so
/// no inter-node distance error smaller than one exists; cooling below it
/// spends the short refine tail on moves too small to improve anything
/// and stalls short of flat-final quality.
inline constexpr double kRefineEtaFloor = 1.0;

/// Builds the default V-shaped plan for `cfg` on a graph whose longest
/// path is `max_dref` nucleotides. Throws std::invalid_argument when
/// opt.levels == 0.
LayoutPlan build_plan(const core::LayoutConfig& cfg,
                      const MultilevelOptions& opt, double max_dref);

/// Structural validation: passes must form a well-bracketed V — coarsens
/// first, one cold layout at the coarsest level, an interpolate per
/// coarsen, engine passes only where a layout exists, and the plan must
/// end at full resolution with a layout in hand. Throws
/// std::invalid_argument naming the offending pass.
void validate_plan(const LayoutPlan& plan);

/// One line per pass, e.g. "coarsen L0->L1; layout L1 x30; ...".
std::string describe(const LayoutPlan& plan);

/// Wall-clock of one executed pass.
struct PassTiming {
    PassKind kind;
    std::uint32_t level = 0;
    double seconds = 0.0;
};

struct MultilevelResult {
    core::Layout layout;
    std::vector<PassTiming> timings;          ///< one entry per executed pass
    std::vector<std::uint32_t> level_nodes;   ///< node count per level, fine first
    std::uint64_t updates = 0;                ///< terms across all engine passes
    std::uint64_t skipped = 0;
    double engine_seconds = 0.0;  ///< engine-reported (modeled for gpusim/torch)
};

/// Validates and executes `plan` on `fine` with `engine` (re-init'ed per
/// engine pass; it must outlive the call but carries no state across it —
/// the final pass rebinds it to `fine`). `cfg` supplies everything a pass
/// does not override (seed, threads, kernel, eps, sampler knobs). A graph
/// with no path steps short-circuits to the linear initial layout, as the
/// partition scheduler does.
MultilevelResult run_plan(const LayoutPlan& plan, const graph::LeanGraph& fine,
                          core::LayoutEngine& engine,
                          const core::LayoutConfig& cfg);

}  // namespace pgl::multilevel

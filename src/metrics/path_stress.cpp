#include "metrics/path_stress.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <vector>

#include "core/sampling.hpp"
#include "core/thread_pool.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::metrics {

namespace {

using core::End;
using core::Layout;
using graph::LeanGraph;

struct Accum {
    double sum = 0.0;
    double sum_sq = 0.0;
    std::uint64_t n = 0;

    void add(double v) noexcept {
        sum += v;
        sum_sq += v * v;
        ++n;
    }
    void merge(const Accum& o) noexcept {
        sum += o.sum;
        sum_sq += o.sum_sq;
        n += o.n;
    }
};

/// Flat read-only view of a layout in the XYStore organization — the same
/// x[2*node + end] indexing the update kernels write, so metrics read
/// coordinates exactly the way the engines produced them.
struct FlatCoords {
    explicit FlatCoords(const Layout& l) : store(l), x(store.x()), y(store.y()) {}

    // x/y alias the owned store; a default copy would leave them pointing
    // into the source object.
    FlatCoords(const FlatCoords&) = delete;
    FlatCoords& operator=(const FlatCoords&) = delete;

    core::XYStore store;
    const float* x;
    const float* y;
};

/// Stress of one endpoint pair; returns false for degenerate d_ref == 0.
inline bool endpoint_stress(const LeanGraph& g, const FlatCoords& c,
                            std::uint32_t p, std::uint32_t si, std::uint32_t sj,
                            End ei, End ej, double& out) noexcept {
    const std::uint32_t ni = g.step_node(p, si);
    const std::uint32_t nj = g.step_node(p, sj);
    const std::uint64_t pi = core::endpoint_path_position(
        g.step_position(p, si), g.node_length(ni), g.step_is_reverse(p, si), ei);
    const std::uint64_t pj = core::endpoint_path_position(
        g.step_position(p, sj), g.node_length(nj), g.step_is_reverse(p, sj), ej);
    const std::uint64_t d = pi > pj ? pi - pj : pj - pi;
    if (d == 0) return false;
    const double d_ref = static_cast<double>(d);
    const std::size_t ii = core::XYStore::index(ni, ei);
    const std::size_t jj = core::XYStore::index(nj, ej);
    const double dx = static_cast<double>(c.x[ii]) - c.x[jj];
    const double dy = static_cast<double>(c.y[ii]) - c.y[jj];
    const double mag = std::sqrt(dx * dx + dy * dy);
    const double residual = (mag - d_ref) / d_ref;
    out = residual * residual;
    return true;
}

/// Average stress over the four endpoint combinations of a step pair
/// (the stress(n_i, n_j) of Eq. 1).
inline bool pair_stress(const LeanGraph& g, const FlatCoords& c, std::uint32_t p,
                        std::uint32_t si, std::uint32_t sj, double& out) noexcept {
    static constexpr End kEnds[2] = {End::kStart, End::kEnd};
    double total = 0.0;
    int combos = 0;
    for (End ei : kEnds) {
        for (End ej : kEnds) {
            double s;
            if (endpoint_stress(g, c, p, si, sj, ei, ej, s)) {
                total += s;
                ++combos;
            }
        }
    }
    if (combos == 0) return false;
    out = total / combos;
    return true;
}

template <typename Fn>
void parallel_over_paths(const LeanGraph& g, std::uint32_t threads, Fn&& fn) {
    const std::uint32_t n_paths = g.path_count();
    if (threads <= 1 || n_paths <= 1) {
        for (std::uint32_t p = 0; p < n_paths; ++p) fn(p);
        return;
    }
    // Work-stealing over paths on the shared pool abstraction (path sizes
    // are wildly skewed, so static shares would straggle).
    std::atomic<std::uint32_t> next{0};
    core::ThreadPool pool(std::min(threads, n_paths));
    pool.run([&](std::uint32_t) {
        for (;;) {
            const std::uint32_t p = next.fetch_add(1);
            if (p >= n_paths) return;
            fn(p);
        }
    });
}

}  // namespace

StressResult path_stress(const graph::LeanGraph& g, const core::Layout& l,
                         std::uint32_t threads) {
    const auto t0 = std::chrono::steady_clock::now();
    const FlatCoords coords(l);
    std::vector<Accum> per_path(g.path_count());
    parallel_over_paths(g, threads, [&](std::uint32_t p) {
        Accum acc;
        const std::uint32_t n = g.path_step_count(p);
        for (std::uint32_t i = 0; i < n; ++i) {
            for (std::uint32_t j = i + 1; j < n; ++j) {
                double s;
                if (pair_stress(g, coords, p, i, j, s)) acc.add(s);
            }
        }
        per_path[p] = acc;
    });
    Accum total;
    for (const Accum& a : per_path) total.merge(a);

    StressResult r;
    r.terms = total.n;
    r.value = total.n ? total.sum / static_cast<double>(total.n) : 0.0;
    r.ci_low = r.ci_high = r.value;
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
    return r;
}

StressResult sampled_path_stress(const graph::LeanGraph& g, const core::Layout& l,
                                 double samples_per_step, std::uint64_t seed,
                                 std::uint32_t threads) {
    const auto t0 = std::chrono::steady_clock::now();
    const FlatCoords coords(l);
    std::vector<Accum> per_path(g.path_count());
    parallel_over_paths(g, threads, [&](std::uint32_t p) {
        rng::Xoshiro256Plus rng(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
        Accum acc;
        const std::uint32_t n = g.path_step_count(p);
        if (n < 2) return;
        const std::uint64_t n_samples = static_cast<std::uint64_t>(
            samples_per_step * static_cast<double>(n));
        static constexpr End kEnds[2] = {End::kStart, End::kEnd};
        for (std::uint64_t s = 0; s < n_samples; ++s) {
            const std::uint32_t i = static_cast<std::uint32_t>(rng.next_bounded(n));
            const std::uint32_t j = static_cast<std::uint32_t>(rng.next_bounded(n));
            if (i == j) continue;
            const End ei = kEnds[rng.flip_coin()];
            const End ej = kEnds[rng.flip_coin()];
            double v;
            if (endpoint_stress(g, coords, p, i, j, ei, ej, v)) acc.add(v);
        }
        per_path[p] = acc;
    });
    Accum total;
    for (const Accum& a : per_path) total.merge(a);

    StressResult r;
    r.terms = total.n;
    if (total.n > 0) {
        const double n = static_cast<double>(total.n);
        r.value = total.sum / n;
        const double var = std::max(0.0, total.sum_sq / n - r.value * r.value);
        const double half = 1.96 * std::sqrt(var / n);
        r.ci_low = r.value - half;
        r.ci_high = r.value + half;
    }
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
    return r;
}

}  // namespace pgl::metrics

#pragma once
// Layout-quality metrics (paper Sec. VI).
//
//  * path stress (Eq. 1): the mean, over every pair of steps that share a
//    path, of the stress of that pair — where a pair's stress averages the
//    four start/end endpoint combinations. Quadratic in path length; only
//    feasible for small graphs (Table V).
//  * sampled path stress (Eq. 2): draws n = samples_per_step * |p| random
//    step pairs per path and reports the sample mean together with its 95%
//    confidence interval (CLT), making quality evaluation linear-time and
//    usable on chromosome-scale graphs.
#include <cstdint>

#include "core/layout.hpp"
#include "graph/lean_graph.hpp"

namespace pgl::metrics {

struct StressResult {
    double value = 0.0;      ///< mean stress
    double ci_low = 0.0;     ///< 95% confidence interval (sampled only)
    double ci_high = 0.0;
    std::uint64_t terms = 0; ///< stress terms accumulated
    double seconds = 0.0;    ///< wall-clock time of the computation
};

/// Exact path stress per Eq. 1. `threads` parallelizes over paths.
StressResult path_stress(const graph::LeanGraph& g, const core::Layout& l,
                         std::uint32_t threads = 1);

/// Sampled path stress per Eq. 2 with CI95. Default samples_per_step = 100
/// matches the paper ("each node is expected to be sampled 100 times within
/// its path"). Deterministic for a fixed seed.
StressResult sampled_path_stress(const graph::LeanGraph& g, const core::Layout& l,
                                 double samples_per_step = 100.0,
                                 std::uint64_t seed = 42,
                                 std::uint32_t threads = 1);

}  // namespace pgl::metrics

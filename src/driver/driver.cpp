#include "driver/driver.hpp"

#include <filesystem>
#include <sstream>
#include <utility>

#include "core/topology.hpp"
#include "draw/ppm.hpp"
#include "draw/svg.hpp"
#include "io/lay_io.hpp"
#include "io/pgg_io.hpp"
#include "partition/executor.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::driver {

namespace {

/// Narration matches the historical CLI byte for byte, so messages are
/// formatted with ostream defaults (6 significant digits for doubles),
/// never std::to_string.
class Narrator {
public:
    explicit Narrator(const std::function<void(const std::string&)>& log)
        : log_(log) {}

    template <typename... Parts>
    void operator()(const Parts&... parts) const {
        if (!log_) return;
        std::ostringstream line;
        (line << ... << parts);
        log_(line.str());
    }

private:
    const std::function<void(const std::string&)>& log_;
};

}  // namespace

RunOutcome run_layout(const RunRequest& req) {
    RunOutcome out;
    if (req.component_worker) {
        out.worker_exit_code = partition::run_component_worker(
            req.graph_path, req.out_path, req.worker_spec, req.status_fd);
        return out;
    }

    const Narrator log(req.log);

    // Oversubscribing the allowed cpuset (cgroup quota, taskset, container
    // limit) never helps: extra workers just time-share the same CPUs and
    // each shard's batch gets smaller. Clamp and say so. This changes the
    // shard split — and thus the bytes of deterministic backends — so it
    // happens here, before the config reaches any engine or worker spec,
    // keeping thread- and process-executor runs in agreement.
    core::LayoutConfig cfg = req.config;
    if (cfg.threads > 1) {
        const auto allowed =
            static_cast<std::uint32_t>(core::allowed_cpus_self().size());
        if (allowed > 0 && cfg.threads > allowed) {
            log("clamping --threads ", req.config.threads, " to ", allowed,
                " allowed CPUs");
            cfg.threads = allowed;
        }
    }

    // Load the graph, or adopt the caller's cached ingest. Only a real
    // load is a "parse" stage: adopting a shared ingest costs nothing and
    // must not pollute the span histograms --timing reads.
    graph::LeanIngest owned;
    const bool owns = !req.ingest;
    if (owns) {
        telemetry::StageSpan span("parse", "cli");
        owned = req.force_pgg ? io::read_pgg_file(req.graph_path)
                              : io::load_graph_file(req.graph_path);
    }
    const graph::LeanIngest& ingest = owns ? owned : *req.ingest;
    const graph::LeanGraph& g = ingest.graph;
    out.nodes = g.node_count();
    out.paths = g.path_count();
    out.steps = g.total_path_steps();
    out.components = ingest.component_count;
    log("loaded ", out.nodes, " nodes, ", out.paths, " paths, ", out.steps,
        " steps, ", out.components, " components");

    if (!req.save_graph_path.empty()) {
        io::write_pgg_file(ingest, req.save_graph_path);
        log("wrote graph cache ", req.save_graph_path);
        if (req.out_path.empty()) {
            out.convert_only = true;
            return out;
        }
    }

    if (req.partition) {
        partition::PartitionOptions popt;
        popt.schedule.backend = req.backend;
        popt.schedule.config = cfg;
        popt.schedule.workers = req.component_workers;
        popt.schedule.multilevel = req.multilevel;
        popt.schedule.multilevel_opt = req.ml;
        popt.schedule.executor = req.executor;
        popt.schedule.processes = req.processes;
        popt.schedule.worker_binary = req.worker_binary;
        popt.progress = req.component_progress;

        // An owned ingest gives up its labels (it dies with this call); a
        // shared one is copied from — the serve daemon's cache entry must
        // stay intact for the next job.
        partition::ComponentLabels labels;
        if (owns) {
            labels = partition::take_labels(owned);
        } else {
            labels.count = ingest.component_count;
            labels.node_component = ingest.node_component;
            labels.path_component = ingest.path_component;
        }

        out.partition =
            partition::partition_layout(g, std::move(labels), popt);
        out.partitioned = true;
        out.engine_name = req.backend;
        out.updates = out.partition.updates;
        out.skipped = out.partition.skipped;
        out.engine_seconds = out.partition.engine_seconds;
        out.layout = out.partition.stitched.layout;
        log(req.backend, ": ", out.partition.decomposition.count(),
            " components, ", out.partition.updates, " updates in ",
            out.partition.seconds, " s (engine time ",
            out.partition.engine_seconds, " s), canvas ",
            out.partition.stitched.width, " x ",
            out.partition.stitched.height);
    } else {
        auto engine = req.engine_factory ? req.engine_factory()
                                         : core::make_engine(req.backend);
        if (req.iteration_progress) {
            engine->set_progress_hook(req.iteration_progress);
        }
        out.engine_name = std::string(engine->name());
        if (req.multilevel) {
            const multilevel::LayoutPlan plan = multilevel::build_plan(
                cfg, req.ml,
                static_cast<double>(g.max_path_nuc_length()));
            log("multilevel plan: ", multilevel::describe(plan));
            multilevel::MultilevelResult ml =
                multilevel::run_plan(plan, g, *engine, cfg);
            std::ostringstream levels;
            for (std::size_t l = 0; l < ml.level_nodes.size(); ++l) {
                levels << (l ? " -> " : "") << ml.level_nodes[l];
            }
            log(out.engine_name, " (multilevel, ", levels.str(),
                " nodes): ", ml.updates, " updates in ", ml.engine_seconds,
                " s");
            out.level_nodes = std::move(ml.level_nodes);
            out.updates = ml.updates;
            out.skipped = ml.skipped;
            out.engine_seconds = ml.engine_seconds;
            out.layout = std::move(ml.layout);
        } else {
            // The multilevel path gets its layout stage from run_plan's
            // per-pass spans; only the flat run is timed here.
            telemetry::StageSpan span("layout", "cli");
            engine->init(g, cfg);
            core::LayoutResult r = engine->run();
            log(out.engine_name, ": ", r.updates, " updates in ", r.seconds,
                " s");
            out.updates = r.updates;
            out.skipped = r.skipped;
            out.engine_seconds = r.seconds;
            out.layout = std::move(r.layout);
        }
    }

    if (!req.out_path.empty() || !req.per_component_dir.empty() ||
        !req.svg_path.empty() || !req.ppm_path.empty()) {
        telemetry::StageSpan span("render", "cli");
        if (!req.out_path.empty()) {
            io::write_layout_file(out.layout, req.out_path);
            log("wrote ", req.out_path);
        }
        if (!req.per_component_dir.empty()) {
            std::filesystem::create_directories(req.per_component_dir);
            for (std::uint32_t c = 0; c < out.partition.decomposition.count();
                 ++c) {
                const std::string path = req.per_component_dir +
                                         "/component_" + std::to_string(c) +
                                         ".lay";
                io::write_layout_file(out.partition.component_results[c].layout,
                                      path);
            }
            log("wrote ", out.partition.decomposition.count(),
                " per-component layouts to ", req.per_component_dir);
        }
        if (!req.svg_path.empty()) {
            draw::write_svg_file(g, out.layout, req.svg_path);
            log("wrote ", req.svg_path);
        }
        if (!req.ppm_path.empty()) {
            draw::write_ppm_file(out.layout, req.ppm_path);
            log("wrote ", req.ppm_path);
        }
    }

    if (req.compute_stress) {
        telemetry::StageSpan span("metrics", "cli");
        out.stress = metrics::sampled_path_stress(g, out.layout);
        out.stress_computed = true;
    }
    return out;
}

}  // namespace pgl::driver

#pragma once
// The layout driver — one facade over the full pipeline that pgl_layout,
// the serve daemon's job runner, and tests all call instead of each
// wiring load -> decompose -> execute -> publish by hand:
//
//   RunRequest req;            // graph source + config + outputs + hooks
//   req.graph_path = "g.gfa";
//   req.out_path = "g.lay";
//   driver::RunOutcome out = driver::run_layout(req);
//
// The driver owns orchestration only: loading (GFA or .pgg, or adopting a
// caller-cached LeanIngest), the optional graph-cache write, choosing the
// flat / multilevel / partitioned execution path (partition runs through
// the pluggable executor layer — in-process threads or child worker
// processes), atomic .lay/.svg/.ppm publication, the stress metric, and
// the stage spans --timing/--trace read. Presentation stays with the
// caller: the driver narrates through RunRequest::log (one line per
// event, exactly the lines the CLI historically printed) and never
// touches std::cout/cerr itself, so the daemon runs the same code path
// silently.
//
// `pgl_layout --component-worker` also routes through run_layout: a
// request with component_worker set dispatches to the worker entry point
// (partition/executor.hpp) and returns its exit code, keeping the tool's
// main() at "parse flags, call run_layout" for every mode.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/gfa_stream.hpp"
#include "metrics/path_stress.hpp"
#include "multilevel/plan.hpp"
#include "partition/partition.hpp"

namespace pgl::driver {

/// Everything a layout run needs. Exactly one graph source must be set:
/// `graph_path` (loaded by the driver) or `ingest` (adopted as-is — the
/// serve daemon's fingerprint-keyed graph cache hands its shared entry in
/// here; the driver copies the component labels it needs and never
/// mutates the ingest).
struct RunRequest {
    // --- graph source -----------------------------------------------------
    std::string graph_path;  ///< .gfa or .pgg, detected by extension
    bool force_pgg = false;  ///< read graph_path as .pgg regardless
    std::shared_ptr<const graph::LeanIngest> ingest;  ///< pre-loaded graph

    // --- execution --------------------------------------------------------
    std::string backend = "cpu-soa";  ///< EngineRegistry name
    core::LayoutConfig config;
    /// Optional engine override for the flat path (how `--gpu=a100`
    /// constructs a non-registry machine spec). Ignored with partition.
    std::function<std::unique_ptr<core::LayoutEngine>()> engine_factory;

    bool partition = false;
    std::uint32_t component_workers = 1;  ///< "thread" executor concurrency
    std::string executor = "thread";      ///< ExecutorRegistry name
    std::uint32_t processes = 1;          ///< "process" executor concurrency
    std::string worker_binary;            ///< "process" executor override

    bool multilevel = false;
    multilevel::MultilevelOptions ml;

    // --- outputs ----------------------------------------------------------
    std::string out_path;         ///< final .lay (atomic); may be empty when
                                  ///< the caller publishes the layout itself
    std::string save_graph_path;  ///< write the .pgg cache after loading;
                                  ///< with no out_path: convert and stop
    std::string per_component_dir;  ///< dump component_<k>.lay per component
    std::string svg_path;
    std::string ppm_path;
    bool compute_stress = false;  ///< fill RunOutcome::stress

    // --- observers --------------------------------------------------------
    core::ProgressHook iteration_progress;          ///< flat/multilevel runs
    partition::ComponentHook component_progress;    ///< partitioned runs
    /// One line per pipeline event ("loaded ...", "wrote ...", run
    /// summaries), newline-free. Unset = silent.
    std::function<void(const std::string&)> log;

    // --- component-worker mode (pgl_layout --component-worker) ------------
    bool component_worker = false;
    std::string worker_spec;  ///< encode_worker_spec payload
    int status_fd = -1;       ///< status-frame pipe; -1 = no reporting
};

struct RunOutcome {
    /// component_worker mode: the process exit code; every other field is
    /// untouched (the worker reports through its own files/pipe).
    int worker_exit_code = 0;

    /// save-graph-only request: the cache was written, no layout was run.
    bool convert_only = false;

    core::Layout layout;  ///< the published layout (stitched canvas when
                          ///< partitioned)

    // Graph shape, for callers that report it.
    std::uint64_t nodes = 0;
    std::uint64_t paths = 0;
    std::uint64_t steps = 0;
    std::uint32_t components = 0;

    bool partitioned = false;
    partition::PartitionResult partition;  ///< partitioned runs only

    std::vector<std::uint32_t> level_nodes;  ///< multilevel runs only

    std::string engine_name;  ///< resolved engine (flat/multilevel runs)
    std::uint64_t updates = 0;
    std::uint64_t skipped = 0;
    double engine_seconds = 0.0;

    bool stress_computed = false;
    metrics::StressResult stress;
};

/// Runs the whole pipeline described by `req`. Throws (std::runtime_error
/// / std::invalid_argument) on load, validation, or execution failure —
/// after the partition executors have drained in-flight components, so no
/// partial output file is ever published.
RunOutcome run_layout(const RunRequest& req);

}  // namespace pgl::driver

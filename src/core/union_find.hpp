#pragma once
// Union-find (disjoint-set forest) with path halving and union by size,
// plus the dense-relabeling step every consumer wants afterwards. Shared by
// the partition subsystem's component labeler and the streaming GFA reader,
// which builds the partition-ready adjacency while parsing — both must
// number components identically (by smallest member id, in scan order) for
// the partitioned layout to be byte-reproducible across ingestion paths.
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

namespace pgl::core {

class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    std::uint32_t find(std::uint32_t x) noexcept {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];  // path halving
            x = parent_[x];
        }
        return x;
    }

    void unite(std::uint32_t a, std::uint32_t b) noexcept {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (size_[a] < size_[b]) std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

    std::uint32_t element_count() const noexcept {
        return static_cast<std::uint32_t>(parent_.size());
    }

private:
    std::vector<std::uint32_t> parent_;
    std::vector<std::uint32_t> size_;
};

/// Dense component labels: `label[v]` in [0, count), numbered by the
/// smallest member id of each set (scan order), so the numbering is a pure
/// function of the partition — independent of union order.
struct DenseLabels {
    std::uint32_t count = 0;
    std::vector<std::uint32_t> label;
};

inline DenseLabels dense_labels(UnionFind& uf) {
    const std::uint32_t n = uf.element_count();
    constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
    DenseLabels out;
    out.label.assign(n, kUnset);
    std::vector<std::uint32_t> root_to_label(n, kUnset);
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t root = uf.find(v);
        if (root_to_label[root] == kUnset) root_to_label[root] = out.count++;
        out.label[v] = root_to_label[root];
    }
    return out;
}

}  // namespace pgl::core

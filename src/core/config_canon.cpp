#include "core/config_canon.hpp"

#include <charconv>
#include <stdexcept>
#include <system_error>

namespace pgl::core {

namespace {

template <typename T>
T parse_number(std::string_view name, std::string_view value) {
    T v{};
    const auto [ptr, ec] = std::from_chars(value.data(),
                                           value.data() + value.size(), v);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
        throw std::invalid_argument("canonical config field " +
                                    std::string(name) +
                                    " has a malformed value: '" +
                                    std::string(value) + "'");
    }
    return v;
}

}  // namespace

std::string canonical_double(double v) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc()) return "nan";  // to_chars cannot fail on binary64
    return std::string(buf, ptr);
}

std::string canonical_config(const LayoutConfig& cfg) {
    std::string s;
    s.reserve(256);
    const auto field = [&](const char* name, const std::string& value) {
        s += name;
        s += '=';
        s += value;
        s += ';';
    };
    // Alphabetical by field name; every output-affecting field, no others.
    field("cooling_start", canonical_double(cfg.cooling_start));
    field("eps", canonical_double(cfg.eps));
    field("eta_max", canonical_double(cfg.eta_max));
    field("init_jitter", canonical_double(cfg.init_jitter));
    field("iter_max", std::to_string(cfg.iter_max));
    field("kernel", cfg.kernel);
    field("schedule_iter_max", std::to_string(cfg.schedule_iter_max));
    field("seed", std::to_string(cfg.seed));
    field("steps_per_iter_factor", canonical_double(cfg.steps_per_iter_factor));
    field("threads", std::to_string(cfg.threads));
    field("zipf_space_max", std::to_string(cfg.zipf_space_max));
    field("zipf_theta", canonical_double(cfg.zipf_theta));
    return s;
}

bool apply_canonical_field(LayoutConfig& cfg, std::string_view name,
                           std::string_view value) {
    if (name == "cooling_start") {
        cfg.cooling_start = parse_number<double>(name, value);
    } else if (name == "eps") {
        cfg.eps = parse_number<double>(name, value);
    } else if (name == "eta_max") {
        cfg.eta_max = parse_number<double>(name, value);
    } else if (name == "init_jitter") {
        cfg.init_jitter = parse_number<double>(name, value);
    } else if (name == "iter_max") {
        cfg.iter_max = parse_number<std::uint32_t>(name, value);
    } else if (name == "kernel") {
        cfg.kernel = std::string(value);
    } else if (name == "schedule_iter_max") {
        cfg.schedule_iter_max = parse_number<std::uint32_t>(name, value);
    } else if (name == "seed") {
        cfg.seed = parse_number<std::uint64_t>(name, value);
    } else if (name == "steps_per_iter_factor") {
        cfg.steps_per_iter_factor = parse_number<double>(name, value);
    } else if (name == "threads") {
        cfg.threads = parse_number<std::uint32_t>(name, value);
    } else if (name == "zipf_space_max") {
        cfg.zipf_space_max = parse_number<std::uint64_t>(name, value);
    } else if (name == "zipf_theta") {
        cfg.zipf_theta = parse_number<double>(name, value);
    } else {
        return false;
    }
    return true;
}

LayoutConfig parse_canonical_config(std::string_view spec) {
    LayoutConfig cfg;
    while (!spec.empty()) {
        const std::size_t semi = spec.find(';');
        if (semi == std::string_view::npos) {
            throw std::invalid_argument(
                "canonical config is not ';'-terminated: '" +
                std::string(spec) + "'");
        }
        const std::string_view field = spec.substr(0, semi);
        spec.remove_prefix(semi + 1);
        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) {
            throw std::invalid_argument("canonical config field without '=': '" +
                                        std::string(field) + "'");
        }
        const std::string_view name = field.substr(0, eq);
        if (!apply_canonical_field(cfg, name, field.substr(eq + 1))) {
            throw std::invalid_argument("unknown canonical config field: " +
                                        std::string(name));
        }
    }
    return cfg;
}

}  // namespace pgl::core

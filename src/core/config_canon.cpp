#include "core/config_canon.hpp"

#include <charconv>
#include <system_error>

namespace pgl::core {

std::string canonical_double(double v) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc()) return "nan";  // to_chars cannot fail on binary64
    return std::string(buf, ptr);
}

std::string canonical_config(const LayoutConfig& cfg) {
    std::string s;
    s.reserve(256);
    const auto field = [&](const char* name, const std::string& value) {
        s += name;
        s += '=';
        s += value;
        s += ';';
    };
    // Alphabetical by field name; every output-affecting field, no others.
    field("cooling_start", canonical_double(cfg.cooling_start));
    field("eps", canonical_double(cfg.eps));
    field("eta_max", canonical_double(cfg.eta_max));
    field("init_jitter", canonical_double(cfg.init_jitter));
    field("iter_max", std::to_string(cfg.iter_max));
    field("kernel", cfg.kernel);
    field("schedule_iter_max", std::to_string(cfg.schedule_iter_max));
    field("seed", std::to_string(cfg.seed));
    field("steps_per_iter_factor", canonical_double(cfg.steps_per_iter_factor));
    field("threads", std::to_string(cfg.threads));
    field("zipf_space_max", std::to_string(cfg.zipf_space_max));
    field("zipf_theta", canonical_double(cfg.zipf_theta));
    return s;
}

}  // namespace pgl::core

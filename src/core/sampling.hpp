#pragma once
// Node-pair sampling for PG-SGD (Alg. 1 lines 5-13): pick a path with
// probability proportional to its step count, then a pair of steps on it —
// uniformly in the exploration phase, Zipf-distributed hop distance in the
// cooling phase — then a random endpoint of each node's segment.
//
// This sampler is shared by every backend (CPU engine, GPU simulator,
// tensor implementation, memory-characterization replayer) so that all of
// them draw terms from the identical distribution.
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/layout.hpp"
#include "graph/lean_graph.hpp"
#include "rng/alias_table.hpp"
#include "rng/zipf.hpp"

namespace pgl::core {

struct TermBatch;  // core/term_batch.hpp — the shared batched term buffer

/// One sampled stress term: two steps on one path plus chosen endpoints and
/// the reference (path-nucleotide) distance between the chosen points.
struct TermSample {
    std::uint32_t path;
    std::uint32_t step_i, step_j;
    std::uint32_t node_i, node_j;
    End end_i, end_j;
    std::uint64_t pos_i, pos_j;  ///< path-space positions of the endpoints
    double d_ref;
    bool valid;         ///< false when the term degenerates (d_ref == 0 etc.)
    bool took_cooling;  ///< which branch of Alg. 1 line 7 was taken
};

/// Path-space position of the chosen endpoint of a step: a forward step's
/// segment start sits at the step offset and its end at offset + length;
/// a reverse-complement step swaps the two.
inline std::uint64_t endpoint_path_position(std::uint64_t step_pos,
                                            std::uint32_t node_len,
                                            bool step_reverse, End e) noexcept {
    const bool at_end = (e == End::kEnd);
    return (at_end != step_reverse) ? step_pos + node_len : step_pos;
}

class PairSampler {
public:
    PairSampler(const graph::LeanGraph& g, const LayoutConfig& cfg) : g_(&g), cfg_(cfg) {
        std::vector<double> weights(g.path_count());
        for (std::uint32_t p = 0; p < g.path_count(); ++p) {
            weights[p] = static_cast<double>(g.path_step_count(p));
        }
        path_alias_.build(weights);
        zipf_.reserve(g.path_count());
        for (std::uint32_t p = 0; p < g.path_count(); ++p) {
            std::uint64_t space = g.path_step_count(p) > 1 ? g.path_step_count(p) - 1 : 1;
            if (cfg.zipf_space_max > 0 && space > cfg.zipf_space_max) {
                space = cfg.zipf_space_max;
            }
            zipf_.emplace_back(space, cfg.zipf_theta);
        }
    }

    const graph::LeanGraph& graph() const noexcept { return *g_; }

    /// Draws one term. `cooling_iter` is the Alg. 1 line 6 predicate for the
    /// current iteration (iter >= N_iters/2); the per-step coin flip is
    /// drawn here. `Rng` must provide next(), next_double(), next_bounded(),
    /// flip_coin().
    template <typename Rng>
    TermSample sample(bool cooling_iter, Rng& rng) const {
        const bool cooling = cooling_iter || rng.flip_coin();
        return sample_branch(cooling, rng);
    }

    /// Draws one term with the cooling/non-cooling branch already decided —
    /// the warp-merging kernel decides it once per warp (Sec. V-B3) instead
    /// of per thread.
    template <typename Rng>
    TermSample sample_branch(bool cooling, Rng& rng) const {
        TermSample t{};
        t.took_cooling = cooling;
        t.path = path_alias_(rng);
        const std::uint32_t n_steps = g_->path_step_count(t.path);
        if (n_steps < 2) {
            t.valid = false;
            return t;
        }

        t.step_i = static_cast<std::uint32_t>(rng.next_bounded(n_steps));
        if (cooling) {
            // Zipf-distributed hop in a random direction, reflected at the
            // path ends so every step can reach a partner.
            const std::uint64_t hop = zipf_[t.path](rng);
            std::int64_t j = static_cast<std::int64_t>(t.step_i);
            j += rng.flip_coin() ? static_cast<std::int64_t>(hop)
                                 : -static_cast<std::int64_t>(hop);
            if (j < 0) j = -j;
            const std::int64_t last = static_cast<std::int64_t>(n_steps) - 1;
            if (j > last) j = 2 * last - j;
            if (j < 0) j = 0;  // extremely short path + long hop
            t.step_j = static_cast<std::uint32_t>(j);
        } else {
            t.step_j = static_cast<std::uint32_t>(rng.next_bounded(n_steps));
        }
        if (t.step_j == t.step_i) {
            t.valid = false;
            return t;
        }

        t.node_i = g_->step_node(t.path, t.step_i);
        t.node_j = g_->step_node(t.path, t.step_j);
        t.end_i = rng.flip_coin() ? End::kStart : End::kEnd;
        t.end_j = rng.flip_coin() ? End::kStart : End::kEnd;

        t.pos_i = endpoint_path_position(
            g_->step_position(t.path, t.step_i), g_->node_length(t.node_i),
            g_->step_is_reverse(t.path, t.step_i), t.end_i);
        t.pos_j = endpoint_path_position(
            g_->step_position(t.path, t.step_j), g_->node_length(t.node_j),
            g_->step_is_reverse(t.path, t.step_j), t.end_j);
        const std::uint64_t d = t.pos_i > t.pos_j ? t.pos_i - t.pos_j
                                                  : t.pos_j - t.pos_i;
        if (d == 0) {
            t.valid = false;
            return t;
        }
        t.d_ref = static_cast<double>(d);
        t.valid = true;
        return t;
    }

    /// Draws up to `n` terms into `out` (appending; invalid terms keep
    /// their slot with valid == 0) and returns how many were degenerate.
    /// When `with_nudge` is set, one extra uniform draw per *valid* term
    /// produces the coincident-point nudge — consuming the PRNG stream
    /// exactly as the scalar CPU update loop does, so a batched run with
    /// the same seed replays the identical term-and-nudge sequence.
    /// Defined in core/term_batch.hpp.
    template <typename Rng>
    std::uint64_t fill_batch(bool cooling_iter, Rng& rng, std::size_t n,
                             TermBatch& out, bool with_nudge = true) const;

    /// Staged, prefetching fill used by the pipelined engine's producers.
    /// Per block of 64 terms: stage 1 performs every PRNG draw (whose
    /// sequence never depends on the cold step lookups) and prefetches the
    /// packed 16-byte step records; stage 2 reads the now-resident records
    /// and finalizes d_ref/validity, drawing the per-valid-term nudge.
    /// Draws the identical term distribution as sample() — same alias/Zipf/
    /// coin logic per term — but consumes the PRNG in blocked order, so the
    /// stream differs from fill_batch's while remaining fully deterministic
    /// for a fixed (seed, stream). Writes only the columns the update
    /// kernel reads (node/end/d_ref/nudge/valid); the replay columns stay
    /// empty. Defined in core/term_batch.hpp.
    template <typename Rng>
    std::uint64_t fill_batch_staged(bool cooling_iter, Rng& rng, std::size_t n,
                                    TermBatch& out) const;

private:
    const graph::LeanGraph* g_;
    LayoutConfig cfg_;
    rng::AliasTable path_alias_;
    std::vector<rng::ZipfSampler> zipf_;
};

}  // namespace pgl::core

#pragma once
// The one string-keyed factory-registry implementation behind
// EngineRegistry and KernelRegistry (and any future pluggable layer):
// ordered add-or-replace registration, linear lookup (registries hold a
// handful of entries), sorted name listing. Concrete registries inherit
// and add their process-wide instance() plus built-in registrations.
#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pgl::core {

template <typename Product>
class FactoryRegistry {
public:
    using Factory = std::function<std::unique_ptr<Product>()>;

    /// Registers (or replaces) a factory under `name`.
    void add(std::string name, Factory factory) {
        for (auto& [existing, f] : factories_) {
            if (existing == name) {
                f = std::move(factory);
                return;
            }
        }
        factories_.emplace_back(std::move(name), std::move(factory));
    }

    bool contains(const std::string& name) const {
        return std::any_of(factories_.begin(), factories_.end(),
                           [&](const auto& e) { return e.first == name; });
    }

    /// Creates a fresh product, or nullptr for an unknown name.
    std::unique_ptr<Product> create(const std::string& name) const {
        for (const auto& [key, factory] : factories_) {
            if (key == name) return factory();
        }
        return nullptr;
    }

    /// All registered names, sorted.
    std::vector<std::string> names() const {
        std::vector<std::string> out;
        out.reserve(factories_.size());
        for (const auto& [key, factory] : factories_) out.push_back(key);
        std::sort(out.begin(), out.end());
        return out;
    }

protected:
    FactoryRegistry() = default;

private:
    std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace pgl::core

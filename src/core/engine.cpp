#include "core/engine.hpp"

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/cpu_engine.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "telemetry/telemetry.hpp"
#include "tensor/torch_layout.hpp"

namespace pgl::core {

LayoutResult LayoutEngine::run(std::uint32_t iterations) {
    if (graph_ == nullptr) {
        throw std::logic_error("LayoutEngine::run() called before init()");
    }
    LayoutConfig cfg = cfg_;
    if (iterations != 0) {
        // A truncated run of the *same* annealing schedule: pin the
        // schedule to the configured length before shortening the run,
        // otherwise the eta decay would compress into the override.
        if (cfg.schedule_iter_max == 0) cfg.schedule_iter_max = cfg_.schedule_length();
        cfg.iter_max = iterations;
    }

    const std::string backend{name()};
    telemetry::StageSpan run_span("engine.run", backend);

#ifndef PGL_TELEMETRY_DISABLED
    // Interpose the progress-hook path: every iteration boundary any
    // backend reports feeds the per-iteration duration histogram, the
    // iteration counter, and (when tracing) an iteration trace event —
    // then forwards to whatever hook the caller installed. The original
    // hook is restored on every exit path.
    struct HookGuard {
        ProgressHook& slot;
        ProgressHook saved;
        ~HookGuard() { slot = std::move(saved); }
    } guard{hook_, hook_};
    {
        auto iter_hist =
            telemetry::Registry::instance().histogram("engine.iteration_ns");
        auto iter_count =
            telemetry::Registry::instance().counter("engine.iterations");
        // Iteration boundaries may be reported from worker threads (the
        // Hogwild engines), so the previous-boundary timestamp is atomic.
        auto last_ns = std::make_shared<std::atomic<std::uint64_t>>(
            telemetry::now_ns());
        ProgressHook user = guard.saved;
        hook_ = [iter_hist, iter_count, last_ns, user,
                 backend](const IterationStats& s) mutable {
            const std::uint64_t now = telemetry::now_ns();
            const std::uint64_t prev =
                last_ns->exchange(now, std::memory_order_relaxed);
            if (now > prev) {
                iter_hist.record(now - prev);
                telemetry::Tracer::instance().record_span(
                    "iteration " + std::to_string(s.iteration), backend, prev,
                    now - prev);
            }
            iter_count.add(1);
            if (user) user(s);
        };
    }
#endif

    LayoutResult result = do_run(cfg);

    auto& reg = telemetry::Registry::instance();
    reg.counter("engine.runs").add(1);
    reg.counter("engine.updates").add(result.updates);
    reg.counter("engine.skipped").add(result.skipped);
    return result;
}

EngineRegistry& EngineRegistry::instance() {
    static EngineRegistry registry = [] {
        EngineRegistry r;
        r.add("cpu-soa", [] { return make_cpu_engine(CoordStore::kSoA, false); });
        r.add("cpu-aos", [] { return make_cpu_engine(CoordStore::kAoS, false); });
        r.add("cpu-batched",
              [] { return make_cpu_engine(CoordStore::kSoA, true); });
        r.add("cpu-pipelined", [] { return make_pipelined_engine(); });
        r.add("gpusim-base", [] {
            return gpusim::make_gpusim_engine(gpusim::KernelConfig::base(),
                                              gpusim::rtx_a6000());
        });
        r.add("gpusim-optimized", [] {
            return gpusim::make_gpusim_engine(gpusim::KernelConfig::optimized(),
                                              gpusim::rtx_a6000());
        });
        r.add("torch", [] { return tensor::make_torch_engine(); });
        return r;
    }();
    return registry;
}

std::unique_ptr<LayoutEngine> make_engine(const std::string& name) {
    auto engine = EngineRegistry::instance().create(name);
    if (!engine) {
        std::ostringstream msg;
        msg << "unknown layout engine \"" << name << "\"; available:";
        for (const auto& n : EngineRegistry::instance().names()) msg << " " << n;
        throw std::invalid_argument(msg.str());
    }
    return engine;
}

}  // namespace pgl::core

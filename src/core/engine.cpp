#include "core/engine.hpp"

#include <sstream>
#include <stdexcept>

#include "core/cpu_engine.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "tensor/torch_layout.hpp"

namespace pgl::core {

LayoutResult LayoutEngine::run(std::uint32_t iterations) {
    if (graph_ == nullptr) {
        throw std::logic_error("LayoutEngine::run() called before init()");
    }
    LayoutConfig cfg = cfg_;
    if (iterations != 0) {
        // A truncated run of the *same* annealing schedule: pin the
        // schedule to the configured length before shortening the run,
        // otherwise the eta decay would compress into the override.
        if (cfg.schedule_iter_max == 0) cfg.schedule_iter_max = cfg_.schedule_length();
        cfg.iter_max = iterations;
    }
    return do_run(cfg);
}

EngineRegistry& EngineRegistry::instance() {
    static EngineRegistry registry = [] {
        EngineRegistry r;
        r.add("cpu-soa", [] { return make_cpu_engine(CoordStore::kSoA, false); });
        r.add("cpu-aos", [] { return make_cpu_engine(CoordStore::kAoS, false); });
        r.add("cpu-batched",
              [] { return make_cpu_engine(CoordStore::kSoA, true); });
        r.add("cpu-pipelined", [] { return make_pipelined_engine(); });
        r.add("gpusim-base", [] {
            return gpusim::make_gpusim_engine(gpusim::KernelConfig::base(),
                                              gpusim::rtx_a6000());
        });
        r.add("gpusim-optimized", [] {
            return gpusim::make_gpusim_engine(gpusim::KernelConfig::optimized(),
                                              gpusim::rtx_a6000());
        });
        r.add("torch", [] { return tensor::make_torch_engine(); });
        return r;
    }();
    return registry;
}

std::unique_ptr<LayoutEngine> make_engine(const std::string& name) {
    auto engine = EngineRegistry::instance().create(name);
    if (!engine) {
        std::ostringstream msg;
        msg << "unknown layout engine \"" << name << "\"; available:";
        for (const auto& n : EngineRegistry::instance().names()) msg << " " << n;
        throw std::invalid_argument(msg.str());
    }
    return engine;
}

}  // namespace pgl::core

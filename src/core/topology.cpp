#include "core/topology.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/config.hpp"
#include "core/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace pgl::core {

namespace {

std::uint32_t parse_cpu_number(std::string_view text) {
    std::uint32_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        throw std::invalid_argument("malformed cpu list entry: '" +
                                    std::string(text) + "'");
    }
    return v;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                          s.front() == '\n' || s.front() == '\r')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\n' || s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

/// First line of `path` into `line`; false when the file is unreadable (a
/// distinct signal from an empty file — a node listed in `online` whose
/// cpulist cannot be read means the sysfs view is broken, not empty).
bool read_line(const std::string& path, std::string& line) {
    std::ifstream in(path);
    if (!in) return false;
    std::getline(in, line);
    return true;
}

Topology fallback_topology(std::vector<std::uint32_t> allowed) {
    Topology t;
    if (allowed.empty()) allowed.push_back(0);
    t.nodes.push_back(NumaNodeInfo{0, allowed});
    t.allowed = std::move(allowed);
    return t;
}

}  // namespace

std::vector<std::uint32_t> parse_cpu_list(std::string_view text) {
    std::vector<std::uint32_t> cpus;
    text = trim(text);
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        std::string_view item = text.substr(0, comma);
        text.remove_prefix(comma == std::string_view::npos ? text.size()
                                                           : comma + 1);
        item = trim(item);
        if (item.empty()) continue;
        const std::size_t dash = item.find('-');
        if (dash == std::string_view::npos) {
            cpus.push_back(parse_cpu_number(item));
        } else {
            const std::uint32_t lo = parse_cpu_number(item.substr(0, dash));
            const std::uint32_t hi = parse_cpu_number(item.substr(dash + 1));
            if (hi < lo) {
                throw std::invalid_argument("reversed cpu range: '" +
                                            std::string(item) + "'");
            }
            for (std::uint32_t c = lo; c <= hi; ++c) cpus.push_back(c);
        }
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

std::vector<std::uint32_t> allowed_cpus_self() {
    std::vector<std::uint32_t> cpus;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof set, &set) == 0) {
        for (std::uint32_t c = 0; c < CPU_SETSIZE; ++c) {
            if (CPU_ISSET(c, &set)) cpus.push_back(c);
        }
    }
#endif
    if (cpus.empty()) {
        const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
        for (std::uint32_t c = 0; c < hc; ++c) cpus.push_back(c);
    }
    return cpus;
}

Topology discover_topology_from(const std::string& node_dir,
                                std::vector<std::uint32_t> allowed) {
    std::sort(allowed.begin(), allowed.end());
    allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());

    std::vector<std::uint32_t> node_ids;
    std::string line;
    if (!read_line(node_dir + "/online", line)) {
        return fallback_topology(std::move(allowed));
    }
    try {
        node_ids = parse_cpu_list(line);
    } catch (const std::invalid_argument&) {
        return fallback_topology(std::move(allowed));
    }
    if (node_ids.empty()) return fallback_topology(std::move(allowed));

    Topology t;
    for (const std::uint32_t id : node_ids) {
        if (!read_line(node_dir + "/node" + std::to_string(id) + "/cpulist",
                       line)) {
            return fallback_topology(std::move(allowed));
        }
        std::vector<std::uint32_t> cpus;
        try {
            cpus = parse_cpu_list(line);
        } catch (const std::invalid_argument&) {
            return fallback_topology(std::move(allowed));
        }
        // Keep only the CPUs this process may run on; a node fully outside
        // the cpuset does not exist for placement purposes.
        std::vector<std::uint32_t> mine;
        std::set_intersection(cpus.begin(), cpus.end(), allowed.begin(),
                              allowed.end(), std::back_inserter(mine));
        if (!mine.empty()) t.nodes.push_back(NumaNodeInfo{id, std::move(mine)});
    }
    if (t.nodes.empty()) return fallback_topology(std::move(allowed));
    for (const auto& n : t.nodes) {
        t.allowed.insert(t.allowed.end(), n.cpus.begin(), n.cpus.end());
    }
    std::sort(t.allowed.begin(), t.allowed.end());
    return t;
}

const Topology& discover_topology() {
    static const Topology topo = [] {
        Topology t = discover_topology_from("/sys/devices/system/node",
                                            allowed_cpus_self());
        auto& reg = telemetry::Registry::instance();
        reg.counter("topology.nodes").add(t.node_count());
        reg.counter("topology.cpus").add(t.allowed_cpu_count());
        return t;
    }();
    return topo;
}

NumaPolicy parse_numa_policy(std::string_view text) {
    NumaPolicy p;
    if (text == "off") {
        p.mode = NumaMode::kOff;
    } else if (text == "auto") {
        p.mode = NumaMode::kAuto;
    } else if (text == "interleave") {
        p.mode = NumaMode::kInterleave;
    } else if (text.rfind("node:", 0) == 0) {
        p.mode = NumaMode::kNode;
        p.node = parse_cpu_number(text.substr(5));
    } else {
        throw std::invalid_argument(
            "invalid numa policy '" + std::string(text) +
            "' (expected auto, interleave, node:K, or off)");
    }
    return p;
}

std::string to_string(const NumaPolicy& p) {
    switch (p.mode) {
        case NumaMode::kOff:
            return "off";
        case NumaMode::kAuto:
            return "auto";
        case NumaMode::kInterleave:
            return "interleave";
        case NumaMode::kNode:
            return "node:" + std::to_string(p.node);
    }
    return "off";
}

std::string WorkerPlacement::describe() const {
    std::ostringstream s;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        s << (i ? "," : "") << slots[i].cpu << '@' << slots[i].node;
    }
    return s.str();
}

WorkerPlacement plan_worker_placement(const Topology& topo,
                                      const NumaPolicy& policy,
                                      std::uint32_t n_workers) {
    WorkerPlacement plan;
    const std::uint32_t n_nodes = topo.node_count();
    if (n_workers == 0 || n_nodes == 0) return plan;
    plan.slots.reserve(n_workers);

    const auto slot_on = [&](std::uint32_t node, std::uint32_t rank) {
        const auto& cpus = topo.nodes[node].cpus;
        return WorkerSlot{cpus[rank % cpus.size()], node};
    };

    switch (policy.mode) {
        case NumaMode::kNode: {
            const std::uint32_t k = policy.node % n_nodes;
            for (std::uint32_t w = 0; w < n_workers; ++w) {
                plan.slots.push_back(slot_on(k, w));
            }
            break;
        }
        case NumaMode::kInterleave: {
            for (std::uint32_t w = 0; w < n_workers; ++w) {
                plan.slots.push_back(slot_on(w % n_nodes, w / n_nodes));
            }
            break;
        }
        case NumaMode::kOff:
        case NumaMode::kAuto: {
            // Contiguous proportional blocks, remainder to the first nodes —
            // the same split rule as shard_share, so worker block k and
            // shard block k line up.
            std::uint32_t w = 0;
            for (std::uint32_t k = 0; k < n_nodes; ++k) {
                const std::uint64_t block = shard_share(n_workers, n_nodes, k);
                for (std::uint64_t r = 0; r < block; ++r, ++w) {
                    plan.slots.push_back(
                        slot_on(k, static_cast<std::uint32_t>(r)));
                }
            }
            break;
        }
    }
    return plan;
}

std::string PlacementContext::key() const {
    std::string s = pin ? "pin:" : "nopin:";
    s += to_string(policy);
    s += ':';
    s += plan.describe();
    return s;
}

PlacementContext resolve_placement(const LayoutConfig& cfg,
                                   std::uint32_t n_workers) {
    PlacementContext ctx;
    ctx.pin = cfg.pin;
    ctx.policy = parse_numa_policy(cfg.numa);
    if (!ctx.active()) return ctx;

    ctx.topo = &discover_topology();
    const std::uint32_t n_nodes = std::max(1u, ctx.topo->node_count());
    if (ctx.policy.mode == NumaMode::kNode) ctx.policy.node %= n_nodes;
    if (ctx.pin && n_workers > 0) {
        ctx.plan = plan_worker_placement(*ctx.topo, ctx.policy, n_workers);
    }
    if (ctx.policy.active()) {
        if (ctx.policy.mode == NumaMode::kNode) {
            ctx.mem_nodes.push_back(ctx.policy.node);
        } else if (ctx.policy.mode == NumaMode::kAuto && !ctx.plan.empty()) {
            // Rotate pages over exactly the nodes hosting workers.
            for (const WorkerSlot& s : ctx.plan.slots) {
                ctx.mem_nodes.push_back(s.node);
            }
            std::sort(ctx.mem_nodes.begin(), ctx.mem_nodes.end());
            ctx.mem_nodes.erase(
                std::unique(ctx.mem_nodes.begin(), ctx.mem_nodes.end()),
                ctx.mem_nodes.end());
        } else {
            for (std::uint32_t k = 0; k < n_nodes; ++k) {
                ctx.mem_nodes.push_back(k);
            }
        }
    }
    return ctx;
}

}  // namespace pgl::core

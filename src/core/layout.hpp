#pragma once
// Layout state for PG-SGD. Each node is drawn as a line segment with a
// start and an end visualization point (paper Sec. II-C); the layout is the
// collection of those 2n points.
//
// Two storage policies implement the paper's data-layout ablation:
//   * LayoutSoA — the "original" ODGI organization: X and Y coordinate
//     arrays separate from the node-length array (Fig. 9a). Updating one
//     node touches three different arrays.
//   * LayoutAoS — the cache-friendly data layout (CDL, Fig. 9b): one packed
//     record {len, sx, sy, ex, ey} per node, one memory access per node.
//
// Both policies expose relaxed-atomic accessors so the multithreaded
// Hogwild! engine performs the same intentionally-unsynchronized updates as
// odgi-layout without undefined behaviour (std::atomic_ref, relaxed order).
#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/lean_graph.hpp"

namespace pgl::core {

/// Endpoint selector for a node's line segment.
enum class End : std::uint8_t { kStart = 0, kEnd = 1 };

/// A plain, storage-agnostic snapshot of a layout (used by metrics, IO and
/// rendering). Index i holds the segment of node i.
struct Layout {
    std::vector<float> start_x, start_y, end_x, end_y;

    std::size_t size() const noexcept { return start_x.size(); }
    void resize(std::size_t n) {
        start_x.resize(n);
        start_y.resize(n);
        end_x.resize(n);
        end_y.resize(n);
    }
};

/// Initializes a layout the way odgi-layout does: nodes are unrolled along
/// one axis by cumulative nucleotide offset (so the initial picture is the
/// linear genome), with small uniform jitter on the other axis to break the
/// 1-D symmetry of the gradient.
template <typename Rng>
Layout make_linear_initial_layout(const graph::LeanGraph& g, Rng& rng,
                                  double jitter_scale = 1.0) {
    Layout l;
    l.resize(g.node_count());
    double x = 0.0;
    double mean_len = 0.0;
    for (std::uint32_t i = 0; i < g.node_count(); ++i) mean_len += g.node_length(i);
    mean_len = g.node_count() ? mean_len / g.node_count() : 1.0;
    const double jitter = jitter_scale * mean_len;
    for (std::uint32_t i = 0; i < g.node_count(); ++i) {
        l.start_x[i] = static_cast<float>(x);
        x += g.node_length(i);
        l.end_x[i] = static_cast<float>(x);
        l.start_y[i] = static_cast<float>((rng.next_double() - 0.5) * jitter);
        l.end_y[i] = static_cast<float>((rng.next_double() - 0.5) * jitter);
    }
    return l;
}

/// Struct-of-arrays coordinate store (original ODGI organization).
/// X layout matches the paper: [sx0, ex0, sx1, ex1, ...], same for Y.
class LayoutSoA {
public:
    explicit LayoutSoA(const Layout& init) { load(init); }

    void load(const Layout& init) {
        const std::size_t n = init.size();
        xs_.resize(2 * n);
        ys_.resize(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
            xs_[2 * i] = init.start_x[i];
            xs_[2 * i + 1] = init.end_x[i];
            ys_[2 * i] = init.start_y[i];
            ys_[2 * i + 1] = init.end_y[i];
        }
    }

    std::size_t node_count() const noexcept { return xs_.size() / 2; }

    float load_x(std::uint32_t node, End e) const noexcept {
        return std::atomic_ref<const float>(xs_[idx(node, e)])
            .load(std::memory_order_relaxed);
    }
    float load_y(std::uint32_t node, End e) const noexcept {
        return std::atomic_ref<const float>(ys_[idx(node, e)])
            .load(std::memory_order_relaxed);
    }
    void store_x(std::uint32_t node, End e, float v) noexcept {
        std::atomic_ref<float>(xs_[idx(node, e)]).store(v, std::memory_order_relaxed);
    }
    void store_y(std::uint32_t node, End e, float v) noexcept {
        std::atomic_ref<float>(ys_[idx(node, e)]).store(v, std::memory_order_relaxed);
    }

    Layout snapshot() const {
        Layout l;
        const std::size_t n = node_count();
        l.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            l.start_x[i] = xs_[2 * i];
            l.end_x[i] = xs_[2 * i + 1];
            l.start_y[i] = ys_[2 * i];
            l.end_y[i] = ys_[2 * i + 1];
        }
        return l;
    }

private:
    static std::size_t idx(std::uint32_t node, End e) noexcept {
        return 2 * static_cast<std::size_t>(node) + static_cast<std::size_t>(e);
    }

    std::vector<float> xs_;
    std::vector<float> ys_;
};

/// Packed per-node record of the cache-friendly data layout. 24 bytes so an
/// aligned pair of records never straddles more than one 64-byte line.
struct alignas(8) NodeRecord {
    std::uint32_t length;
    std::uint32_t pad;  // keeps the float quartet 8-byte aligned
    float sx, sy, ex, ey;
};

static_assert(sizeof(NodeRecord) == 24);

/// Array-of-structs coordinate store (cache-friendly data layout).
class LayoutAoS {
public:
    LayoutAoS(const Layout& init, const graph::LeanGraph& g) {
        const std::size_t n = init.size();
        recs_.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            recs_[i].length = g.node_length(static_cast<std::uint32_t>(i));
            recs_[i].pad = 0;
            recs_[i].sx = init.start_x[i];
            recs_[i].sy = init.start_y[i];
            recs_[i].ex = init.end_x[i];
            recs_[i].ey = init.end_y[i];
        }
    }

    std::size_t node_count() const noexcept { return recs_.size(); }

    float load_x(std::uint32_t node, End e) const noexcept {
        const NodeRecord& r = recs_[node];
        return std::atomic_ref<const float>(e == End::kStart ? r.sx : r.ex)
            .load(std::memory_order_relaxed);
    }
    float load_y(std::uint32_t node, End e) const noexcept {
        const NodeRecord& r = recs_[node];
        return std::atomic_ref<const float>(e == End::kStart ? r.sy : r.ey)
            .load(std::memory_order_relaxed);
    }
    void store_x(std::uint32_t node, End e, float v) noexcept {
        NodeRecord& r = recs_[node];
        std::atomic_ref<float>(e == End::kStart ? r.sx : r.ex)
            .store(v, std::memory_order_relaxed);
    }
    void store_y(std::uint32_t node, End e, float v) noexcept {
        NodeRecord& r = recs_[node];
        std::atomic_ref<float>(e == End::kStart ? r.sy : r.ey)
            .store(v, std::memory_order_relaxed);
    }

    Layout snapshot() const {
        Layout l;
        l.resize(recs_.size());
        for (std::size_t i = 0; i < recs_.size(); ++i) {
            l.start_x[i] = recs_[i].sx;
            l.start_y[i] = recs_[i].sy;
            l.end_x[i] = recs_[i].ex;
            l.end_y[i] = recs_[i].ey;
        }
        return l;
    }

private:
    std::vector<NodeRecord> recs_;
};

}  // namespace pgl::core

#pragma once
// Layout state for PG-SGD. Each node is drawn as a line segment with a
// start and an end visualization point (paper Sec. II-C); the layout is the
// collection of those 2n points.
//
// All engines share one concrete coordinate store, XYStore: the paper's
// original ODGI organization (Fig. 9a) — a flat X array and a flat Y array,
// element 2*node + end — exposed as raw contiguous float arrays so the
// update kernels (core/kernels/) vectorize over them directly, with
// relaxed-atomic accessors on top for the Hogwild engines' intentionally
// unsynchronized per-term updates. The cache-friendly AoS organization
// (CDL, Fig. 9b; one packed NodeRecord per node) survives as a *modeled*
// layout: memsim/characterize and the GPU simulator replay its address
// stream, parameterized by the NodeRecord shape below, while the functional
// coordinate values — identical under either organization — live in the
// XYStore.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/config.hpp"
#include "core/node_alloc.hpp"
#include "graph/lean_graph.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::core {

/// Endpoint selector for a node's line segment.
enum class End : std::uint8_t { kStart = 0, kEnd = 1 };

/// A plain, storage-agnostic snapshot of a layout (used by metrics, IO and
/// rendering). Index i holds the segment of node i.
struct Layout {
    std::vector<float> start_x, start_y, end_x, end_y;

    std::size_t size() const noexcept { return start_x.size(); }
    void resize(std::size_t n) {
        start_x.resize(n);
        start_y.resize(n);
        end_x.resize(n);
        end_y.resize(n);
    }
};

/// Initializes a layout the way odgi-layout does: nodes are unrolled along
/// one axis by cumulative nucleotide offset (so the initial picture is the
/// linear genome), with small uniform jitter on the other axis to break the
/// 1-D symmetry of the gradient.
template <typename Rng>
Layout make_linear_initial_layout(const graph::LeanGraph& g, Rng& rng,
                                  double jitter_scale = 1.0) {
    Layout l;
    l.resize(g.node_count());
    double x = 0.0;
    double mean_len = 0.0;
    for (std::uint32_t i = 0; i < g.node_count(); ++i) mean_len += g.node_length(i);
    mean_len = g.node_count() ? mean_len / g.node_count() : 1.0;
    const double jitter = jitter_scale * mean_len;
    for (std::uint32_t i = 0; i < g.node_count(); ++i) {
        l.start_x[i] = static_cast<float>(x);
        x += g.node_length(i);
        l.end_x[i] = static_cast<float>(x);
        l.start_y[i] = static_cast<float>((rng.next_double() - 0.5) * jitter);
        l.end_y[i] = static_cast<float>((rng.next_double() - 0.5) * jitter);
    }
    return l;
}

/// The layout an engine starts a run from: cfg.initial_layout when set (a
/// warm start — validated against the graph's node count), otherwise the
/// seeded linear initial layout. Every backend goes through this one
/// function so a warm-started refinement pass means the same thing on all
/// of them, and the init-jitter RNG stream stays identical to the
/// historical per-engine code (seed XOR'd with a fixed salt).
inline Layout make_initial_layout(const graph::LeanGraph& g,
                                  const LayoutConfig& cfg) {
    if (cfg.initial_layout) {
        if (cfg.initial_layout->size() != g.node_count()) {
            throw std::invalid_argument(
                "LayoutConfig::initial_layout holds " +
                std::to_string(cfg.initial_layout->size()) +
                " segments for a graph of " + std::to_string(g.node_count()) +
                " nodes");
        }
        return *cfg.initial_layout;
    }
    rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
    return make_linear_initial_layout(g, init_rng, cfg.init_jitter);
}

/// The shared flat SoA coordinate store. X layout matches the paper:
/// [sx0, ex0, sx1, ex1, ...], same for Y; index(node, end) = 2*node + end.
///
/// Two access styles, by construction compatible:
///   * x()/y() — the raw contiguous arrays the update kernels (and any
///     single-writer batch consumer) read and write with plain loads and
///     stores;
///   * load_/store_ accessors — relaxed std::atomic_ref views of the same
///     floats, used by the Hogwild engines so their deliberate data races
///     stay defined behaviour.
///
/// Storage is either plain heap vectors (the default) or NUMA-placed
/// blocks from a core::NodeAllocator (the load overload engines use when a
/// --numa policy is active); every accessor runs off the same raw
/// pointers, so the two are byte-indistinguishable to all consumers.
/// Copying deep-copies the coordinates into heap storage — placement is an
/// execution property of the run that produced the store, never of a copy.
class XYStore {
public:
    XYStore() = default;
    explicit XYStore(const Layout& init) { load(init); }

    XYStore(XYStore&&) noexcept = default;
    XYStore& operator=(XYStore&&) noexcept = default;
    XYStore(const XYStore& o) { copy_from(o); }
    XYStore& operator=(const XYStore& o) {
        if (this != &o) copy_from(o);
        return *this;
    }

    void load(const Layout& init) {
        const std::size_t n = init.size();
        count_ = 2 * n;
        xblk_ = PlacedBlock();
        yblk_ = PlacedBlock();
        xs_.resize(count_);
        ys_.resize(count_);
        xp_ = xs_.data();
        yp_ = ys_.data();
        for (std::size_t i = 0; i < n; ++i) {
            xp_[2 * i] = init.start_x[i];
            xp_[2 * i + 1] = init.end_x[i];
            yp_[2 * i] = init.start_y[i];
            yp_[2 * i + 1] = init.end_y[i];
        }
    }

    /// Placed storage: the coordinate arrays come from `alloc`, pages
    /// first-touched per its placement policy (defined in node_alloc.cpp).
    void load(const Layout& init, NodeAllocator& alloc);

    std::size_t node_count() const noexcept { return count_ / 2; }
    std::size_t coord_count() const noexcept { return count_; }

    static std::size_t index(std::uint32_t node, End e) noexcept {
        return 2 * static_cast<std::size_t>(node) + static_cast<std::size_t>(e);
    }

    float* x() noexcept { return xp_; }
    float* y() noexcept { return yp_; }
    const float* x() const noexcept { return xp_; }
    const float* y() const noexcept { return yp_; }

    float load_x(std::uint32_t node, End e) const noexcept {
        return std::atomic_ref<const float>(xp_[index(node, e)])
            .load(std::memory_order_relaxed);
    }
    float load_y(std::uint32_t node, End e) const noexcept {
        return std::atomic_ref<const float>(yp_[index(node, e)])
            .load(std::memory_order_relaxed);
    }
    void store_x(std::uint32_t node, End e, float v) noexcept {
        std::atomic_ref<float>(xp_[index(node, e)])
            .store(v, std::memory_order_relaxed);
    }
    void store_y(std::uint32_t node, End e, float v) noexcept {
        std::atomic_ref<float>(yp_[index(node, e)])
            .store(v, std::memory_order_relaxed);
    }

    Layout snapshot() const {
        Layout l;
        const std::size_t n = node_count();
        l.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            l.start_x[i] = xp_[2 * i];
            l.end_x[i] = xp_[2 * i + 1];
            l.start_y[i] = yp_[2 * i];
            l.end_y[i] = yp_[2 * i + 1];
        }
        return l;
    }

private:
    void copy_from(const XYStore& o) {
        count_ = o.count_;
        xblk_ = PlacedBlock();
        yblk_ = PlacedBlock();
        xs_.assign(o.xp_, o.xp_ + o.count_);
        ys_.assign(o.yp_, o.yp_ + o.count_);
        xp_ = xs_.data();
        yp_ = ys_.data();
    }

    std::vector<float> xs_;
    std::vector<float> ys_;
    PlacedBlock xblk_;
    PlacedBlock yblk_;
    float* xp_ = nullptr;
    float* yp_ = nullptr;
    std::size_t count_ = 0;
};

/// Packed per-node record of the cache-friendly data layout (CDL, Fig. 9b).
/// 24 bytes so an aligned pair of records never straddles more than one
/// 64-byte line. The functional engines no longer instantiate this store —
/// it defines the record shape the memory simulators (memsim/characterize,
/// gpusim) model when replaying the CDL address stream.
struct alignas(8) NodeRecord {
    std::uint32_t length;
    std::uint32_t pad;  // keeps the float quartet 8-byte aligned
    float sx, sy, ex, ey;
};

static_assert(sizeof(NodeRecord) == 24);

}  // namespace pgl::core

#include "core/cpu_engine.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "core/schedule.hpp"
#include "core/step_math.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::core {

namespace {

template <typename Store>
void run_worker(const PairSampler& sampler, const LayoutConfig& cfg,
                const std::vector<double>& etas, Store& store,
                rng::Xoshiro256Plus rng, std::uint64_t steps_per_iter,
                std::atomic<std::uint64_t>& skipped_total) {
    std::uint64_t skipped = 0;
    for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
        const double eta = etas[iter];
        const bool cooling_iter = cfg.cooling(iter);
        for (std::uint64_t s = 0; s < steps_per_iter; ++s) {
            const TermSample t = sampler.sample(cooling_iter, rng);
            if (!t.valid) {
                ++skipped;
                continue;
            }
            const float xi = store.load_x(t.node_i, t.end_i);
            const float yi = store.load_y(t.node_i, t.end_i);
            const float xj = store.load_x(t.node_j, t.end_j);
            const float yj = store.load_y(t.node_j, t.end_j);
            const double nudge = (rng.next_double() - 0.5) * 1e-3;
            const PointDelta d =
                sgd_term_update(xi, yi, xj, yj, t.d_ref, eta,
                                nudge == 0.0 ? 1e-4 : nudge);
            store.store_x(t.node_i, t.end_i, xi + d.dx_i);
            store.store_y(t.node_i, t.end_i, yi + d.dy_i);
            store.store_x(t.node_j, t.end_j, xj + d.dx_j);
            store.store_y(t.node_j, t.end_j, yj + d.dy_j);
        }
    }
    skipped_total.fetch_add(skipped, std::memory_order_relaxed);
}

template <typename Store>
LayoutResult run_layout(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        Store& store) {
    LayoutResult result;
    result.eta_schedule = make_eta_schedule(
        cfg.schedule_length(), cfg.eps,
        static_cast<double>(g.max_path_nuc_length()));

    const PairSampler sampler(g, cfg);
    const std::uint64_t n_steps = cfg.steps_per_iteration(g.total_path_steps());
    const std::uint32_t n_threads = cfg.threads == 0 ? 1 : cfg.threads;
    const std::uint64_t per_thread = (n_steps + n_threads - 1) / n_threads;

    std::atomic<std::uint64_t> skipped{0};
    rng::Xoshiro256Plus seeder(cfg.seed);

    const auto t0 = std::chrono::steady_clock::now();
    if (n_threads == 1) {
        run_worker(sampler, cfg, result.eta_schedule, store, seeder, n_steps,
                   skipped);
        result.updates = static_cast<std::uint64_t>(cfg.iter_max) * n_steps;
    } else {
        std::vector<std::thread> workers;
        workers.reserve(n_threads);
        for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
            rng::Xoshiro256Plus rng = seeder;
            for (std::uint32_t j = 0; j < tid; ++j) rng.jump();
            workers.emplace_back([&, rng] {
                run_worker(sampler, cfg, result.eta_schedule, store, rng,
                           per_thread, skipped);
            });
        }
        for (auto& w : workers) w.join();
        result.updates =
            static_cast<std::uint64_t>(cfg.iter_max) * per_thread * n_threads;
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.skipped = skipped.load();
    result.layout = store.snapshot();
    return result;
}

}  // namespace

LayoutResult layout_cpu_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial, CoordStore store) {
    if (store == CoordStore::kAoS) {
        LayoutAoS s(initial, g);
        return run_layout(g, cfg, s);
    }
    LayoutSoA s(initial);
    return run_layout(g, cfg, s);
}

LayoutResult layout_cpu(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        CoordStore store) {
    rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
    const Layout initial = make_linear_initial_layout(g, init_rng, cfg.init_jitter);
    return layout_cpu_from(g, cfg, initial, store);
}

}  // namespace pgl::core

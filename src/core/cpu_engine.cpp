#include "core/cpu_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "core/kernels/update_kernel.hpp"
#include "core/node_alloc.hpp"
#include "core/schedule.hpp"
#include "core/step_math.hpp"
#include "core/term_batch.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::core {

namespace {

constexpr std::size_t kBatchSlice = kBatchSliceTerms;

/// The legacy per-term Hogwild loop: sample, update, repeat. Goes through
/// the store's relaxed-atomic accessors because with threads > 1 the
/// workers race on the coordinates by design.
std::uint64_t run_scalar_iter(const PairSampler& sampler, double eta,
                              bool cooling_iter, XYStore& store,
                              rng::Xoshiro256Plus& rng, std::uint64_t steps) {
    std::uint64_t skipped = 0;
    for (std::uint64_t s = 0; s < steps; ++s) {
        const TermSample t = sampler.sample(cooling_iter, rng);
        if (!t.valid) {
            ++skipped;
            continue;
        }
        const float xi = store.load_x(t.node_i, t.end_i);
        const float yi = store.load_y(t.node_i, t.end_i);
        const float xj = store.load_x(t.node_j, t.end_j);
        const float yj = store.load_y(t.node_j, t.end_j);
        const PointDelta d =
            sgd_term_update(xi, yi, xj, yj, t.d_ref, eta, draw_nudge(rng));
        store.store_x(t.node_i, t.end_i, xi + d.dx_i);
        store.store_y(t.node_i, t.end_i, yi + d.dy_i);
        store.store_x(t.node_j, t.end_j, xj + d.dx_j);
        store.store_y(t.node_j, t.end_j, yj + d.dy_j);
    }
    return skipped;
}

std::uint64_t run_batched_iter(const PairSampler& sampler, double eta,
                               bool cooling_iter, XYStore& store,
                               const UpdateKernel& kern,
                               rng::Xoshiro256Plus& rng, std::uint64_t steps,
                               TermBatch& batch) {
    std::uint64_t skipped = 0;
    for (std::uint64_t left = steps; left > 0;) {
        const std::size_t n =
            static_cast<std::size_t>(std::min<std::uint64_t>(kBatchSlice, left));
        batch.clear();
        skipped += sampler.fill_batch(cooling_iter, rng, n, batch);
        kern.apply(batch, eta, store);
        left -= n;
    }
    return skipped;
}

LayoutResult run_layout(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        XYStore& store, bool batched, const UpdateKernel& kern,
                        const ProgressHook& hook, ThreadPool& pool) {
    LayoutResult result;
    result.eta_schedule = make_engine_schedule(
        cfg, static_cast<double>(g.max_path_nuc_length()));

    const PairSampler sampler(g, cfg);
    const std::uint64_t n_steps = cfg.steps_per_iteration(g.total_path_steps());
    const std::uint32_t n_threads = cfg.threads == 0 ? 1 : cfg.threads;

    std::atomic<std::uint64_t> skipped{0};
    rng::Xoshiro256Plus seeder(cfg.seed);

    const auto emit = [&](std::uint32_t iter, std::uint64_t iter_skipped) {
        if (!hook) return;
        IterationStats s;
        s.iteration = iter;
        s.iter_max = cfg.iter_max;
        s.eta = result.eta_schedule[iter];
        s.updates = n_steps;
        s.skipped = iter_skipped;
        hook(s);
    };

    // Completed iterations, for the honest update count of a cancelled run
    // (the Hogwild path keeps the full count: its workers share no
    // iteration barrier to count at).
    std::uint32_t iters_done = cfg.iter_max;

    const auto t0 = std::chrono::steady_clock::now();
    if (n_threads == 1) {
        rng::Xoshiro256Plus rng = seeder;
        TermBatch batch;
        batch.reserve(kBatchSlice);
        for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
            if (cfg.cancel_requested()) {
                iters_done = iter;
                break;
            }
            const double eta = result.eta_schedule[iter];
            const bool cooling_iter = cfg.cooling(iter);
            const std::uint64_t sk =
                batched ? run_batched_iter(sampler, eta, cooling_iter, store,
                                           kern, rng, n_steps, batch)
                        : run_scalar_iter(sampler, eta, cooling_iter, store,
                                          rng, n_steps);
            skipped.fetch_add(sk, std::memory_order_relaxed);
            emit(iter, sk);
        }
    } else if (!batched) {
        // Hogwild: every worker runs the whole schedule without barriers —
        // one pool dispatch covers the entire run. The workers still share
        // no synchronization point, but each marks iteration boundaries as
        // it crosses them, and the *last* worker past a boundary emits the
        // aggregated IterationStats — so progress reporting and telemetry
        // see this backend too. Emission is pure observation (no worker
        // ever waits on another), and boundary emissions are naturally
        // serialized: iteration i+1 cannot complete before the worker that
        // completed iteration i last has moved on. The hook therefore fires
        // on a worker thread here (see engine.hpp).
        const bool want_progress = static_cast<bool>(hook);
        std::unique_ptr<std::atomic<std::uint32_t>[]> arrivals;
        std::unique_ptr<std::atomic<std::uint64_t>[]> boundary_skipped;
        if (want_progress) {
            arrivals =
                std::make_unique<std::atomic<std::uint32_t>[]>(cfg.iter_max);
            boundary_skipped =
                std::make_unique<std::atomic<std::uint64_t>[]>(cfg.iter_max);
        }
        pool.run([&](std::uint32_t tid) {
            rng::Xoshiro256Plus rng = seeder;
            for (std::uint32_t j = 0; j < tid; ++j) rng.jump();
            const std::uint64_t share = shard_share(n_steps, n_threads, tid);
            std::uint64_t sk = 0;
            for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
                if (cfg.cancel_requested()) break;
                const std::uint64_t it_sk =
                    run_scalar_iter(sampler, result.eta_schedule[iter],
                                    cfg.cooling(iter), store, rng, share);
                sk += it_sk;
                if (want_progress) {
                    boundary_skipped[iter].fetch_add(
                        it_sk, std::memory_order_relaxed);
                    if (arrivals[iter].fetch_add(
                            1, std::memory_order_acq_rel) + 1 == n_threads) {
                        emit(iter, boundary_skipped[iter].load(
                                       std::memory_order_relaxed));
                    }
                }
            }
            skipped.fetch_add(sk, std::memory_order_relaxed);
        });
    } else {
        // Batched: iteration-synchronous and deterministic. Per slice round
        // the persistent workers sample their shard's TermBatch in parallel
        // (the expensive part: PRNG draws, alias/Zipf lookups, cold step
        // records), then the calling thread applies the batches in fixed
        // shard order through the configured kernel. Racing the applies —
        // the old behaviour — made a fixed (seed, threads) run
        // irreproducible; fixed-order application is the property the
        // partition scheduler's byte-equivalence contract relies on.
        std::vector<rng::Xoshiro256Plus> rngs;
        rngs.reserve(n_threads);
        for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
            rngs.push_back(seeder);
            for (std::uint32_t j = 0; j < tid; ++j) rngs.back().jump();
        }
        // Worker-side warm-up: each worker reserves its own shard's batch,
        // so the buffer pages are first-touched (and, with pinned workers,
        // node-placed) by the thread that will fill them every slice.
        // reserve() writes nothing — bytes are identical with or without
        // pinning.
        std::vector<TermBatch> batches(n_threads);
        pool.run([&](std::uint32_t tid) { batches[tid].reserve(kBatchSlice); });
        std::vector<std::uint64_t> left(n_threads), slice(n_threads);
        std::vector<std::uint64_t> worker_skipped(n_threads);
        for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
            if (cfg.cancel_requested()) {
                iters_done = iter;
                break;
            }
            const double eta = result.eta_schedule[iter];
            const bool cooling_iter = cfg.cooling(iter);
            std::uint64_t iter_skipped = 0;
            std::uint64_t left_total = 0;
            for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
                left[tid] = shard_share(n_steps, n_threads, tid);
                left_total += left[tid];
            }
            while (left_total > 0) {
                for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
                    slice[tid] = std::min<std::uint64_t>(kBatchSlice, left[tid]);
                }
                pool.run([&](std::uint32_t tid) {
                    batches[tid].clear();
                    worker_skipped[tid] =
                        slice[tid] == 0
                            ? 0
                            : sampler.fill_batch(
                                  cooling_iter, rngs[tid],
                                  static_cast<std::size_t>(slice[tid]),
                                  batches[tid]);
                });
                for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
                    if (slice[tid] == 0) continue;
                    kern.apply(batches[tid], eta, store);
                    iter_skipped += worker_skipped[tid];
                    left[tid] -= slice[tid];
                    left_total -= slice[tid];
                }
            }
            skipped.fetch_add(iter_skipped, std::memory_order_relaxed);
            emit(iter, iter_skipped);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.updates = static_cast<std::uint64_t>(iters_done) * n_steps;
    result.skipped = skipped.load();
    result.layout = store.snapshot();
    return result;
}

/// `pool` must have cfg.threads workers when cfg.threads > 1
/// (single-threaded runs never touch it).
LayoutResult run_layout_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial, bool batched,
                             const UpdateKernel& kern, const ProgressHook& hook,
                             ThreadPool& pool) {
    XYStore store(initial);
    return run_layout(g, cfg, store, batched, kern, hook, pool);
}

class CpuLayoutEngine final : public LayoutEngine {
public:
    CpuLayoutEngine(CoordStore store, bool batched)
        : store_(store), batched_(batched) {}

    std::string_view name() const noexcept override {
        if (batched_) return "cpu-batched";
        return store_ == CoordStore::kAoS ? "cpu-aos" : "cpu-soa";
    }

protected:
    void do_init() override {
        // Resolving here also validates cfg.kernel: an unknown name throws
        // before any work starts. (The per-term Hogwild path applies terms
        // as it samples them and never drains a batch, but it still rejects
        // bad names the same way.) resolve_placement likewise validates
        // cfg.numa up front.
        kernel_ = make_update_kernel(cfg_.kernel);
        // The pool outlives every run(): workers are spawned once per
        // init(), never inside the iteration loop. It is recreated when the
        // size *or* the placement plan changes — repinning live workers is
        // not supported.
        const std::uint32_t n = cfg_.threads > 1 ? cfg_.threads : 0;
        place_ = resolve_placement(cfg_, n);
        const std::string key = place_.key();
        if (!pool_ || pool_->size() != n || pool_key_ != key) {
            pool_ = std::make_unique<ThreadPool>(n, place_.plan);
            pool_key_ = key;
        }
    }

    LayoutResult do_run(const LayoutConfig& cfg) override {
        const Layout initial = make_initial_layout(*graph_, cfg);
        ProgressHook hook;
        if (has_progress_hook()) {
            hook = [this](const IterationStats& s) { emit_progress(s); };
        }
        XYStore store;
        if (place_.memory_active()) {
            NodeAllocator alloc(place_, *pool_);
            store.load(initial, alloc);
        } else {
            store.load(initial);
        }
        return run_layout(*graph_, cfg, store, batched_, *kernel_, hook,
                          *pool_);
    }

private:
    CoordStore store_;
    bool batched_;
    std::unique_ptr<const UpdateKernel> kernel_;
    std::unique_ptr<ThreadPool> pool_;
    PlacementContext place_;
    std::string pool_key_;
};

}  // namespace

std::unique_ptr<LayoutEngine> make_cpu_engine(CoordStore store, bool batched) {
    return std::make_unique<CpuLayoutEngine>(store, batched);
}

LayoutResult layout_cpu_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial, CoordStore) {
    ThreadPool pool(cfg.threads > 1 ? cfg.threads : 0);
    const auto kern = make_update_kernel(cfg.kernel);
    return run_layout_from(g, cfg, initial, /*batched=*/false, *kern, {}, pool);
}

LayoutResult layout_cpu(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        CoordStore store) {
    const Layout initial = make_initial_layout(g, cfg);
    return layout_cpu_from(g, cfg, initial, store);
}

}  // namespace pgl::core

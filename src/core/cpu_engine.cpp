#include "core/cpu_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/schedule.hpp"
#include "core/step_math.hpp"
#include "core/term_batch.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::core {

namespace {

/// Terms per TermBatch slice in the batched engine: big enough to amortize
/// the buffer bookkeeping, small enough that a slice's updates stay hot in
/// L1/L2 before the next slice is sampled.
constexpr std::size_t kBatchSlice = 1024;

template <typename Store>
std::uint64_t run_scalar_iter(const PairSampler& sampler, double eta,
                              bool cooling_iter, Store& store,
                              rng::Xoshiro256Plus& rng, std::uint64_t steps) {
    std::uint64_t skipped = 0;
    for (std::uint64_t s = 0; s < steps; ++s) {
        const TermSample t = sampler.sample(cooling_iter, rng);
        if (!t.valid) {
            ++skipped;
            continue;
        }
        const float xi = store.load_x(t.node_i, t.end_i);
        const float yi = store.load_y(t.node_i, t.end_i);
        const float xj = store.load_x(t.node_j, t.end_j);
        const float yj = store.load_y(t.node_j, t.end_j);
        const PointDelta d =
            sgd_term_update(xi, yi, xj, yj, t.d_ref, eta, draw_nudge(rng));
        store.store_x(t.node_i, t.end_i, xi + d.dx_i);
        store.store_y(t.node_i, t.end_i, yi + d.dy_i);
        store.store_x(t.node_j, t.end_j, xj + d.dx_j);
        store.store_y(t.node_j, t.end_j, yj + d.dy_j);
    }
    return skipped;
}

template <typename Store>
void apply_batch(const TermBatch& b, double eta, Store& store) {
    for (std::size_t k = 0; k < b.size(); ++k) {
        if (!b.valid[k]) continue;
        const End ei = b.end_i_of(k);
        const End ej = b.end_j_of(k);
        const float xi = store.load_x(b.node_i[k], ei);
        const float yi = store.load_y(b.node_i[k], ei);
        const float xj = store.load_x(b.node_j[k], ej);
        const float yj = store.load_y(b.node_j[k], ej);
        const PointDelta d =
            sgd_term_update(xi, yi, xj, yj, b.d_ref[k], eta, b.nudge[k]);
        store.store_x(b.node_i[k], ei, xi + d.dx_i);
        store.store_y(b.node_i[k], ei, yi + d.dy_i);
        store.store_x(b.node_j[k], ej, xj + d.dx_j);
        store.store_y(b.node_j[k], ej, yj + d.dy_j);
    }
}

template <typename Store>
std::uint64_t run_batched_iter(const PairSampler& sampler, double eta,
                               bool cooling_iter, Store& store,
                               rng::Xoshiro256Plus& rng, std::uint64_t steps,
                               TermBatch& batch) {
    std::uint64_t skipped = 0;
    for (std::uint64_t left = steps; left > 0;) {
        const std::size_t n =
            static_cast<std::size_t>(std::min<std::uint64_t>(kBatchSlice, left));
        batch.clear();
        skipped += sampler.fill_batch(cooling_iter, rng, n, batch);
        apply_batch(batch, eta, store);
        left -= n;
    }
    return skipped;
}

/// Exact per-thread share of the iteration's N_steps: the remainder goes to
/// the first threads, so the shares sum to n_steps (no rounding up — the
/// reported update count matches the steps actually executed).
std::uint64_t thread_share(std::uint64_t n_steps, std::uint32_t n_threads,
                           std::uint32_t tid) {
    return n_steps / n_threads + (tid < n_steps % n_threads ? 1 : 0);
}

template <typename Store>
LayoutResult run_layout(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        Store& store, bool batched, const ProgressHook& hook) {
    LayoutResult result;
    result.eta_schedule = make_eta_schedule(
        cfg.schedule_length(), cfg.eps,
        static_cast<double>(g.max_path_nuc_length()));

    const PairSampler sampler(g, cfg);
    const std::uint64_t n_steps = cfg.steps_per_iteration(g.total_path_steps());
    const std::uint32_t n_threads = cfg.threads == 0 ? 1 : cfg.threads;

    std::atomic<std::uint64_t> skipped{0};
    rng::Xoshiro256Plus seeder(cfg.seed);

    const auto emit = [&](std::uint32_t iter, std::uint64_t iter_skipped) {
        if (!hook) return;
        IterationStats s;
        s.iteration = iter;
        s.iter_max = cfg.iter_max;
        s.eta = result.eta_schedule[iter];
        s.updates = n_steps;
        s.skipped = iter_skipped;
        hook(s);
    };

    const auto t0 = std::chrono::steady_clock::now();
    if (n_threads == 1) {
        rng::Xoshiro256Plus rng = seeder;
        TermBatch batch;
        batch.reserve(kBatchSlice);
        for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
            const double eta = result.eta_schedule[iter];
            const bool cooling_iter = cfg.cooling(iter);
            const std::uint64_t sk =
                batched ? run_batched_iter(sampler, eta, cooling_iter, store,
                                           rng, n_steps, batch)
                        : run_scalar_iter(sampler, eta, cooling_iter, store,
                                          rng, n_steps);
            skipped.fetch_add(sk, std::memory_order_relaxed);
            emit(iter, sk);
        }
    } else if (!batched) {
        // Hogwild: every worker runs the whole schedule without barriers.
        std::vector<std::thread> workers;
        workers.reserve(n_threads);
        for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
            rng::Xoshiro256Plus rng = seeder;
            for (std::uint32_t j = 0; j < tid; ++j) rng.jump();
            const std::uint64_t share = thread_share(n_steps, n_threads, tid);
            workers.emplace_back([&, rng, share]() mutable {
                std::uint64_t sk = 0;
                for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
                    sk += run_scalar_iter(sampler, result.eta_schedule[iter],
                                          cfg.cooling(iter), store, rng, share);
                }
                skipped.fetch_add(sk, std::memory_order_relaxed);
            });
        }
        for (auto& w : workers) w.join();
    } else {
        // Batched: iteration-synchronous — workers process their share of
        // the iteration in TermBatch slices and join at the iteration
        // barrier, the execution shape sharded/SIMD backends will reuse.
        std::vector<rng::Xoshiro256Plus> rngs;
        rngs.reserve(n_threads);
        for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
            rngs.push_back(seeder);
            for (std::uint32_t j = 0; j < tid; ++j) rngs.back().jump();
        }
        std::vector<TermBatch> batches(n_threads);
        for (auto& b : batches) b.reserve(kBatchSlice);
        for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
            const double eta = result.eta_schedule[iter];
            const bool cooling_iter = cfg.cooling(iter);
            std::atomic<std::uint64_t> iter_skipped{0};
            std::vector<std::thread> workers;
            workers.reserve(n_threads);
            for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
                const std::uint64_t share = thread_share(n_steps, n_threads, tid);
                workers.emplace_back([&, tid, share] {
                    const std::uint64_t sk =
                        run_batched_iter(sampler, eta, cooling_iter, store,
                                         rngs[tid], share, batches[tid]);
                    iter_skipped.fetch_add(sk, std::memory_order_relaxed);
                });
            }
            for (auto& w : workers) w.join();
            skipped.fetch_add(iter_skipped.load(), std::memory_order_relaxed);
            emit(iter, iter_skipped.load());
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.updates = static_cast<std::uint64_t>(cfg.iter_max) * n_steps;
    result.skipped = skipped.load();
    result.layout = store.snapshot();
    return result;
}

LayoutResult run_layout_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial, CoordStore store,
                             bool batched, const ProgressHook& hook) {
    if (store == CoordStore::kAoS) {
        LayoutAoS s(initial, g);
        return run_layout(g, cfg, s, batched, hook);
    }
    LayoutSoA s(initial);
    return run_layout(g, cfg, s, batched, hook);
}

class CpuLayoutEngine final : public LayoutEngine {
public:
    CpuLayoutEngine(CoordStore store, bool batched)
        : store_(store), batched_(batched) {}

    std::string_view name() const noexcept override {
        if (batched_) return "cpu-batched";
        return store_ == CoordStore::kAoS ? "cpu-aos" : "cpu-soa";
    }

protected:
    LayoutResult do_run(const LayoutConfig& cfg) override {
        rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
        const Layout initial =
            make_linear_initial_layout(*graph_, init_rng, cfg.init_jitter);
        ProgressHook hook;
        if (has_progress_hook()) {
            hook = [this](const IterationStats& s) { emit_progress(s); };
        }
        return run_layout_from(*graph_, cfg, initial, store_, batched_, hook);
    }

private:
    CoordStore store_;
    bool batched_;
};

}  // namespace

std::unique_ptr<LayoutEngine> make_cpu_engine(CoordStore store, bool batched) {
    return std::make_unique<CpuLayoutEngine>(store, batched);
}

LayoutResult layout_cpu_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial, CoordStore store) {
    return run_layout_from(g, cfg, initial, store, /*batched=*/false, {});
}

LayoutResult layout_cpu(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        CoordStore store) {
    rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
    const Layout initial = make_linear_initial_layout(g, init_rng, cfg.init_jitter);
    return layout_cpu_from(g, cfg, initial, store);
}

}  // namespace pgl::core

#pragma once
// The multithreaded CPU baseline (paper Sec. III): PG-SGD with Hogwild!
// asynchronous updates. Each worker owns a jumped Xoshiro256+ stream and
// performs its share of the N_steps updates of every iteration without
// locking; the graph's extreme sparsity makes collisions harmless, exactly
// the argument of Sec. III-A.
//
// The engine is parameterized on the coordinate store so the same code runs
// with the original SoA organization and with the cache-friendly AoS
// organization (the "CPU w/ cache-friendly data layout" bar of Fig. 16).
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/sampling.hpp"
#include "graph/lean_graph.hpp"

namespace pgl::core {

struct LayoutResult {
    Layout layout;
    double seconds = 0.0;             ///< wall-clock time of the SGD loop
    std::uint64_t updates = 0;        ///< terms processed (including skipped)
    std::uint64_t skipped = 0;        ///< degenerate terms (d_ref == 0 etc.)
    std::vector<double> eta_schedule; ///< learning rate used per iteration
};

enum class CoordStore : std::uint8_t {
    kSoA,  ///< original ODGI organization (separate X / Y / length arrays)
    kAoS,  ///< cache-friendly data layout (packed node records)
};

/// Runs the full PG-SGD loop on the CPU and returns the final layout.
/// Deterministic for cfg.threads == 1 and a fixed seed.
LayoutResult layout_cpu(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        CoordStore store = CoordStore::kSoA);

/// Same, but starting from a caller-provided initial layout.
LayoutResult layout_cpu_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial,
                             CoordStore store = CoordStore::kSoA);

}  // namespace pgl::core

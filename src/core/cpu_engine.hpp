#pragma once
// The multithreaded CPU backends (paper Sec. III): PG-SGD with Hogwild!
// asynchronous updates. Each worker owns a jumped Xoshiro256+ stream and
// performs its share of the N_steps updates of every iteration without
// locking; the graph's extreme sparsity makes collisions harmless, exactly
// the argument of Sec. III-A.
//
// Two execution styles share the XYStore-based update code:
//   * scalar — the legacy per-term loop (sample, update, repeat);
//   * batched — each worker fills a TermBatch per slice via
//     PairSampler::fill_batch; with threads > 1 the filled batches are
//     applied by the calling thread in fixed shard order (sampling is
//     parallel, application is ordered), so a fixed (seed, threads) pair
//     is byte-reproducible — the contract the partition scheduler builds
//     on. With one thread and the same seed the batched engine replays the
//     scalar engine's exact PRNG stream, so the two produce bit-identical
//     layouts.
//
// All engines run on the shared core::XYStore; batch-draining paths apply
// their TermBatches through the UpdateKernel named by cfg.kernel ("scalar"
// or the byte-identical vectorized "simd"), resolved and validated at
// init(). The CoordStore enum below no longer selects a functional storage
// class — it keeps the "cpu-aos" registry name alive and parameterizes the
// memory simulators, which model the cache-friendly AoS address stream
// (the "CPU w/ cache-friendly data layout" bar of Fig. 16).
#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/layout.hpp"
#include "graph/lean_graph.hpp"

namespace pgl::core {

enum class CoordStore : std::uint8_t {
    kSoA,  ///< original ODGI organization (separate X / Y / length arrays)
    kAoS,  ///< cache-friendly data layout (packed node records; modeled by
           ///< memsim/gpusim — functional values are identical to kSoA)
};

/// Creates a CPU layout engine ("cpu-soa" / "cpu-aos" / "cpu-batched").
std::unique_ptr<LayoutEngine> make_cpu_engine(CoordStore store, bool batched);

/// Creates the pipelined CPU engine ("cpu-pipelined"): cfg.threads producer
/// workers on a persistent core::ThreadPool sample TermBatches into a
/// double buffer (via the staged, prefetching fill) while the calling
/// thread applies the previous buffer, so sampling — the workload's
/// bottleneck (paper Sec. III) — overlaps the position updates.
/// Deterministic: a fixed (seed, threads) pair always yields the same
/// layout byte-for-byte, unlike the Hogwild engines.
std::unique_ptr<LayoutEngine> make_pipelined_engine();

/// Runs the full PG-SGD loop on the CPU and returns the final layout.
/// Deterministic for cfg.threads == 1 and a fixed seed. Thin wrapper over
/// the scalar CPU engine, kept for compatibility.
LayoutResult layout_cpu(const graph::LeanGraph& g, const LayoutConfig& cfg,
                        CoordStore store = CoordStore::kSoA);

/// Same, but starting from a caller-provided initial layout.
LayoutResult layout_cpu_from(const graph::LeanGraph& g, const LayoutConfig& cfg,
                             const Layout& initial,
                             CoordStore store = CoordStore::kSoA);

}  // namespace pgl::core

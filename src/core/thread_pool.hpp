#pragma once
// Persistent worker pool shared by every multithreaded backend. The paper's
// throughput argument (Sec. III) assumes the update loop runs at memory
// speed; spawning and joining std::threads every iteration — what the
// first-cut engines did — costs tens of microseconds per iteration and
// dominates short runs. A ThreadPool keeps its workers alive for the life
// of the engine: each dispatch hands every worker a job(tid) and the
// barrier-style wait() replaces the per-iteration join.
//
// The dispatch/wait pair establishes happens-before edges in both
// directions (mutex + condition variable), so a producer thread's writes to
// a TermBatch are visible to whoever consumes the batch after wait()
// returns — the property the double-buffered pipelined engine relies on.
//
// A pool of size 0 is a valid degenerate pool: run() executes the job
// inline on the caller, so single-threaded configurations pay no
// synchronization cost and stay bit-exact with the legacy scalar loop.
//
// Workers may optionally be pinned to CPUs via a WorkerPlacement (see
// core/topology.hpp): each worker pins itself before picking up its first
// job, giving a stable worker -> cpu -> node map that node-local
// allocation (core::NodeAllocator) and first-touch buffer warm-ups build
// on. Pinning is best-effort by contract: a failed set-affinity (CPU
// outside the cgroup cpuset, non-Linux host) logs one warning, counts
// `pool.pin.failures`, and the worker continues unpinned — a run is never
// aborted, and the computed bytes are identical either way.
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::core {

/// Exact per-shard share of an iteration's N_steps: the remainder goes to
/// the first shards, so the shares sum to n_steps (no rounding up — the
/// reported update count matches the steps actually executed). Shared by
/// every engine that splits the update stream over pool workers.
constexpr std::uint64_t shard_share(std::uint64_t n_steps,
                                    std::uint32_t n_shards,
                                    std::uint32_t tid) noexcept {
    return n_steps / n_shards + (tid < n_steps % n_shards ? 1 : 0);
}

class ThreadPool {
public:
    /// Job executed by every worker; `tid` is the worker index in
    /// [0, size()).
    using Job = std::function<void(std::uint32_t)>;

    /// Spawns `n_threads` persistent workers (0 = inline execution).
    explicit ThreadPool(std::uint32_t n_threads)
        : ThreadPool(n_threads, WorkerPlacement{}) {}

    /// Same, pinning worker tid to placement.slots[tid].cpu (best-effort;
    /// workers without a slot, and an empty placement, run unpinned).
    ThreadPool(std::uint32_t n_threads, WorkerPlacement placement);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::uint32_t size() const noexcept {
        return static_cast<std::uint32_t>(workers_.size());
    }

    /// Topology node index worker `tid` was planned onto (0 when the pool
    /// is unpinned or tid has no slot). The map is fixed at construction —
    /// valid even if the actual pinning failed.
    std::uint32_t worker_node(std::uint32_t tid) const noexcept {
        return tid < placement_.slots.size() ? placement_.slots[tid].node : 0;
    }

    bool pinning_requested() const noexcept {
        return !placement_.slots.empty();
    }

    /// Starts job(tid) on every worker and returns immediately. Exactly one
    /// job may be in flight; call wait() before the next launch(). On a
    /// size-0 pool the job runs inline (as job(0)) before launch returns.
    void launch(Job job);

    /// Blocks until the launched job has finished on every worker. No-op if
    /// nothing is in flight.
    void wait();

    /// Convenience barrier dispatch: launch(job) then wait().
    void run(Job job) {
        launch(std::move(job));
        wait();
    }

private:
    void worker_loop(std::uint32_t tid);
    void pin_self(std::uint32_t tid);

    WorkerPlacement placement_;
    std::once_flag pin_warned_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    Job job_;
    std::uint64_t generation_ = 0;  ///< bumped per launch; workers track it
    std::uint32_t remaining_ = 0;   ///< workers still running the current job
    bool in_flight_ = false;
    bool stopping_ = false;

    // Telemetry handles resolved once at construction (registry lookups are
    // mutex-protected; the per-dispatch path must not pay for them).
    // `pool.dispatch_wait_ns` = launch-to-worker-pickup latency per worker;
    // `pool.barrier_wait_ns` = time the caller blocks in wait().
    telemetry::Counter dispatches_;
    telemetry::Counter pin_failures_;
    telemetry::Histogram dispatch_wait_;
    telemetry::Histogram barrier_wait_;
    std::uint64_t launch_ns_ = 0;  ///< guarded by mutex_
};

}  // namespace pgl::core

#pragma once
// The arithmetic heart of one PG-SGD update (Alg. 1 lines 14-15): given the
// two selected visualization points and their reference distance, move both
// points against the gradient of stress = ((|vi - vj| - d_ref)/d_ref)^2.
// Shared verbatim by the CPU engine, the GPU simulator and the tensor
// implementation so all backends optimize the identical objective.
#include <cmath>

namespace pgl::core {

struct PointDelta {
    float dx_i, dy_i;  // displacement applied to v_i
    float dx_j, dy_j;  // displacement applied to v_j
    double stress;     // the term's stress value before the update
};

/// Draws the small nonzero coincident-point separation passed to
/// sgd_term_update. One definition for every consumer (scalar CPU loop,
/// PairSampler::fill_batch, GPU simulator): the batched engine's
/// bit-identical-to-scalar guarantee requires all of them to consume the
/// PRNG identically.
template <typename Rng>
double draw_nudge(Rng& rng) noexcept {
    const double n = (rng.next_double() - 0.5) * 1e-3;
    return n == 0.0 ? 1e-4 : n;
}

/// Computes the update for one term.
/// `eta` is the current learning rate; the per-term weight is 1/d_ref^2 and
/// the combined step size mu = eta * w is clamped to 1 as in Zheng et al.
/// `nudge` must be a small nonzero value used to separate coincident points
/// (callers draw it from their PRNG so behaviour stays deterministic).
inline PointDelta sgd_term_update(float xi, float yi, float xj, float yj,
                                  double d_ref, double eta,
                                  double nudge) noexcept {
    const double dx0 = static_cast<double>(xi) - xj;
    const double dy0 = static_cast<double>(yi) - yj;
    double dx = dx0;
    double dy = dy0;
    double mag = std::sqrt(dx * dx + dy * dy);
    if (mag < 1e-9) {
        // Coincident points: pick an arbitrary tiny separation so the
        // gradient is defined (odgi does the same with a random direction).
        dx = nudge;
        dy = 0.0;
        mag = std::abs(nudge);
    }

    const double w = 1.0 / (d_ref * d_ref);
    double mu = eta * w;
    if (mu > 1.0) mu = 1.0;

    const double residual = (mag - d_ref) / d_ref;
    const double delta = mu * (mag - d_ref) / 2.0;
    const double r = delta / mag;
    const double rx = r * dx;
    const double ry = r * dy;

    PointDelta out;
    out.dx_i = static_cast<float>(-rx);
    out.dy_i = static_cast<float>(-ry);
    out.dx_j = static_cast<float>(rx);
    out.dy_j = static_cast<float>(ry);
    out.stress = residual * residual;
    return out;
}

}  // namespace pgl::core

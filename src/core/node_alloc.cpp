#include "core/node_alloc.hpp"

#include <cstring>
#include <limits>
#include <new>
#include <vector>

#include "core/layout.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace pgl::core {

namespace {

/// Placement granularity. The policy maps pages of this size to nodes;
/// using a fixed 4 KiB keeps the page -> node map identical across hosts
/// (huge-page kernels still commit at their own granularity — the map is
/// then simply coarser in practice, never wrong).
constexpr std::size_t kPageBytes = 4096;

constexpr std::uint32_t kNoOwner = std::numeric_limits<std::uint32_t>::max();

}  // namespace

void PlacedBlock::release() noexcept {
    if (!p_) return;
#if defined(__linux__)
    if (mapped_) {
        ::munmap(p_, bytes_);
        p_ = nullptr;
        return;
    }
#endif
    ::operator delete(p_);
    p_ = nullptr;
}

PlacedBlock NodeAllocator::allocate_floats(std::size_t count) {
    PlacedBlock blk;
    if (count == 0) return blk;
    const std::size_t bytes =
        (count * sizeof(float) + kPageBytes - 1) / kPageBytes * kPageBytes;
#if defined(__linux__)
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        blk.p_ = p;
        blk.mapped_ = true;
    }
#endif
    if (!blk.p_) blk.p_ = ::operator new(bytes);
    blk.bytes_ = bytes;

    char* const base = static_cast<char*>(blk.p_);
    const std::size_t n_pages = bytes / kPageBytes;
    const std::uint32_t n_nodes =
        place_.topo ? place_.topo->node_count() : 1;
    std::vector<std::uint64_t> node_bytes(n_nodes, 0);

    // Which pinned worker owns which node, for worker-side first touch.
    std::vector<std::vector<std::uint32_t>> node_workers(n_nodes);
    for (std::uint32_t tid = 0;
         tid < pool_.size() && tid < place_.plan.slots.size(); ++tid) {
        node_workers[place_.plan.slots[tid].node].push_back(tid);
    }

    std::vector<std::uint32_t> owner(n_pages, kNoOwner);
    std::vector<std::uint64_t> node_rank(n_nodes, 0);
    for (std::size_t p = 0; p < n_pages; ++p) {
        const std::uint32_t node = place_.page_node(p);
        node_bytes[node] += kPageBytes;
        const auto& workers = node_workers[node];
        if (!workers.empty()) {
            owner[p] = workers[node_rank[node]++ % workers.size()];
        }
    }

    bool any_owned = false;
    for (const std::uint32_t o : owner) any_owned |= o != kNoOwner;
    if (any_owned) {
        pool_.run([&](std::uint32_t tid) {
            for (std::size_t p = 0; p < n_pages; ++p) {
                if (owner[p] == tid) {
                    std::memset(base + p * kPageBytes, 0, kPageBytes);
                }
            }
        });
    }
    // Pages on nodes without a pinned worker — and everything when the
    // pool is empty or unpinned — fall back to caller first touch.
    for (std::size_t p = 0; p < n_pages; ++p) {
        if (owner[p] == kNoOwner) {
            std::memset(base + p * kPageBytes, 0, kPageBytes);
        }
    }

    for (std::uint32_t k = 0; k < n_nodes; ++k) {
        if (node_bytes[k]) account(k, node_bytes[k]);
    }
    return blk;
}

void NodeAllocator::account(std::uint32_t topo_node,
                            std::uint64_t bytes) const {
    const std::uint32_t os_id =
        place_.topo && topo_node < place_.topo->node_count()
            ? place_.topo->nodes[topo_node].os_id
            : topo_node;
    telemetry::Registry::instance()
        .counter("alloc.node" + std::to_string(os_id) + ".bytes")
        .add(bytes);
}

void XYStore::load(const Layout& init, NodeAllocator& alloc) {
    const std::size_t n = init.size();
    count_ = 2 * n;
    xs_ = std::vector<float>();
    ys_ = std::vector<float>();
    xblk_ = alloc.allocate_floats(count_);
    yblk_ = alloc.allocate_floats(count_);
    xp_ = xblk_.floats();
    yp_ = yblk_.floats();
    for (std::size_t i = 0; i < n; ++i) {
        xp_[2 * i] = init.start_x[i];
        xp_[2 * i + 1] = init.end_x[i];
        yp_[2 * i] = init.start_y[i];
        yp_[2 * i + 1] = init.end_y[i];
    }
}

}  // namespace pgl::core

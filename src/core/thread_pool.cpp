#include "core/thread_pool.hpp"

namespace pgl::core {

ThreadPool::ThreadPool(std::uint32_t n_threads)
    : dispatches_(telemetry::Registry::instance().counter("pool.dispatches")),
      dispatch_wait_(
          telemetry::Registry::instance().histogram("pool.dispatch_wait_ns")),
      barrier_wait_(
          telemetry::Registry::instance().histogram("pool.barrier_wait_ns")) {
    workers_.reserve(n_threads);
    for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
        workers_.emplace_back([this, tid] { worker_loop(tid); });
    }
}

ThreadPool::~ThreadPool() {
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::launch(Job job) {
    if (workers_.empty()) {
        job(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = std::move(job);
        remaining_ = size();
        in_flight_ = true;
        ++generation_;
        launch_ns_ = telemetry::now_ns();
    }
    dispatches_.add(1);
    cv_work_.notify_all();
}

void ThreadPool::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!in_flight_) return;
    const std::uint64_t t0 = telemetry::now_ns();
    cv_done_.wait(lock, [this] { return !in_flight_; });
    barrier_wait_.record(telemetry::now_ns() - t0);
}

void ThreadPool::worker_loop(std::uint32_t tid) {
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_work_.wait(lock, [&] {
            return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) return;
        seen_generation = generation_;
        dispatch_wait_.record(telemetry::now_ns() - launch_ns_);
        // job_ stays untouched until every worker checks in below, so
        // reading it by reference outside the lock is safe.
        const Job& job = job_;
        lock.unlock();

        job(tid);

        lock.lock();
        if (--remaining_ == 0) {
            in_flight_ = false;
            lock.unlock();
            cv_done_.notify_all();
        }
    }
}

}  // namespace pgl::core

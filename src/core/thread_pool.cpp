#include "core/thread_pool.hpp"

#include <iostream>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pgl::core {

ThreadPool::ThreadPool(std::uint32_t n_threads, WorkerPlacement placement)
    : placement_(std::move(placement)),
      dispatches_(telemetry::Registry::instance().counter("pool.dispatches")),
      pin_failures_(
          telemetry::Registry::instance().counter("pool.pin.failures")),
      dispatch_wait_(
          telemetry::Registry::instance().histogram("pool.dispatch_wait_ns")),
      barrier_wait_(
          telemetry::Registry::instance().histogram("pool.barrier_wait_ns")) {
    workers_.reserve(n_threads);
    for (std::uint32_t tid = 0; tid < n_threads; ++tid) {
        workers_.emplace_back([this, tid] { worker_loop(tid); });
    }
}

void ThreadPool::pin_self(std::uint32_t tid) {
    if (tid >= placement_.slots.size()) return;
    const std::uint32_t cpu = placement_.slots[tid].cpu;
    bool ok = false;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    ok = pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#endif
    if (ok) return;
    // Best-effort contract: a restricted cpuset (cgroup, container) or a
    // non-Linux host must never abort a run — this worker simply stays
    // unpinned. Placement then degrades but bytes are unaffected.
    pin_failures_.add(1);
    std::call_once(pin_warned_, [&] {
        std::cerr << "pgl: warning: failed to pin pool worker " << tid
                  << " to cpu " << cpu
                  << " (restricted cpuset?); continuing unpinned\n";
    });
}

void ThreadPool::worker_loop(std::uint32_t tid) {
    pin_self(tid);
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_work_.wait(lock, [&] {
            return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) return;
        seen_generation = generation_;
        dispatch_wait_.record(telemetry::now_ns() - launch_ns_);
        // job_ stays untouched until every worker checks in below, so
        // reading it by reference outside the lock is safe.
        const Job& job = job_;
        lock.unlock();

        job(tid);

        lock.lock();
        if (--remaining_ == 0) {
            in_flight_ = false;
            lock.unlock();
            cv_done_.notify_all();
        }
    }
}

ThreadPool::~ThreadPool() {
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::launch(Job job) {
    if (workers_.empty()) {
        job(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = std::move(job);
        remaining_ = size();
        in_flight_ = true;
        ++generation_;
        launch_ns_ = telemetry::now_ns();
    }
    dispatches_.add(1);
    cv_work_.notify_all();
}

void ThreadPool::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!in_flight_) return;
    const std::uint64_t t0 = telemetry::now_ns();
    cv_done_.wait(lock, [this] { return !in_flight_; });
    barrier_wait_.record(telemetry::now_ns() - t0);
}

}  // namespace pgl::core

#pragma once
// The SGD annealing schedule S of Alg. 1, adopted from Zheng, Pawar &
// Goodman, "Graph drawing by stochastic gradient descent" (2018), as used by
// odgi-layout: the learning rate decays exponentially from eta_max (set so
// the weakest term moves in a single step) down to eps.
#include <cstdint>
#include <vector>

namespace pgl::core {

/// Builds the per-iteration learning-rate table.
/// `max_dref` is the largest reference distance in the graph (longest path
/// nucleotide length); term weights are w = 1/d^2, so eta_max = max_dref^2.
std::vector<double> make_eta_schedule(std::uint32_t iter_max, double eps,
                                      double max_dref);

}  // namespace pgl::core

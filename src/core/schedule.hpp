#pragma once
// The SGD annealing schedule S of Alg. 1, adopted from Zheng, Pawar &
// Goodman, "Graph drawing by stochastic gradient descent" (2018), as used by
// odgi-layout: the learning rate decays exponentially from eta_max (set so
// the weakest term moves in a single step) down to eps.
#include <cstdint>
#include <vector>

#include "core/config.hpp"

namespace pgl::core {

/// Builds the per-iteration learning-rate table.
/// `max_dref` is the largest reference distance in the graph (longest path
/// nucleotide length); term weights are w = 1/d^2, so eta_max = max_dref^2.
std::vector<double> make_eta_schedule(std::uint32_t iter_max, double eps,
                                      double max_dref);

/// Explicit-temperature overload: decays from `eta_max` down to `eta_min`
/// over `iter_max` iterations, with the same eta_min <= eta_max clamp as the
/// graph-derived overload. This is how a refinement pass restarts annealing
/// at a low temperature instead of re-annealing from max_dref^2: the refine
/// schedule with eta_max = flat_schedule[I - R] reproduces the last R
/// entries of the I-iteration flat schedule.
std::vector<double> make_eta_schedule(double eta_max, double eta_min,
                                      std::uint32_t iter_max);

/// The schedule an engine runs under `cfg`: cfg.eta_max > 0 selects the
/// explicit restart temperature, otherwise the ceiling derives from
/// `max_dref` as max_dref^2. Shared by every backend so a refinement config
/// means the same thing on all of them.
std::vector<double> make_engine_schedule(const LayoutConfig& cfg,
                                         double max_dref);

}  // namespace pgl::core

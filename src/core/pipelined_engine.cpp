// The pipelined CPU engine ("cpu-pipelined"): PG-SGD with sampling and
// position updates overlapped. The paper's Sec. III observation is that the
// layout loop is sampling-bound — most of an update's cost is drawing the
// term (alias table, Zipf hop, step lookups), not the arithmetic. This
// engine therefore splits the two halves of the loop across threads:
//
//   producers (cfg.threads persistent pool workers)
//       each owns a jumped Xoshiro256+ stream (shard tid = seed stream
//       jumped tid times, the same sharding rule as "cpu-batched") and
//       fills its shard's TermBatch for slice N+1 via the staged,
//       prefetching PairSampler::fill_batch_staged;
//   consumer (the calling thread)
//       applies slice N's batches through the configured UpdateKernel
//       (cfg.kernel: "scalar" or the byte-identical "simd"), in fixed
//       shard order, while the producers sample ahead.
//
// Double buffering means neither side ever waits on a batch the other is
// touching; the pool's dispatch/wait edges order the hand-off. Because the
// consumer is the only thread that writes coordinates and applies batches
// in a deterministic order, a fixed (seed, threads) pair reproduces the
// layout byte-for-byte — unlike the Hogwild engines, whose result depends
// on scheduler interleaving.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/cpu_engine.hpp"
#include "core/kernels/update_kernel.hpp"
#include "core/node_alloc.hpp"
#include "core/schedule.hpp"
#include "core/term_batch.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::core {

namespace {

/// Slice sizing: at least the shared batch slice (keeps a slice's updates
/// cache-hot), at most 64Ki terms (bounds buffer memory at any thread
/// count). Two slices per iteration is the minimum that still overlaps —
/// the producers fill the second half-iteration while the consumer applies
/// the first — and it keeps pool dispatches per iteration constant, so the
/// dispatch latency never grows with the schedule.
constexpr std::size_t kMinSlice = kBatchSliceTerms;
constexpr std::size_t kMaxSlice = std::size_t{1} << 16;
constexpr std::uint64_t kTargetSlicesPerIter = 2;

/// Per-producer skip counter, cache-line padded so producers on different
/// cores never false-share while sampling.
struct alignas(64) ShardCounter {
    std::uint64_t skipped = 0;
};

LayoutResult run_pipelined(const graph::LeanGraph& g, const LayoutConfig& cfg,
                           XYStore& store, const UpdateKernel& kern,
                           ThreadPool& pool, const ProgressHook& hook) {
    LayoutResult result;
    result.eta_schedule = make_engine_schedule(
        cfg, static_cast<double>(g.max_path_nuc_length()));

    const PairSampler sampler(g, cfg);
    const std::uint64_t n_steps = cfg.steps_per_iteration(g.total_path_steps());
    const std::uint32_t n_shards = pool.size();

    std::vector<std::uint64_t> shares(n_shards);
    for (std::uint32_t tid = 0; tid < n_shards; ++tid) {
        shares[tid] = shard_share(n_steps, n_shards, tid);
    }
    // shard_share hands the remainder to the first shards, so shard 0 has
    // the largest share and bounds the slice count for everyone.
    const std::uint64_t max_share = shares[0];
    const std::size_t slice = std::clamp<std::size_t>(
        static_cast<std::size_t>(max_share / kTargetSlicesPerIter), kMinSlice,
        kMaxSlice);
    const std::uint64_t n_slices =
        (max_share + slice - 1) / static_cast<std::uint64_t>(slice);

    // Shard tid's share of slice s (trailing slices of small shards are 0).
    const auto take = [&](std::uint32_t tid, std::uint64_t s) -> std::size_t {
        const std::uint64_t begin =
            std::min<std::uint64_t>(s * slice, shares[tid]);
        const std::uint64_t end = std::min<std::uint64_t>(begin + slice, shares[tid]);
        return static_cast<std::size_t>(end - begin);
    };

    // The per-shard RNG streams match cpu-batched: stream tid is the seed
    // stream jumped tid times, so both engines sample identical terms.
    std::vector<rng::Xoshiro256Plus> rngs;
    rngs.reserve(n_shards);
    rng::Xoshiro256Plus seeder(cfg.seed);
    for (std::uint32_t tid = 0; tid < n_shards; ++tid) {
        rngs.push_back(seeder);
        for (std::uint32_t j = 0; j < tid; ++j) rngs.back().jump();
    }

    // Double buffer: producers fill bufs[1 - cur] while the consumer
    // applies bufs[cur]. No reserve: the staged fill sizes exactly the
    // apply columns on first use (reserve() would also allocate the six
    // replay columns it never writes), and the capacity persists. Shard
    // tid's buffers are only ever written by producer tid, so with pinned
    // workers first touch lands them on the producer's own node — no
    // explicit placement needed.
    std::vector<TermBatch> bufs[2];
    for (auto& side : bufs) side.resize(n_shards);
    std::vector<ShardCounter> fill_skipped(n_shards);

    std::uint64_t total_skipped = 0;
    std::uint32_t iters_done = cfg.iter_max;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
        // Cooperative cancel, checked only at the iteration boundary where
        // no fill job is in flight (the slice loop below always wait()s
        // before its last apply), so the pool is quiescent when we bail.
        if (cfg.cancel_requested()) {
            iters_done = iter;
            break;
        }
        const double eta = result.eta_schedule[iter];
        const bool cooling_iter = cfg.cooling(iter);

        // Sampling depends on the iteration only through the cooling flag,
        // never on eta or the coordinates, so producers may run a full
        // slice ahead of the consumer within the iteration.
        const auto fill_job = [&](int buf, std::uint64_t s) {
            return [&, buf, s](std::uint32_t tid) {
                fill_skipped[tid].skipped += sampler.fill_batch_staged(
                    cooling_iter, rngs[tid], take(tid, s), bufs[buf][tid]);
            };
        };

        int cur = 0;
        pool.run(fill_job(cur, 0));
        for (std::uint64_t s = 0; s < n_slices; ++s) {
            const bool more = s + 1 < n_slices;
            if (more) pool.launch(fill_job(1 - cur, s + 1));
            for (std::uint32_t tid = 0; tid < n_shards; ++tid) {
                kern.apply(bufs[cur][tid], eta, store);
            }
            if (more) pool.wait();
            cur = 1 - cur;
        }

        std::uint64_t iter_skipped = 0;
        for (auto& c : fill_skipped) {
            iter_skipped += c.skipped;
            c.skipped = 0;
        }
        total_skipped += iter_skipped;
        if (hook) {
            IterationStats s;
            s.iteration = iter;
            s.iter_max = cfg.iter_max;
            s.eta = eta;
            s.updates = n_steps;
            s.skipped = iter_skipped;
            hook(s);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();

    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.updates = static_cast<std::uint64_t>(iters_done) * n_steps;
    result.skipped = total_skipped;
    result.layout = store.snapshot();
    return result;
}

class PipelinedLayoutEngine final : public LayoutEngine {
public:
    std::string_view name() const noexcept override { return "cpu-pipelined"; }

protected:
    void do_init() override {
        // Resolving the kernel here also validates cfg.kernel up front
        // (resolve_placement does the same for cfg.numa).
        kernel_ = make_update_kernel(cfg_.kernel);
        // Always at least one producer: even a single-threaded config
        // overlaps sampling with the consumer's updates. Workers persist
        // across run() calls — nothing is spawned in the iteration loop.
        // The pool is recreated when the placement plan changes, not just
        // the size: live workers cannot be repinned.
        const std::uint32_t n = cfg_.threads == 0 ? 1 : cfg_.threads;
        place_ = resolve_placement(cfg_, n);
        const std::string key = place_.key();
        if (!pool_ || pool_->size() != n || pool_key_ != key) {
            pool_ = std::make_unique<ThreadPool>(n, place_.plan);
            pool_key_ = key;
        }
    }

    LayoutResult do_run(const LayoutConfig& cfg) override {
        const Layout initial = make_initial_layout(*graph_, cfg);
        ProgressHook hook;
        if (has_progress_hook()) {
            hook = [this](const IterationStats& s) { emit_progress(s); };
        }
        XYStore s;
        if (place_.memory_active()) {
            NodeAllocator alloc(place_, *pool_);
            s.load(initial, alloc);
        } else {
            s.load(initial);
        }
        return run_pipelined(*graph_, cfg, s, *kernel_, *pool_, hook);
    }

private:
    std::unique_ptr<const UpdateKernel> kernel_;
    std::unique_ptr<ThreadPool> pool_;
    PlacementContext place_;
    std::string pool_key_;
};

}  // namespace

std::unique_ptr<LayoutEngine> make_pipelined_engine() {
    return std::make_unique<PipelinedLayoutEngine>();
}

}  // namespace pgl::core

#pragma once
// The batched term pipeline shared by every PG-SGD backend. A TermBatch is
// a plain SoA buffer of sampled stress terms: the CPU workers process one
// batch per slice, the GPU simulator fills one batch per warp step (one
// slot per lane), the tensor backend turns a batch into its gather/scatter
// index tensors, and the memory-characterization replayer walks a batch to
// reproduce the update loop's address stream. All four therefore consume
// the identical term representation instead of private per-term loops.
//
// Invalid (degenerate) terms keep their slot with valid == 0 so that
// slot-indexed consumers (the warp simulator pairs slot k with lane k) see
// holes exactly where the scalar path would have skipped.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sampling.hpp"
#include "core/step_math.hpp"

namespace pgl::core {

/// Terms per TermBatch slice in the batched/pipelined CPU engines: big
/// enough to amortize the buffer bookkeeping (and, in the pipelined engine,
/// the pool dispatch), small enough that a slice's updates stay hot in
/// L1/L2 before the next slice is sampled.
constexpr std::size_t kBatchSliceTerms = 1024;

struct TermBatch {
    // Sampled path/step identities (needed by the memory-modelling
    // backends, which replay the address stream of the step lookups).
    std::vector<std::uint32_t> path;
    std::vector<std::uint32_t> step_i, step_j;

    // The update's operands: node ids, chosen segment endpoints, reference
    // distance and the coincident-point separation nudge.
    std::vector<std::uint32_t> node_i, node_j;
    std::vector<std::uint8_t> end_i, end_j;
    std::vector<std::uint64_t> pos_i, pos_j;
    std::vector<double> d_ref;
    std::vector<double> nudge;

    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> took_cooling;

    std::size_t size() const noexcept { return d_ref.size(); }
    bool empty() const noexcept { return d_ref.empty(); }

    void clear() noexcept {
        invalid_ = 0;
        path.clear();
        step_i.clear();
        step_j.clear();
        node_i.clear();
        node_j.clear();
        end_i.clear();
        end_j.clear();
        pos_i.clear();
        pos_j.clear();
        d_ref.clear();
        nudge.clear();
        valid.clear();
        took_cooling.clear();
    }

    void reserve(std::size_t n) {
        path.reserve(n);
        step_i.reserve(n);
        step_j.reserve(n);
        node_i.reserve(n);
        node_j.reserve(n);
        end_i.reserve(n);
        end_j.reserve(n);
        pos_i.reserve(n);
        pos_j.reserve(n);
        d_ref.reserve(n);
        nudge.reserve(n);
        valid.reserve(n);
        took_cooling.reserve(n);
    }

    /// Appends one sampled term (valid or not) with its update nudge.
    void append(const TermSample& t, double n) {
        path.push_back(t.path);
        step_i.push_back(t.step_i);
        step_j.push_back(t.step_j);
        node_i.push_back(t.node_i);
        node_j.push_back(t.node_j);
        end_i.push_back(static_cast<std::uint8_t>(t.end_i));
        end_j.push_back(static_cast<std::uint8_t>(t.end_j));
        pos_i.push_back(t.pos_i);
        pos_j.push_back(t.pos_j);
        d_ref.push_back(t.d_ref);
        nudge.push_back(n);
        valid.push_back(t.valid ? 1 : 0);
        if (!t.valid) ++invalid_;
        took_cooling.push_back(t.took_cooling ? 1 : 0);
    }

    /// Pre-sizes exactly the columns the update kernel reads and empties
    /// the replay columns — the shape fill_batch_staged writes by index.
    /// Reuses capacity, so a double-buffered pipeline allocates only on its
    /// first slice. Every slot's validity must subsequently be set exactly
    /// once through mark_valid()/mark_invalid() so the running invalid
    /// counter stays exact.
    void resize_apply_only(std::size_t n) {
        invalid_ = 0;
        node_i.resize(n);
        node_j.resize(n);
        end_i.resize(n);
        end_j.resize(n);
        d_ref.resize(n);
        nudge.resize(n);
        valid.resize(n);
        path.clear();
        step_i.clear();
        step_j.clear();
        pos_i.clear();
        pos_j.clear();
        took_cooling.clear();
    }

    End end_i_of(std::size_t k) const noexcept { return static_cast<End>(end_i[k]); }
    End end_j_of(std::size_t k) const noexcept { return static_cast<End>(end_j[k]); }

    /// Validity writers for the index-filling path (after
    /// resize_apply_only); append() maintains the counter itself.
    void mark_valid(std::size_t k) noexcept { valid[k] = 1; }
    void mark_invalid(std::size_t k) noexcept {
        valid[k] = 0;
        ++invalid_;
    }

    /// Holes in the batch (valid == 0 slots) — a running counter, not a
    /// rescan, so per-warp/per-slice consumers may query it for free.
    std::uint64_t invalid_count() const noexcept { return invalid_; }

private:
    std::uint64_t invalid_ = 0;
};

template <typename Rng>
std::uint64_t PairSampler::fill_batch(bool cooling_iter, Rng& rng, std::size_t n,
                                      TermBatch& out, bool with_nudge) const {
    std::uint64_t skipped = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const TermSample t = sample(cooling_iter, rng);
        double nd = 0.0;
        if (!t.valid) {
            ++skipped;
        } else if (with_nudge) {
            nd = draw_nudge(rng);
        }
        out.append(t, nd);
    }
    return skipped;
}

template <typename Rng>
std::uint64_t PairSampler::fill_batch_staged(bool cooling_iter, Rng& rng,
                                             std::size_t n,
                                             TermBatch& out) const {
    out.resize_apply_only(n);
    const auto offsets = g_->path_offsets();
    const auto records = g_->step_records();
    const auto lengths = g_->node_lengths();

    constexpr std::size_t kBlock = 64;
    struct Staged {
        std::uint64_t flat_i, flat_j;
        std::uint8_t end_i, end_j;
        bool alive;
    };
    Staged stage[kBlock];

    std::uint64_t skipped = 0;
    for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t m = std::min(kBlock, n - base);

        // Stage 1: per-term PRNG draws (alias path, steps, cooling branch,
        // endpoint coins — the exact per-term logic of sample_branch) plus
        // a prefetch of both packed step records. The cold record loads of
        // the whole block overlap instead of serializing term by term.
        for (std::size_t b = 0; b < m; ++b) {
            Staged& st = stage[b];
            st.alive = false;
            const std::uint32_t path = path_alias_(rng);
            const std::uint32_t n_steps = offsets[path + 1] - offsets[path];
            if (n_steps < 2) continue;
            const auto step_i =
                static_cast<std::uint32_t>(rng.next_bounded(n_steps));
            std::uint32_t step_j;
            if (cooling_iter || rng.flip_coin()) {
                // Zipf-distributed hop in a random direction, reflected at
                // the path ends so every step can reach a partner.
                const std::uint64_t hop = zipf_[path](rng);
                std::int64_t j = static_cast<std::int64_t>(step_i);
                j += rng.flip_coin() ? static_cast<std::int64_t>(hop)
                                     : -static_cast<std::int64_t>(hop);
                if (j < 0) j = -j;
                const std::int64_t last = static_cast<std::int64_t>(n_steps) - 1;
                if (j > last) j = 2 * last - j;
                if (j < 0) j = 0;  // extremely short path + long hop
                step_j = static_cast<std::uint32_t>(j);
            } else {
                step_j = static_cast<std::uint32_t>(rng.next_bounded(n_steps));
            }
            if (step_j == step_i) continue;
            st.end_i = rng.flip_coin() ? 0 : 1;
            st.end_j = rng.flip_coin() ? 0 : 1;
            st.flat_i = offsets[path] + step_i;
            st.flat_j = offsets[path] + step_j;
            st.alive = true;
            __builtin_prefetch(&records[st.flat_i], 0, 1);
            __builtin_prefetch(&records[st.flat_j], 0, 1);
        }

        // Stage 2a: read the records (resident by now) and prefetch the
        // node-length entries they point at — the second-level dependent
        // loads stage 1 could not know about.
        for (std::size_t b = 0; b < m; ++b) {
            if (!stage[b].alive) continue;
            __builtin_prefetch(&lengths[records[stage[b].flat_i].node], 0, 1);
            __builtin_prefetch(&lengths[records[stage[b].flat_j].node], 0, 1);
        }

        // Stage 2b: finalize — endpoint positions, d_ref, validity — and
        // write the update columns, drawing one nudge per valid term.
        for (std::size_t b = 0; b < m; ++b) {
            const std::size_t k = base + b;
            const Staged& st = stage[b];
            if (!st.alive) {
                out.mark_invalid(k);
                ++skipped;
                continue;
            }
            const graph::PathStepRecord& ri = records[st.flat_i];
            const graph::PathStepRecord& rj = records[st.flat_j];
            const std::uint64_t pos_i = endpoint_path_position(
                ri.position, lengths[ri.node], ri.orient != 0,
                static_cast<End>(st.end_i));
            const std::uint64_t pos_j = endpoint_path_position(
                rj.position, lengths[rj.node], rj.orient != 0,
                static_cast<End>(st.end_j));
            const std::uint64_t d =
                pos_i > pos_j ? pos_i - pos_j : pos_j - pos_i;
            if (d == 0) {
                out.mark_invalid(k);
                ++skipped;
                continue;
            }
            out.node_i[k] = ri.node;
            out.node_j[k] = rj.node;
            out.end_i[k] = st.end_i;
            out.end_j[k] = st.end_j;
            out.d_ref[k] = static_cast<double>(d);
            out.nudge[k] = draw_nudge(rng);
            out.mark_valid(k);
        }
    }
    return skipped;
}

}  // namespace pgl::core

#pragma once
// The batched term pipeline shared by every PG-SGD backend. A TermBatch is
// a plain SoA buffer of sampled stress terms: the CPU workers process one
// batch per slice, the GPU simulator fills one batch per warp step (one
// slot per lane), the tensor backend turns a batch into its gather/scatter
// index tensors, and the memory-characterization replayer walks a batch to
// reproduce the update loop's address stream. All four therefore consume
// the identical term representation instead of private per-term loops.
//
// Invalid (degenerate) terms keep their slot with valid == 0 so that
// slot-indexed consumers (the warp simulator pairs slot k with lane k) see
// holes exactly where the scalar path would have skipped.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sampling.hpp"
#include "core/step_math.hpp"

namespace pgl::core {

struct TermBatch {
    // Sampled path/step identities (needed by the memory-modelling
    // backends, which replay the address stream of the step lookups).
    std::vector<std::uint32_t> path;
    std::vector<std::uint32_t> step_i, step_j;

    // The update's operands: node ids, chosen segment endpoints, reference
    // distance and the coincident-point separation nudge.
    std::vector<std::uint32_t> node_i, node_j;
    std::vector<std::uint8_t> end_i, end_j;
    std::vector<std::uint64_t> pos_i, pos_j;
    std::vector<double> d_ref;
    std::vector<double> nudge;

    std::vector<std::uint8_t> valid;
    std::vector<std::uint8_t> took_cooling;

    std::size_t size() const noexcept { return d_ref.size(); }
    bool empty() const noexcept { return d_ref.empty(); }

    void clear() noexcept {
        path.clear();
        step_i.clear();
        step_j.clear();
        node_i.clear();
        node_j.clear();
        end_i.clear();
        end_j.clear();
        pos_i.clear();
        pos_j.clear();
        d_ref.clear();
        nudge.clear();
        valid.clear();
        took_cooling.clear();
    }

    void reserve(std::size_t n) {
        path.reserve(n);
        step_i.reserve(n);
        step_j.reserve(n);
        node_i.reserve(n);
        node_j.reserve(n);
        end_i.reserve(n);
        end_j.reserve(n);
        pos_i.reserve(n);
        pos_j.reserve(n);
        d_ref.reserve(n);
        nudge.reserve(n);
        valid.reserve(n);
        took_cooling.reserve(n);
    }

    /// Appends one sampled term (valid or not) with its update nudge.
    void append(const TermSample& t, double n) {
        path.push_back(t.path);
        step_i.push_back(t.step_i);
        step_j.push_back(t.step_j);
        node_i.push_back(t.node_i);
        node_j.push_back(t.node_j);
        end_i.push_back(static_cast<std::uint8_t>(t.end_i));
        end_j.push_back(static_cast<std::uint8_t>(t.end_j));
        pos_i.push_back(t.pos_i);
        pos_j.push_back(t.pos_j);
        d_ref.push_back(t.d_ref);
        nudge.push_back(n);
        valid.push_back(t.valid ? 1 : 0);
        took_cooling.push_back(t.took_cooling ? 1 : 0);
    }

    End end_i_of(std::size_t k) const noexcept { return static_cast<End>(end_i[k]); }
    End end_j_of(std::size_t k) const noexcept { return static_cast<End>(end_j[k]); }

    std::uint64_t invalid_count() const noexcept {
        std::uint64_t n = 0;
        for (const std::uint8_t v : valid) n += (v == 0);
        return n;
    }
};

template <typename Rng>
std::uint64_t PairSampler::fill_batch(bool cooling_iter, Rng& rng, std::size_t n,
                                      TermBatch& out, bool with_nudge) const {
    std::uint64_t skipped = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const TermSample t = sample(cooling_iter, rng);
        double nd = 0.0;
        if (!t.valid) {
            ++skipped;
        } else if (with_nudge) {
            nd = draw_nudge(rng);
        }
        out.append(t, nd);
    }
    return skipped;
}

}  // namespace pgl::core

#pragma once
// Tunables of the PG-SGD layout algorithm (Alg. 1). Defaults follow
// odgi-layout's defaults as described in the paper: 30 iterations, cooling
// in the second half, N_steps = 10 x (sum of path step counts) per
// iteration.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace pgl::core {

struct Layout;  // core/layout.hpp

struct LayoutConfig {
    /// Total SGD iterations (N_iters in Alg. 1); odgi default is 30.
    std::uint32_t iter_max = 30;

    /// Iteration count the annealing schedule is computed over; 0 means
    /// iter_max. Setting this larger than iter_max yields a truncated
    /// ("stopped early") run of a longer schedule — used to produce
    /// partially-converged layouts for quality studies (Fig. 12).
    std::uint32_t schedule_iter_max = 0;

    /// Updates per iteration are `steps_per_iter_factor x total_path_steps`
    /// (Alg. 1 line 1 uses factor 10).
    double steps_per_iter_factor = 10.0;

    /// Final learning rate of the annealing schedule.
    double eps = 0.01;

    /// Explicit annealing ceiling. 0 (the default) derives eta_max from the
    /// graph as max_dref^2; a positive value restarts the schedule at that
    /// temperature instead — how a multilevel refinement pass resumes the
    /// anneal where the flat schedule would have been, rather than from the
    /// top. Clamped so eps <= eta_max (see core::make_eta_schedule).
    double eta_max = 0.0;

    /// Fraction of iterations after which every step takes the cooling
    /// (Zipf-local) branch; before that the branch is a coin flip
    /// (Alg. 1 line 6).
    double cooling_start = 0.5;

    /// Exponent of the Zipf hop-distance distribution in the cooling branch.
    double zipf_theta = 0.99;

    /// Largest hop distance the cooling branch may draw. 0 means "path
    /// length" (unbounded); odgi quantizes the space similarly.
    std::uint64_t zipf_space_max = 1000;

    /// Worker threads for the Hogwild! engine.
    std::uint32_t threads = 1;

    /// Pin pool workers to CPUs (stable worker -> cpu -> node map, see
    /// core/topology.hpp). Execution-only like `numa` below: never part of
    /// the canonical config, because placement never changes the bytes of
    /// a run — the pinned-vs-unpinned byte-identity ctests enforce it.
    bool pin = false;

    /// NUMA memory-placement policy for the coordinate store and shard
    /// buffers: "off" (plain heap), "auto" (pages rotate over the nodes
    /// hosting workers), "interleave" (over every node), "node:K" (one
    /// node). Parsed by core::parse_numa_policy at engine init — an
    /// invalid string throws there. Execution-only; excluded from
    /// canonical_config / canonical_request like `executor`/`processes`.
    std::string numa = "off";

    /// PRNG seed; every run with the same seed and 1 thread is bit-exact.
    std::uint64_t seed = 9'399'220'614'123'047ULL;

    /// Scale of the uniform y-jitter in the initial layout (x mean node len).
    double init_jitter = 1.0;

    /// Update kernel (KernelRegistry name) the batch-draining engines apply
    /// terms with: "scalar" (reference) or "simd" (vectorized,
    /// byte-identical). Engines resolve — and validate — the name at
    /// init().
    std::string kernel = "scalar";

    /// Warm start: when set, engines begin from this layout instead of the
    /// linear initial layout (it must hold exactly node_count() segments —
    /// engines throw otherwise). Shared, never mutated: a multilevel
    /// refinement pass hands every engine the interpolated positions this
    /// way.
    std::shared_ptr<const Layout> initial_layout;

    /// Cooperative cancellation token (the serve daemon's cancel path).
    /// When set and flipped true, iteration-synchronous engines stop at
    /// the next iteration boundary and return the coordinates they have —
    /// a partial layout the caller must treat as abandoned, never publish.
    /// The token is shared_ptr so one flag flows unchanged through config
    /// copies into partition component engines and multilevel passes.
    /// Never part of the canonical config (see canonical_config): it
    /// selects no bytes of a *completed* run.
    std::shared_ptr<const std::atomic<bool>> cancel;

    bool cancel_requested() const noexcept {
        return cancel && cancel->load(std::memory_order_relaxed);
    }

    std::uint32_t schedule_length() const noexcept {
        return schedule_iter_max ? schedule_iter_max : iter_max;
    }

    bool cooling(std::uint32_t iter) const noexcept {
        return iter >= static_cast<std::uint32_t>(cooling_start * schedule_length());
    }

    std::uint64_t steps_per_iteration(std::uint64_t total_path_steps) const noexcept {
        const double s = steps_per_iter_factor * static_cast<double>(total_path_steps);
        return s < 1.0 ? 1 : static_cast<std::uint64_t>(s);
    }
};

}  // namespace pgl::core

#include "core/kernels/update_kernel.hpp"

#include <sstream>
#include <stdexcept>

namespace pgl::core {

KernelRegistry& KernelRegistry::instance() {
    static KernelRegistry registry = [] {
        KernelRegistry r;
        r.add("scalar", make_scalar_kernel);
        r.add("simd", make_simd_kernel);
        return r;
    }();
    return registry;
}

std::unique_ptr<UpdateKernel> make_update_kernel(const std::string& name) {
    auto kernel = KernelRegistry::instance().create(name);
    if (!kernel) {
        std::ostringstream msg;
        msg << "unknown update kernel \"" << name << "\"; available:";
        for (const auto& n : KernelRegistry::instance().names()) msg << " " << n;
        throw std::invalid_argument(msg.str());
    }
    return kernel;
}

}  // namespace pgl::core

// The "scalar" reference kernel: the historical apply_term_batch loop —
// one term at a time, in slot order, through the shared step_math update.
// Every other kernel is defined by byte-equivalence to this one.
#include "core/kernels/update_kernel.hpp"

namespace pgl::core {

namespace {

class ScalarKernel final : public UpdateKernel {
public:
    std::string_view name() const noexcept override { return "scalar"; }

    void apply(const TermBatch& b, double eta, XYStore& store) const override {
        apply_term_slots(b, 0, b.size(), eta, store.x(), store.y());
    }
};

}  // namespace

std::unique_ptr<UpdateKernel> make_scalar_kernel() {
    return std::make_unique<ScalarKernel>();
}

}  // namespace pgl::core

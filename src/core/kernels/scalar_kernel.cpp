// The "scalar" reference kernel: the historical apply_term_batch loop —
// one term at a time, in slot order, through the shared step_math update.
// Every other kernel is defined by byte-equivalence to this one.
#include "core/kernels/update_kernel.hpp"

#include "telemetry/telemetry.hpp"

namespace pgl::core {

namespace {

class ScalarKernel final : public UpdateKernel {
public:
    ScalarKernel()
        : batches_(
              telemetry::Registry::instance().counter("kernel.scalar.batches")),
          terms_(
              telemetry::Registry::instance().counter("kernel.scalar.terms")) {}

    std::string_view name() const noexcept override { return "scalar"; }

    void apply(const TermBatch& b, double eta, XYStore& store) const override {
        apply_term_slots(b, 0, b.size(), eta, store.x(), store.y());
        batches_.add(1);
        terms_.add(b.size());
    }

private:
    telemetry::Counter batches_;
    telemetry::Counter terms_;
};

}  // namespace

std::unique_ptr<UpdateKernel> make_scalar_kernel() {
    return std::make_unique<ScalarKernel>();
}

}  // namespace pgl::core

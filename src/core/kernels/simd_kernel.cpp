// The "simd" update kernel: the batch apply split into (a) a vectorized
// compute-deltas pass over the TermBatch SoA columns — d_ref and nudge are
// loaded directly as double lanes, coordinates are gathered and widened to
// double — and (b) an in-order scatter pass. Lane groups (4 terms under
// AVX2, 2 under SSE2, chosen by CPUID at construction so one portable
// binary runs everywhere) are checked for cross-slot coordinate conflicts
// first: a group in which two *different* slots touch the same endpoint
// falls back to the chained scalar loop, so the "later terms see earlier
// updates" contract holds exactly and the kernel stays byte-identical to
// "scalar".
//
// Byte-identity rests on IEEE semantics: vaddpd/vsubpd/vmulpd/vdivpd/
// vsqrtpd and the double<->float conversions are correctly rounded, so as
// long as the lane arithmetic performs the scalar term's operations in the
// scalar term's order — mul, mul, add, sqrt; no FMA contraction, no
// reassociation — every lane computes the scalar result bit for bit.
// (/ 2.0 is evaluated as * 0.5: both are exact exponent shifts and agree
// for every input, including subnormals.) The PGL_NATIVE build option
// pairs -march=x86-64-v3 with -ffp-contract=off for the same reason: the
// compiler must not contract the *scalar* kernel's mul+add into an FMA the
// intrinsics here don't perform.
//
// Within a conflict-free group the scatter may write all i endpoints, then
// all j endpoints: slots share no coordinate across terms, and the one
// legal intra-term duplicate (both steps on the same node with the same
// chosen end) still sees its j store land after its i store — the scalar
// order's observable effect.
//
// Gathers and scatters deliberately stay in registers (_mm_set_ps /
// shuffle + cvtss): bouncing four narrow stores into a stack array and
// reloading them as one wide vector is a store-forwarding stall per
// operand, which on the sampled-batch fast path costs more than the
// div/sqrt vectorization saves.
//
// Holes (valid == 0) keep their slots: their d_ref/nudge columns are
// loaded but their gathers read index 0 (in bounds by construction) and
// the scatter pass never writes them back. For conflict detection a hole
// gets a per-lane sentinel index pair no real term can produce, so the
// branchless pairwise compare never reports a hole as a conflict.
#include "core/kernels/update_kernel.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "telemetry/telemetry.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pgl::core {

namespace {

/// Per-apply tallies, accumulated in locals inside the group loops and
/// flushed to the registry counters once per batch — the hot loop never
/// touches a shared atomic per group.
struct GroupTally {
    std::uint64_t vector_groups = 0;    ///< groups applied via SIMD lanes
    std::uint64_t fallback_groups = 0;  ///< conflict/tail groups via scalar
};

#if defined(__x86_64__)

/// Per-group slot plan: endpoint coordinate indices (sentinels for holes),
/// valid-lane mask, and whether two different slots share a coordinate.
template <int W>
struct GroupPlan {
    std::uint32_t idx_i[W];
    std::uint32_t idx_j[W];
    unsigned lanes;
    bool conflict;
};

/// Sentinel coordinate indices for hole slots: the top of the 32-bit index
/// space, two per lane, so they collide with nothing (a real index there
/// would imply a ~2^31-node graph, beyond any reachable workload) and not
/// with each other.
template <int W>
GroupPlan<W> plan_group(const TermBatch& b, std::size_t base) noexcept {
    GroupPlan<W> p;
    p.lanes = 0;
    for (int t = 0; t < W; ++t) {
        const std::size_t k = base + t;
        if (b.valid[k]) {
            p.lanes |= 1u << t;
            p.idx_i[t] = 2 * b.node_i[k] + b.end_i[k];
            p.idx_j[t] = 2 * b.node_j[k] + b.end_j[k];
        } else {
            p.idx_i[t] = 0xFFFFFFF0u + 2 * static_cast<unsigned>(t);
            p.idx_j[t] = 0xFFFFFFF1u + 2 * static_cast<unsigned>(t);
        }
    }
    unsigned hit = 0;
    for (int t = 1; t < W; ++t) {
        for (int u = 0; u < t; ++u) {
            hit |= (p.idx_i[t] == p.idx_i[u]) | (p.idx_i[t] == p.idx_j[u]) |
                   (p.idx_j[t] == p.idx_i[u]) | (p.idx_j[t] == p.idx_j[u]);
        }
    }
    p.conflict = hit != 0;
    return p;
}

/// Endpoint indices of 4 slots as u32 lanes: 2*node + end.
__attribute__((target("avx2"))) inline __m128i slot_idx4(
    const std::uint32_t* node, const std::uint8_t* end) noexcept {
    std::uint32_t ew;
    std::memcpy(&ew, end, 4);
    const __m128i node4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(node));
    const __m128i end4 =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(ew)));
    return _mm_add_epi32(_mm_slli_epi32(node4, 1), end4);
}

__attribute__((target("avx2"))) inline __m128i rot1(__m128i v) noexcept {
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 1, 0, 3));
}
__attribute__((target("avx2"))) inline __m128i rot2(__m128i v) noexcept {
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
}
__attribute__((target("avx2"))) inline __m128i rot3(__m128i v) noexcept {
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(0, 3, 2, 1));
}

/// True when two *different* slots of the group share a coordinate: all
/// 6 + 6 + 12 distinct-slot pairs via rotated compares; the diagonal
/// (intra-term i vs j) is legal and never compared.
__attribute__((target("avx2"))) inline bool group_conflict4(
    __m128i ii, __m128i jj) noexcept {
    __m128i c = _mm_cmpeq_epi32(ii, rot1(ii));
    c = _mm_or_si128(c, _mm_cmpeq_epi32(ii, rot2(ii)));
    c = _mm_or_si128(c, _mm_cmpeq_epi32(jj, rot1(jj)));
    c = _mm_or_si128(c, _mm_cmpeq_epi32(jj, rot2(jj)));
    c = _mm_or_si128(c, _mm_cmpeq_epi32(ii, rot1(jj)));
    c = _mm_or_si128(c, _mm_cmpeq_epi32(ii, rot2(jj)));
    c = _mm_or_si128(c, _mm_cmpeq_epi32(ii, rot3(jj)));
    return _mm_movemask_epi8(c) != 0;
}

__attribute__((target("avx2"))) void apply_avx2(const TermBatch& b, double eta,
                                                float* x, float* y,
                                                GroupTally& tally) {
    const std::size_t n = b.size();
    const double* dref_col = b.d_ref.data();
    const double* nudge_col = b.nudge.data();
    const std::uint32_t* ni_col = b.node_i.data();
    const std::uint32_t* nj_col = b.node_j.data();
    const std::uint8_t* ei_col = b.end_i.data();
    const std::uint8_t* ej_col = b.end_j.data();
    const std::uint8_t* valid_col = b.valid.data();
    const __m256d v_eta = _mm256_set1_pd(eta);
    const __m256d v_one = _mm256_set1_pd(1.0);
    const __m256d v_half = _mm256_set1_pd(0.5);
    const __m256d v_eps = _mm256_set1_pd(1e-9);
    const __m256d v_zero = _mm256_setzero_pd();
    const __m256d v_sign = _mm256_set1_pd(-0.0);
    // Distinct per-lane sentinels for hole slots (see file comment).
    const __m128i sent_i =
        _mm_setr_epi32(static_cast<int>(0xFFFFFFF0u), static_cast<int>(0xFFFFFFF2u),
                       static_cast<int>(0xFFFFFFF4u), static_cast<int>(0xFFFFFFF6u));
    const __m128i sent_j =
        _mm_setr_epi32(static_cast<int>(0xFFFFFFF1u), static_cast<int>(0xFFFFFFF3u),
                       static_cast<int>(0xFFFFFFF5u), static_cast<int>(0xFFFFFFF7u));

    std::size_t base = 0;
    for (; base + 4 <= n; base += 4) {
        std::uint32_t vword;
        std::memcpy(&vword, valid_col + base, 4);
        if (vword == 0) continue;
        const bool all_valid = vword == 0x01010101u;

        __m128i ii = slot_idx4(ni_col + base, ei_col + base);
        __m128i jj = slot_idx4(nj_col + base, ej_col + base);
        if (!all_valid) {
            // Holes take sentinel indices (conflict-inert) for the check,
            // index 0 (in bounds, never scattered) for the gather.
            const __m128i hole = _mm_cmpeq_epi32(
                _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(vword))),
                _mm_setzero_si128());
            const __m128i gi = _mm_andnot_si128(hole, ii);
            const __m128i gj = _mm_andnot_si128(hole, jj);
            ii = _mm_blendv_epi8(ii, sent_i, hole);
            jj = _mm_blendv_epi8(jj, sent_j, hole);
            if (group_conflict4(ii, jj)) {
                ++tally.fallback_groups;
                apply_term_slots(b, base, base + 4, eta, x, y);
                continue;
            }
            ii = gi;
            jj = gj;
        } else if (group_conflict4(ii, jj)) {
            ++tally.fallback_groups;
            apply_term_slots(b, base, base + 4, eta, x, y);
            continue;
        }
        ++tally.vector_groups;

        // Coordinate gathers straight off the index lanes (vgatherdps);
        // the indices are also spilled once (wide store, contained narrow
        // reloads — the forwarding-friendly direction) for the scatter.
        alignas(16) std::uint32_t ia[4], ja[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(ia), ii);
        _mm_store_si128(reinterpret_cast<__m128i*>(ja), jj);

        const __m128 xi4 = _mm_i32gather_ps(x, ii, 4);
        const __m128 yi4 = _mm_i32gather_ps(y, ii, 4);
        const __m128 xj4 = _mm_i32gather_ps(x, jj, 4);
        const __m128 yj4 = _mm_i32gather_ps(y, jj, 4);
        const __m256d xi = _mm256_cvtps_pd(xi4);
        const __m256d yi = _mm256_cvtps_pd(yi4);
        const __m256d xj = _mm256_cvtps_pd(xj4);
        const __m256d yj = _mm256_cvtps_pd(yj4);
        const __m256d dref = _mm256_loadu_pd(dref_col + base);
        const __m256d nudge = _mm256_loadu_pd(nudge_col + base);

        __m256d dx = _mm256_sub_pd(xi, xj);
        __m256d dy = _mm256_sub_pd(yi, yj);
        __m256d mag = _mm256_sqrt_pd(
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
        const __m256d near0 = _mm256_cmp_pd(mag, v_eps, _CMP_LT_OQ);
        dx = _mm256_blendv_pd(dx, nudge, near0);
        dy = _mm256_blendv_pd(dy, v_zero, near0);
        mag = _mm256_blendv_pd(mag, _mm256_andnot_pd(v_sign, nudge), near0);

        const __m256d w = _mm256_div_pd(v_one, _mm256_mul_pd(dref, dref));
        const __m256d mu = _mm256_min_pd(_mm256_mul_pd(v_eta, w), v_one);
        const __m256d delta = _mm256_mul_pd(
            _mm256_mul_pd(mu, _mm256_sub_pd(mag, dref)), v_half);
        const __m256d r = _mm256_div_pd(delta, mag);
        const __m256d rx = _mm256_mul_pd(r, dx);
        const __m256d ry = _mm256_mul_pd(r, dy);

        // New endpoint values, still as float lanes (addps is the scalar
        // path's float + float, lane for lane).
        const __m128 nxi = _mm_add_ps(xi4, _mm256_cvtpd_ps(_mm256_xor_pd(rx, v_sign)));
        const __m128 nyi = _mm_add_ps(yi4, _mm256_cvtpd_ps(_mm256_xor_pd(ry, v_sign)));
        const __m128 nxj = _mm_add_ps(xj4, _mm256_cvtpd_ps(rx));
        const __m128 nyj = _mm_add_ps(yj4, _mm256_cvtpd_ps(ry));

        // Scatter: again wide stores + contained narrow reloads. Holes keep
        // gather index 0 but are skipped here, so element 0 is never
        // written on their behalf.
        alignas(16) float vxi[4], vyi[4], vxj[4], vyj[4];
        _mm_store_ps(vxi, nxi);
        _mm_store_ps(vyi, nyi);
        _mm_store_ps(vxj, nxj);
        _mm_store_ps(vyj, nyj);
        if (all_valid) {
            for (int t = 0; t < 4; ++t) {
                x[ia[t]] = vxi[t];
                y[ia[t]] = vyi[t];
            }
            for (int t = 0; t < 4; ++t) {
                x[ja[t]] = vxj[t];
                y[ja[t]] = vyj[t];
            }
        } else {
            for (int t = 0; t < 4; ++t) {
                if (!valid_col[base + t]) continue;
                x[ia[t]] = vxi[t];
                y[ia[t]] = vyi[t];
            }
            for (int t = 0; t < 4; ++t) {
                if (!valid_col[base + t]) continue;
                x[ja[t]] = vxj[t];
                y[ja[t]] = vyj[t];
            }
        }
    }
    if (base < n) {
        ++tally.fallback_groups;
        apply_term_slots(b, base, n, eta, x, y);
    }
}

/// SSE2 blend (blendv is SSE4.1): mask lanes are all-ones or all-zeros.
inline __m128d sse2_blend(__m128d a, __m128d b, __m128d mask) noexcept {
    return _mm_or_pd(_mm_andnot_pd(mask, a), _mm_and_pd(mask, b));
}

void apply_sse2(const TermBatch& b, double eta, float* x, float* y,
                GroupTally& tally) {
    const std::size_t n = b.size();
    const double* dref_col = b.d_ref.data();
    const double* nudge_col = b.nudge.data();
    const __m128d v_eta = _mm_set1_pd(eta);
    const __m128d v_one = _mm_set1_pd(1.0);
    const __m128d v_half = _mm_set1_pd(0.5);
    const __m128d v_eps = _mm_set1_pd(1e-9);
    const __m128d v_zero = _mm_setzero_pd();
    const __m128d v_sign = _mm_set1_pd(-0.0);

    std::size_t base = 0;
    for (; base + 2 <= n; base += 2) {
        const GroupPlan<2> p = plan_group<2>(b, base);
        if (p.lanes == 0) continue;
        if (p.conflict) {
            ++tally.fallback_groups;
            apply_term_slots(b, base, base + 2, eta, x, y);
            continue;
        }
        ++tally.vector_groups;
        std::uint32_t gi[2], gj[2];
        for (int t = 0; t < 2; ++t) {
            const bool v = (p.lanes >> t) & 1u;
            gi[t] = v ? p.idx_i[t] : 0;
            gj[t] = v ? p.idx_j[t] : 0;
        }

        const __m128 xi2 = _mm_set_ps(0.0f, 0.0f, x[gi[1]], x[gi[0]]);
        const __m128 yi2 = _mm_set_ps(0.0f, 0.0f, y[gi[1]], y[gi[0]]);
        const __m128 xj2 = _mm_set_ps(0.0f, 0.0f, x[gj[1]], x[gj[0]]);
        const __m128 yj2 = _mm_set_ps(0.0f, 0.0f, y[gj[1]], y[gj[0]]);
        const __m128d xi = _mm_cvtps_pd(xi2);
        const __m128d yi = _mm_cvtps_pd(yi2);
        const __m128d xj = _mm_cvtps_pd(xj2);
        const __m128d yj = _mm_cvtps_pd(yj2);
        const __m128d dref = _mm_loadu_pd(dref_col + base);
        const __m128d nudge = _mm_loadu_pd(nudge_col + base);

        __m128d dx = _mm_sub_pd(xi, xj);
        __m128d dy = _mm_sub_pd(yi, yj);
        __m128d mag = _mm_sqrt_pd(
            _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
        const __m128d near0 = _mm_cmplt_pd(mag, v_eps);
        dx = sse2_blend(dx, nudge, near0);
        dy = sse2_blend(dy, v_zero, near0);
        mag = sse2_blend(mag, _mm_andnot_pd(v_sign, nudge), near0);

        const __m128d w = _mm_div_pd(v_one, _mm_mul_pd(dref, dref));
        const __m128d mu = _mm_min_pd(_mm_mul_pd(v_eta, w), v_one);
        const __m128d delta =
            _mm_mul_pd(_mm_mul_pd(mu, _mm_sub_pd(mag, dref)), v_half);
        const __m128d r = _mm_div_pd(delta, mag);
        const __m128d rx = _mm_mul_pd(r, dx);
        const __m128d ry = _mm_mul_pd(r, dy);

        const __m128 nxi = _mm_add_ps(xi2, _mm_cvtpd_ps(_mm_xor_pd(rx, v_sign)));
        const __m128 nyi = _mm_add_ps(yi2, _mm_cvtpd_ps(_mm_xor_pd(ry, v_sign)));
        const __m128 nxj = _mm_add_ps(xj2, _mm_cvtpd_ps(rx));
        const __m128 nyj = _mm_add_ps(yj2, _mm_cvtpd_ps(ry));

        const auto lane = [](__m128 v, int t) -> float {
            return t == 0 ? _mm_cvtss_f32(v)
                          : _mm_cvtss_f32(_mm_shuffle_ps(v, v, 0x55));
        };
        for (int t = 0; t < 2; ++t) {
            if (!((p.lanes >> t) & 1u)) continue;
            x[p.idx_i[t]] = lane(nxi, t);
            y[p.idx_i[t]] = lane(nyi, t);
        }
        for (int t = 0; t < 2; ++t) {
            if (!((p.lanes >> t) & 1u)) continue;
            x[p.idx_j[t]] = lane(nxj, t);
            y[p.idx_j[t]] = lane(nyj, t);
        }
    }
    if (base < n) {
        ++tally.fallback_groups;
        apply_term_slots(b, base, n, eta, x, y);
    }
}

#endif  // defined(__x86_64__)

enum class Isa : std::uint8_t { kScalarFallback, kSse2, kAvx2 };

Isa detect_isa() noexcept {
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
    return Isa::kSse2;  // baseline on x86-64
#else
    return Isa::kScalarFallback;
#endif
}

class SimdKernel final : public UpdateKernel {
public:
    SimdKernel()
        : isa_(detect_isa()),
          vector_groups_(telemetry::Registry::instance().counter(
              "kernel.simd.vector_groups")),
          fallback_groups_(telemetry::Registry::instance().counter(
              "kernel.simd.scalar_fallback_groups")),
          terms_(telemetry::Registry::instance().counter(
              "kernel.simd.terms")) {}

    std::string_view name() const noexcept override { return "simd"; }

    std::string_view variant() const noexcept override {
        switch (isa_) {
            case Isa::kAvx2: return "avx2";
            case Isa::kSse2: return "sse2";
            default: return "scalar-fallback";
        }
    }

    void apply(const TermBatch& b, double eta, XYStore& store) const override {
        GroupTally tally;
#if defined(__x86_64__)
        if (isa_ == Isa::kAvx2) {
            apply_avx2(b, eta, store.x(), store.y(), tally);
        } else if (isa_ == Isa::kSse2) {
            apply_sse2(b, eta, store.x(), store.y(), tally);
        } else {
            ++tally.fallback_groups;
            apply_term_slots(b, 0, b.size(), eta, store.x(), store.y());
        }
#else
        ++tally.fallback_groups;
        apply_term_slots(b, 0, b.size(), eta, store.x(), store.y());
#endif
        if (tally.vector_groups) vector_groups_.add(tally.vector_groups);
        if (tally.fallback_groups) fallback_groups_.add(tally.fallback_groups);
        terms_.add(b.size());
    }

private:
    Isa isa_;
    telemetry::Counter vector_groups_;
    telemetry::Counter fallback_groups_;
    telemetry::Counter terms_;
};

}  // namespace

std::unique_ptr<UpdateKernel> make_simd_kernel() {
    return std::make_unique<SimdKernel>();
}

}  // namespace pgl::core

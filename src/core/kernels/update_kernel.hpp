#pragma once
// The pluggable update-kernel layer: the *apply* half of the batched term
// pipeline, factored out of the engines the same way the engines themselves
// were factored behind LayoutEngine. A kernel drains one TermBatch into the
// flat XYStore coordinate arrays; engines pick the kernel by name through
// the string-keyed KernelRegistry (mirroring EngineRegistry), so the CLI,
// benches and tests drive every implementation through one seam.
//
// Built-in registry names:
//   "scalar"  the reference kernel: one term at a time, in slot order —
//             bit-identical to the historical apply_term_batch loop
//   "simd"    vectorized kernel: a compute-deltas pass over the TermBatch
//             SoA columns in AVX2/SSE2 lanes (runtime CPUID dispatch,
//             scalar fallback on other ISAs) plus an in-order scatter pass
//             with per-group conflict fallback — byte-identical to "scalar"
//
// Determinism contract every kernel must honor (it is what the batched and
// pipelined engines' fixed-(seed, threads) byte-reproducibility — and the
// partition scheduler's byte-equivalence ctest — are built on):
//   * terms apply in slot order: a later term reads every coordinate an
//     earlier term of the same batch already wrote ("chained" updates);
//   * slots with valid == 0 are holes and must be skipped untouched;
//   * the arithmetic is the shared step_math term, evaluated with IEEE
//     operations only (no FMA contraction, no reassociation), so different
//     kernels — and different lane widths of the same kernel — produce the
//     same bytes.
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/layout.hpp"
#include "core/registry.hpp"
#include "core/step_math.hpp"
#include "core/term_batch.hpp"

namespace pgl::core {

/// Applies slots [begin, end) one term at a time, in slot order, against
/// raw coordinate arrays (XYStore layout: element 2*node + end). This is
/// the reference semantics: the scalar kernel is exactly this loop over the
/// whole batch, and the SIMD kernel falls back to it for conflicting lane
/// groups and tails.
inline void apply_term_slots(const TermBatch& b, std::size_t begin,
                             std::size_t end, double eta, float* x,
                             float* y) noexcept {
    for (std::size_t k = begin; k < end; ++k) {
        if (!b.valid[k]) continue;
        const std::size_t ii = XYStore::index(b.node_i[k], b.end_i_of(k));
        const std::size_t jj = XYStore::index(b.node_j[k], b.end_j_of(k));
        const float xi = x[ii];
        const float yi = y[ii];
        const float xj = x[jj];
        const float yj = y[jj];
        const PointDelta d =
            sgd_term_update(xi, yi, xj, yj, b.d_ref[k], eta, b.nudge[k]);
        x[ii] = xi + d.dx_i;
        y[ii] = yi + d.dy_i;
        x[jj] = xj + d.dx_j;
        y[jj] = yj + d.dy_j;
    }
}

/// Abstract batch-apply machine. Kernels are stateless and const — one
/// instance may be shared by any number of single-threaded apply sites
/// (each engine resolves its own at init()).
class UpdateKernel {
public:
    virtual ~UpdateKernel() = default;

    /// Registry name ("scalar", "simd").
    virtual std::string_view name() const noexcept = 0;

    /// The implementation actually selected at runtime — for "simd" the
    /// dispatched ISA ("avx2", "sse2", or "scalar-fallback").
    virtual std::string_view variant() const noexcept { return name(); }

    /// Applies every valid term of the batch to the store, in slot order.
    virtual void apply(const TermBatch& b, double eta,
                       XYStore& store) const = 0;
};

/// String-keyed factory registry of update kernels (the shared
/// FactoryRegistry behaviour, like EngineRegistry): built-ins are
/// registered on first use, additional kernels (future: AVX-512, SVE,
/// GPU-resident) register at startup.
class KernelRegistry : public FactoryRegistry<UpdateKernel> {
public:
    static KernelRegistry& instance();

private:
    KernelRegistry() = default;
};

/// Convenience: creates a registered kernel or throws std::invalid_argument
/// listing the available names.
std::unique_ptr<UpdateKernel> make_update_kernel(const std::string& name);

/// Built-in kernel factories (registered under "scalar" / "simd").
std::unique_ptr<UpdateKernel> make_scalar_kernel();
std::unique_ptr<UpdateKernel> make_simd_kernel();

}  // namespace pgl::core

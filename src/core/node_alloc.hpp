#pragma once
// Policy-driven, node-placed allocation without libnuma. Linux commits an
// anonymous page on the NUMA node of the thread that first writes it
// (first-touch), so placement needs no syscalls beyond mmap: a
// NodeAllocator maps a block and has the pool's *pinned* workers zero
// exactly the pages the policy assigns to their node before the caller
// fills in values. The zeroing writes the bytes mmap already guarantees,
// so placement can never change what a run computes — only where the
// pages live.
//
// Per-node placed bytes are counted as `alloc.node<os_id>.bytes`; engines
// whose shard buffers become node-local by worker-side first touch (the
// TermBatch warm-ups) report through account() with an estimate.
#include <cstddef>
#include <cstdint>

namespace pgl::core {

class ThreadPool;
struct PlacementContext;
struct Layout;
class XYStore;

/// One page-aligned mapping (or heap block when mmap is unavailable).
/// Move-only; unmapped on destruction.
class PlacedBlock {
public:
    PlacedBlock() = default;
    ~PlacedBlock() { release(); }

    PlacedBlock(PlacedBlock&& o) noexcept
        : p_(o.p_), bytes_(o.bytes_), mapped_(o.mapped_) {
        o.p_ = nullptr;
        o.bytes_ = 0;
        o.mapped_ = false;
    }
    PlacedBlock& operator=(PlacedBlock&& o) noexcept {
        if (this != &o) {
            release();
            p_ = o.p_;
            bytes_ = o.bytes_;
            mapped_ = o.mapped_;
            o.p_ = nullptr;
            o.bytes_ = 0;
            o.mapped_ = false;
        }
        return *this;
    }
    PlacedBlock(const PlacedBlock&) = delete;
    PlacedBlock& operator=(const PlacedBlock&) = delete;

    float* floats() noexcept { return static_cast<float*>(p_); }
    const float* floats() const noexcept { return static_cast<const float*>(p_); }
    std::size_t bytes() const noexcept { return bytes_; }
    explicit operator bool() const noexcept { return p_ != nullptr; }

private:
    friend class NodeAllocator;
    void release() noexcept;

    void* p_ = nullptr;
    std::size_t bytes_ = 0;
    bool mapped_ = false;
};

/// Allocates placed blocks under one PlacementContext, first-touching
/// through `pool`'s workers. Both referents must outlive the allocator;
/// engines construct one per run around their placed stores.
class NodeAllocator {
public:
    NodeAllocator(const PlacementContext& place, ThreadPool& pool)
        : place_(place), pool_(pool) {}

    NodeAllocator(const NodeAllocator&) = delete;
    NodeAllocator& operator=(const NodeAllocator&) = delete;

    /// A zero-filled block of `count` floats whose pages are committed on
    /// the policy's nodes (pinned workers touch their own pages; pages of
    /// nodes without a worker, and every page when the pool is empty or
    /// unpinned, are touched by the caller).
    PlacedBlock allocate_floats(std::size_t count);

    /// Adds `bytes` to `alloc.node<os_id>.bytes` for topology node index
    /// `topo_node` — the accounting hook for buffers placed by natural
    /// worker-side first touch rather than through allocate_floats.
    void account(std::uint32_t topo_node, std::uint64_t bytes) const;

private:
    const PlacementContext& place_;
    ThreadPool& pool_;
};

}  // namespace pgl::core

#pragma once
// Canonical text form of a LayoutConfig — the config half of the serve
// daemon's content-addressed artifact-cache key.
//
// Two configs that produce byte-identical layouts on the same graph must
// canonicalize to the same string, however their fields arrived (JSON key
// order, defaulted vs explicit values, "3" vs "3.0"). The rules:
//
//   * fixed field order (alphabetical), one `name=value` per field,
//     ';'-separated — wire-format key reordering cannot change the string;
//   * every output-affecting field is present, always, so a field left at
//     its default hashes identically to the same value spelled out;
//   * doubles print via shortest round-trip (std::to_chars), so any two
//     spellings of the same binary64 value agree;
//   * fields that do NOT select output bytes (cancel token, the warm-start
//     layout pointer — keyed separately by callers that use it) are
//     excluded.
//
// Callers composing a larger key (backend, partition, multilevel) append
// their own fields around this core string; see serve::cache_key.
#include <string>
#include <string_view>

#include "core/config.hpp"

namespace pgl::core {

/// The canonical `name=value;...` rendering of every output-affecting
/// LayoutConfig field.
std::string canonical_config(const LayoutConfig& cfg);

/// Shortest round-trip rendering of a double (std::to_chars), the number
/// format canonical_config uses — exposed so other key builders render
/// doubles identically.
std::string canonical_double(double v);

/// Applies one canonical `name=value` field to `cfg`. Returns false for a
/// field name canonical_config does not emit (callers layering their own
/// fields — backend, multilevel — handle those first and fall through
/// here); throws std::invalid_argument on a malformed value.
bool apply_canonical_field(LayoutConfig& cfg, std::string_view name,
                           std::string_view value);

/// Inverse of canonical_config: parses a `name=value;...` string back into
/// a LayoutConfig (unmentioned fields keep their defaults). Throws
/// std::invalid_argument on malformed input or an unknown field. The
/// round trip parse(canonical_config(cfg)) reproduces every
/// output-affecting field exactly — this is the wire format the
/// multi-process partition executor ships configs to worker processes in.
LayoutConfig parse_canonical_config(std::string_view spec);

}  // namespace pgl::core

#pragma once
// The pluggable layout-engine interface. The paper's central comparison is
// one algorithm (PG-SGD, Alg. 1) executed by several machines — the
// multithreaded CPU Hogwild baseline, a PyTorch-style batched
// implementation and the optimized CUDA kernel (simulated here). Every
// backend implements this interface (init -> run(iterations) ->
// LayoutResult) and is created by name through the EngineRegistry, so
// tools, benches and cross-backend experiments drive all of them through
// one seam.
//
// Built-in registry names:
//   "cpu-soa"           scalar Hogwild CPU engine, original SoA store
//   "cpu-aos"           scalar Hogwild CPU engine, cache-friendly AoS store
//   "cpu-batched"       batched CPU engine (one TermBatch per worker slice;
//                       parallel sampling, shard-ordered application —
//                       deterministic per seed+threads)
//   "cpu-pipelined"     pipelined CPU engine (pool producers sample ahead,
//                       the consumer applies; deterministic per seed+threads)
//   "gpusim-base"       simulated CUDA kernel, no optimizations
//   "gpusim-optimized"  simulated CUDA kernel, CDL + CRS + WM
//   "torch"             PyTorch-style batched tensor implementation
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/registry.hpp"
#include "graph/lean_graph.hpp"

namespace pgl::core {

struct LayoutResult {
    Layout layout;
    double seconds = 0.0;             ///< wall-clock of the SGD loop (modeled
                                      ///< device time for gpusim/torch)
    std::uint64_t updates = 0;        ///< terms processed (including skipped)
    std::uint64_t skipped = 0;        ///< degenerate terms (d_ref == 0 etc.)
    std::vector<double> eta_schedule; ///< learning rate used per iteration
};

/// The degenerate-graph rule shared by every execution path — flat runs,
/// the multilevel plan interpreter, and both partition executors: a graph
/// with zero sampleable path terms has an empty SGD objective (the alias
/// table cannot even be built), so the seeded initial layout IS the final
/// layout. Returns an engaged zero-update result for such graphs and
/// nullopt when there is work to do. Defined once so the fallback's RNG
/// stream (make_initial_layout's salted seed) cannot drift between paths.
inline std::optional<LayoutResult> empty_objective_result(
    const graph::LeanGraph& g, const LayoutConfig& cfg) {
    if (g.total_path_steps() != 0) return std::nullopt;
    LayoutResult r;
    r.layout = make_initial_layout(g, cfg);
    return r;
}

/// Per-iteration progress snapshot passed to the progress hook.
struct IterationStats {
    std::uint32_t iteration = 0;      ///< 0-based iteration just finished
    std::uint32_t iter_max = 0;       ///< iterations in this run
    double eta = 0.0;                 ///< learning rate of the iteration
    std::uint64_t updates = 0;        ///< terms processed this iteration
    std::uint64_t skipped = 0;        ///< degenerate terms this iteration
};

using ProgressHook = std::function<void(const IterationStats&)>;

/// Abstract PG-SGD execution machine. Usage:
///
///   auto eng = core::make_engine("cpu-batched");
///   eng->init(graph, cfg);
///   eng->set_progress_hook([](const auto& s) { ... });  // optional
///   auto result = eng->run();          // full schedule (cfg.iter_max)
///   auto probe  = eng->run(3);         // or a truncated run
///
/// Every backend reports per-iteration progress. Iteration-synchronous
/// engines (cpu-batched, cpu-pipelined, gpusim-*, torch, and the scalar
/// CPU engine with one thread) invoke the hook from the calling thread
/// after each iteration. The multithreaded Hogwild scalar path still runs
/// its workers through the whole schedule without barriers — exactly as
/// odgi-layout does — but each worker marks iteration boundaries as it
/// crosses them, and the *last* worker past a boundary emits the
/// aggregated IterationStats. Consequence: with threads > 1 on cpu-soa /
/// cpu-aos the hook may fire on a worker thread (serialized, never
/// concurrently), and its updates/skipped are the aggregate since the
/// previous boundary rather than an exact per-iteration slice.
///
/// run() also feeds the telemetry layer (src/telemetry/): an `engine.run`
/// stage span, per-iteration `engine.iteration_ns` histogram samples, and
/// `engine.{runs,iterations,updates,skipped}` counters — all compiled out
/// under -DPGL_TELEMETRY=OFF.
class LayoutEngine {
public:
    virtual ~LayoutEngine() = default;

    virtual std::string_view name() const noexcept = 0;

    /// Binds the engine to a graph and configuration. Must be called before
    /// run(); may be called again to re-target the engine.
    void init(const graph::LeanGraph& g, const LayoutConfig& cfg) {
        graph_ = &g;
        cfg_ = cfg;
        do_init();
    }

    /// Executes the schedule and returns the final layout. `iterations`
    /// overrides cfg.iter_max when nonzero (a truncated run of the same
    /// annealing schedule). Throws std::logic_error if init() was not
    /// called.
    LayoutResult run(std::uint32_t iterations = 0);

    void set_progress_hook(ProgressHook hook) { hook_ = std::move(hook); }

protected:
    virtual void do_init() {}
    virtual LayoutResult do_run(const LayoutConfig& cfg) = 0;

    void emit_progress(const IterationStats& stats) const {
        if (hook_) hook_(stats);
    }
    bool has_progress_hook() const noexcept { return static_cast<bool>(hook_); }

    const graph::LeanGraph* graph_ = nullptr;
    LayoutConfig cfg_{};

private:
    ProgressHook hook_;
};

/// String-keyed factory registry of layout engines (the shared
/// FactoryRegistry behaviour: add-or-replace, contains, create, sorted
/// names). The built-in backends are registered on first use; additional
/// engines (future: real CUDA, sharded, async) can be registered at
/// startup by name.
class EngineRegistry : public FactoryRegistry<LayoutEngine> {
public:
    /// The process-wide registry, with all built-in engines registered.
    static EngineRegistry& instance();

private:
    EngineRegistry() = default;
};

/// Convenience: creates a registered engine or throws std::invalid_argument
/// listing the available names.
std::unique_ptr<LayoutEngine> make_engine(const std::string& name);

}  // namespace pgl::core

#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace pgl::core {

std::vector<double> make_eta_schedule(double eta_max, double eta_min,
                                      std::uint32_t iter_max) {
    std::vector<double> etas;
    if (iter_max == 0) return etas;
    etas.reserve(iter_max);
    const double emax = std::max(eta_max, 1e-30);
    // Clamp eta_min into (0, eta_max]: an eta_min above eta_max would make
    // lambda negative and the schedule *grow* over iterations instead of
    // annealing.
    const double emin = std::min(std::max(eta_min, 1e-30), emax);
    if (iter_max == 1) {
        etas.push_back(emax);
        return etas;
    }
    const double lambda =
        std::log(emax / emin) / static_cast<double>(iter_max - 1);
    for (std::uint32_t i = 0; i < iter_max; ++i) {
        etas.push_back(emax * std::exp(-lambda * static_cast<double>(i)));
    }
    return etas;
}

std::vector<double> make_eta_schedule(std::uint32_t iter_max, double eps,
                                      double max_dref) {
    // Term weights are w = 1/d^2, so the schedule tops out where the
    // weakest (longest-range) term still moves in one step.
    const double d = std::max(1.0, max_dref);
    return make_eta_schedule(d * d, eps, iter_max);
}

std::vector<double> make_engine_schedule(const LayoutConfig& cfg,
                                         double max_dref) {
    if (cfg.eta_max > 0.0) {
        return make_eta_schedule(cfg.eta_max, cfg.eps, cfg.schedule_length());
    }
    return make_eta_schedule(cfg.schedule_length(), cfg.eps, max_dref);
}

}  // namespace pgl::core

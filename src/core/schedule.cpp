#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace pgl::core {

std::vector<double> make_eta_schedule(std::uint32_t iter_max, double eps,
                                      double max_dref) {
    std::vector<double> etas;
    if (iter_max == 0) return etas;
    etas.reserve(iter_max);
    const double d = std::max(1.0, max_dref);
    const double eta_max = d * d;
    // Clamp eta_min into (0, eta_max]: on tiny graphs (max_dref = 1) a
    // default eps above eta_max would make lambda negative and the schedule
    // *grow* over iterations instead of annealing.
    const double eta_min = std::min(std::max(eps, 1e-30), eta_max);
    if (iter_max == 1) {
        etas.push_back(eta_max);
        return etas;
    }
    const double lambda =
        std::log(eta_max / eta_min) / static_cast<double>(iter_max - 1);
    for (std::uint32_t i = 0; i < iter_max; ++i) {
        etas.push_back(eta_max * std::exp(-lambda * static_cast<double>(i)));
    }
    return etas;
}

}  // namespace pgl::core

#pragma once
// NUMA topology discovery and placement policy — the machine model behind
// worker pinning (core::ThreadPool) and node-local allocation
// (core::NodeAllocator). Past one socket the PG-SGD update loop stops being
// memory-speed unless the XYStore pages and per-shard TermBatch buffers sit
// on the node of the workers touching them; everything here exists to make
// that placement explicit while changing *nothing* about the computed
// bytes: placement and pinning are execution-only knobs, excluded from the
// canonical config, and a fixed (seed, threads) run is byte-identical with
// pinning on, off, or partially failed.
//
// Discovery reads sysfs (/sys/devices/system/node/) and the caller's
// allowed cpuset (sched_getaffinity) — no libnuma dependency. Machines
// without NUMA sysfs, restricted-cpuset containers, and non-Linux hosts
// all degrade to a one-node topology covering the allowed CPUs, on which
// every policy is a well-defined no-op.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pgl::core {

struct LayoutConfig;  // core/config.hpp

/// One NUMA node as the caller sees it: the OS node id and the allowed
/// CPUs on it (sorted). Nodes whose CPUs are all outside the allowed
/// cpuset are dropped at discovery.
struct NumaNodeInfo {
    std::uint32_t os_id = 0;
    std::vector<std::uint32_t> cpus;
};

/// The discovered machine: at least one node, each with at least one
/// allowed CPU. Node order follows ascending os_id; policies index nodes
/// by *position in this list* (topology index), not by os_id, so a
/// cpuset-restricted view stays dense.
struct Topology {
    std::vector<NumaNodeInfo> nodes;
    std::vector<std::uint32_t> allowed;  ///< union of node cpus, sorted

    std::uint32_t node_count() const noexcept {
        return static_cast<std::uint32_t>(nodes.size());
    }
    std::uint32_t allowed_cpu_count() const noexcept {
        return static_cast<std::uint32_t>(allowed.size());
    }
    bool single_node() const noexcept { return nodes.size() <= 1; }
};

/// Parses the kernel's cpulist grammar ("0-3,8,10-11") into a sorted,
/// deduplicated CPU list. Empty/whitespace input yields an empty list;
/// malformed input (reversed ranges, non-digits) throws
/// std::invalid_argument.
std::vector<std::uint32_t> parse_cpu_list(std::string_view text);

/// The calling thread's allowed CPUs (sched_getaffinity). Falls back to
/// {0 .. hardware_concurrency-1} when the syscall is unavailable; never
/// returns an empty list on a working machine.
std::vector<std::uint32_t> allowed_cpus_self();

/// Discovery against an explicit sysfs node directory (the shape of
/// /sys/devices/system/node: an `online` cpulist of node ids plus
/// node<K>/cpulist per node), intersected with `allowed`. The pure,
/// fixture-testable core of discover_topology(). Any missing or malformed
/// piece degrades to the one-node fallback over `allowed`.
Topology discover_topology_from(const std::string& node_dir,
                                std::vector<std::uint32_t> allowed);

/// The process-wide topology: discover_topology_from("/sys/devices/system/
/// node", allowed_cpus_self()), computed once and cached. Records the
/// `topology.nodes` / `topology.cpus` telemetry counters on first call.
const Topology& discover_topology();

/// Memory-placement policy, the parsed form of the `--numa` knob.
enum class NumaMode : std::uint8_t {
    kOff,         ///< no placement: plain heap allocation, first touch wins
    kAuto,        ///< pages rotate over the nodes hosting workers
    kInterleave,  ///< pages rotate over every node
    kNode,        ///< everything on one node (topology index `node`)
};

struct NumaPolicy {
    NumaMode mode = NumaMode::kOff;
    std::uint32_t node = 0;  ///< kNode only; normalized modulo node_count

    bool active() const noexcept { return mode != NumaMode::kOff; }
};

/// Parses "off" | "auto" | "interleave" | "node:K". Throws
/// std::invalid_argument naming the accepted forms on anything else.
NumaPolicy parse_numa_policy(std::string_view text);

std::string to_string(const NumaPolicy& p);

/// Where one pool worker belongs: a CPU to pin to and the topology index
/// of the node owning that CPU.
struct WorkerSlot {
    std::uint32_t cpu = 0;
    std::uint32_t node = 0;
};

/// The stable worker -> cpu -> node map for one pool. Deterministic in
/// (topology, policy, n_workers); an empty plan means "do not pin".
struct WorkerPlacement {
    std::vector<WorkerSlot> slots;

    bool empty() const noexcept { return slots.empty(); }
    /// Compact "cpu@node,cpu@node,..." form — pool identity key and logs.
    std::string describe() const;
};

/// Plans pinning for `n_workers` workers under `policy`:
///   off/auto    contiguous blocks of workers per node (the shard_share
///               remainder rule), CPUs round-robin within the node;
///   interleave  worker w -> node w % node_count;
///   node:K      every worker on node K (normalized modulo node_count).
/// CPUs repeat when a node hosts more workers than allowed CPUs.
WorkerPlacement plan_worker_placement(const Topology& topo,
                                      const NumaPolicy& policy,
                                      std::uint32_t n_workers);

/// Everything an engine needs to act on cfg.pin / cfg.numa, resolved once
/// at init. `topo` points at the cached process topology (or is null when
/// both knobs are off). Copyable; the topology outlives every engine.
struct PlacementContext {
    bool pin = false;
    NumaPolicy policy;
    const Topology* topo = nullptr;
    WorkerPlacement plan;  ///< empty unless pin and n_workers > 0
    std::vector<std::uint32_t> mem_nodes;  ///< topology indices pages rotate
                                           ///< over (empty when policy off)

    bool active() const noexcept { return pin || policy.active(); }
    bool memory_active() const noexcept { return policy.active(); }

    /// Owning node (topology index) of page `page` under the policy.
    std::uint32_t page_node(std::uint64_t page) const noexcept {
        if (mem_nodes.empty()) return 0;
        return mem_nodes[page % mem_nodes.size()];
    }

    /// Pool identity: two contexts with equal keys need the same workers.
    std::string key() const;
};

/// Resolves cfg.pin / cfg.numa against the cached topology for a pool of
/// `n_workers` workers. Throws std::invalid_argument on a malformed
/// cfg.numa string; an out-of-range node:K degrades deterministically to
/// K % node_count. With both knobs off this touches no sysfs and returns
/// an inactive context.
PlacementContext resolve_placement(const LayoutConfig& cfg,
                                   std::uint32_t n_workers);

}  // namespace pgl::core

#include "gpusim/gpu_spec.hpp"

namespace pgl::gpusim {

GpuSpec rtx_a6000() {
    GpuSpec s;
    s.name = "RTX A6000";
    s.sm_count = 84;
    s.warps_per_sm = 16;
    s.core_clock_ghz = 1.80;
    s.dram_gbps = 768.0;
    s.l1_bytes_per_sm = 128 * 1024;
    s.l2_bytes = 6ULL * 1024 * 1024;
    s.lat_l1 = 2.0;
    s.lat_l2 = 5.0;
    s.lat_dram = 23.0;
    s.effective_parallel_lanes = 100.0;
    s.ipc_per_sm = 0.12;
    return s;
}

GpuSpec a100() {
    GpuSpec s;
    s.name = "A100";
    s.sm_count = 108;
    s.warps_per_sm = 16;
    s.core_clock_ghz = 1.41;
    s.dram_gbps = 1555.0;
    s.l1_bytes_per_sm = 192 * 1024;
    s.l2_bytes = 40ULL * 1024 * 1024;
    s.lat_l1 = 1.2;
    s.lat_l2 = 2.4;
    s.lat_dram = 8.0;
    s.effective_parallel_lanes = 100.0;
    s.ipc_per_sm = 0.18;
    return s;
}

}  // namespace pgl::gpusim

#pragma once
// Functional + performance-model simulator of the paper's CUDA layout
// kernel (Sec. V). The simulator stands in for real GPU hardware (see
// DESIGN.md): it executes the PG-SGD updates for real (so the produced
// layout has genuine, measurable quality) while modelling, at warp
// granularity, the memory behaviour the paper's three optimizations target:
//
//  * per-warp memory requests are coalesced into 32 B sectors, so the
//    AoS-vs-SoA organization of XORWOW states changes sectors/request
//    exactly as in Fig. 10 (coalesced random states);
//  * node/path data requests differ between the original SoA organization
//    and the cache-friendly AoS records of Fig. 9 (cache-friendly layout);
//  * the cooling/non-cooling branch is taken per lane or per warp,
//    re-executing divergent regions per side as real warps do (warp
//    merging, Fig. 11);
//  * each SM owns a sectored L1, all SMs share the L2, and L2 misses count
//    as DRAM sectors.
//
// The counters feed a latency-bound time model (memory stalls dominated,
// instruction term mostly hidden) whose absolute scale is calibrated but
// whose *relative* outcomes — the Fig. 16 ladder, Tables IX-XI, the Fig. 17
// DSE, and the A6000/A100 gap — are produced by the simulated counters.
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/layout.hpp"
#include "gpusim/gpu_spec.hpp"
#include "graph/lean_graph.hpp"

namespace pgl::gpusim {

/// Which of the paper's kernel optimizations are enabled, plus the data
/// reuse scheme of the Sec. VII-D case study.
struct KernelConfig {
    bool cache_friendly_layout = false;  ///< CDL  (Sec. V-B1)
    bool coalesced_rng = false;          ///< CRS  (Sec. V-B2)
    bool warp_merge = false;             ///< WM   (Sec. V-B3)

    std::uint32_t data_reuse_factor = 1;   ///< DRF (Fig. 17); 1 = off
    double step_reduction_factor = 1.0;    ///< SRF (Fig. 17); 1 = off

    static KernelConfig base() { return {}; }
    static KernelConfig optimized() {
        KernelConfig k;
        k.cache_friendly_layout = true;
        k.coalesced_rng = true;
        k.warp_merge = true;
        return k;
    }
};

struct GpuCounters {
    std::uint64_t lane_updates = 0;      ///< functional updates applied
    std::uint64_t skipped_terms = 0;     ///< degenerate sampled terms
    std::uint64_t warp_steps = 0;        ///< warp-level update steps
    std::uint64_t kernel_launches = 0;

    // Instruction / divergence accounting (Table XI).
    double executed_warp_instructions = 0.0;
    double active_thread_instruction_sum = 0.0;  ///< sum(active x instr)

    // Memory accounting (Tables IX, X). Only a 1-in-N sample of warp steps
    // is fed through the cache model; these values are scaled back up.
    double l1_requests = 0.0;
    double l1_sectors = 0.0;
    double l2_sectors = 0.0;    ///< sectors that missed L1
    double dram_sectors = 0.0;  ///< sectors that missed L2

    double avg_active_threads() const {
        return executed_warp_instructions > 0
                   ? active_thread_instruction_sum / executed_warp_instructions
                   : 0.0;
    }
    double sectors_per_request() const {
        return l1_requests > 0 ? l1_sectors / l1_requests : 0.0;
    }
    double l1_bytes() const { return l1_sectors * 32.0; }
    double l2_bytes() const { return l2_sectors * 32.0; }
    double dram_bytes() const { return dram_sectors * 32.0; }
};

struct GpuSimResult {
    core::Layout layout;
    GpuCounters counters;
    double modeled_seconds = 0.0;  ///< time model output for the full run
    double sim_wall_seconds = 0.0; ///< host time spent simulating
    std::vector<double> eta_schedule;  ///< learning rate per iteration
};

struct SimOptions {
    /// Feed every Nth warp step through the cache/counter model (functional
    /// updates always run). 1 = model everything.
    std::uint32_t counter_sample_period = 8;
    /// Scale the GPU cache capacities along with the graph scale so the
    /// working-set-to-cache ratio matches full-scale behaviour (same idea
    /// as memsim's llc_scale).
    double cache_scale = 1.0;
    /// Optional per-iteration (per-kernel-launch) progress callback.
    core::ProgressHook progress;
};

/// Runs the simulated kernel for the whole PG-SGD schedule and returns the
/// final layout plus counters and modeled time.
GpuSimResult simulate_gpu_layout(const graph::LeanGraph& g,
                                 const core::LayoutConfig& cfg,
                                 const KernelConfig& kernel, const GpuSpec& spec,
                                 const SimOptions& opt = {});

/// The time model, exposed for tests: combines the latency-weighted memory
/// term with the (mostly hidden) instruction term and launch overhead.
double model_time_seconds(const GpuCounters& c, const GpuSpec& spec);

/// Creates a simulated-GPU layout engine ("gpusim-base"/"gpusim-optimized"
/// in the registry; any kernel/spec combination may be constructed
/// directly). LayoutResult.seconds reports the *modeled* device time.
std::unique_ptr<core::LayoutEngine> make_gpusim_engine(
    const KernelConfig& kernel, const GpuSpec& spec, const SimOptions& opt = {});

}  // namespace pgl::gpusim

#include "gpusim/gpu_machine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "core/kernels/update_kernel.hpp"
#include "core/sampling.hpp"
#include "core/schedule.hpp"
#include "core/step_math.hpp"
#include "core/term_batch.hpp"
#include "memsim/cache.hpp"
#include "rng/xorwow.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::gpusim {

namespace {

using core::End;
using core::TermSample;
using memsim::Cache;
using memsim::CacheConfig;

// Abstract GPU global-memory address space (one base per structure).
constexpr std::uint64_t kBaseRngStates = 0x0100'0000'0000ULL;
constexpr std::uint64_t kBaseRngField0 = 0x0200'0000'0000ULL;  // SoA fields
constexpr std::uint64_t kRngFieldStride = 0x0010'0000'0000ULL;
constexpr std::uint64_t kBaseAliasProb = 0x0300'0000'0000ULL;
constexpr std::uint64_t kBaseAliasAlias = 0x0400'0000'0000ULL;
constexpr std::uint64_t kBaseStepNode = 0x0500'0000'0000ULL;
constexpr std::uint64_t kBaseStepPos = 0x0600'0000'0000ULL;
constexpr std::uint64_t kBaseStepOrient = 0x0700'0000'0000ULL;
constexpr std::uint64_t kBaseStepRec = 0x0800'0000'0000ULL;
constexpr std::uint64_t kBaseCoordX = 0x0900'0000'0000ULL;
constexpr std::uint64_t kBaseCoordY = 0x0A00'0000'0000ULL;
constexpr std::uint64_t kBaseNodeLen = 0x0B00'0000'0000ULL;
constexpr std::uint64_t kBaseNodeRec = 0x0C00'0000'0000ULL;

constexpr std::uint32_t kXorwowStateBytes = 24;
constexpr std::uint32_t kNodeRecBytes = 24;
constexpr std::uint32_t kStepRecBytes = 16;

// Instruction cost model (warp instructions per update step region).
constexpr double kInstrPre = 90;      // path selection + PRNG sequencing
constexpr double kInstrBranch = 150;  // node-pair selection inside the branch
constexpr double kInstrPost = 110;    // loads, FP math, stores
constexpr double kInstrWmOverhead = 4;   // control-lane broadcast
constexpr double kInstrPerReuse = 40;    // warp-shuffle + FP per DRF update
constexpr double kActivePredFraction = 0.875;  // baseline predication losses

// PRNG usage per update step: draws consumed, and how many of them happen
// inside the divergent branch region (hop / partner-step selection).
constexpr std::uint32_t kRngDrawsPerStep = 6;
constexpr std::uint32_t kRngDrawsInBranch = 3;
constexpr std::uint32_t kRngFieldAccessesPerDraw = 12;  // 6 reads + 6 writes

/// One simulated memory system: per-SM sectored L1s over a shared L2.
class GpuMemory {
public:
    GpuMemory(const GpuSpec& spec, double cache_scale)
        : sector_(spec.sector_bytes),
          l2_(CacheConfig{scale_capacity(spec.l2_bytes, cache_scale, spec),
                          spec.sector_bytes, 16}) {
        l1_.reserve(spec.sm_count);
        const CacheConfig l1cfg{
            scale_capacity(spec.l1_bytes_per_sm, cache_scale, spec),
            spec.sector_bytes, 4};
        for (std::uint32_t i = 0; i < spec.sm_count; ++i) l1_.emplace_back(l1cfg);
    }

    /// Issues one warp request: the lane addresses are coalesced into
    /// unique sectors which then probe the SM's L1 and the shared L2.
    void issue(std::uint32_t sm, const std::vector<std::uint64_t>& lane_addrs,
               std::uint32_t bytes_per_lane, GpuCounters& c) {
        sectors_.clear();
        for (const std::uint64_t a : lane_addrs) {
            const std::uint64_t first = a / sector_;
            const std::uint64_t last = (a + bytes_per_lane - 1) / sector_;
            for (std::uint64_t s = first; s <= last; ++s) sectors_.push_back(s);
        }
        std::sort(sectors_.begin(), sectors_.end());
        sectors_.erase(std::unique(sectors_.begin(), sectors_.end()),
                       sectors_.end());
        c.l1_requests += 1;
        c.l1_sectors += static_cast<double>(sectors_.size());
        for (const std::uint64_t s : sectors_) {
            if (!l1_[sm].access_line(s)) {
                c.l2_sectors += 1;
                if (!l2_.access_line(s)) c.dram_sectors += 1;
            }
        }
    }

private:
    static std::uint64_t scale_capacity(std::uint64_t bytes, double scale,
                                        const GpuSpec& spec) {
        double v = static_cast<double>(bytes) * scale;
        const double floor_bytes = 64.0 * spec.sector_bytes;
        if (v < floor_bytes) v = floor_bytes;
        std::uint64_t p = 1;
        while (static_cast<double>(p) * 2.0 <= v) p *= 2;
        return p;
    }

    std::uint32_t sector_;
    std::vector<Cache> l1_;
    Cache l2_;
    std::vector<std::uint64_t> sectors_;  // scratch
};

}  // namespace

double model_time_seconds(const GpuCounters& c, const GpuSpec& spec) {
    // Additive throughput-cost model: every simulated sector touch costs a
    // level-specific number of amortized device cycles (already discounted
    // by typical memory-level parallelism and spread over the device via
    // effective_parallel_lanes); the instruction stream issues at an
    // achieved (not peak) IPC. Coefficients were fitted so that the paper's
    // per-optimization run-time ratios (Tables IX-XI) emerge from the
    // simulated counter deltas — see EXPERIMENTS.md for the calibration.
    const double mem_cycles = (c.l1_sectors * spec.lat_l1 +
                               c.l2_sectors * spec.lat_l2 +
                               c.dram_sectors * spec.lat_dram) /
                              spec.effective_parallel_lanes;
    const double inst_cycles = c.executed_warp_instructions /
                               (static_cast<double>(spec.sm_count) * spec.ipc_per_sm);
    return (mem_cycles + inst_cycles) / (spec.core_clock_ghz * 1e9) +
           static_cast<double>(c.kernel_launches) * spec.launch_overhead_us * 1e-6;
}

GpuSimResult simulate_gpu_layout(const graph::LeanGraph& g,
                                 const core::LayoutConfig& cfg,
                                 const KernelConfig& kernel, const GpuSpec& spec,
                                 const SimOptions& opt) {
    const auto host_t0 = std::chrono::steady_clock::now();

    GpuSimResult out;
    GpuCounters& c = out.counters;
    const core::PairSampler sampler(g, cfg);
    const auto etas = core::make_engine_schedule(
        cfg, static_cast<double>(g.max_path_nuc_length()));

    // Initial layout (identical scheme to the CPU engine, including the
    // warm-start override).
    const core::Layout initial = core::make_initial_layout(g, cfg);
    core::XYStore store(initial);  // functional storage (organization-agnostic)
    // The warp's per-step batch drains through the same pluggable update
    // kernel as the CPU backends (cfg.kernel; validated here).
    const auto update_kernel = core::make_update_kernel(cfg.kernel);

    GpuMemory mem(spec, opt.cache_scale);

    const std::uint32_t warp_size = spec.warp_size;
    const std::uint32_t resident_warps = spec.sm_count * spec.warps_per_sm;
    std::vector<rng::XorwowState> states(
        static_cast<std::size_t>(resident_warps) * warp_size);
    for (std::size_t i = 0; i < states.size(); ++i) {
        states[i] = rng::xorwow_init(cfg.seed, i);
    }

    const std::uint32_t drf = std::max<std::uint32_t>(1, kernel.data_reuse_factor);
    const double srf = std::max(1.0, kernel.step_reduction_factor);
    const std::uint64_t lane_steps_per_iter = static_cast<std::uint64_t>(
        static_cast<double>(cfg.steps_per_iteration(g.total_path_steps())) / srf);
    const std::uint64_t warp_steps_per_iter =
        (lane_steps_per_iter + warp_size - 1) / warp_size;

    // One TermBatch per warp step, one slot per lane: the same batched term
    // representation every other backend consumes. Invalid terms keep their
    // slot so lane indexing (including the DRF cross-lane pairing) is
    // preserved.
    core::TermBatch batch;
    batch.reserve(warp_size);
    std::vector<std::uint64_t> addrs(warp_size);
    const std::uint32_t period = std::max<std::uint32_t>(1, opt.counter_sample_period);

    // One kernel launch per iteration plus one initialization launch
    // (Sec. V-A: "a total of 31 CUDA kernels are launched").
    c.kernel_launches = cfg.iter_max + 1;

    for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
        if (cfg.cancel_requested()) break;  // cooperative cancel (serve)
        const double eta = etas.empty() ? 0.0 : etas[iter];
        const bool cooling_iter = cfg.cooling(iter);
        const std::uint64_t iter_updates0 = c.lane_updates;
        const std::uint64_t iter_skipped0 = c.skipped_terms;

        for (std::uint64_t ws = 0; ws < warp_steps_per_iter; ++ws) {
            const std::uint32_t warp =
                static_cast<std::uint32_t>(ws % resident_warps);
            const std::uint32_t sm = warp % spec.sm_count;
            const bool modeled = (ws % period) == 0;

            // --- Branch selection + per-lane term sampling (functional) ---
            bool warp_branch = cooling_iter;
            if (kernel.warp_merge && !cooling_iter) {
                rng::XorwowRng control(states[std::size_t(warp) * warp_size]);
                warp_branch = control.flip_coin();
            }
            std::uint32_t cooling_lanes = 0;
            batch.clear();
            for (std::uint32_t l = 0; l < warp_size; ++l) {
                const std::uint64_t gl = std::uint64_t(warp) * warp_size + l;
                rng::XorwowRng rng(states[gl]);
                TermSample t = kernel.warp_merge
                                   ? sampler.sample_branch(warp_branch, rng)
                                   : sampler.sample(cooling_iter, rng);
                cooling_lanes += t.took_cooling ? 1 : 0;
                if (!t.valid) ++c.skipped_terms;
                // The slot's nudge is predrawn from the lane RNG just
                // before the batch drains through the update kernel (one
                // per functional update, like the real kernel).
                batch.append(t, 0.0);
            }

            // --- Functional updates (DRF extra updates reuse warp data) ---
            // The first round is exactly "apply the warp's batch in lane
            // order", so it drains through the pluggable update kernel.
            // Nudges are predrawn per lane — each lane owns its XORWOW
            // stream, so drawing them before the applies advances every
            // stream exactly as the per-lane update loop did.
            for (std::uint32_t l = 0; l < warp_size; ++l) {
                if (!batch.valid[l]) continue;
                rng::XorwowRng rng(states[std::uint64_t(warp) * warp_size + l]);
                batch.nudge[l] = core::draw_nudge(rng);
            }
            update_kernel->apply(batch, eta, store);
            c.lane_updates += warp_size - batch.invalid_count();
            for (std::uint32_t r = 1; r < drf; ++r) {
                for (std::uint32_t l = 0; l < warp_size; ++l) {
                    if (!batch.valid[l]) continue;
                    const std::uint32_t ni = batch.node_i[l];
                    const End ei = batch.end_i_of(l);
                    // Warp-shuffle reuse: pair this lane's first node
                    // with a partner lane's second node. Positions are
                    // path-relative, so cross-lane d_ref is only
                    // approximate — the quality cost the Fig. 17 DSE
                    // measures.
                    const std::uint32_t p = (l + r * 7) % warp_size;
                    if (!batch.valid[p]) continue;
                    const std::uint32_t nj = batch.node_j[p];
                    const End ej = batch.end_j_of(p);
                    const std::uint64_t dd =
                        batch.pos_i[l] > batch.pos_j[p]
                            ? batch.pos_i[l] - batch.pos_j[p]
                            : batch.pos_j[p] - batch.pos_i[l];
                    if (dd == 0) continue;
                    const double d_ref = static_cast<double>(dd);
                    const float xi = store.load_x(ni, ei);
                    const float yi = store.load_y(ni, ei);
                    const float xj = store.load_x(nj, ej);
                    const float yj = store.load_y(nj, ej);
                    rng::XorwowRng rng(
                        states[std::uint64_t(warp) * warp_size + l]);
                    const auto d = core::sgd_term_update(
                        xi, yi, xj, yj, d_ref, eta, core::draw_nudge(rng));
                    store.store_x(ni, ei, xi + d.dx_i);
                    store.store_y(ni, ei, yi + d.dy_i);
                    store.store_x(nj, ej, xj + d.dx_j);
                    store.store_y(nj, ej, yj + d.dy_j);
                    ++c.lane_updates;
                }
            }
            ++c.warp_steps;

            if (!modeled) continue;

            // --- Performance modelling for this warp step ---
            const bool divergent =
                !kernel.warp_merge && cooling_lanes > 0 && cooling_lanes < warp_size;

            // Instructions + active-thread accounting (Table XI).
            double instr = kInstrPre + kInstrPost +
                           (divergent ? 2.0 * kInstrBranch : kInstrBranch) +
                           (kernel.warp_merge ? kInstrWmOverhead : 0.0) +
                           static_cast<double>(drf - 1) * kInstrPerReuse;
            double active =
                kInstrPre * warp_size + kInstrPost * warp_size +
                kInstrBranch * warp_size +  // both sides together cover 32 lanes
                (kernel.warp_merge ? kInstrWmOverhead * warp_size : 0.0) +
                static_cast<double>(drf - 1) * kInstrPerReuse * warp_size;
            c.executed_warp_instructions += instr * period;
            c.active_thread_instruction_sum +=
                active * kActivePredFraction * period;

            // PRNG state traffic (Table X). Each draw touches the state's
            // six fields (read + write); field requests issue once per warp,
            // or once per branch side when divergent.
            const std::uint32_t rng_issue_mult = divergent ? 2 : 1;
            for (std::uint32_t draw = 0; draw < kRngDrawsPerStep; ++draw) {
                const bool in_branch = draw >= (kRngDrawsPerStep - kRngDrawsInBranch);
                const std::uint32_t mult = in_branch ? rng_issue_mult : 1;
                for (std::uint32_t fa = 0; fa < kRngFieldAccessesPerDraw; ++fa) {
                    const std::uint32_t field = fa % 6;
                    for (std::uint32_t rep = 0; rep < mult; ++rep) {
                        addrs.clear();
                        for (std::uint32_t l = 0; l < warp_size; ++l) {
                            const std::uint64_t gl =
                                std::uint64_t(warp) * warp_size + l;
                            addrs.push_back(
                                kernel.coalesced_rng
                                    // Field arrays are skewed by a prime
                                    // sector count: real allocations are not
                                    // cache-set aligned, and unskewed bases
                                    // would alias all six arrays onto the
                                    // same L1 sets.
                                    ? kBaseRngField0 + field * kRngFieldStride +
                                          field * 13ULL * 32ULL + gl * 4
                                    : kBaseRngStates + gl * kXorwowStateBytes +
                                          field * 4);
                        }
                        mem.issue(sm, addrs, 4, c);
                    }
                }
            }

            // Path-selection alias-table lookups.
            addrs.clear();
            for (std::uint32_t l = 0; l < warp_size; ++l) {
                addrs.push_back(kBaseAliasProb + std::uint64_t(batch.path[l]) * 8);
            }
            mem.issue(sm, addrs, 8, c);
            addrs.clear();
            for (std::uint32_t l = 0; l < warp_size; ++l) {
                addrs.push_back(kBaseAliasAlias + std::uint64_t(batch.path[l]) * 4);
            }
            mem.issue(sm, addrs, 4, c);

            // Step records for both chosen steps (CDL: one packed record;
            // original: three separate arrays — Fig. 9).
            const auto issue_step = [&](bool second) {
                if (kernel.cache_friendly_layout) {
                    addrs.clear();
                    for (std::uint32_t l = 0; l < warp_size; ++l) {
                        if (!batch.valid[l]) continue;
                        const std::uint64_t flat = g.flat_step_index(
                            batch.path[l],
                            second ? batch.step_j[l] : batch.step_i[l]);
                        addrs.push_back(kBaseStepRec + flat * kStepRecBytes);
                    }
                    if (!addrs.empty()) mem.issue(sm, addrs, kStepRecBytes, c);
                    return;
                }
                static constexpr std::uint64_t bases[3] = {
                    kBaseStepNode, kBaseStepPos, kBaseStepOrient};
                static constexpr std::uint32_t sizes[3] = {4, 8, 1};
                for (int part = 0; part < 3; ++part) {
                    addrs.clear();
                    for (std::uint32_t l = 0; l < warp_size; ++l) {
                        if (!batch.valid[l]) continue;
                        const std::uint64_t flat = g.flat_step_index(
                            batch.path[l],
                            second ? batch.step_j[l] : batch.step_i[l]);
                        addrs.push_back(bases[part] + flat * sizes[part]);
                    }
                    if (!addrs.empty()) mem.issue(sm, addrs, sizes[part], c);
                }
            };
            issue_step(false);
            issue_step(true);

            // Coordinate loads + stores for both nodes (CDL: one packed
            // record read + write; original: X array, Y array and the
            // length array separately — Fig. 9a).
            const auto issue_coords = [&](bool second) {
                if (kernel.cache_friendly_layout) {
                    for (int rw = 0; rw < 2; ++rw) {
                        addrs.clear();
                        for (std::uint32_t l = 0; l < warp_size; ++l) {
                            if (!batch.valid[l]) continue;
                            const std::uint32_t n =
                                second ? batch.node_j[l] : batch.node_i[l];
                            addrs.push_back(kBaseNodeRec +
                                            std::uint64_t(n) * kNodeRecBytes);
                        }
                        if (!addrs.empty()) mem.issue(sm, addrs, kNodeRecBytes, c);
                    }
                    return;
                }
                // reads: x, y, len; writes: x, y
                for (int part = 0; part < 5; ++part) {
                    addrs.clear();
                    for (std::uint32_t l = 0; l < warp_size; ++l) {
                        if (!batch.valid[l]) continue;
                        const std::uint32_t n =
                            second ? batch.node_j[l] : batch.node_i[l];
                        const End e =
                            second ? batch.end_j_of(l) : batch.end_i_of(l);
                        const std::uint64_t idx =
                            2 * std::uint64_t(n) + static_cast<std::uint64_t>(e);
                        switch (part) {
                            case 0:
                            case 3:
                                addrs.push_back(kBaseCoordX + idx * 4);
                                break;
                            case 1:
                            case 4:
                                addrs.push_back(kBaseCoordY + idx * 4);
                                break;
                            default:
                                addrs.push_back(kBaseNodeLen + std::uint64_t(n) * 4);
                        }
                    }
                    if (!addrs.empty()) mem.issue(sm, addrs, 4, c);
                }
            };
            issue_coords(false);
            issue_coords(true);
        }

        if (opt.progress) {
            core::IterationStats s;
            s.iteration = iter;
            s.iter_max = cfg.iter_max;
            s.eta = eta;
            s.updates = c.lane_updates - iter_updates0;
            s.skipped = c.skipped_terms - iter_skipped0;
            opt.progress(s);
        }
    }

    // Scale the sampled memory counters back to the full step count.
    // (Instruction counters were already scaled at accumulation time;
    // memory counters accumulate raw per modeled step.)
    c.l1_requests *= period;
    c.l1_sectors *= period;
    c.l2_sectors *= period;
    c.dram_sectors *= period;

    out.layout = store.snapshot();
    out.eta_schedule = etas;
    out.modeled_seconds = model_time_seconds(c, spec);
    out.sim_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
            .count();
    return out;
}

namespace {

class GpuSimEngine final : public core::LayoutEngine {
public:
    GpuSimEngine(const KernelConfig& kernel, const GpuSpec& spec,
                 const SimOptions& opt)
        : kernel_(kernel), spec_(spec), opt_(opt) {
        const bool optimized = kernel.cache_friendly_layout &&
                               kernel.coalesced_rng && kernel.warp_merge;
        const bool base = !kernel.cache_friendly_layout &&
                          !kernel.coalesced_rng && !kernel.warp_merge;
        name_ = optimized ? "gpusim-optimized"
                          : (base ? "gpusim-base" : "gpusim-custom");
    }

    std::string_view name() const noexcept override { return name_; }

protected:
    void do_init() override {
        // Reject an unknown cfg.kernel at init(), like every other engine;
        // simulate_gpu_layout re-resolves the (stateless) kernel per run.
        core::make_update_kernel(cfg_.kernel);
    }

    core::LayoutResult do_run(const core::LayoutConfig& cfg) override {
        SimOptions opt = opt_;
        if (has_progress_hook()) {
            opt.progress = [this](const core::IterationStats& s) {
                emit_progress(s);
            };
        }
        GpuSimResult r = simulate_gpu_layout(*graph_, cfg, kernel_, spec_, opt);
        core::LayoutResult out;
        out.layout = std::move(r.layout);
        out.seconds = r.modeled_seconds;
        out.updates = r.counters.lane_updates + r.counters.skipped_terms;
        out.skipped = r.counters.skipped_terms;
        out.eta_schedule = std::move(r.eta_schedule);
        return out;
    }

private:
    KernelConfig kernel_;
    GpuSpec spec_;
    SimOptions opt_;
    std::string name_;
};

}  // namespace

std::unique_ptr<core::LayoutEngine> make_gpusim_engine(const KernelConfig& kernel,
                                                       const GpuSpec& spec,
                                                       const SimOptions& opt) {
    return std::make_unique<GpuSimEngine>(kernel, spec, opt);
}

}  // namespace pgl::gpusim

#pragma once
// GPU machine descriptions for the performance model. Architectural numbers
// (SMs, caches, bandwidth, clock) are the published specs of the paper's two
// evaluation GPUs; the latency / overlap entries are calibration constants
// of the latency-bound time model (see gpusim/gpu_machine.hpp and
// EXPERIMENTS.md): they set the absolute time scale, while all *relative*
// effects (the optimization ladder, DSE schemes, A6000-vs-A100 cache
// behaviour) emerge from the simulated counters.
#include <cstdint>
#include <string>

namespace pgl::gpusim {

struct GpuSpec {
    std::string name;
    std::uint32_t sm_count = 84;
    std::uint32_t warp_size = 32;
    std::uint32_t warps_per_sm = 16;  ///< resident warps simulated per SM
    double core_clock_ghz = 1.8;
    double dram_gbps = 768.0;
    std::uint64_t l1_bytes_per_sm = 128 * 1024;
    std::uint64_t l2_bytes = 6ULL * 1024 * 1024;
    std::uint32_t sector_bytes = 32;  ///< memory transaction granularity
    double launch_overhead_us = 5.0;  ///< per CUDA kernel launch

    // Amortized cost model (core cycles per sector touch at each level,
    // already discounted by typical memory-level parallelism; NOT raw
    // latencies).
    double lat_l1 = 2.0;
    double lat_l2 = 5.0;
    double lat_dram = 23.0;

    /// Effective number of concurrently-overlapped lanes for this
    /// latency-bound, irregular workload (calibrated; much smaller than the
    /// theoretical resident-lane count because of scoreboard stalls).
    double effective_parallel_lanes = 100.0;

    /// Achieved warp-instruction throughput (warp-instructions / cycle /
    /// SM) for this latency-bound kernel — a small fraction of peak issue.
    double ipc_per_sm = 0.12;
};

/// NVIDIA RTX A6000 (GA102): 84 SMs, 768 GB/s GDDR6, 6 MB L2.
GpuSpec rtx_a6000();

/// NVIDIA A100 (GA100, 80 GB SXM): 108 SMs, 1555 GB/s HBM2e, 40 MB L2.
GpuSpec a100();

}  // namespace pgl::gpusim

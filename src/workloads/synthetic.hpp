#pragma once
// Synthetic pangenome generator — the stand-in for the HPRC human
// chromosome dataset (see DESIGN.md, substitution table). Emits variation
// graphs with the structural signature of real pangenomes: a long linear
// backbone (sequence homology), SNV bubbles, insertions, deletions, large
// structural variants, inversions and tandem-duplication loops, traversed
// by a configurable number of haplotype paths.
//
// The layout algorithm only ever reads topology, node lengths and path
// walks, so matching those statistics (node count, edge/node ratio ~ 1.36,
// path count, node length distribution) reproduces the paper's workload.
#include <cstdint>
#include <string>
#include <vector>

#include "graph/lean_graph.hpp"
#include "graph/variation_graph.hpp"

namespace pgl::workloads {

struct PangenomeSpec {
    std::string name = "synthetic";
    std::uint64_t backbone_nodes = 1000;  ///< nodes on the linear backbone
    std::uint32_t n_paths = 12;           ///< haplotypes walking the graph

    // Per-backbone-position variant probabilities.
    double snv_rate = 0.18;   ///< biallelic substitution bubble
    double ins_rate = 0.02;   ///< insertion present in a subset of paths
    double del_rate = 0.02;   ///< deletion (skip edge) in a subset of paths
    double sv_rate = 0.002;   ///< large structural variant (alt segment)
    double inv_rate = 0.001;  ///< inversion (reverse traversal of a segment)
    double loop_rate = 0.001; ///< tandem duplication (path revisits a segment)

    std::uint32_t node_len_min = 1;   ///< nucleotides per node, uniform
    std::uint32_t node_len_max = 8;
    std::uint32_t sv_segment_nodes = 12;  ///< nodes per SV alternative
    std::uint32_t dup_segment_nodes = 6;  ///< nodes revisited by a loop

    double allele_frequency = 0.3;  ///< P(a path takes the alternative allele)

    std::uint64_t seed = 1234;
};

/// Generates a variation graph from the spec. Every emitted path is a valid
/// walk (consecutive steps connected by edges) and the graph passes
/// VariationGraph::validate().
graph::VariationGraph generate_pangenome(const PangenomeSpec& spec);

// --- Presets mirroring the paper's representative graphs (Table I) ---

/// HLA-DRB1-like gene graph: ~5e3 nodes, 12 paths, ~4.4 bp/node.
PangenomeSpec hla_drb1_spec();

/// MHC-like region: targets ~2.3e5 * scale nodes, 99 paths, ~26 bp/node.
PangenomeSpec mhc_spec(double scale = 1.0);

/// Human chromosome k (1..22, 23 = X, 24 = Y), scaled. At scale = 1 the
/// node counts follow Table VI/VII proportions (Chr1 ~ 1.1e7 nodes); the
/// default experiments run at scale ~ 0.01 to fit this container.
PangenomeSpec chromosome_spec(int chromosome, double scale);

/// Display name ("Chr.1" ... "Chr.22", "Chr.X", "Chr.Y").
std::string chromosome_name(int chromosome);

// --- Multi-component whole-genome workload (partition subsystem) ---

/// Deterministic per-component specs of a synthetic whole genome: component
/// k is chromosome_spec(1 + k % 24, scale) with a seed mixed from `seed`
/// (SplitMix64 stream) and a component-unique name, so the composed graph
/// is reproducible for a fixed (n_components, scale, seed).
std::vector<PangenomeSpec> whole_genome_spec(std::uint32_t n_components,
                                             double scale,
                                             std::uint64_t seed = 0xC0DE);

/// Generates every spec and merges the results into one VariationGraph with
/// disjoint node-id ranges (spec order = ascending id ranges), one
/// connected component per spec. The inverse of partition::decompose: that
/// call recovers exactly these components, in this order.
graph::VariationGraph generate_whole_genome(
    const std::vector<PangenomeSpec>& specs);

/// The same genome at a finer node segmentation: `sub` times as many
/// backbone nodes, each `sub` times shorter, with per-node variant rates
/// divided by `sub` so variant density *per nucleotide* is unchanged.
/// Models bp-resolution graph builds (pggb/minigraph-cactus emit many short
/// nodes where odgi-style builds merge them); the multilevel bench runs on
/// this form because segmentation redundancy is exactly the dimension run
/// coarsening removes.
PangenomeSpec with_finer_segmentation(PangenomeSpec spec, std::uint32_t sub);

// --- Exact-structure workload for the multilevel coarsener ---

/// A backbone of `runs` maximal linear runs, each `run_length` nodes of
/// `node_len` nucleotides, separated by biallelic single-node bubbles that
/// force run boundaries (both alleles are always taken by at least one path
/// when n_paths >= 2). The coarsener's output on this graph is known in
/// closed form: exactly `runs` run-nodes of `run_length` fine nodes each,
/// plus 2*(runs-1) singleton separator nodes — see generate_linear_runs.
struct LinearRunSpec {
    std::uint32_t runs = 4;          ///< maximal linear runs on the backbone
    std::uint32_t run_length = 8;    ///< fine nodes per run
    std::uint32_t n_paths = 3;       ///< haplotypes walking the backbone
    std::uint32_t node_len = 5;      ///< nucleotides per backbone node
    bool separators = true;          ///< bubble between consecutive runs;
                                     ///< false collapses the whole backbone
                                     ///< into one run
    bool invert_alternate = false;   ///< odd runs are traversed in reverse
                                     ///< (id-descending, flipped handles) by
                                     ///< every path
    std::uint64_t seed = 99;         ///< allele choice of paths >= 2
};

/// Appends the spec's nodes (ids starting at node_lengths.size()) and paths
/// to the given from_parts inputs. Composing several calls builds a
/// multi-component graph with disjoint id ranges — the seam the
/// runs-never-span-components tests drive.
void append_linear_runs(const LinearRunSpec& spec,
                        std::vector<std::uint32_t>& node_lengths,
                        std::vector<std::vector<graph::Handle>>& paths);

/// LeanGraph::from_parts over a single spec.
graph::LeanGraph generate_linear_runs(const LinearRunSpec& spec);

}  // namespace pgl::workloads

#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cassert>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::workloads {

namespace {

using graph::Handle;
using graph::NodeId;
using graph::VariationGraph;

enum class VariantKind : std::uint8_t {
    kNone,
    kSnv,       // alternative node parallel to the backbone node
    kInsertion, // extra node between this backbone node and the next
    kDeletion,  // some paths skip the next backbone node
    kSv,        // alternative multi-node segment replacing the next K nodes
    kInversion, // some paths traverse the next K nodes reverse-complemented
    kLoop,      // some paths revisit the previous K nodes (tandem dup)
};

struct VariantSite {
    VariantKind kind = VariantKind::kNone;
    std::vector<NodeId> alt_nodes;  // SNV alt, insertion node, or SV segment
    std::uint32_t span = 0;         // backbone nodes affected (del/sv/inv/loop)
};

std::string random_sequence(rng::Xoshiro256Plus& rng, std::uint32_t len) {
    static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
    std::string s(len, 'A');
    for (auto& c : s) c = kBases[rng.next_bounded(4)];
    return s;
}

std::uint32_t draw_len(rng::Xoshiro256Plus& rng, const PangenomeSpec& spec) {
    const std::uint32_t lo = std::max<std::uint32_t>(1, spec.node_len_min);
    const std::uint32_t hi = std::max(lo, spec.node_len_max);
    return lo + static_cast<std::uint32_t>(rng.next_bounded(hi - lo + 1));
}

}  // namespace

VariationGraph generate_pangenome(const PangenomeSpec& spec) {
    assert(spec.backbone_nodes >= 2);
    assert(spec.n_paths >= 1);
    rng::Xoshiro256Plus rng(spec.seed);
    VariationGraph g;

    const std::uint64_t nb = spec.backbone_nodes;

    // 1. Backbone nodes.
    std::vector<NodeId> backbone(nb);
    for (std::uint64_t b = 0; b < nb; ++b) {
        backbone[b] = g.add_node(random_sequence(rng, draw_len(rng, spec)));
    }

    // 2. Variant plan. Multi-node variants claim a span of backbone
    //    positions; spans never overlap (the cursor skips claimed nodes).
    std::vector<VariantSite> sites(nb);
    std::uint64_t b = 1;  // keep position 0 invariant so all paths share a source
    while (b + 1 < nb) {
        VariantSite& site = sites[b];
        const double u = rng.next_double();
        double acc = spec.snv_rate;
        if (u < acc) {
            site.kind = VariantKind::kSnv;
            site.alt_nodes.push_back(g.add_node(random_sequence(rng, 1)));
            b += 1;
            continue;
        }
        acc += spec.ins_rate;
        if (u < acc) {
            site.kind = VariantKind::kInsertion;
            site.alt_nodes.push_back(
                g.add_node(random_sequence(rng, draw_len(rng, spec))));
            b += 1;
            continue;
        }
        acc += spec.del_rate;
        if (u < acc && b + 2 < nb) {
            site.kind = VariantKind::kDeletion;
            site.span = 1;
            b += 2;
            continue;
        }
        acc += spec.sv_rate;
        if (u < acc && b + spec.sv_segment_nodes + 1 < nb) {
            site.kind = VariantKind::kSv;
            site.span = spec.sv_segment_nodes;
            for (std::uint32_t k = 0; k < spec.sv_segment_nodes; ++k) {
                site.alt_nodes.push_back(
                    g.add_node(random_sequence(rng, draw_len(rng, spec))));
            }
            b += site.span + 1;
            continue;
        }
        acc += spec.inv_rate;
        if (u < acc && b + 3 < nb) {
            site.kind = VariantKind::kInversion;
            site.span = 3;
            b += site.span + 1;
            continue;
        }
        acc += spec.loop_rate;
        if (u < acc && b > spec.dup_segment_nodes + 1) {
            site.kind = VariantKind::kLoop;
            site.span = spec.dup_segment_nodes;
            b += 1;
            continue;
        }
        b += 1;
    }

    // 3. Haplotype paths. Each path walks the backbone, drawing an allele at
    //    every variant site. add_path() materializes the implied edges.
    for (std::uint32_t h = 0; h < spec.n_paths; ++h) {
        std::vector<Handle> steps;
        steps.reserve(nb + nb / 8);
        std::uint64_t i = 0;
        while (i < nb) {
            const VariantSite& site = sites[i];
            const bool alt = rng.next_double() < spec.allele_frequency;
            switch (site.kind) {
                case VariantKind::kSnv:
                    steps.push_back(Handle::forward(alt ? site.alt_nodes[0]
                                                        : backbone[i]));
                    ++i;
                    break;
                case VariantKind::kInsertion:
                    steps.push_back(Handle::forward(backbone[i]));
                    if (alt) steps.push_back(Handle::forward(site.alt_nodes[0]));
                    ++i;
                    break;
                case VariantKind::kDeletion:
                    steps.push_back(Handle::forward(backbone[i]));
                    i += alt ? 2 : 1;  // alt allele skips the next node
                    break;
                case VariantKind::kSv:
                    steps.push_back(Handle::forward(backbone[i]));
                    if (alt) {
                        for (NodeId n : site.alt_nodes) {
                            steps.push_back(Handle::forward(n));
                        }
                        i += site.span + 1;
                    } else {
                        ++i;
                    }
                    break;
                case VariantKind::kInversion:
                    steps.push_back(Handle::forward(backbone[i]));
                    if (alt) {
                        // Traverse the next `span` nodes reversed, in
                        // reverse order — a genuine inversion walk.
                        for (std::uint32_t k = site.span; k >= 1; --k) {
                            steps.push_back(Handle::reverse(backbone[i + k]));
                        }
                        i += site.span + 1;
                    } else {
                        ++i;
                    }
                    break;
                case VariantKind::kLoop:
                    steps.push_back(Handle::forward(backbone[i]));
                    if (alt) {
                        // Tandem duplication: re-walk the previous `span`
                        // backbone nodes (creating the back edge that forms
                        // the visual loop), then return to node i and
                        // continue; the i-1 -> i edge already exists.
                        for (std::uint32_t k = site.span; k >= 1; --k) {
                            steps.push_back(Handle::forward(backbone[i - k]));
                        }
                        steps.push_back(Handle::forward(backbone[i]));
                    }
                    ++i;
                    break;
                case VariantKind::kNone:
                default:
                    steps.push_back(Handle::forward(backbone[i]));
                    ++i;
                    break;
            }
        }
        g.add_path(spec.name + "#" + std::to_string(h), std::move(steps));
    }
    return g;
}

PangenomeSpec hla_drb1_spec() {
    PangenomeSpec s;
    s.name = "HLA-DRB1";
    // Targets Table I: ~5.0e3 nodes, ~6.8e3 edges, 12 paths, ~2.2e4 nuc.
    s.backbone_nodes = 3800;
    s.n_paths = 12;
    s.snv_rate = 0.30;
    s.ins_rate = 0.03;
    s.del_rate = 0.14;
    s.sv_rate = 0.004;
    s.inv_rate = 0.002;
    s.loop_rate = 0.002;
    s.node_len_min = 1;
    s.node_len_max = 8;
    s.seed = 0xD0B1;
    return s;
}

PangenomeSpec mhc_spec(double scale) {
    PangenomeSpec s;
    s.name = "MHC";
    // Targets Table I: ~2.3e5 nodes, ~3.2e5 edges, 99 paths, ~5.9e6 nuc.
    s.backbone_nodes =
        std::max<std::uint64_t>(64, static_cast<std::uint64_t>(175000 * scale));
    s.n_paths = 99;
    s.snv_rate = 0.30;
    s.ins_rate = 0.03;
    s.del_rate = 0.14;
    s.sv_rate = 0.003;
    s.inv_rate = 0.002;
    s.loop_rate = 0.002;
    s.node_len_min = 8;
    s.node_len_max = 44;  // mean ~26 bp/node
    s.seed = 0x4A4C;
    return s;
}

namespace {
// Relative sizes of the 24 HPRC chromosome graphs, normalized to Chr.1.
// Derived from human chromosome lengths; Chr.Y's pangenome is tiny (mostly
// a single haplotype), matching its 2-minute CPU runtime in Table VII.
constexpr double kChromWeight[24] = {
    1.00, 0.97, 0.80, 0.77, 0.73, 0.69, 0.64, 0.59,  // 1-8
    0.57, 0.54, 0.54, 0.53, 0.46, 0.43, 0.41, 0.36,  // 9-16
    0.33, 0.32, 0.24, 0.26, 0.19, 0.20, 0.62, 0.03,  // 17-22, X, Y
};
}  // namespace

PangenomeSpec chromosome_spec(int chromosome, double scale) {
    assert(chromosome >= 1 && chromosome <= 24);
    PangenomeSpec s;
    s.name = chromosome_name(chromosome);
    const double w = kChromWeight[chromosome - 1];
    // Chr.1 at scale 1 targets ~1.1e7 nodes (Table I) => backbone ~8.3e6.
    s.backbone_nodes = std::max<std::uint64_t>(
        128, static_cast<std::uint64_t>(8.3e6 * w * scale));
    // Paths scale weakly with chromosome size (HPRC: hundreds to thousands).
    s.n_paths = std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(44.0 * (0.5 + w)));
    if (chromosome == 24) s.n_paths = 6;  // Chr.Y: few haplotypes
    s.snv_rate = 0.30;
    s.ins_rate = 0.03;
    s.del_rate = 0.14;
    s.sv_rate = 0.002;
    s.inv_rate = 0.001;
    s.loop_rate = 0.001;
    s.node_len_min = 40;
    s.node_len_max = 160;  // mean ~100 bp/node as in Chr-scale graphs
    s.seed = 0xC450 + static_cast<std::uint64_t>(chromosome);
    return s;
}

std::string chromosome_name(int chromosome) {
    if (chromosome == 23) return "Chr.X";
    if (chromosome == 24) return "Chr.Y";
    return "Chr." + std::to_string(chromosome);
}

std::vector<PangenomeSpec> whole_genome_spec(std::uint32_t n_components,
                                             double scale, std::uint64_t seed) {
    rng::SplitMix64 mix(seed);
    std::vector<PangenomeSpec> specs;
    specs.reserve(n_components);
    for (std::uint32_t k = 0; k < n_components; ++k) {
        PangenomeSpec s = chromosome_spec(1 + static_cast<int>(k % 24), scale);
        s.seed = mix.next();
        // Components beyond the 24 chromosomes model unplaced contigs of the
        // same chromosome class; the name stays unique either way.
        s.name = "c" + std::to_string(k) + "." + s.name;
        specs.push_back(std::move(s));
    }
    return specs;
}

graph::VariationGraph generate_whole_genome(
    const std::vector<PangenomeSpec>& specs) {
    VariationGraph whole;
    for (const PangenomeSpec& spec : specs) {
        const VariationGraph part = generate_pangenome(spec);
        const auto offset = static_cast<NodeId>(whole.node_count());
        for (NodeId v = 0; v < part.node_count(); ++v) {
            whole.add_node(std::string(part.sequence(v)));
        }
        const auto shift = [offset](Handle h) {
            return Handle::make(h.id() + offset, h.is_reverse());
        };
        for (const graph::Edge& e : part.edges()) {
            whole.add_edge(shift(e.from), shift(e.to));
        }
        for (const graph::PathRecord& p : part.paths()) {
            std::vector<Handle> steps;
            steps.reserve(p.steps.size());
            for (const Handle& h : p.steps) steps.push_back(shift(h));
            whole.add_path(p.name, std::move(steps));
        }
    }
    return whole;
}

PangenomeSpec with_finer_segmentation(PangenomeSpec spec, std::uint32_t sub) {
    if (sub <= 1) return spec;
    const double s = static_cast<double>(sub);
    spec.backbone_nodes *= sub;
    spec.snv_rate /= s;
    spec.ins_rate /= s;
    spec.del_rate /= s;
    spec.sv_rate /= s;
    spec.inv_rate /= s;
    spec.loop_rate /= s;
    spec.node_len_min = std::max<std::uint32_t>(1, spec.node_len_min / sub);
    spec.node_len_max =
        std::max<std::uint32_t>(spec.node_len_min, spec.node_len_max / sub);
    spec.sv_segment_nodes *= sub;
    spec.dup_segment_nodes *= sub;
    spec.name += "-sub" + std::to_string(sub);
    return spec;
}

void append_linear_runs(const LinearRunSpec& spec,
                        std::vector<std::uint32_t>& node_lengths,
                        std::vector<std::vector<Handle>>& paths) {
    const std::uint32_t base = static_cast<std::uint32_t>(node_lengths.size());
    const std::uint32_t runs = std::max(1u, spec.runs);
    const std::uint32_t rl = std::max(1u, spec.run_length);
    const std::uint32_t bubbles = spec.separators ? runs - 1 : 0;

    // Layout of the id range: runs*rl backbone nodes first, then the two
    // alleles of each bubble (bubble b -> base + runs*rl + 2*b + {0, 1}).
    const std::uint32_t backbone = runs * rl;
    for (std::uint32_t i = 0; i < backbone + 2 * bubbles; ++i) {
        node_lengths.push_back(spec.node_len);
    }

    rng::SplitMix64 mix(spec.seed);
    const std::uint64_t salt = mix.next();
    for (std::uint32_t p = 0; p < std::max(1u, spec.n_paths); ++p) {
        std::vector<Handle> walk;
        walk.reserve(backbone + bubbles);
        for (std::uint32_t r = 0; r < runs; ++r) {
            const std::uint32_t first = base + r * rl;
            const bool rev = spec.invert_alternate && (r % 2 == 1);
            for (std::uint32_t i = 0; i < rl; ++i) {
                const std::uint32_t v = rev ? first + rl - 1 - i : first + i;
                walk.push_back(Handle::make(v, rev));
            }
            if (spec.separators && r + 1 < runs) {
                // Paths 0 and 1 pin the two alleles so every bubble is a
                // real branch point; the rest choose pseudo-randomly.
                std::uint32_t allele;
                if (p < 2) {
                    allele = p;
                } else {
                    rng::SplitMix64 pick(salt ^
                                         (0x9E3779B97F4A7C15ULL * (p + 1)) ^
                                         (0xBF58476D1CE4E5B9ULL * (r + 1)));
                    allele = static_cast<std::uint32_t>(pick.next() & 1u);
                }
                walk.push_back(Handle::make(base + backbone + 2 * r + allele,
                                            false));
            }
        }
        paths.push_back(std::move(walk));
    }
}

graph::LeanGraph generate_linear_runs(const LinearRunSpec& spec) {
    std::vector<std::uint32_t> node_lengths;
    std::vector<std::vector<Handle>> paths;
    append_linear_runs(spec, node_lengths, paths);
    return graph::LeanGraph::from_parts(std::move(node_lengths), paths);
}

}  // namespace pgl::workloads

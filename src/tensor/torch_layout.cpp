#include "tensor/torch_layout.hpp"

#include <algorithm>
#include <vector>

#include "core/sampling.hpp"
#include "core/schedule.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::tensor {

namespace {

using core::End;

/// Flat coordinate index of a node endpoint in the [sx0, ex0, sx1, ...]
/// coordinate tensors.
std::uint32_t coord_index(std::uint32_t node, End e) {
    return 2 * node + static_cast<std::uint32_t>(e);
}

}  // namespace

TorchLayoutResult layout_torch(const graph::LeanGraph& g,
                               const core::LayoutConfig& cfg,
                               std::uint64_t batch_size,
                               KernelProfiler::CostModel cost) {
    TorchLayoutResult out;
    out.profiler = KernelProfiler(cost);
    KernelProfiler& prof = out.profiler;
    prof.set_gather_footprint(
        2.0 * 2.0 * static_cast<double>(g.node_count()) * sizeof(float));

    const core::PairSampler sampler(g, cfg);
    const auto etas = core::make_eta_schedule(
        cfg.schedule_length(), cfg.eps,
        static_cast<double>(g.max_path_nuc_length()));

    rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
    const core::Layout initial =
        core::make_linear_initial_layout(g, init_rng, cfg.init_jitter);

    // Coordinates live in two flat tensors ("the adjustable weights").
    const std::size_t n = initial.size();
    Tensor X(2 * n), Y(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        X[2 * i] = initial.start_x[i];
        X[2 * i + 1] = initial.end_x[i];
        Y[2 * i] = initial.start_y[i];
        Y[2 * i + 1] = initial.end_y[i];
    }

    rng::Xoshiro256Plus rng(cfg.seed);
    const std::uint64_t steps_per_iter = cfg.steps_per_iteration(g.total_path_steps());
    const std::uint64_t batch = std::max<std::uint64_t>(1, batch_size);

    std::vector<std::uint32_t> idx_i, idx_j;
    std::vector<float> dref_host;

    for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
        const double eta = etas.empty() ? 0.0 : etas[iter];
        const bool cooling_iter = cfg.cooling(iter);
        std::uint64_t remaining = steps_per_iter;

        while (remaining > 0) {
            const std::uint64_t b = std::min(batch, remaining);
            remaining -= b;

            // Host-side batch assembly (the "dataloader"): sample b terms.
            idx_i.clear();
            idx_j.clear();
            dref_host.clear();
            for (std::uint64_t k = 0; k < b; ++k) {
                const auto t = sampler.sample(cooling_iter, rng);
                if (!t.valid) continue;
                idx_i.push_back(coord_index(t.node_i, t.end_i));
                idx_j.push_back(coord_index(t.node_j, t.end_j));
                dref_host.push_back(static_cast<float>(t.d_ref));
            }
            if (idx_i.empty()) continue;
            Tensor dref(dref_host);

            // --- Gather (index kernels) ---
            const Tensor xi = index_select(X, idx_i, prof);
            const Tensor yi = index_select(Y, idx_i, prof);
            const Tensor xj = index_select(X, idx_j, prof);
            const Tensor yj = index_select(Y, idx_j, prof);

            // --- Stress gradient ---
            const Tensor dx = sub(xi, xj, prof);
            const Tensor dy = sub(yi, yj, prof);
            const Tensor mag0 = sqrt(add(pow2(dx, prof), pow2(dy, prof), prof), prof);
            const Tensor mag = clamp_min(mag0, 1e-9f, prof);

            // mu = clamp(eta / dref^2, 1)
            const Tensor d2 = pow2(dref, prof);
            const Tensor eta_t(dref.size(), static_cast<float>(eta));
            const Tensor mu = clamp_max(div(eta_t, d2, prof), 1.0f, prof);

            const Tensor residual = sub(mag, dref, prof);
            const Tensor delta = mul_scalar(mul(mu, residual, prof), 0.5f, prof);
            const Tensor r = div(delta, mag, prof);
            const Tensor rx = mul(r, dx, prof);
            const Tensor ry = mul(r, dy, prof);

            // --- Scatter updates (index kernels, index_put_ semantics) ---
            index_put(X, idx_i, sub(xi, rx, prof), prof);
            index_put(Y, idx_i, sub(yi, ry, prof), prof);
            index_put(X, idx_j, add(xj, rx, prof), prof);
            index_put(Y, idx_j, add(yj, ry, prof), prof);

            ++out.batches;
        }
    }

    out.layout.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.layout.start_x[i] = X[2 * i];
        out.layout.end_x[i] = X[2 * i + 1];
        out.layout.start_y[i] = Y[2 * i];
        out.layout.end_y[i] = Y[2 * i + 1];
    }
    out.kernel_launches = prof.total_launches();
    out.kernel_seconds = prof.kernel_seconds();
    out.api_seconds = prof.api_seconds() +
                      static_cast<double>(out.batches) * cost.host_per_batch_us * 1e-6;
    out.modeled_seconds = out.kernel_seconds + out.api_seconds;
    out.api_time_fraction =
        out.modeled_seconds > 0 ? out.api_seconds / out.modeled_seconds : 0.0;
    return out;
}

}  // namespace pgl::tensor

#include "tensor/torch_layout.hpp"

#include <algorithm>
#include <vector>

#include "core/kernels/update_kernel.hpp"
#include "core/sampling.hpp"
#include "core/schedule.hpp"
#include "core/term_batch.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::tensor {

namespace {

using core::End;

/// Flat coordinate index of a node endpoint in the coordinate tensors —
/// the tensors use the shared XYStore layout ([sx0, ex0, sx1, ...]), so
/// the scatter indices are exactly the kernel layer's store indices.
std::uint32_t coord_index(std::uint32_t node, End e) {
    return static_cast<std::uint32_t>(core::XYStore::index(node, e));
}

}  // namespace

TorchLayoutResult layout_torch(const graph::LeanGraph& g,
                               const core::LayoutConfig& cfg,
                               std::uint64_t batch_size,
                               KernelProfiler::CostModel cost,
                               const core::ProgressHook& progress) {
    TorchLayoutResult out;
    out.profiler = KernelProfiler(cost);
    KernelProfiler& prof = out.profiler;
    prof.set_gather_footprint(
        2.0 * 2.0 * static_cast<double>(g.node_count()) * sizeof(float));

    const core::PairSampler sampler(g, cfg);
    const auto etas = core::make_engine_schedule(
        cfg, static_cast<double>(g.max_path_nuc_length()));

    const core::Layout initial = core::make_initial_layout(g, cfg);

    // Coordinates live in two flat tensors ("the adjustable weights"),
    // initialized from — and finally written back into — an XYStore, so
    // the gather/scatter index space is the same flat x/y layout every
    // other backend's kernels consume.
    const std::size_t n = initial.size();
    core::XYStore store(initial);
    Tensor X(std::vector<float>(store.x(), store.x() + store.coord_count()));
    Tensor Y(std::vector<float>(store.y(), store.y() + store.coord_count()));

    rng::Xoshiro256Plus rng(cfg.seed);
    const std::uint64_t steps_per_iter = cfg.steps_per_iteration(g.total_path_steps());
    const std::uint64_t batch = std::max<std::uint64_t>(1, batch_size);

    core::TermBatch terms;
    terms.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(batch, 1 << 20)));
    std::vector<std::uint32_t> idx_i, idx_j;
    std::vector<float> dref_host;
    std::uint64_t total_skipped = 0;

    for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
        if (cfg.cancel_requested()) break;  // cooperative cancel (serve)
        const double eta = etas.empty() ? 0.0 : etas[iter];
        const bool cooling_iter = cfg.cooling(iter);
        std::uint64_t remaining = steps_per_iter;
        std::uint64_t iter_skipped = 0;

        while (remaining > 0) {
            const std::uint64_t b = std::min(batch, remaining);
            remaining -= b;

            // Host-side batch assembly (the "dataloader"): one shared
            // TermBatch per device batch. The tensor path never uses the
            // coincident-point nudge (mag is clamped instead), so the
            // sampler's nudge draw is disabled.
            terms.clear();
            iter_skipped += sampler.fill_batch(
                cooling_iter, rng, static_cast<std::size_t>(b), terms,
                /*with_nudge=*/false);
            idx_i.clear();
            idx_j.clear();
            dref_host.clear();
            for (std::size_t k = 0; k < terms.size(); ++k) {
                if (!terms.valid[k]) continue;
                idx_i.push_back(coord_index(terms.node_i[k], terms.end_i_of(k)));
                idx_j.push_back(coord_index(terms.node_j[k], terms.end_j_of(k)));
                dref_host.push_back(static_cast<float>(terms.d_ref[k]));
            }
            if (idx_i.empty()) continue;
            Tensor dref(dref_host);

            // --- Gather (index kernels) ---
            const Tensor xi = index_select(X, idx_i, prof);
            const Tensor yi = index_select(Y, idx_i, prof);
            const Tensor xj = index_select(X, idx_j, prof);
            const Tensor yj = index_select(Y, idx_j, prof);

            // --- Stress gradient ---
            const Tensor dx = sub(xi, xj, prof);
            const Tensor dy = sub(yi, yj, prof);
            const Tensor mag0 = sqrt(add(pow2(dx, prof), pow2(dy, prof), prof), prof);
            const Tensor mag = clamp_min(mag0, 1e-9f, prof);

            // mu = clamp(eta / dref^2, 1)
            const Tensor d2 = pow2(dref, prof);
            const Tensor eta_t(dref.size(), static_cast<float>(eta));
            const Tensor mu = clamp_max(div(eta_t, d2, prof), 1.0f, prof);

            const Tensor residual = sub(mag, dref, prof);
            const Tensor delta = mul_scalar(mul(mu, residual, prof), 0.5f, prof);
            const Tensor r = div(delta, mag, prof);
            const Tensor rx = mul(r, dx, prof);
            const Tensor ry = mul(r, dy, prof);

            // --- Scatter updates (index kernels, index_put_ semantics) ---
            index_put(X, idx_i, sub(xi, rx, prof), prof);
            index_put(Y, idx_i, sub(yi, ry, prof), prof);
            index_put(X, idx_j, add(xj, rx, prof), prof);
            index_put(Y, idx_j, add(yj, ry, prof), prof);

            ++out.batches;
        }

        total_skipped += iter_skipped;
        if (progress) {
            core::IterationStats s;
            s.iteration = iter;
            s.iter_max = cfg.iter_max;
            s.eta = eta;
            s.updates = steps_per_iter;
            s.skipped = iter_skipped;
            progress(s);
        }
    }
    out.skipped = total_skipped;
    out.eta_schedule = etas;

    for (std::size_t i = 0; i < 2 * n; ++i) {
        store.x()[i] = X[i];
        store.y()[i] = Y[i];
    }
    out.layout = store.snapshot();
    out.kernel_launches = prof.total_launches();
    out.kernel_seconds = prof.kernel_seconds();
    out.api_seconds = prof.api_seconds() +
                      static_cast<double>(out.batches) * cost.host_per_batch_us * 1e-6;
    out.modeled_seconds = out.kernel_seconds + out.api_seconds;
    out.api_time_fraction =
        out.modeled_seconds > 0 ? out.api_seconds / out.modeled_seconds : 0.0;
    return out;
}

namespace {

class TorchLayoutEngine final : public core::LayoutEngine {
public:
    TorchLayoutEngine(std::uint64_t batch_size, KernelProfiler::CostModel cost)
        : batch_size_(batch_size), cost_(cost) {}

    std::string_view name() const noexcept override { return "torch"; }

protected:
    void do_init() override {
        // The tensor path models its own gather/scatter kernels and never
        // drains a batch through an UpdateKernel, but it honors the
        // engine-wide contract of rejecting an unknown cfg.kernel at
        // init().
        core::make_update_kernel(cfg_.kernel);
    }

    core::LayoutResult do_run(const core::LayoutConfig& cfg) override {
        core::ProgressHook hook;
        if (has_progress_hook()) {
            hook = [this](const core::IterationStats& s) { emit_progress(s); };
        }
        TorchLayoutResult r = layout_torch(*graph_, cfg, batch_size_, cost_, hook);
        core::LayoutResult out;
        out.layout = std::move(r.layout);
        out.seconds = r.modeled_seconds;
        out.updates = static_cast<std::uint64_t>(cfg.iter_max) *
                      cfg.steps_per_iteration(graph_->total_path_steps());
        out.skipped = r.skipped;
        out.eta_schedule = std::move(r.eta_schedule);
        return out;
    }

private:
    std::uint64_t batch_size_;
    KernelProfiler::CostModel cost_;
};

}  // namespace

std::unique_ptr<core::LayoutEngine> make_torch_engine(
    std::uint64_t batch_size, KernelProfiler::CostModel cost) {
    return std::make_unique<TorchLayoutEngine>(batch_size, cost);
}

}  // namespace pgl::tensor

#pragma once
// The PyTorch-style batched implementation of PG-SGD (paper Sec. IV): node
// pairs are grouped into long tensors, the stress gradient is computed with
// generic tensor kernels, and coordinate updates are applied per batch —
// which is exactly what makes large batches stale (Hogwild updates within a
// batch see the coordinates from the batch's start) and small batches
// launch-overhead-bound.
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/layout.hpp"
#include "graph/lean_graph.hpp"
#include "tensor/tensor.hpp"

namespace pgl::tensor {

struct TorchLayoutResult {
    core::Layout layout;
    std::uint64_t batches = 0;
    std::uint64_t skipped = 0;     ///< degenerate sampled terms
    std::uint64_t kernel_launches = 0;
    double kernel_seconds = 0.0;   ///< modeled device time
    double api_seconds = 0.0;      ///< modeled CUDA-API (launch) time
    double modeled_seconds = 0.0;  ///< kernel + API
    double api_time_fraction = 0.0;
    std::vector<double> eta_schedule;  ///< learning rate per iteration
    KernelProfiler profiler;       ///< per-kernel breakdown for Fig. 7
};

/// Runs the full schedule with the given batch size and returns the layout
/// plus the kernel profile. `progress` (optional) is invoked after every
/// SGD iteration.
TorchLayoutResult layout_torch(const graph::LeanGraph& g,
                               const core::LayoutConfig& cfg,
                               std::uint64_t batch_size,
                               KernelProfiler::CostModel cost = KernelProfiler::CostModel(),
                               const core::ProgressHook& progress = {});

/// Default tensor batch size of the "torch" registry engine: large enough
/// to keep the modeled profile kernel-bound rather than launch-bound
/// (Table III's sweet spot region).
constexpr std::uint64_t kDefaultTorchBatch = 1 << 16;

/// Creates the PyTorch-style batched layout engine ("torch" in the
/// registry). LayoutResult.seconds reports the *modeled* device + API time.
std::unique_ptr<core::LayoutEngine> make_torch_engine(
    std::uint64_t batch_size = kDefaultTorchBatch,
    KernelProfiler::CostModel cost = KernelProfiler::CostModel());

}  // namespace pgl::tensor

#pragma once
// A miniature eager tensor library standing in for PyTorch (paper Sec. IV).
// Every operation executes for real on the host (so the batched layout it
// powers produces a genuine layout whose quality can be measured) and is
// simultaneously recorded as one "CUDA kernel launch" with a modeled cost:
// a fixed launch overhead plus a per-element rate by kernel class. The
// recorded profile reproduces the paper's PyTorch findings — kernel-launch
// counts (Table IV), the dominance of the `index` (gather/scatter) kernels
// (Fig. 7) and the batch-size run-time curve (Table III).
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace pgl::tensor {

/// 1-D float tensor. Deliberately minimal: the layout workload only needs
/// flat coordinate/index vectors.
class Tensor {
public:
    Tensor() = default;
    explicit Tensor(std::size_t n, float fill = 0.0f) : data_(n, fill) {}
    explicit Tensor(std::vector<float> v) : data_(std::move(v)) {}

    std::size_t size() const noexcept { return data_.size(); }
    float* data() noexcept { return data_.data(); }
    const float* data() const noexcept { return data_.data(); }
    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    std::span<const float> span() const noexcept { return data_; }

private:
    std::vector<float> data_;
};

/// Modeled kernel cost table: a fixed launch overhead plus a per-element
/// rate by kernel class. `index` covers gather and scatter — the
/// random-access memory kernels that dominate the profile (Fig. 7).
struct KernelCostModel {
    double launch_overhead_us = 5.0;  ///< CUDA driver + dispatch
    /// Host-side per-batch cost (framework loop, launch queueing, implicit
    /// synchronization) — what makes tiny batches 0.2x of the CPU baseline
    /// in Table III. Accounted as CUDA-API time like the paper's profile.
    double host_per_batch_us = 500.0;
    double ns_index = 0.55;
    double ns_pow = 0.08;
    double ns_mul = 0.08;
    double ns_where = 0.08;
    double ns_add = 0.08;
    double ns_sub = 0.08;
    double ns_sqrt = 0.08;
    double ns_div = 0.08;
    double ns_reduction = 0.10;
    double ns_rand = 0.08;

    /// Gather/scatter slow down when the coordinate tensors spill the GPU
    /// L2: every random element becomes a DRAM sector.
    double l2_bytes = 6.0 * 1024 * 1024;
    double spill_index_multiplier = 2.0;
    /// Full-scale coordinate footprint to test L2 fit against (bytes);
    /// 0 = use the actual tensors' size. Benches running scaled graphs set
    /// this to the paper-scale footprint they are extrapolating to.
    double coord_bytes_override = 0.0;
};

/// Records one launch per op invocation with a modeled duration.
class KernelProfiler {
public:
    using CostModel = KernelCostModel;

    explicit KernelProfiler(CostModel cost = CostModel()) : cost_(cost) {}

    /// Registers a launch of `kernel` over `elements` items.
    void record(const std::string& kernel, std::size_t elements);

    /// Total bytes the random gathers index into (the coordinate tensors);
    /// used with the cost model's L2-fit test. Overridden by
    /// cost.coord_bytes_override when nonzero.
    void set_gather_footprint(double bytes) noexcept {
        gather_footprint_bytes_ = bytes;
    }

    std::uint64_t total_launches() const noexcept { return launches_; }
    /// Modeled device-side kernel time (seconds), excluding API overhead.
    double kernel_seconds() const noexcept { return kernel_seconds_; }
    /// Modeled host-side CUDA API time (launch overhead * launches).
    double api_seconds() const noexcept {
        return static_cast<double>(launches_) * cost_.launch_overhead_us * 1e-6;
    }
    double total_seconds() const noexcept { return kernel_seconds() + api_seconds(); }
    double api_time_fraction() const noexcept {
        const double t = total_seconds();
        return t > 0 ? api_seconds() / t : 0.0;
    }

    /// Per-kernel modeled seconds, for the Fig. 7 breakdown.
    const std::map<std::string, double>& per_kernel_seconds() const noexcept {
        return per_kernel_;
    }
    const std::map<std::string, std::uint64_t>& per_kernel_launches() const noexcept {
        return per_kernel_count_;
    }

    void reset();

private:
    double rate_ns(const std::string& kernel) const;

    CostModel cost_;
    double gather_footprint_bytes_ = 0.0;
    std::uint64_t launches_ = 0;
    double kernel_seconds_ = 0.0;
    std::map<std::string, double> per_kernel_;
    std::map<std::string, std::uint64_t> per_kernel_count_;
};

// --- Ops. Each call executes on the host and records one kernel launch. ---

/// out[k] = src[idx[k]] — the gather "index" kernel.
Tensor index_select(const Tensor& src, std::span<const std::uint32_t> idx,
                    KernelProfiler& prof);

/// dst[idx[k]] += val[k] — the scatter-accumulate "index" kernel.
/// Duplicate indices within a batch accumulate in order (like index_put_
/// with accumulate=True).
void index_add(Tensor& dst, std::span<const std::uint32_t> idx, const Tensor& val,
               KernelProfiler& prof);

/// dst[idx[k]] = val[k] — the scatter "index" kernel with index_put_
/// (accumulate=False) semantics: duplicate indices within a batch resolve
/// to the last writer. This is how the batched layout applies updates; it
/// is exactly why very large batches lose quality gradually (stale +
/// dropped duplicate updates) instead of diverging.
void index_put(Tensor& dst, std::span<const std::uint32_t> idx, const Tensor& val,
               KernelProfiler& prof);

Tensor sub(const Tensor& a, const Tensor& b, KernelProfiler& prof);
Tensor add(const Tensor& a, const Tensor& b, KernelProfiler& prof);
Tensor mul(const Tensor& a, const Tensor& b, KernelProfiler& prof);
Tensor mul_scalar(const Tensor& a, float s, KernelProfiler& prof);
Tensor div(const Tensor& a, const Tensor& b, KernelProfiler& prof);
Tensor pow2(const Tensor& a, KernelProfiler& prof);
Tensor sqrt(const Tensor& a, KernelProfiler& prof);
/// out[k] = cond[k] != 0 ? a[k] : b[k] — the "where" kernel.
Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b,
             KernelProfiler& prof);
/// out[k] = min(a[k], cap) via where semantics (clamp used for mu <= 1).
Tensor clamp_max(const Tensor& a, float cap, KernelProfiler& prof);
/// out[k] = max(a[k], floor) via where semantics (guards 1/mag).
Tensor clamp_min(const Tensor& a, float floor, KernelProfiler& prof);
double sum(const Tensor& a, KernelProfiler& prof);

}  // namespace pgl::tensor

#include "tensor/tensor.hpp"

#include <cassert>
#include <cmath>

namespace pgl::tensor {

void KernelProfiler::record(const std::string& kernel, std::size_t elements) {
    ++launches_;
    const double sec = static_cast<double>(elements) * rate_ns(kernel) * 1e-9;
    kernel_seconds_ += sec;
    per_kernel_[kernel] += sec;
    per_kernel_count_[kernel] += 1;
}

double KernelProfiler::rate_ns(const std::string& kernel) const {
    if (kernel == "index") {
        const double footprint = cost_.coord_bytes_override > 0
                                     ? cost_.coord_bytes_override
                                     : gather_footprint_bytes_;
        const bool spills = footprint > cost_.l2_bytes;
        return cost_.ns_index * (spills ? cost_.spill_index_multiplier : 1.0);
    }
    if (kernel == "pow") return cost_.ns_pow;
    if (kernel == "mul") return cost_.ns_mul;
    if (kernel == "where") return cost_.ns_where;
    if (kernel == "add") return cost_.ns_add;
    if (kernel == "sub") return cost_.ns_sub;
    if (kernel == "sqrt") return cost_.ns_sqrt;
    if (kernel == "div") return cost_.ns_div;
    if (kernel == "reduction") return cost_.ns_reduction;
    if (kernel == "rand") return cost_.ns_rand;
    return 1.0;
}

void KernelProfiler::reset() {
    launches_ = 0;
    kernel_seconds_ = 0.0;
    per_kernel_.clear();
    per_kernel_count_.clear();
}

Tensor index_select(const Tensor& src, std::span<const std::uint32_t> idx,
                    KernelProfiler& prof) {
    Tensor out(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
        assert(idx[k] < src.size());
        out[k] = src[idx[k]];
    }
    prof.record("index", idx.size());
    return out;
}

void index_add(Tensor& dst, std::span<const std::uint32_t> idx, const Tensor& val,
               KernelProfiler& prof) {
    assert(idx.size() == val.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
        assert(idx[k] < dst.size());
        dst[idx[k]] += val[k];
    }
    prof.record("index", idx.size());
}

void index_put(Tensor& dst, std::span<const std::uint32_t> idx, const Tensor& val,
               KernelProfiler& prof) {
    assert(idx.size() == val.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
        assert(idx[k] < dst.size());
        dst[idx[k]] = val[k];
    }
    prof.record("index", idx.size());
}

namespace {
template <typename Fn>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name,
                 KernelProfiler& prof, Fn&& fn) {
    assert(a.size() == b.size());
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) out[k] = fn(a[k], b[k]);
    prof.record(name, a.size());
    return out;
}
}  // namespace

Tensor sub(const Tensor& a, const Tensor& b, KernelProfiler& prof) {
    return binary_op(a, b, "sub", prof, [](float x, float y) { return x - y; });
}

Tensor add(const Tensor& a, const Tensor& b, KernelProfiler& prof) {
    return binary_op(a, b, "add", prof, [](float x, float y) { return x + y; });
}

Tensor mul(const Tensor& a, const Tensor& b, KernelProfiler& prof) {
    return binary_op(a, b, "mul", prof, [](float x, float y) { return x * y; });
}

Tensor mul_scalar(const Tensor& a, float s, KernelProfiler& prof) {
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) out[k] = a[k] * s;
    prof.record("mul", a.size());
    return out;
}

Tensor div(const Tensor& a, const Tensor& b, KernelProfiler& prof) {
    return binary_op(a, b, "div", prof, [](float x, float y) { return x / y; });
}

Tensor pow2(const Tensor& a, KernelProfiler& prof) {
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) out[k] = a[k] * a[k];
    prof.record("pow", a.size());
    return out;
}

Tensor sqrt(const Tensor& a, KernelProfiler& prof) {
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) out[k] = std::sqrt(a[k]);
    prof.record("sqrt", a.size());
    return out;
}

Tensor where(const Tensor& cond, const Tensor& a, const Tensor& b,
             KernelProfiler& prof) {
    assert(cond.size() == a.size() && a.size() == b.size());
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        out[k] = cond[k] != 0.0f ? a[k] : b[k];
    }
    prof.record("where", a.size());
    return out;
}

Tensor clamp_max(const Tensor& a, float cap, KernelProfiler& prof) {
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) out[k] = a[k] < cap ? a[k] : cap;
    prof.record("where", a.size());
    return out;
}

Tensor clamp_min(const Tensor& a, float floor, KernelProfiler& prof) {
    Tensor out(a.size());
    for (std::size_t k = 0; k < a.size(); ++k) out[k] = a[k] > floor ? a[k] : floor;
    prof.record("where", a.size());
    return out;
}

double sum(const Tensor& a, KernelProfiler& prof) {
    double s = 0;
    for (std::size_t k = 0; k < a.size(); ++k) s += a[k];
    prof.record("reduction", a.size());
    return s;
}

}  // namespace pgl::tensor

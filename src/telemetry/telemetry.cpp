#include "telemetry/telemetry.hpp"

#include <fstream>

#ifndef PGL_TELEMETRY_DISABLED

#include <algorithm>
#include <atomic>
#include <bit>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <system_error>
#include <vector>

namespace pgl::telemetry {
namespace {

std::chrono::steady_clock::time_point process_start() {
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

// Touch the epoch at static-init time so concurrent first calls to now_ns()
// cannot race on the function-local static from multiple threads mid-run.
const bool epoch_pinned = (process_start(), true);

/// Minimal JSON string escaping for metric/span names (which are
/// code-controlled, but a stray quote must not corrupt an export).
std::string jquote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

}  // namespace

std::uint64_t now_ns() {
    (void)epoch_pinned;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - process_start())
            .count());
}

// --- Counter -----------------------------------------------------------

struct Counter::Impl {
    std::atomic<std::uint64_t> value{0};
};

void Counter::add(std::uint64_t n) const noexcept {
    impl_->value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
    return impl_->value.load(std::memory_order_relaxed);
}

void Counter::reset() const noexcept {
    impl_->value.store(0, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------
//
// Bucketing: values 0..15 get exact buckets 0..15. For v >= 16 the major
// bucket is floor(log2 v) in [4, 63] and the 3 bits below the leading bit
// pick one of 8 linear sub-buckets, giving bucket widths of lower/8 — a
// 12.5% worst-case relative error, HDR-histogram style, in a fixed 496-slot
// array of relaxed atomics (no allocation or locking on record).

struct Histogram::Impl {
    std::atomic<std::uint64_t> buckets[Histogram::kNumBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~0ull};
    std::atomic<std::uint64_t> max{0};
};

std::uint32_t Histogram::bucket_index(std::uint64_t v) noexcept {
    if (v < 16) return static_cast<std::uint32_t>(v);
    const auto exp = static_cast<std::uint32_t>(std::bit_width(v) - 1);
    const auto sub = static_cast<std::uint32_t>((v >> (exp - 3)) & 7u);
    return 16 + (exp - 4) * 8 + sub;
}

std::uint64_t Histogram::bucket_lower(std::uint32_t b) noexcept {
    if (b < 16) return b;
    const std::uint32_t exp = (b - 16) / 8 + 4;
    const std::uint64_t sub = (b - 16) % 8;
    return (8ull + sub) << (exp - 3);
}

void Histogram::record(std::uint64_t v) const noexcept {
    impl_->buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    impl_->count.fetch_add(1, std::memory_order_relaxed);
    impl_->sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = impl_->min.load(std::memory_order_relaxed);
    while (v < cur &&
           !impl_->min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = impl_->max.load(std::memory_order_relaxed);
    while (v > cur &&
           !impl_->max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

std::uint64_t Histogram::count() const noexcept {
    return impl_->count.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const noexcept {
    return impl_->sum.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const noexcept {
    const std::uint64_t m = impl_->min.load(std::memory_order_relaxed);
    return m == ~0ull ? 0 : m;
}

std::uint64_t Histogram::max() const noexcept {
    return impl_->max.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
    q = std::clamp(q, 0.0, 1.0);
    // Snapshot the buckets; their own sum is the consistent total (the
    // shared `count` may include records whose bucket increment we missed).
    std::uint64_t counts[kNumBuckets];
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
        counts[b] = impl_->buckets[b].load(std::memory_order_relaxed);
        total += counts[b];
    }
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total - 1);
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
        if (counts[b] == 0) continue;
        if (static_cast<double>(seen + counts[b] - 1) >= rank) {
            // Interpolate inside the bucket between its bounds, clamped to
            // the observed min/max so tiny histograms stay tight.
            const double lo = static_cast<double>(bucket_lower(b));
            const double hi =
                b + 1 < kNumBuckets ? static_cast<double>(bucket_lower(b + 1))
                                    : lo * 1.125;
            const double within =
                counts[b] <= 1
                    ? 0.0
                    : (rank - static_cast<double>(seen)) /
                          static_cast<double>(counts[b] - 1);
            double est = lo + (hi - lo) * within;
            est = std::max(est, static_cast<double>(min()));
            est = std::min(est, static_cast<double>(max()));
            return est;
        }
        seen += counts[b];
    }
    return static_cast<double>(max());
}

void Histogram::merge_from(const Histogram& other) const noexcept {
    std::uint64_t counts[kNumBuckets];
    for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
        counts[b] = other.impl_->buckets[b].load(std::memory_order_relaxed);
    }
    merge_counts(counts, other.count(), other.sum(), other.min(), other.max());
}

void Histogram::merge_counts(const std::uint64_t* bucket_counts,
                             std::uint64_t count, std::uint64_t sum,
                             std::uint64_t min,
                             std::uint64_t max) const noexcept {
    for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
        const std::uint64_t n = bucket_counts[b];
        if (n) impl_->buckets[b].fetch_add(n, std::memory_order_relaxed);
    }
    impl_->count.fetch_add(count, std::memory_order_relaxed);
    impl_->sum.fetch_add(sum, std::memory_order_relaxed);
    if (count > 0) {
        std::uint64_t v = min;
        std::uint64_t cur = impl_->min.load(std::memory_order_relaxed);
        while (v < cur && !impl_->min.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
        v = max;
        cur = impl_->max.load(std::memory_order_relaxed);
        while (v > cur && !impl_->max.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
}

void Histogram::reset() const noexcept {
    for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
        impl_->buckets[b].store(0, std::memory_order_relaxed);
    }
    impl_->count.store(0, std::memory_order_relaxed);
    impl_->sum.store(0, std::memory_order_relaxed);
    impl_->min.store(~0ull, std::memory_order_relaxed);
    impl_->max.store(0, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------

struct Registry::Impl {
    std::mutex mu;
    // std::map: node stability means the Impl addresses handed out in
    // Counter/Histogram handles stay valid for the process lifetime.
    std::map<std::string, Counter::Impl> counters;
    std::map<std::string, Histogram::Impl> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
    static Registry r;
    return r;
}

Counter Registry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lk(impl_->mu);
    return Counter(&impl_->counters[name]);
}

Histogram Registry::histogram(const std::string& name) {
    std::lock_guard<std::mutex> lk(impl_->mu);
    return Histogram(&impl_->histograms[name]);
}

void Registry::reset() {
    std::lock_guard<std::mutex> lk(impl_->mu);
    for (auto& [name, c] : impl_->counters) {
        c.value.store(0, std::memory_order_relaxed);
    }
    for (auto& [name, h] : impl_->histograms) {
        Histogram(&h).reset();
    }
}

// --- Tracer ------------------------------------------------------------

namespace {

struct TraceEvent {
    std::string name;
    std::string cat;
    char ph;  // 'X' duration, 'b'/'e' async begin/end
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;  // X only
    std::uint32_t tid;
    std::uint64_t id;  // async only

    void append_json(std::string& out) const {
        out += "{\"name\":";
        out += jquote(name);
        if (!cat.empty()) {
            out += ",\"cat\":";
            out += jquote(cat);
        } else {
            out += ",\"cat\":\"pgl\"";
        }
        out += ",\"ph\":\"";
        out += ph;
        out += "\",\"ts\":";
        out += fmt_double(static_cast<double>(ts_ns) / 1000.0);
        if (ph == 'X') {
            out += ",\"dur\":";
            out += fmt_double(static_cast<double>(dur_ns) / 1000.0);
        }
        if (ph == 'b' || ph == 'e') {
            out += ",\"id\":";
            out += std::to_string(id);
        }
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        out += "}";
    }
};

std::uint32_t this_thread_tid() {
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t tid = next.fetch_add(1);
    return tid;
}

}  // namespace

struct Tracer::Impl {
    std::atomic<bool> enabled{false};
    std::mutex mu;
    std::vector<TraceEvent> events;
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
    static Tracer t;
    return t;
}

void Tracer::set_enabled(bool on) noexcept {
    impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Tracer::enabled() const noexcept {
    return impl_->enabled.load(std::memory_order_relaxed);
}

void Tracer::clear() noexcept {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->events.clear();
}

void Tracer::record_span(const std::string& name, const std::string& cat,
                         std::uint64_t start_ns, std::uint64_t dur_ns) {
    if (!enabled()) return;
    TraceEvent ev{name, cat, 'X', start_ns, dur_ns, this_thread_tid(), 0};
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->events.push_back(std::move(ev));
}

void Tracer::record_async(const std::string& name, const std::string& cat,
                          std::uint64_t id, std::uint64_t start_ns,
                          std::uint64_t end_ns) {
    if (!enabled()) return;
    const std::uint32_t tid = this_thread_tid();
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->events.push_back(TraceEvent{name, cat, 'b', start_ns, 0, tid, id});
    impl_->events.push_back(TraceEvent{name, cat, 'e', end_ns, 0, tid, id});
}

// --- StageSpan ---------------------------------------------------------

StageSpan::StageSpan(std::string name, std::string cat)
    : name_(std::move(name)), cat_(std::move(cat)), start_ns_(now_ns()) {}

std::uint64_t StageSpan::elapsed_ns() const noexcept {
    return now_ns() - start_ns_;
}

StageSpan::~StageSpan() {
    const std::uint64_t dur = now_ns() - start_ns_;
    Registry::instance().histogram("span." + name_).record(dur);
    Tracer::instance().record_span(name_, cat_, start_ns_, dur);
}

// --- Exporters ---------------------------------------------------------

namespace {

void append_histogram_json(std::string& out, const Histogram& h) {
    out += "{\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + std::to_string(h.sum());
    out += ",\"min\":" + std::to_string(h.min());
    out += ",\"max\":" + std::to_string(h.max());
    out += ",\"p50\":" + fmt_double(h.quantile(0.50));
    out += ",\"p95\":" + fmt_double(h.quantile(0.95));
    out += ",\"p99\":" + fmt_double(h.quantile(0.99));
    out += "}";
}

}  // namespace

std::string snapshot_json() {
    // Walk the registry maps directly (sorted keys -> stable output).
    auto& reg = Registry::instance();
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::string> hist_names;
    {
        // Collect names first, then format outside the registry lock using
        // the stable handles.
        Registry::Impl* impl = reg.impl_;
        std::lock_guard<std::mutex> lk(impl->mu);
        for (auto& [name, c] : impl->counters) {
            counters.emplace_back(name,
                                  c.value.load(std::memory_order_relaxed));
        }
        for (auto& [name, h] : impl->histograms) {
            hist_names.push_back(name);
        }
    }
    std::string out = "{\"enabled\":true,\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : counters) {
        if (!first) out += ",";
        first = false;
        out += jquote(name) + ":" + std::to_string(v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& name : hist_names) {
        if (!first) out += ",";
        first = false;
        out += jquote(name) + ":";
        append_histogram_json(out, reg.histogram(name));
    }
    out += "}}";
    return out;
}

std::string snapshot_wire() {
    auto& reg = Registry::instance();
    std::string out = "pgltel1\n";
    Registry::Impl* impl = reg.impl_;
    std::lock_guard<std::mutex> lk(impl->mu);
    for (auto& [name, c] : impl->counters) {
        const std::uint64_t v = c.value.load(std::memory_order_relaxed);
        if (v == 0) continue;
        out += "c " + name + " " + std::to_string(v) + "\n";
    }
    for (auto& [name, h] : impl->histograms) {
        const std::uint64_t count = h.count.load(std::memory_order_relaxed);
        if (count == 0) continue;
        const std::uint64_t min = h.min.load(std::memory_order_relaxed);
        out += "h " + name + " " + std::to_string(count) + " " +
               std::to_string(h.sum.load(std::memory_order_relaxed)) + " " +
               std::to_string(min == ~0ull ? 0 : min) + " " +
               std::to_string(h.max.load(std::memory_order_relaxed));
        for (std::uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
            const std::uint64_t n = h.buckets[b].load(std::memory_order_relaxed);
            if (n) out += " " + std::to_string(b) + ":" + std::to_string(n);
        }
        out += "\n";
    }
    return out;
}

namespace {

std::uint64_t parse_wire_u64(std::string_view& line, const char* what) {
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(line.data(), line.data() + line.size(), v);
    if (ec != std::errc() || ptr == line.data()) {
        throw std::runtime_error(std::string("telemetry wire snapshot: bad ") +
                                 what);
    }
    line.remove_prefix(static_cast<std::size_t>(ptr - line.data()));
    return v;
}

std::string parse_wire_name(std::string_view& line) {
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    const std::size_t sp = line.find(' ');
    if (sp == 0 || sp == std::string_view::npos) {
        throw std::runtime_error("telemetry wire snapshot: bad metric name");
    }
    std::string name(line.substr(0, sp));
    line.remove_prefix(sp);
    return name;
}

}  // namespace

void merge_snapshot_wire(const std::string& wire) {
    if (wire.empty()) return;
    std::string_view rest = wire;
    const std::size_t nl = rest.find('\n');
    if (rest.substr(0, nl) != "pgltel1") {
        throw std::runtime_error("telemetry wire snapshot: bad header");
    }
    rest.remove_prefix(nl == std::string_view::npos ? rest.size() : nl + 1);
    auto& reg = Registry::instance();
    while (!rest.empty()) {
        const std::size_t end = rest.find('\n');
        std::string_view line = rest.substr(0, end);
        rest.remove_prefix(end == std::string_view::npos ? rest.size()
                                                         : end + 1);
        if (line.empty()) continue;
        const char kind = line.front();
        line.remove_prefix(1);
        if (kind == 'c') {
            const std::string name = parse_wire_name(line);
            reg.counter(name).add(parse_wire_u64(line, "counter value"));
        } else if (kind == 'h') {
            const std::string name = parse_wire_name(line);
            const std::uint64_t count = parse_wire_u64(line, "count");
            const std::uint64_t sum = parse_wire_u64(line, "sum");
            const std::uint64_t min = parse_wire_u64(line, "min");
            const std::uint64_t max = parse_wire_u64(line, "max");
            std::uint64_t buckets[Histogram::kNumBuckets] = {};
            while (!line.empty()) {
                const std::uint64_t b = parse_wire_u64(line, "bucket index");
                if (b >= Histogram::kNumBuckets || line.empty() ||
                    line.front() != ':') {
                    throw std::runtime_error(
                        "telemetry wire snapshot: bad bucket entry");
                }
                line.remove_prefix(1);
                buckets[b] = parse_wire_u64(line, "bucket count");
                while (!line.empty() && line.front() == ' ') {
                    line.remove_prefix(1);
                }
            }
            reg.histogram(name).merge_counts(buckets, count, sum, min, max);
        } else {
            throw std::runtime_error(
                "telemetry wire snapshot: unknown record kind");
        }
    }
}

bool write_chrome_trace(const std::string& path) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    {
        Tracer& tr = Tracer::instance();
        std::lock_guard<std::mutex> lk(tr.impl_->mu);
        bool first = true;
        for (const TraceEvent& ev : tr.impl_->events) {
            if (!first) out += ",\n";
            first = false;
            ev.append_json(out);
        }
    }
    out += "],\"telemetryEnabled\":true,\"telemetry\":";
    out += snapshot_json();
    out += "}\n";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << out;
    return static_cast<bool>(f);
}

}  // namespace pgl::telemetry

#else  // PGL_TELEMETRY_DISABLED

namespace pgl::telemetry {

std::uint64_t now_ns() { return 0; }

std::string snapshot_json() {
    return "{\"enabled\":false,\"counters\":{},\"histograms\":{}}";
}

std::string snapshot_wire() { return ""; }

void merge_snapshot_wire(const std::string&) {}

bool write_chrome_trace(const std::string& path) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[],"
         "\"telemetryEnabled\":false,\"telemetry\":"
      << snapshot_json() << "}\n";
    return static_cast<bool>(f);
}

}  // namespace pgl::telemetry

#endif  // PGL_TELEMETRY_DISABLED

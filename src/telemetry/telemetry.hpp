// Process-wide telemetry: named counters, fixed-bucket histograms, RAII
// stage spans, and two exporters (stable JSON snapshot + Chrome trace-event
// file). Every subsystem records through the singleton Registry/Tracer so a
// single `pgl_layout --trace out.json` (or the daemon's `metrics` wire
// command) captures the whole process.
//
// Design constraints, in order:
//
//  1. Determinism. Instrumentation only *observes* — it never draws random
//     numbers, reorders work, or feeds back into layout math. The
//     byte-reproducibility ctests run with telemetry compiled in and ON.
//  2. Hot-path cost. Counter::add is one relaxed atomic fetch_add;
//     Histogram::record is a bucket index computation plus four relaxed
//     atomic ops (no locks, no allocation). Call sites on per-term paths
//     accumulate locally and flush once per batch. Registry lookups hit a
//     mutex, so hot paths resolve their Counter&/Histogram& once (the
//     returned references are stable for process lifetime) and reuse them.
//  3. Compile-out proof. -DPGL_TELEMETRY=OFF defines PGL_TELEMETRY_DISABLED
//     and this header degrades to inline no-ops: call sites compile
//     unchanged, the exporters emit valid-but-empty documents, and the
//     binary carries no atomics on the hot path at all.
//
// Metric naming: dot-separated `<subsystem>.<metric>[_<unit>]` — e.g.
// `engine.updates`, `pool.dispatch_wait_ns`, `kernel.simd.vector_groups`,
// `serve.queue_wait_ns`. Span histograms are auto-named `span.<span name>`.
// Durations are always nanoseconds (`_ns`).
#pragma once

#include <cstdint>
#include <string>

namespace pgl::telemetry {

/// Nanoseconds since process start (steady clock). Returns 0 when telemetry
/// is compiled out.
std::uint64_t now_ns();

/// Stable JSON document: {"enabled":bool,"counters":{...},"histograms":{...}}
/// with keys sorted, histogram objects carrying count/sum/min/max/p50/p95/p99.
std::string snapshot_json();

/// Compact line-based serialization of the whole registry *including raw
/// histogram buckets* — unlike snapshot_json, whose quantile summaries
/// cannot be merged faithfully. This is the cross-process wire format the
/// multi-process partition executor ships worker telemetry back over:
///   pgltel1
///   c <name> <value>
///   h <name> <count> <sum> <min> <max> <bucket>:<n> ...
/// Metric names are code-controlled dot identifiers (never spaces), so
/// whitespace splitting is unambiguous. Empty when telemetry is compiled
/// out.
std::string snapshot_wire();

/// Merges a snapshot_wire() payload (typically read from a worker process's
/// status pipe) into this process's Registry: counters add, histograms
/// merge bucket-by-bucket through the same machinery as
/// Histogram::merge_from, so quantiles over the merged data stay faithful.
/// Throws std::runtime_error on a malformed payload; a no-op on an empty
/// payload or when telemetry is compiled out.
void merge_snapshot_wire(const std::string& wire);

/// Writes a Chrome trace-event file (loadable in chrome://tracing and
/// Perfetto). Duration events for stage spans, async events for queue waits,
/// plus the full registry snapshot under a top-level "telemetry" key (extra
/// keys are tolerated by both viewers). Always writes a well-formed document,
/// even compiled out (empty traceEvents, "telemetryEnabled": false).
/// Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

#ifndef PGL_TELEMETRY_DISABLED

/// Monotonic named counter. Relaxed atomics: totals are exact, cross-counter
/// ordering is not promised (nor needed).
class Counter {
public:
    void add(std::uint64_t n = 1) const noexcept;
    std::uint64_t value() const noexcept;
    void reset() const noexcept;

private:
    struct Impl;
    Impl* impl_;
    friend class Registry;
    explicit Counter(Impl* impl) : impl_(impl) {}
};

/// Fixed-bucket log2 histogram over uint64 values (use ns for durations).
/// Values < 16 get exact buckets; above that, each power-of-two range is
/// split into 8 linear sub-buckets, so any recorded value lands in a bucket
/// whose width is at most 12.5% of its lower bound — quantile estimates
/// carry the same bound. record() is lock-free (relaxed atomics); snapshots
/// and merges tolerate concurrent recording (totals may trail by in-flight
/// records, never torn).
class Histogram {
public:
    void record(std::uint64_t value) const noexcept;
    std::uint64_t count() const noexcept;
    std::uint64_t sum() const noexcept;
    std::uint64_t min() const noexcept;  ///< 0 when empty
    std::uint64_t max() const noexcept;  ///< 0 when empty
    /// Quantile estimate in [bucket lower, bucket upper] of the rank'd
    /// sample, linearly interpolated inside the bucket. q in [0, 1].
    double quantile(double q) const noexcept;
    /// Adds other's buckets/count/sum into this one (associative and
    /// commutative up to concurrent records).
    void merge_from(const Histogram& other) const noexcept;
    /// The raw merge primitive behind merge_from and the cross-process
    /// wire-snapshot import: adds `bucket_counts[0..kNumBuckets)` into the
    /// buckets and folds the count/sum/min/max totals in. `min`/`max` are
    /// ignored when `count` is zero.
    void merge_counts(const std::uint64_t* bucket_counts, std::uint64_t count,
                      std::uint64_t sum, std::uint64_t min,
                      std::uint64_t max) const noexcept;
    void reset() const noexcept;

    /// Bucket index for a value — exposed for tests.
    static std::uint32_t bucket_index(std::uint64_t value) noexcept;
    /// Inclusive lower bound of a bucket — exposed for tests.
    static std::uint64_t bucket_lower(std::uint32_t bucket) noexcept;
    static constexpr std::uint32_t kNumBuckets = 16 + 60 * 8;

private:
    struct Impl;
    Impl* impl_;
    friend class Registry;
    explicit Histogram(Impl* impl) : impl_(impl) {}
};

/// Process-wide metric registry. Lookup is mutex-protected; the returned
/// handles are stable for the process lifetime, so resolve once and cache
/// (function-local static references are the idiom on hot paths).
class Registry {
public:
    static Registry& instance();
    Counter counter(const std::string& name);
    Histogram histogram(const std::string& name);
    /// Zeroes every counter and histogram (benches isolate phases with it).
    void reset();

private:
    Registry();
    struct Impl;
    Impl* impl_;
    friend std::string snapshot_json();
    friend std::string snapshot_wire();
};

/// Span/trace collector. Disabled by default: StageSpan still feeds its
/// duration into the `span.<name>` histogram (cheap, powers --timing), but
/// trace events are only retained between set_enabled(true) and the export.
class Tracer {
public:
    static Tracer& instance();
    void set_enabled(bool on) noexcept;
    bool enabled() const noexcept;
    void clear() noexcept;
    /// Duration event recorded after the fact on the calling thread's track.
    void record_span(const std::string& name, const std::string& cat,
                     std::uint64_t start_ns, std::uint64_t dur_ns);
    /// Async begin/end pair (its own track, may overlap thread activity —
    /// queue waits use this so they don't fight the worker's span stack).
    void record_async(const std::string& name, const std::string& cat,
                      std::uint64_t id, std::uint64_t start_ns,
                      std::uint64_t end_ns);

private:
    Tracer();
    struct Impl;
    Impl* impl_;
    friend bool write_chrome_trace(const std::string&);
};

/// RAII stage timer. On destruction records the elapsed ns into the
/// `span.<name>` registry histogram always, and appends a Chrome duration
/// event when the Tracer is enabled. Spans on one thread nest naturally
/// (inner spans close first), which is exactly the Chrome trace contract.
class StageSpan {
public:
    explicit StageSpan(std::string name, std::string cat = "");
    ~StageSpan();
    StageSpan(const StageSpan&) = delete;
    StageSpan& operator=(const StageSpan&) = delete;
    /// Elapsed ns so far (tests and mid-span reporting).
    std::uint64_t elapsed_ns() const noexcept;

private:
    std::string name_;
    std::string cat_;
    std::uint64_t start_ns_;
};

#else  // PGL_TELEMETRY_DISABLED: the whole API degrades to inline no-ops.

class Counter {
public:
    void add(std::uint64_t = 1) const noexcept {}
    std::uint64_t value() const noexcept { return 0; }
    void reset() const noexcept {}
};

class Histogram {
public:
    void record(std::uint64_t) const noexcept {}
    std::uint64_t count() const noexcept { return 0; }
    std::uint64_t sum() const noexcept { return 0; }
    std::uint64_t min() const noexcept { return 0; }
    std::uint64_t max() const noexcept { return 0; }
    double quantile(double) const noexcept { return 0.0; }
    void merge_from(const Histogram&) const noexcept {}
    void merge_counts(const std::uint64_t*, std::uint64_t, std::uint64_t,
                      std::uint64_t, std::uint64_t) const noexcept {}
    void reset() const noexcept {}
    static std::uint32_t bucket_index(std::uint64_t) noexcept { return 0; }
    static std::uint64_t bucket_lower(std::uint32_t) noexcept { return 0; }
    static constexpr std::uint32_t kNumBuckets = 0;
};

class Registry {
public:
    static Registry& instance() {
        static Registry r;
        return r;
    }
    Counter counter(const std::string&) { return Counter{}; }
    Histogram histogram(const std::string&) { return Histogram{}; }
    void reset() {}
};

class Tracer {
public:
    static Tracer& instance() {
        static Tracer t;
        return t;
    }
    void set_enabled(bool) noexcept {}
    bool enabled() const noexcept { return false; }
    void clear() noexcept {}
    void record_span(const std::string&, const std::string&, std::uint64_t,
                     std::uint64_t) {}
    void record_async(const std::string&, const std::string&, std::uint64_t,
                      std::uint64_t, std::uint64_t) {}
};

class StageSpan {
public:
    explicit StageSpan(std::string, std::string = "") {}
    std::uint64_t elapsed_ns() const noexcept { return 0; }
};

#endif  // PGL_TELEMETRY_DISABLED

}  // namespace pgl::telemetry

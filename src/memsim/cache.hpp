#pragma once
// Set-associative cache simulator — the substrate standing in for Perf /
// VTune hardware counters (paper Tables II, IX) and for the GPU cache
// hierarchy (Tables X, XI). Classic LRU, write-allocate, configurable line
// size so the same class models 64 B CPU lines and 32 B GPU sectors.
#include <cstdint>
#include <vector>

namespace pgl::memsim {

struct CacheConfig {
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t ways = 8;
};

struct CacheStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double miss_rate() const noexcept {
        return accesses ? static_cast<double>(misses) / static_cast<double>(accesses)
                        : 0.0;
    }
};

/// One cache level. Addresses are abstract byte addresses; the caller
/// decides what address space models which data structure.
class Cache {
public:
    explicit Cache(const CacheConfig& cfg);

    /// Accesses one line-aligned address; returns true on hit. On miss the
    /// line is installed (evicting LRU).
    bool access_line(std::uint64_t line_addr);

    /// Touches every line overlapped by [addr, addr + bytes); returns the
    /// number of misses.
    std::uint32_t access(std::uint64_t addr, std::uint32_t bytes);

    const CacheStats& stats() const noexcept { return stats_; }
    const CacheConfig& config() const noexcept { return cfg_; }
    std::uint32_t line_bytes() const noexcept { return cfg_.line_bytes; }
    void reset_stats() noexcept { stats_ = {}; }

private:
    struct Way {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    CacheConfig cfg_;
    std::uint32_t n_sets_;
    std::vector<Way> ways_;  // n_sets_ x cfg_.ways, row-major
    std::uint64_t tick_ = 0;
    CacheStats stats_;
};

/// A hierarchy: an access probes L1; each L1 line miss probes L2, and so
/// on; misses at the last level count as DRAM traffic.
class CacheHierarchy {
public:
    explicit CacheHierarchy(const std::vector<CacheConfig>& levels);

    /// Touches [addr, addr + bytes) through the hierarchy.
    void access(std::uint64_t addr, std::uint32_t bytes);

    std::size_t level_count() const noexcept { return levels_.size(); }
    const Cache& level(std::size_t i) const { return levels_[i]; }

    std::uint64_t dram_accesses() const noexcept { return dram_accesses_; }
    std::uint64_t dram_bytes() const noexcept { return dram_bytes_; }

    void reset_stats();

private:
    std::vector<Cache> levels_;
    std::uint64_t dram_accesses_ = 0;
    std::uint64_t dram_bytes_ = 0;
};

/// The 32-core Xeon Gold 6246R hierarchy of the paper's testbed
/// (per-core L1/L2 + shared 35.75 MB LLC, 64 B lines), scaled by
/// `llc_scale` to keep the working-set-to-cache ratio realistic when
/// graphs are scaled down (see DESIGN.md).
std::vector<CacheConfig> xeon_6246r_hierarchy(double llc_scale = 1.0);

}  // namespace pgl::memsim

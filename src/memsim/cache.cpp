#include "memsim/cache.hpp"

#include <cassert>

namespace pgl::memsim {

namespace {
constexpr bool is_pow2(std::uint64_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
    assert(is_pow2(cfg.line_bytes));
    assert(cfg.ways > 0);
    const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
    n_sets_ = static_cast<std::uint32_t>(lines / cfg.ways);
    if (n_sets_ == 0) n_sets_ = 1;
    ways_.assign(static_cast<std::size_t>(n_sets_) * cfg.ways, Way{});
}

bool Cache::access_line(std::uint64_t line_addr) {
    ++stats_.accesses;
    ++tick_;
    const std::uint64_t set = line_addr % n_sets_;
    Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
    Way* victim = base;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        Way& way = base[w];
        if (way.valid && way.tag == line_addr) {
            way.lru = tick_;
            ++stats_.hits;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }
    ++stats_.misses;
    victim->tag = line_addr;
    victim->valid = true;
    victim->lru = tick_;
    return false;
}

std::uint32_t Cache::access(std::uint64_t addr, std::uint32_t bytes) {
    const std::uint64_t first = addr / cfg_.line_bytes;
    const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / cfg_.line_bytes;
    std::uint32_t misses = 0;
    for (std::uint64_t line = first; line <= last; ++line) {
        if (!access_line(line)) ++misses;
    }
    return misses;
}

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig>& levels) {
    assert(!levels.empty());
    levels_.reserve(levels.size());
    for (const auto& cfg : levels) levels_.emplace_back(cfg);
}

void CacheHierarchy::access(std::uint64_t addr, std::uint32_t bytes) {
    // Probe L1 line by line; misses ripple to the next level.
    const std::uint32_t l1_line = levels_[0].line_bytes();
    const std::uint64_t first = addr / l1_line;
    const std::uint64_t last = (addr + (bytes ? bytes - 1 : 0)) / l1_line;
    for (std::uint64_t line = first; line <= last; ++line) {
        bool hit = levels_[0].access_line(line);
        const std::uint64_t byte_addr = line * l1_line;
        for (std::size_t lvl = 1; !hit && lvl < levels_.size(); ++lvl) {
            hit = levels_[lvl].access_line(byte_addr / levels_[lvl].line_bytes());
        }
        if (!hit) {
            ++dram_accesses_;
            dram_bytes_ += levels_.back().line_bytes();
        }
    }
}

void CacheHierarchy::reset_stats() {
    for (auto& l : levels_) l.reset_stats();
    dram_accesses_ = 0;
    dram_bytes_ = 0;
}

std::vector<CacheConfig> xeon_6246r_hierarchy(double llc_scale) {
    const auto scaled = [&](std::uint64_t bytes) {
        const double v = static_cast<double>(bytes) * llc_scale;
        std::uint64_t out = static_cast<std::uint64_t>(v);
        if (out < 4096) out = 4096;
        // Round to a power-of-two line multiple for set math.
        std::uint64_t p = 4096;
        while (p * 2 <= out) p *= 2;
        return p;
    };
    return {
        CacheConfig{scaled(32 * 1024), 64, 8},           // L1D per core
        CacheConfig{scaled(1024 * 1024), 64, 16},        // L2 per core
        CacheConfig{scaled(35ULL * 1024 * 1024 + 768 * 1024), 64, 11},  // LLC
    };
}

}  // namespace pgl::memsim

#pragma once
// CPU workload characterization (paper Sec. III, Tables II & IX, Fig. 5).
//
// The paper measures odgi-layout with Perf/VTune on a 32-core Xeon. Those
// counters are unavailable here, so we replay the *exact* address stream of
// the PG-SGD update loop (same PairSampler, same per-update touches)
// through a simulated Xeon cache hierarchy and report the analogous
// counters: LLC loads, LLC load misses, a memory-stall-cycle percentage and
// a memory-bound pipeline-slot share.
//
// Cache capacities are scaled by the same factor as the graph (llc_scale)
// so the working-set-to-cache ratio — which is what drives the miss rates —
// matches the full-scale experiment.
//
// The replay is double-buffered on a one-worker core::ThreadPool (the same
// pipeline shape as the cpu-pipelined engine): the worker fills the next
// TermBatch slice while this thread walks the current slice through the
// cache model. The single PRNG stream is consumed in slice order, so the
// replayed address stream — and every reported counter — is identical to
// the sequential replay.
#include <cstdint>

#include "core/config.hpp"
#include "core/cpu_engine.hpp"
#include "graph/lean_graph.hpp"
#include "memsim/cache.hpp"

namespace pgl::memsim {

struct CpuCharacterization {
    CacheStats l1, l2, llc;
    std::uint64_t dram_accesses = 0;
    std::uint64_t updates = 0;

    double llc_load_miss_rate = 0.0;  ///< Table II "LLC-load miss rate"
    double memory_stall_pct = 0.0;    ///< Table II "memory stall cycle %"
    double memory_bound_pct = 0.0;    ///< Fig. 5 "Memory Bound" slot share
    double cycles_per_update = 0.0;   ///< modeled core cycles per update
};

struct CharacterizeOptions {
    std::uint64_t sample_updates = 2'000'000;  ///< replayed update steps
    double cooling_fraction = 0.5;  ///< fraction of steps in the cooling regime
    std::uint64_t seed = 42;
    double llc_scale = 1.0;  ///< cache-capacity scale (match the graph scale)

    /// Stride multiplier applied to the SoA (original odgi) data
    /// structures: ODGI's containers carry sequence pointers, succinct
    /// ranks and bookkeeping around every field, so the effective footprint
    /// per element is several times the lean arrays this repo stores. The
    /// AoS variant models the paper's lean repacked records (no bloat).
    double odgi_stride_bloat = 6.0;

    /// Non-stall pipeline work per update used only for the stall/slot
    /// percentages (issue, branch, front-end): Perf attributes these cycles
    /// to retirement, not memory.
    double pipeline_overhead_cycles = 250.0;

    // Latency model (cycles), Skylake-SP-like.
    double compute_cycles_per_update = 15.0;
    double lat_l2 = 10.0;
    double lat_llc = 25.0;
    double lat_dram = 180.0;
};

/// Replays `sample_updates` PG-SGD updates through the cache model using
/// the given coordinate-store organization (SoA = original, AoS = CDL).
CpuCharacterization characterize_cpu(const graph::LeanGraph& g,
                                     const core::LayoutConfig& cfg,
                                     core::CoordStore store,
                                     const CharacterizeOptions& opt);

/// Analytic CPU time model used for the paper-shape speedup tables: total
/// update count times modeled cycles per update, divided over the Xeon's
/// threads, with a contention factor for shared-DRAM pressure.
struct CpuPerfModel {
    std::uint32_t threads = 32;
    double clock_ghz = 3.4;
    /// Multi-core DRAM contention + scheduling overhead; calibrated so a
    /// full-scale Chr.1 run lands in the paper's wall-clock regime.
    double contention = 2.45;

    double seconds(const CpuCharacterization& ch, std::uint64_t total_updates) const {
        const double cycles =
            ch.cycles_per_update * static_cast<double>(total_updates) * contention;
        return cycles / (static_cast<double>(threads) * clock_ghz * 1e9);
    }
};

}  // namespace pgl::memsim

#include "memsim/characterize.hpp"

#include <algorithm>

#include "core/sampling.hpp"
#include "core/term_batch.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::memsim {

namespace {

// Abstract address-space bases, one per data structure, spaced far apart so
// structures never alias in the simulated caches.
constexpr std::uint64_t kBaseCoordX = 0x0000'0000'0000ULL;
constexpr std::uint64_t kBaseCoordY = 0x1000'0000'0000ULL;
constexpr std::uint64_t kBaseNodeLen = 0x2000'0000'0000ULL;
constexpr std::uint64_t kBaseStepNode = 0x3000'0000'0000ULL;
constexpr std::uint64_t kBaseStepPos = 0x4000'0000'0000ULL;
constexpr std::uint64_t kBaseStepOrient = 0x5000'0000'0000ULL;
constexpr std::uint64_t kBaseNodeRec = 0x6000'0000'0000ULL;
constexpr std::uint64_t kBaseStepRec = 0x7000'0000'0000ULL;
constexpr std::uint64_t kBaseAliasProb = 0x8000'0000'0000ULL;
constexpr std::uint64_t kBaseAliasAlias = 0x9000'0000'0000ULL;
constexpr std::uint64_t kBaseRngState = 0xA000'0000'0000ULL;

constexpr std::uint32_t kNodeRecBytes = 24;   // core::NodeRecord
constexpr std::uint32_t kStepRecBytes = 16;   // graph::PathStepRecord

}  // namespace

CpuCharacterization characterize_cpu(const graph::LeanGraph& g,
                                     const core::LayoutConfig& cfg,
                                     core::CoordStore store,
                                     const CharacterizeOptions& opt) {
    CacheHierarchy mem(xeon_6246r_hierarchy(opt.llc_scale));
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(opt.seed);

    const bool aos = (store == core::CoordStore::kAoS);
    // The original (SoA) organization is ODGI's: every element sits inside
    // a much fatter record, spreading accesses over bloat x the lean span.
    const std::uint64_t bloat = aos ? 1
                                    : std::max<std::uint64_t>(
                                          1, static_cast<std::uint64_t>(
                                                 opt.odgi_stride_bloat));
    const std::uint64_t cooling_from = static_cast<std::uint64_t>(
        opt.cooling_fraction * static_cast<double>(opt.sample_updates));

    const auto touch_coords = [&](std::uint32_t node, core::End e) {
        if (aos) {
            // One packed record holds length + both endpoints; read + write.
            const std::uint64_t a = kBaseNodeRec + std::uint64_t(node) * kNodeRecBytes;
            mem.access(a, kNodeRecBytes);
            mem.access(a, kNodeRecBytes);
        } else {
            // Original organization: X array, Y array, length array.
            const std::uint64_t idx =
                (2 * std::uint64_t(node) + static_cast<std::uint64_t>(e)) * bloat;
            mem.access(kBaseCoordX + idx * 4, 4);  // read x
            mem.access(kBaseCoordY + idx * 4, 4);  // read y
            mem.access(kBaseNodeLen + std::uint64_t(node) * 4 * bloat, 4);
            mem.access(kBaseCoordX + idx * 4, 4);  // write x
            mem.access(kBaseCoordY + idx * 4, 4);  // write y
        }
    };

    const auto touch_step = [&](std::uint32_t path, std::uint32_t step) {
        const std::uint64_t flat = g.flat_step_index(path, step);
        if (aos) {
            mem.access(kBaseStepRec + flat * kStepRecBytes, kStepRecBytes);
        } else {
            mem.access(kBaseStepNode + flat * 4 * bloat, 4);
            mem.access(kBaseStepPos + flat * 8 * bloat, 8);
            mem.access(kBaseStepOrient + flat * bloat, 1);
        }
    };

    // Replay the update loop's address stream one TermBatch slice at a
    // time (the same batched pipeline every backend consumes). Slices never
    // straddle the exploration->cooling boundary, so the term stream is
    // identical to a per-term replay.
    std::uint64_t done = 0;
    constexpr std::size_t kSlice = 4096;
    core::TermBatch batch;
    batch.reserve(kSlice);
    for (std::uint64_t s = 0; s < opt.sample_updates;) {
        const bool cooling = s >= cooling_from;
        const std::uint64_t boundary =
            cooling ? opt.sample_updates
                    : std::min<std::uint64_t>(opt.sample_updates, cooling_from);
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kSlice, boundary - s));
        batch.clear();
        sampler.fill_batch(cooling, rng, n, batch, /*with_nudge=*/false);
        for (std::size_t k = 0; k < batch.size(); ++k) {
            // PRNG state (hot; 32 bytes) and alias-table lookups happen on
            // every draw regardless of term validity.
            mem.access(kBaseRngState, 32);
            mem.access(kBaseAliasProb + std::uint64_t(batch.path[k]) * 8, 8);
            mem.access(kBaseAliasAlias + std::uint64_t(batch.path[k]) * 4, 4);
            if (!batch.valid[k]) continue;
            touch_step(batch.path[k], batch.step_i[k]);
            touch_step(batch.path[k], batch.step_j[k]);
            touch_coords(batch.node_i[k], batch.end_i_of(k));
            touch_coords(batch.node_j[k], batch.end_j_of(k));
            ++done;
        }
        s += n;
    }

    CpuCharacterization out;
    out.l1 = mem.level(0).stats();
    out.l2 = mem.level(1).stats();
    out.llc = mem.level(2).stats();
    out.dram_accesses = mem.dram_accesses();
    out.updates = done ? done : 1;

    out.llc_load_miss_rate = out.llc.miss_rate();

    const double per_update = static_cast<double>(out.updates);
    const double stall_cycles =
        (static_cast<double>(out.l1.misses) * opt.lat_l2 +
         static_cast<double>(out.l2.misses) * opt.lat_llc +
         static_cast<double>(out.llc.misses) * opt.lat_dram) /
        per_update;
    out.cycles_per_update = opt.compute_cycles_per_update + stall_cycles;
    out.memory_stall_pct =
        100.0 * stall_cycles /
        (stall_cycles + opt.compute_cycles_per_update + opt.pipeline_overhead_cycles);
    // Pipeline-slot memory-bound share (Fig. 5): stalls claim issue slots;
    // the front end and speculation claim a roughly constant share.
    out.memory_bound_pct = out.memory_stall_pct * 0.92;
    return out;
}

}  // namespace pgl::memsim

#include "memsim/characterize.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/sampling.hpp"
#include "core/term_batch.hpp"
#include "core/thread_pool.hpp"
#include "rng/xoshiro256.hpp"

namespace pgl::memsim {

namespace {

// Abstract address-space bases, one per data structure, spaced far apart so
// structures never alias in the simulated caches.
constexpr std::uint64_t kBaseCoordX = 0x0000'0000'0000ULL;
constexpr std::uint64_t kBaseCoordY = 0x1000'0000'0000ULL;
constexpr std::uint64_t kBaseNodeLen = 0x2000'0000'0000ULL;
constexpr std::uint64_t kBaseStepNode = 0x3000'0000'0000ULL;
constexpr std::uint64_t kBaseStepPos = 0x4000'0000'0000ULL;
constexpr std::uint64_t kBaseStepOrient = 0x5000'0000'0000ULL;
constexpr std::uint64_t kBaseNodeRec = 0x6000'0000'0000ULL;
constexpr std::uint64_t kBaseStepRec = 0x7000'0000'0000ULL;
constexpr std::uint64_t kBaseAliasProb = 0x8000'0000'0000ULL;
constexpr std::uint64_t kBaseAliasAlias = 0x9000'0000'0000ULL;
constexpr std::uint64_t kBaseRngState = 0xA000'0000'0000ULL;

constexpr std::uint32_t kNodeRecBytes = 24;   // core::NodeRecord
constexpr std::uint32_t kStepRecBytes = 16;   // graph::PathStepRecord

}  // namespace

CpuCharacterization characterize_cpu(const graph::LeanGraph& g,
                                     const core::LayoutConfig& cfg,
                                     core::CoordStore store,
                                     const CharacterizeOptions& opt) {
    CacheHierarchy mem(xeon_6246r_hierarchy(opt.llc_scale));
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(opt.seed);

    const bool aos = (store == core::CoordStore::kAoS);
    // The original (SoA) organization is ODGI's: every element sits inside
    // a much fatter record, spreading accesses over bloat x the lean span.
    const std::uint64_t bloat = aos ? 1
                                    : std::max<std::uint64_t>(
                                          1, static_cast<std::uint64_t>(
                                                 opt.odgi_stride_bloat));
    const std::uint64_t cooling_from = static_cast<std::uint64_t>(
        opt.cooling_fraction * static_cast<double>(opt.sample_updates));

    const auto touch_coords = [&](std::uint32_t node, core::End e) {
        if (aos) {
            // One packed record holds length + both endpoints; read + write.
            const std::uint64_t a = kBaseNodeRec + std::uint64_t(node) * kNodeRecBytes;
            mem.access(a, kNodeRecBytes);
            mem.access(a, kNodeRecBytes);
        } else {
            // Original organization: X array, Y array, length array.
            const std::uint64_t idx =
                (2 * std::uint64_t(node) + static_cast<std::uint64_t>(e)) * bloat;
            mem.access(kBaseCoordX + idx * 4, 4);  // read x
            mem.access(kBaseCoordY + idx * 4, 4);  // read y
            mem.access(kBaseNodeLen + std::uint64_t(node) * 4 * bloat, 4);
            mem.access(kBaseCoordX + idx * 4, 4);  // write x
            mem.access(kBaseCoordY + idx * 4, 4);  // write y
        }
    };

    const auto touch_step = [&](std::uint32_t path, std::uint32_t step) {
        const std::uint64_t flat = g.flat_step_index(path, step);
        if (aos) {
            mem.access(kBaseStepRec + flat * kStepRecBytes, kStepRecBytes);
        } else {
            mem.access(kBaseStepNode + flat * 4 * bloat, 4);
            mem.access(kBaseStepPos + flat * 8 * bloat, 8);
            mem.access(kBaseStepOrient + flat * bloat, 1);
        }
    };

    // Replay the update loop's address stream one TermBatch slice at a
    // time (the same batched pipeline every backend consumes). Slices never
    // straddle the exploration->cooling boundary, so the term stream is
    // identical to a per-term replay.
    //
    // The replay is pipelined like the cpu-pipelined engine: one persistent
    // pool worker fills slice N+1 (consuming the single PRNG stream in
    // slice order, so the address stream is unchanged) while this thread
    // walks slice N through the cache model. The cache model itself stays
    // single-threaded — only it may touch `mem`.
    constexpr std::size_t kSlice = 4096;

    // Pre-compute the slice plan so the producer can be dispatched a slice
    // ahead without re-deriving the cooling boundary.
    std::vector<std::pair<std::size_t, bool>> slices;  // {terms, cooling}
    for (std::uint64_t s = 0; s < opt.sample_updates;) {
        const bool cooling = s >= cooling_from;
        const std::uint64_t boundary =
            cooling ? opt.sample_updates
                    : std::min<std::uint64_t>(opt.sample_updates, cooling_from);
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kSlice, boundary - s));
        slices.emplace_back(n, cooling);
        s += n;
    }

    std::uint64_t done = 0;
    core::ThreadPool pool(1);
    core::TermBatch bufs[2];
    for (auto& b : bufs) b.reserve(kSlice);
    const auto fill_job = [&](int buf, std::size_t s) {
        return [&, buf, s](std::uint32_t) {
            bufs[buf].clear();
            sampler.fill_batch(slices[s].second, rng, slices[s].first,
                               bufs[buf], /*with_nudge=*/false);
        };
    };
    if (!slices.empty()) pool.run(fill_job(0, 0));
    int cur = 0;
    for (std::size_t s = 0; s < slices.size(); ++s) {
        const bool more = s + 1 < slices.size();
        if (more) pool.launch(fill_job(1 - cur, s + 1));
        const core::TermBatch& batch = bufs[cur];
        for (std::size_t k = 0; k < batch.size(); ++k) {
            // PRNG state (hot; 32 bytes) and alias-table lookups happen on
            // every draw regardless of term validity.
            mem.access(kBaseRngState, 32);
            mem.access(kBaseAliasProb + std::uint64_t(batch.path[k]) * 8, 8);
            mem.access(kBaseAliasAlias + std::uint64_t(batch.path[k]) * 4, 4);
            if (!batch.valid[k]) continue;
            touch_step(batch.path[k], batch.step_i[k]);
            touch_step(batch.path[k], batch.step_j[k]);
            touch_coords(batch.node_i[k], batch.end_i_of(k));
            touch_coords(batch.node_j[k], batch.end_j_of(k));
            ++done;
        }
        if (more) pool.wait();
        cur = 1 - cur;
    }

    CpuCharacterization out;
    out.l1 = mem.level(0).stats();
    out.l2 = mem.level(1).stats();
    out.llc = mem.level(2).stats();
    out.dram_accesses = mem.dram_accesses();
    out.updates = done ? done : 1;

    out.llc_load_miss_rate = out.llc.miss_rate();

    const double per_update = static_cast<double>(out.updates);
    const double stall_cycles =
        (static_cast<double>(out.l1.misses) * opt.lat_l2 +
         static_cast<double>(out.l2.misses) * opt.lat_llc +
         static_cast<double>(out.llc.misses) * opt.lat_dram) /
        per_update;
    out.cycles_per_update = opt.compute_cycles_per_update + stall_cycles;
    out.memory_stall_pct =
        100.0 * stall_cycles /
        (stall_cycles + opt.compute_cycles_per_update + opt.pipeline_overhead_cycles);
    // Pipeline-slot memory-bound share (Fig. 5): stalls claim issue slots;
    // the front end and speculation claim a roughly constant share.
    out.memory_bound_pct = out.memory_stall_pct * 0.92;
    return out;
}

}  // namespace pgl::memsim

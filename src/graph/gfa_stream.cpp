#include "graph/gfa_stream.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/union_find.hpp"
#include "graph/gfa_util.hpp"

namespace pgl::graph {

namespace {

using gfa_detail::chomp;
using gfa_detail::split_tabs;

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
    std::ostringstream os;
    os << "GFA parse error at line " << line_no << ": " << what;
    throw std::runtime_error(os.str());
}

using NameTable = gfa_detail::NameTable<NodeId>;

/// Counts the steps of a P segment list without tokenizing it.
std::uint64_t count_p_steps(std::string_view steps) {
    if (steps.empty()) return 0;
    std::uint64_t n = 1;
    for (const char c : steps) n += (c == ',');
    return n;
}

/// Counts the steps of a W walk without tokenizing it.
std::uint64_t count_walk_steps(std::string_view walk) {
    if (walk == "*") return 0;
    std::uint64_t n = 0;
    for (const char c : walk) n += (c == '>' || c == '<');
    return n;
}

}  // namespace

LeanIngest ingest_gfa(std::istream& in) {
    LeanIngest out;
    LeanGraphBuilder builder;
    NameTable name_to_id;

    // --- pass 1: segments (and exact path/step counts for reservation) ---
    std::string line;
    std::size_t line_no = 0;
    std::uint64_t n_paths = 0, n_steps = 0;
    while (std::getline(in, line)) {
        ++line_no;
        chomp(line);
        if (line.empty() || line[0] == '#') continue;
        const auto fields = split_tabs(line);
        switch (line[0]) {
            case 'S': {
                if (fields.size() < 3) fail(line_no, "S record needs 3 fields");
                std::uint32_t len = static_cast<std::uint32_t>(fields[2].size());
                if (fields[2] == "*") {
                    len = 0;
                    for (std::size_t f = 3; f < fields.size(); ++f) {
                        if (gfa_detail::parse_ln_tag(fields[f], len)) break;
                    }
                }
                // Names live only in the lookup table during parsing; they
                // are moved into segment_names at the end, so they are
                // never held twice.
                const NodeId id = builder.add_node(len);
                if (!name_to_id.emplace(std::string(fields[1]), id).second) {
                    fail(line_no, "duplicate segment " + std::string(fields[1]));
                }
                break;
            }
            case 'P': {
                if (fields.size() < 3) fail(line_no, "P record needs 3 fields");
                ++n_paths;
                n_steps += count_p_steps(fields[2]);
                break;
            }
            case 'W': {
                if (fields.size() < 7) fail(line_no, "W record needs 7 fields");
                ++n_paths;
                n_steps += count_walk_steps(fields[6]);
                break;
            }
            default:
                break;  // L handled in pass 2; H, C and friends skipped
        }
    }

    builder.reserve_paths(n_paths);
    builder.reserve_steps(n_steps);
    out.path_names.reserve(n_paths);

    // --- pass 2: links and walks, streamed into the builder + union-find ---
    in.clear();
    in.seekg(0);
    if (!in) {
        throw std::runtime_error(
            "streaming GFA ingestion needs a seekable stream (two passes)");
    }

    core::UnionFind uf(builder.node_count());
    std::vector<NodeId> path_first_node;
    path_first_node.reserve(n_paths);

    const auto lookup = [&](std::string_view name, std::size_t at) -> NodeId {
        const auto it = name_to_id.find(name);
        if (it == name_to_id.end()) {
            fail(at, "unknown segment " + std::string(name));
        }
        return it->second;
    };

    line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        chomp(line);
        if (line.empty() || line[0] == '#') continue;
        const auto fields = split_tabs(line);
        switch (line[0]) {
            case 'L': {
                if (fields.size() < 5) fail(line_no, "L record needs 5 fields");
                if (fields[2] != "+" && fields[2] != "-") fail(line_no, "bad orientation");
                if (fields[4] != "+" && fields[4] != "-") fail(line_no, "bad orientation");
                const NodeId from = lookup(fields[1], line_no);
                const NodeId to = lookup(fields[3], line_no);
                uf.unite(from, to);
                ++out.edge_count;
                break;
            }
            case 'P':
            case 'W': {
                const bool is_walk = line[0] == 'W';
                const std::string_view steps = is_walk ? fields[6] : fields[2];
                NodeId prev = 0;
                bool have_prev = false;
                builder.begin_path();
                const auto feed = [&](std::string_view name, bool rev) -> std::string {
                    const NodeId v = lookup(name, line_no);
                    builder.add_step(Handle::make(v, rev));
                    if (have_prev) {
                        uf.unite(prev, v);
                    } else {
                        path_first_node.push_back(v);
                        have_prev = true;
                    }
                    prev = v;
                    return {};
                };
                const std::string err =
                    is_walk ? gfa_detail::for_each_walk_step(steps, feed)
                            : gfa_detail::for_each_p_step(steps, feed);
                if (!err.empty()) fail(line_no, err);
                if (builder.end_path() == 0) {
                    fail(line_no, is_walk ? "empty walk" : "empty path " +
                                                               std::string(fields[1]));
                }
                out.path_names.push_back(
                    is_walk ? gfa_detail::walk_path_name(fields[1], fields[2],
                                                         fields[3], fields[4],
                                                         fields[5])
                            : std::string(fields[1]));
                break;
            }
            default:
                break;
        }
    }

    // --- finalize: graph, segment names, dense component labels ---
    out.segment_names.resize(builder.node_count());
    while (!name_to_id.empty()) {
        auto node = name_to_id.extract(name_to_id.begin());
        out.segment_names[node.mapped()] = std::move(node.key());
    }

    auto dense = core::dense_labels(uf);
    out.component_count = dense.count;
    out.node_component = std::move(dense.label);
    out.path_component.reserve(path_first_node.size());
    for (const NodeId v : path_first_node) {
        out.path_component.push_back(out.node_component[v]);
    }
    out.graph = builder.finish();
    return out;
}

LeanIngest ingest_gfa_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open GFA file: " + path);
    return ingest_gfa(in);
}

}  // namespace pgl::graph

#pragma once
// Oriented node handles, following the libhandlegraph/ODGI convention of
// packing (node id, orientation) into one machine word.
#include <cstdint>
#include <functional>

namespace pgl::graph {

using NodeId = std::uint32_t;

/// An oriented reference to a node: bit 0 holds the orientation (1 =
/// reverse complement), the remaining bits hold the node id.
class Handle {
public:
    constexpr Handle() = default;

    static constexpr Handle make(NodeId id, bool is_reverse) noexcept {
        Handle h;
        h.packed_ = (static_cast<std::uint32_t>(id) << 1) |
                    static_cast<std::uint32_t>(is_reverse);
        return h;
    }

    static constexpr Handle forward(NodeId id) noexcept { return make(id, false); }
    static constexpr Handle reverse(NodeId id) noexcept { return make(id, true); }

    constexpr NodeId id() const noexcept { return packed_ >> 1; }
    constexpr bool is_reverse() const noexcept { return (packed_ & 1u) != 0; }
    constexpr Handle flipped() const noexcept {
        Handle h;
        h.packed_ = packed_ ^ 1u;
        return h;
    }

    constexpr std::uint32_t packed() const noexcept { return packed_; }
    static constexpr Handle from_packed(std::uint32_t p) noexcept {
        Handle h;
        h.packed_ = p;
        return h;
    }

    constexpr bool operator==(const Handle&) const noexcept = default;
    constexpr auto operator<=>(const Handle&) const noexcept = default;

private:
    std::uint32_t packed_ = 0;
};

/// An edge is an ordered pair of handles (traversal from first to second).
struct Edge {
    Handle from;
    Handle to;

    constexpr bool operator==(const Edge&) const noexcept = default;
    constexpr auto operator<=>(const Edge&) const noexcept = default;

    /// Edges are stored in a canonical orientation so that (a->b) and the
    /// implied reverse traversal (b'->a') are the same edge, as in ODGI.
    constexpr Edge canonical() const noexcept {
        const Edge rev{to.flipped(), from.flipped()};
        const auto key = [](const Edge& e) {
            return (static_cast<std::uint64_t>(e.from.packed()) << 32) |
                   e.to.packed();
        };
        return key(*this) <= key(rev) ? *this : rev;
    }
};

}  // namespace pgl::graph

template <>
struct std::hash<pgl::graph::Handle> {
    std::size_t operator()(const pgl::graph::Handle& h) const noexcept {
        return std::hash<std::uint32_t>{}(h.packed());
    }
};

template <>
struct std::hash<pgl::graph::Edge> {
    std::size_t operator()(const pgl::graph::Edge& e) const noexcept {
        const std::uint64_t k =
            (static_cast<std::uint64_t>(e.from.packed()) << 32) | e.to.packed();
        // SplitMix64-style finalizer.
        std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};

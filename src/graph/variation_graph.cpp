#include "graph/variation_graph.hpp"

#include <sstream>
#include <utility>

namespace pgl::graph {

NodeId VariationGraph::add_node(std::string sequence, std::string name) {
    const NodeId id = static_cast<NodeId>(sequences_.size());
    total_seq_len_ += sequence.size();
    sequences_.push_back(std::move(sequence));
    names_.push_back(std::move(name));
    star_len_.push_back(0);
    return id;
}

NodeId VariationGraph::add_node_sequence_free(std::uint32_t length,
                                              std::string name) {
    const NodeId id = static_cast<NodeId>(sequences_.size());
    total_seq_len_ += length;
    sequences_.emplace_back();
    names_.push_back(std::move(name));
    star_len_.push_back(length);
    return id;
}

std::string VariationGraph::node_name(NodeId id) const {
    const std::string& n = names_.at(id);
    return n.empty() ? std::to_string(id + 1) : n;
}

bool VariationGraph::add_edge(Handle from, Handle to) {
    const Edge e = Edge{from, to}.canonical();
    if (!edge_set_.insert(e).second) return false;
    edges_.push_back(e);
    return true;
}

bool VariationGraph::has_edge(Handle from, Handle to) const {
    return edge_set_.contains(Edge{from, to}.canonical());
}

std::size_t VariationGraph::add_path(std::string name, std::vector<Handle> steps) {
    for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
        add_edge(steps[i], steps[i + 1]);
    }
    total_path_steps_ += steps.size();
    paths_.push_back(PathRecord{std::move(name), std::move(steps)});
    return paths_.size() - 1;
}

GraphStats VariationGraph::stats() const {
    GraphStats s;
    s.nucleotides = total_seq_len_;
    s.nodes = node_count();
    s.edges = edge_count();
    s.paths = path_count();
    s.total_path_steps = total_path_steps_;
    if (s.nodes > 0) {
        s.mean_degree = 2.0 * static_cast<double>(s.edges) / static_cast<double>(s.nodes);
    }
    if (s.nodes > 1) {
        s.density = static_cast<double>(s.edges) /
                    (static_cast<double>(s.nodes) * static_cast<double>(s.nodes - 1));
    }
    return s;
}

std::string VariationGraph::validate() const {
    for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
        const PathRecord& p = paths_[pi];
        if (p.steps.empty()) {
            std::ostringstream os;
            os << "path " << p.name << " is empty";
            return os.str();
        }
        for (std::size_t si = 0; si < p.steps.size(); ++si) {
            if (p.steps[si].id() >= sequences_.size()) {
                std::ostringstream os;
                os << "path " << p.name << " step " << si
                   << " references missing node " << p.steps[si].id();
                return os.str();
            }
            if (si + 1 < p.steps.size() && !has_edge(p.steps[si], p.steps[si + 1])) {
                std::ostringstream os;
                os << "path " << p.name << " steps " << si << ".." << (si + 1)
                   << " are not connected by an edge";
                return os.str();
            }
        }
    }
    for (const Edge& e : edges_) {
        if (e.from.id() >= sequences_.size() || e.to.id() >= sequences_.size()) {
            return "edge references missing node";
        }
    }
    return {};
}

}  // namespace pgl::graph

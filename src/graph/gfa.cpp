#include "graph/gfa.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/gfa_util.hpp"

namespace pgl::graph {

namespace {

using gfa_detail::chomp;
using gfa_detail::split_tabs;

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
    std::ostringstream os;
    os << "GFA parse error at line " << line_no << ": " << what;
    throw std::runtime_error(os.str());
}

struct PendingLink {
    std::string from, to;
    bool from_rev, to_rev;
    std::size_t line_no;
};

struct PendingPath {
    std::string name;
    std::string steps;  // raw comma-separated P field or ></-delimited W walk
    bool is_walk;       // true for W records
    std::size_t line_no;
};

}  // namespace

VariationGraph read_gfa(std::istream& in) {
    VariationGraph g;
    gfa_detail::NameTable<NodeId> name_to_id;
    std::vector<PendingLink> links;
    std::vector<PendingPath> paths;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        chomp(line);  // CRLF / trailing-whitespace tolerance
        if (line.empty() || line[0] == '#') continue;
        const auto fields = split_tabs(line);
        switch (line[0]) {
            case 'S': {
                if (fields.size() < 3) fail(line_no, "S record needs 3 fields");
                const std::string name(fields[1]);
                if (name_to_id.contains(name)) fail(line_no, "duplicate segment " + name);
                if (fields[2] == "*") {
                    // Sequence-free GFAs carry the length as an LN:i: tag;
                    // record the length, never synthesize sequence bytes.
                    std::uint32_t len = 0;
                    for (std::size_t f = 3; f < fields.size(); ++f) {
                        if (gfa_detail::parse_ln_tag(fields[f], len)) break;
                    }
                    name_to_id.emplace(name, g.add_node_sequence_free(len, name));
                } else {
                    name_to_id.emplace(name,
                                       g.add_node(std::string(fields[2]), name));
                }
                break;
            }
            case 'L': {
                if (fields.size() < 5) fail(line_no, "L record needs 5 fields");
                if (fields[2] != "+" && fields[2] != "-") fail(line_no, "bad orientation");
                if (fields[4] != "+" && fields[4] != "-") fail(line_no, "bad orientation");
                links.push_back(PendingLink{std::string(fields[1]), std::string(fields[3]),
                                            fields[2] == "-", fields[4] == "-", line_no});
                break;
            }
            case 'P': {
                if (fields.size() < 3) fail(line_no, "P record needs 3 fields");
                paths.push_back(PendingPath{std::string(fields[1]),
                                            std::string(fields[2]), false, line_no});
                break;
            }
            case 'W': {
                // GFA 1.1 walk: W sample hapIndex seqId seqStart seqEnd walk.
                if (fields.size() < 7) fail(line_no, "W record needs 7 fields");
                paths.push_back(PendingPath{
                    gfa_detail::walk_path_name(fields[1], fields[2], fields[3],
                                               fields[4], fields[5]),
                    std::string(fields[6]), true, line_no});
                break;
            }
            default:
                break;  // H, C and friends are not needed for layout
        }
    }

    const auto lookup = [&](std::string_view name, std::size_t at) -> NodeId {
        const auto it = name_to_id.find(name);
        if (it == name_to_id.end()) {
            fail(at, "unknown segment " + std::string(name));
        }
        return it->second;
    };

    for (const PendingLink& l : links) {
        g.add_edge(Handle::make(lookup(l.from, l.line_no), l.from_rev),
                   Handle::make(lookup(l.to, l.line_no), l.to_rev));
    }

    for (PendingPath& p : paths) {
        std::vector<Handle> steps;
        const auto collect = [&](std::string_view name, bool rev) -> std::string {
            steps.push_back(Handle::make(lookup(name, p.line_no), rev));
            return {};
        };
        const std::string err =
            p.is_walk ? gfa_detail::for_each_walk_step(p.steps, collect)
                      : gfa_detail::for_each_p_step(p.steps, collect);
        if (!err.empty()) fail(p.line_no, err);
        if (steps.empty()) {
            fail(p.line_no, (p.is_walk ? "empty walk " : "empty path ") + p.name);
        }
        g.add_path(std::move(p.name), std::move(steps));
    }
    return g;
}

VariationGraph read_gfa_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open GFA file: " + path);
    return read_gfa(in);
}

void write_gfa(const VariationGraph& g, std::ostream& out) {
    out << "H\tVN:Z:1.0\n";
    for (NodeId id = 0; id < g.node_count(); ++id) {
        const auto seq = g.sequence(id);
        out << "S\t" << g.node_name(id) << '\t';
        if (seq.empty()) {
            out << '*';
            if (g.is_sequence_free(id)) out << "\tLN:i:" << g.node_length(id);
        } else {
            out << seq;
        }
        out << '\n';
    }
    for (const Edge& e : g.edges()) {
        out << "L\t" << g.node_name(e.from.id()) << '\t'
            << (e.from.is_reverse() ? '-' : '+') << '\t' << g.node_name(e.to.id())
            << '\t' << (e.to.is_reverse() ? '-' : '+') << "\t0M\n";
    }
    for (const PathRecord& p : g.paths()) {
        out << "P\t" << p.name << '\t';
        for (std::size_t i = 0; i < p.steps.size(); ++i) {
            if (i) out << ',';
            out << g.node_name(p.steps[i].id()) << (p.steps[i].is_reverse() ? '-' : '+');
        }
        out << "\t*\n";
    }
}

void write_gfa_file(const VariationGraph& g, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open GFA file for write: " + path);
    write_gfa(g, out);
}

}  // namespace pgl::graph

#include "graph/gfa.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pgl::graph {

namespace {

std::vector<std::string_view> split_tabs(std::string_view line) {
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (start <= line.size()) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
    return fields;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
    std::ostringstream os;
    os << "GFA parse error at line " << line_no << ": " << what;
    throw std::runtime_error(os.str());
}

struct PendingLink {
    std::string from, to;
    bool from_rev, to_rev;
    std::size_t line_no;
};

struct PendingPath {
    std::string name;
    std::string steps;  // raw comma-separated field
    std::size_t line_no;
};

}  // namespace

VariationGraph read_gfa(std::istream& in) {
    VariationGraph g;
    std::unordered_map<std::string, NodeId> name_to_id;
    std::vector<PendingLink> links;
    std::vector<PendingPath> paths;

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        const auto fields = split_tabs(line);
        switch (line[0]) {
            case 'S': {
                if (fields.size() < 3) fail(line_no, "S record needs 3 fields");
                const std::string name(fields[1]);
                if (name_to_id.contains(name)) fail(line_no, "duplicate segment " + name);
                std::string seq(fields[2]);
                if (seq == "*") seq.clear();
                name_to_id.emplace(name, g.add_node(std::move(seq)));
                break;
            }
            case 'L': {
                if (fields.size() < 5) fail(line_no, "L record needs 5 fields");
                if (fields[2] != "+" && fields[2] != "-") fail(line_no, "bad orientation");
                if (fields[4] != "+" && fields[4] != "-") fail(line_no, "bad orientation");
                links.push_back(PendingLink{std::string(fields[1]), std::string(fields[3]),
                                            fields[2] == "-", fields[4] == "-", line_no});
                break;
            }
            case 'P': {
                if (fields.size() < 3) fail(line_no, "P record needs 3 fields");
                paths.push_back(
                    PendingPath{std::string(fields[1]), std::string(fields[2]), line_no});
                break;
            }
            default:
                break;  // H, C, W and friends are not needed for layout
        }
    }

    const auto lookup = [&](const std::string& name, std::size_t at) -> NodeId {
        const auto it = name_to_id.find(name);
        if (it == name_to_id.end()) fail(at, "unknown segment " + name);
        return it->second;
    };

    for (const PendingLink& l : links) {
        g.add_edge(Handle::make(lookup(l.from, l.line_no), l.from_rev),
                   Handle::make(lookup(l.to, l.line_no), l.to_rev));
    }

    for (PendingPath& p : paths) {
        std::vector<Handle> steps;
        std::string_view sv(p.steps);
        std::size_t start = 0;
        while (start < sv.size()) {
            std::size_t comma = sv.find(',', start);
            if (comma == std::string_view::npos) comma = sv.size();
            const std::string_view tok = sv.substr(start, comma - start);
            if (tok.size() < 2) fail(p.line_no, "bad path step");
            const char orient = tok.back();
            if (orient != '+' && orient != '-') fail(p.line_no, "bad step orientation");
            const std::string name(tok.substr(0, tok.size() - 1));
            steps.push_back(Handle::make(lookup(name, p.line_no), orient == '-'));
            start = comma + 1;
        }
        if (steps.empty()) fail(p.line_no, "empty path " + p.name);
        g.add_path(std::move(p.name), std::move(steps));
    }
    return g;
}

VariationGraph read_gfa_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open GFA file: " + path);
    return read_gfa(in);
}

void write_gfa(const VariationGraph& g, std::ostream& out) {
    out << "H\tVN:Z:1.0\n";
    for (NodeId id = 0; id < g.node_count(); ++id) {
        const auto seq = g.sequence(id);
        out << "S\t" << (id + 1) << '\t' << (seq.empty() ? "*" : std::string(seq))
            << '\n';
    }
    for (const Edge& e : g.edges()) {
        out << "L\t" << (e.from.id() + 1) << '\t' << (e.from.is_reverse() ? '-' : '+')
            << '\t' << (e.to.id() + 1) << '\t' << (e.to.is_reverse() ? '-' : '+')
            << "\t0M\n";
    }
    for (const PathRecord& p : g.paths()) {
        out << "P\t" << p.name << '\t';
        for (std::size_t i = 0; i < p.steps.size(); ++i) {
            if (i) out << ',';
            out << (p.steps[i].id() + 1) << (p.steps[i].is_reverse() ? '-' : '+');
        }
        out << "\t*\n";
    }
}

void write_gfa_file(const VariationGraph& g, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open GFA file for write: " + path);
    write_gfa(g, out);
}

}  // namespace pgl::graph

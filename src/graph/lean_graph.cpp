#include "graph/lean_graph.hpp"

#include <algorithm>

namespace pgl::graph {

// Appends one path walk, recomputing cumulative nucleotide positions.
// Shared by both builders so identical walks yield bit-identical records.
void LeanGraph::append_path(const std::vector<Handle>& steps) {
    std::uint64_t pos = 0;
    for (const Handle& h : steps) {
        const std::uint32_t len = node_len_[h.id()];
        step_node_.push_back(h.id());
        step_pos_.push_back(pos);
        step_orient_.push_back(h.is_reverse() ? 1 : 0);
        step_records_.push_back(PathStepRecord{h.id(), h.is_reverse() ? 1u : 0u, pos});
        pos += len;
    }
    path_offset_.push_back(static_cast<std::uint32_t>(step_node_.size()));
    path_nuc_len_.push_back(pos);
    total_path_nuc_ += pos;
    max_path_nuc_len_ = std::max(max_path_nuc_len_, pos);
}

LeanGraph LeanGraph::from_graph(const VariationGraph& g) {
    LeanGraph lg;
    lg.node_len_.resize(g.node_count());
    for (NodeId id = 0; id < g.node_count(); ++id) {
        lg.node_len_[id] = g.node_length(id);
    }

    const std::uint64_t total_steps = g.total_path_steps();
    lg.path_offset_.reserve(g.path_count() + 1);
    lg.step_node_.reserve(total_steps);
    lg.step_pos_.reserve(total_steps);
    lg.step_orient_.reserve(total_steps);
    lg.step_records_.reserve(total_steps);
    lg.path_nuc_len_.reserve(g.path_count());

    lg.path_offset_.push_back(0);
    for (const PathRecord& p : g.paths()) {
        lg.append_path(p.steps);
    }
    return lg;
}

LeanGraph LeanGraph::from_parts(std::vector<std::uint32_t> node_lengths,
                                const std::vector<std::vector<Handle>>& paths) {
    LeanGraph lg;
    lg.node_len_ = std::move(node_lengths);
    lg.path_offset_.reserve(paths.size() + 1);
    lg.path_nuc_len_.reserve(paths.size());
    lg.path_offset_.push_back(0);
    for (const auto& steps : paths) {
        lg.append_path(steps);
    }
    return lg;
}

}  // namespace pgl::graph

#include "graph/lean_graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pgl::graph {

void LeanGraph::steps_add(Handle h, std::uint64_t& pos) {
    const std::uint32_t len = node_len_[h.id()];
    step_node_.push_back(h.id());
    step_pos_.push_back(pos);
    step_orient_.push_back(h.is_reverse() ? 1 : 0);
    step_records_.push_back(PathStepRecord{h.id(), h.is_reverse() ? 1u : 0u, pos});
    pos += len;
}

void LeanGraph::steps_end_path(std::uint64_t pos) {
    path_offset_.push_back(static_cast<std::uint32_t>(step_node_.size()));
    path_nuc_len_.push_back(pos);
    total_path_nuc_ += pos;
    max_path_nuc_len_ = std::max(max_path_nuc_len_, pos);
}

// Appends one path walk, recomputing cumulative nucleotide positions.
// Shared by both builders so identical walks yield bit-identical records.
void LeanGraph::append_path(const std::vector<Handle>& steps) {
    std::uint64_t pos = 0;
    for (const Handle& h : steps) steps_add(h, pos);
    steps_end_path(pos);
}

LeanGraph LeanGraph::from_graph(const VariationGraph& g) {
    LeanGraph lg;
    lg.node_len_.resize(g.node_count());
    for (NodeId id = 0; id < g.node_count(); ++id) {
        lg.node_len_[id] = g.node_length(id);
    }

    const std::uint64_t total_steps = g.total_path_steps();
    lg.path_offset_.reserve(g.path_count() + 1);
    lg.step_node_.reserve(total_steps);
    lg.step_pos_.reserve(total_steps);
    lg.step_orient_.reserve(total_steps);
    lg.step_records_.reserve(total_steps);
    lg.path_nuc_len_.reserve(g.path_count());

    lg.path_offset_.push_back(0);
    for (const PathRecord& p : g.paths()) {
        lg.append_path(p.steps);
    }
    return lg;
}

LeanGraph LeanGraph::from_parts(std::vector<std::uint32_t> node_lengths,
                                const std::vector<std::vector<Handle>>& paths) {
    LeanGraph lg;
    lg.node_len_ = std::move(node_lengths);
    lg.path_offset_.reserve(paths.size() + 1);
    lg.path_nuc_len_.reserve(paths.size());
    lg.path_offset_.push_back(0);
    for (const auto& steps : paths) {
        lg.append_path(steps);
    }
    return lg;
}

NodeId LeanGraphBuilder::add_node(std::uint32_t length) {
    const NodeId id = static_cast<NodeId>(g_.node_len_.size());
    g_.node_len_.push_back(length);
    return id;
}

void LeanGraphBuilder::reserve_paths(std::size_t n) {
    g_.path_offset_.reserve(n + 1);
    g_.path_nuc_len_.reserve(n);
}

void LeanGraphBuilder::reserve_steps(std::uint64_t n) {
    g_.step_node_.reserve(n);
    g_.step_pos_.reserve(n);
    g_.step_orient_.reserve(n);
    g_.step_records_.reserve(n);
}

void LeanGraphBuilder::begin_path() {
    assert(!in_path_);
    in_path_ = true;
    pos_ = 0;
}

void LeanGraphBuilder::add_step(Handle h) {
    assert(in_path_);
    if (h.id() >= g_.node_len_.size()) {
        throw std::out_of_range("LeanGraphBuilder: step references unknown node");
    }
    g_.steps_add(h, pos_);
}

std::uint32_t LeanGraphBuilder::end_path() {
    assert(in_path_);
    in_path_ = false;
    const std::uint32_t n = static_cast<std::uint32_t>(current_path_steps());
    g_.steps_end_path(pos_);
    return n;
}

LeanGraph LeanGraphBuilder::finish() {
    assert(!in_path_);
    return std::move(g_);
}

}  // namespace pgl::graph

#include "graph/lean_graph.hpp"

#include <algorithm>

namespace pgl::graph {

LeanGraph LeanGraph::from_graph(const VariationGraph& g) {
    LeanGraph lg;
    lg.node_len_.resize(g.node_count());
    for (NodeId id = 0; id < g.node_count(); ++id) {
        lg.node_len_[id] = g.node_length(id);
    }

    const std::uint64_t total_steps = g.total_path_steps();
    lg.path_offset_.reserve(g.path_count() + 1);
    lg.step_node_.reserve(total_steps);
    lg.step_pos_.reserve(total_steps);
    lg.step_orient_.reserve(total_steps);
    lg.step_records_.reserve(total_steps);
    lg.path_nuc_len_.reserve(g.path_count());

    lg.path_offset_.push_back(0);
    for (const PathRecord& p : g.paths()) {
        std::uint64_t pos = 0;
        for (const Handle& h : p.steps) {
            const std::uint32_t len = lg.node_len_[h.id()];
            lg.step_node_.push_back(h.id());
            lg.step_pos_.push_back(pos);
            lg.step_orient_.push_back(h.is_reverse() ? 1 : 0);
            lg.step_records_.push_back(
                PathStepRecord{h.id(), h.is_reverse() ? 1u : 0u, pos});
            pos += len;
        }
        lg.path_offset_.push_back(static_cast<std::uint32_t>(lg.step_node_.size()));
        lg.path_nuc_len_.push_back(pos);
        lg.total_path_nuc_ += pos;
        lg.max_path_nuc_len_ = std::max(lg.max_path_nuc_len_, pos);
    }
    return lg;
}

}  // namespace pgl::graph

#pragma once
// The lean, layout-only distillation of a variation graph (paper Sec. V-A):
// only the fields PG-SGD touches survive — node lengths (never sequence
// content) and, per path step, the node id, orientation and nucleotide
// offset within the path. This doubles as the path index (the ".xp" file of
// the odgi pipeline): reference distances d_ref are differences of the
// per-step nucleotide positions stored here.
//
// Two physical layouts of the step records are provided because the paper's
// first optimization (cache-friendly data layout, Sec. V-B1) is exactly the
// SoA -> AoS repacking of this data:
//   * SoA ("original"): three parallel arrays (node, position, orientation);
//   * AoS ("cache-friendly"): one packed 16-byte record per step.
#include <cstdint>
#include <span>
#include <vector>

#include "graph/variation_graph.hpp"

namespace pgl::graph {

/// Packed per-step record for the AoS (cache-friendly) layout.
/// 16 bytes: a whole record fits in a quarter cache line, so one access
/// fetches everything an update step needs about the step.
struct PathStepRecord {
    std::uint32_t node;      ///< node id
    std::uint32_t orient;    ///< 0 = forward, 1 = reverse
    std::uint64_t position;  ///< nucleotide offset of this step in its path
};

static_assert(sizeof(PathStepRecord) == 16);

class LeanGraph {
public:
    static LeanGraph from_graph(const VariationGraph& g);

    /// Builds a lean graph directly from node lengths and path walks,
    /// bypassing the rich VariationGraph. This is how the partition
    /// subsystem materializes per-component subgraphs: node ids are the
    /// indices into `node_lengths`, and step positions are recomputed as
    /// cumulative nucleotide offsets exactly as from_graph() does, so a
    /// sliced path yields bit-identical step records to the original.
    static LeanGraph from_parts(std::vector<std::uint32_t> node_lengths,
                                const std::vector<std::vector<Handle>>& paths);

    std::uint32_t node_count() const noexcept {
        return static_cast<std::uint32_t>(node_len_.size());
    }
    std::uint32_t path_count() const noexcept {
        return static_cast<std::uint32_t>(path_offset_.size() - 1);
    }

    std::uint32_t node_length(NodeId id) const { return node_len_[id]; }
    std::span<const std::uint32_t> node_lengths() const noexcept { return node_len_; }

    /// Number of steps in path p.
    std::uint32_t path_step_count(std::uint32_t p) const {
        return path_offset_[p + 1] - path_offset_[p];
    }
    /// Nucleotide length of path p.
    std::uint64_t path_nuc_length(std::uint64_t p) const { return path_nuc_len_[p]; }

    std::uint64_t total_path_steps() const noexcept { return step_node_.size(); }
    std::uint64_t total_path_nucleotides() const noexcept { return total_path_nuc_; }

    /// Longest reference distance appearing in any path (used to scale the
    /// SGD learning-rate schedule).
    std::uint64_t max_path_nuc_length() const noexcept { return max_path_nuc_len_; }

    // --- SoA accessors (original ODGI-style layout) ---
    std::uint32_t step_node(std::uint32_t p, std::uint32_t i) const {
        return step_node_[path_offset_[p] + i];
    }
    std::uint64_t step_position(std::uint32_t p, std::uint32_t i) const {
        return step_pos_[path_offset_[p] + i];
    }
    bool step_is_reverse(std::uint32_t p, std::uint32_t i) const {
        return step_orient_[path_offset_[p] + i] != 0;
    }

    // --- AoS accessor (cache-friendly layout) ---
    const PathStepRecord& step_record(std::uint32_t p, std::uint32_t i) const {
        return step_records_[path_offset_[p] + i];
    }

    /// Flat index of step i of path p (for address-stream instrumentation).
    std::uint64_t flat_step_index(std::uint32_t p, std::uint32_t i) const {
        return path_offset_[p] + i;
    }

    std::span<const std::uint32_t> path_offsets() const noexcept { return path_offset_; }
    std::span<const PathStepRecord> step_records() const noexcept {
        return step_records_;
    }

private:
    friend class LeanGraphBuilder;

    void append_path(const std::vector<Handle>& steps);

    // Step-at-a-time path construction shared by append_path and the
    // streaming builder, so every ingestion route yields bit-identical
    // step records for the same walk.
    void steps_add(Handle h, std::uint64_t& pos);
    void steps_end_path(std::uint64_t pos);

    std::vector<std::uint32_t> node_len_;

    // CSR-style flattened paths.
    std::vector<std::uint32_t> path_offset_;  // size P + 1
    std::vector<std::uint32_t> step_node_;    // SoA
    std::vector<std::uint64_t> step_pos_;     // SoA
    std::vector<std::uint8_t> step_orient_;   // SoA
    std::vector<PathStepRecord> step_records_;  // AoS mirror

    std::vector<std::uint64_t> path_nuc_len_;
    std::uint64_t total_path_nuc_ = 0;
    std::uint64_t max_path_nuc_len_ = 0;
};

/// Incremental LeanGraph construction for streaming ingestion: nodes are
/// registered as their lengths become known (S records), then paths are fed
/// one step at a time (P walks / W walks / cached step tables) without ever
/// materializing a per-path Handle vector, let alone a VariationGraph. The
/// cumulative-position arithmetic is LeanGraph's own, so a builder-made
/// graph is bit-identical to from_graph()/from_parts() on the same walks.
class LeanGraphBuilder {
public:
    LeanGraphBuilder() { g_.path_offset_.push_back(0); }

    /// Registers a node of the given nucleotide length; ids are dense,
    /// assigned in call order starting at 0.
    NodeId add_node(std::uint32_t length);

    void reserve_nodes(std::size_t n) { g_.node_len_.reserve(n); }
    void reserve_paths(std::size_t n);
    void reserve_steps(std::uint64_t n);

    /// Starts a new path; steps are appended with add_step until end_path.
    void begin_path();
    /// Appends one oriented step; h.id() must be a registered node.
    void add_step(Handle h);
    /// Finishes the current path; returns its step count.
    std::uint32_t end_path();

    std::uint32_t node_count() const noexcept { return g_.node_count(); }
    std::uint32_t path_count() const noexcept {
        return static_cast<std::uint32_t>(g_.path_nuc_len_.size());
    }
    std::uint64_t current_path_steps() const noexcept {
        return g_.step_node_.size() - g_.path_offset_.back();
    }

    /// Extracts the finished graph; the builder must not be reused after.
    LeanGraph finish();

private:
    LeanGraph g_;
    std::uint64_t pos_ = 0;
    bool in_path_ = false;
};

}  // namespace pgl::graph

#pragma once
// The "rich" variation graph G = (P, V, E) (paper Sec. II-A): nodes carry
// nucleotide sequences, edges connect oriented node ends, paths are walks
// that embed the original genomes. This mirrors the ODGI data structure the
// CPU baseline operates on — deliberately heavier than needed for layout, so
// that the lean layout structure (graph/lean_graph.hpp) has something real
// to be distilled from.
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "graph/handle.hpp"

namespace pgl::graph {

struct PathRecord {
    std::string name;
    std::vector<Handle> steps;
};

struct GraphStats {
    std::uint64_t nucleotides = 0;
    std::uint64_t nodes = 0;
    std::uint64_t edges = 0;
    std::uint64_t paths = 0;
    double mean_degree = 0.0;  // mean node degree (2E / V)
    double density = 0.0;      // E / (V * (V - 1)) for a directed graph
    std::uint64_t total_path_steps = 0;
};

class VariationGraph {
public:
    VariationGraph() = default;

    /// Adds a node with the given nucleotide sequence; returns its id.
    /// Ids are dense, starting at 0. An optional `name` preserves the
    /// segment name of the source GFA; unnamed nodes fall back to the
    /// 1-based decimal id GFA writers have always used.
    NodeId add_node(std::string sequence, std::string name = {});

    /// Adds a sequence-free node ("S name * LN:i:length" in real
    /// sequence-free GFAs): the length is recorded without synthesizing
    /// sequence bytes, and write_gfa emits "*" plus an LN tag again.
    NodeId add_node_sequence_free(std::uint32_t length, std::string name = {});

    /// Segment name for GFA round-trips: the stored name, or the decimal
    /// string of id + 1 when the node was created without one.
    std::string node_name(NodeId id) const;

    /// Adds an edge between two oriented handles. Duplicate edges (in either
    /// canonical orientation) are ignored. Returns true if inserted.
    bool add_edge(Handle from, Handle to);

    /// Appends a path; all steps must reference existing nodes. Edges
    /// traversed by the path are added implicitly (as odgi does on import).
    std::size_t add_path(std::string name, std::vector<Handle> steps);

    std::uint64_t node_count() const noexcept { return sequences_.size(); }
    std::uint64_t edge_count() const noexcept { return edges_.size(); }
    std::uint64_t path_count() const noexcept { return paths_.size(); }

    std::string_view sequence(NodeId id) const { return sequences_.at(id); }
    std::uint32_t node_length(NodeId id) const {
        const std::uint32_t seq_len =
            static_cast<std::uint32_t>(sequences_.at(id).size());
        return seq_len != 0 ? seq_len : star_len_[id];
    }

    /// True for nodes added via add_node_sequence_free (length known,
    /// sequence bytes absent).
    bool is_sequence_free(NodeId id) const {
        return sequences_.at(id).empty() && star_len_[id] != 0;
    }

    const std::vector<Edge>& edges() const noexcept { return edges_; }
    bool has_edge(Handle from, Handle to) const;

    const PathRecord& path(std::size_t i) const { return paths_.at(i); }
    const std::vector<PathRecord>& paths() const noexcept { return paths_; }

    /// Total nucleotides over all nodes.
    std::uint64_t total_sequence_length() const noexcept { return total_seq_len_; }

    /// Sum over paths of their step counts (the |p| sum in Alg. 1 line 1).
    std::uint64_t total_path_steps() const noexcept { return total_path_steps_; }

    GraphStats stats() const;

    /// Checks structural invariants: every path step references an existing
    /// node and every consecutive step pair is connected by an edge.
    /// Returns an empty string when valid, else a description of the first
    /// violation.
    std::string validate() const;

private:
    std::vector<std::string> sequences_;
    std::vector<std::string> names_;  ///< per-node; empty = unnamed (id + 1)
    std::vector<std::uint32_t> star_len_;  ///< declared length of '*' nodes
    std::vector<Edge> edges_;
    std::unordered_set<Edge> edge_set_;
    std::vector<PathRecord> paths_;
    std::uint64_t total_seq_len_ = 0;
    std::uint64_t total_path_steps_ = 0;
};

}  // namespace pgl::graph

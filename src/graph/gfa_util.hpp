#pragma once
// Internal tokenizing helpers shared by the two GFA readers — the legacy
// rich-graph reader (gfa.cpp) and the streaming LeanGraph reader
// (gfa_stream.cpp) — so both accept exactly the same dialect: CRLF and
// trailing-whitespace tolerant lines, GFA 1.0 `P` segment lists and
// GFA 1.1 `W` walk strings. Step callbacks return per-step errors as
// strings (empty = ok) so each reader can attach its own line numbers.
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pgl::graph::gfa_detail {

/// Heterogeneous-lookup segment-name table shared by both readers:
/// find() takes the string_view tokens of the current line without
/// allocating a lookup key per step.
struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};
struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
        return a == b;
    }
};
template <typename Id>
using NameTable = std::unordered_map<std::string, Id, SvHash, SvEq>;

/// Strips the trailing '\r' of a CRLF line ending plus any trailing spaces
/// or tabs, so Windows-edited GFAs tokenize identically to Unix ones.
inline void chomp(std::string& line) {
    std::size_t n = line.size();
    while (n > 0 && (line[n - 1] == '\r' || line[n - 1] == ' ' || line[n - 1] == '\t')) {
        --n;
    }
    line.resize(n);
}

inline std::vector<std::string_view> split_tabs(std::string_view line) {
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (start <= line.size()) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
    return fields;
}

/// Walks a GFA 1.0 `P` segment list ("s1+,s2-,..."), invoking
/// `fn(name, is_reverse)` per step. `fn` returns an error string (empty =
/// ok); the first error aborts the scan and is returned. Returns a
/// description for malformed tokens, empty on success.
template <typename Fn>
std::string for_each_p_step(std::string_view steps, Fn&& fn) {
    std::size_t start = 0;
    while (start < steps.size()) {
        std::size_t comma = steps.find(',', start);
        if (comma == std::string_view::npos) comma = steps.size();
        const std::string_view tok = steps.substr(start, comma - start);
        if (tok.size() < 2) return "bad path step";
        const char orient = tok.back();
        if (orient != '+' && orient != '-') return "bad step orientation";
        if (std::string err = fn(tok.substr(0, tok.size() - 1), orient == '-');
            !err.empty()) {
            return err;
        }
        start = comma + 1;
    }
    return {};
}

/// Walks a GFA 1.1 `W` walk string (">s1<s2>s3..."), invoking
/// `fn(name, is_reverse)` per step ('<' = reverse). Same error contract as
/// for_each_p_step. A walk of "*" is treated as empty (no steps, success) —
/// callers decide whether an empty walk is an error.
template <typename Fn>
std::string for_each_walk_step(std::string_view walk, Fn&& fn) {
    if (walk == "*") return {};
    std::size_t i = 0;
    while (i < walk.size()) {
        const char orient = walk[i];
        if (orient != '>' && orient != '<') return "bad walk step (expected > or <)";
        ++i;
        std::size_t end = i;
        while (end < walk.size() && walk[end] != '>' && walk[end] != '<') ++end;
        if (end == i) return "empty segment name in walk";
        if (std::string err = fn(walk.substr(i, end - i), orient == '<');
            !err.empty()) {
            return err;
        }
        i = end;
    }
    return {};
}

/// Synthesizes the path name of a W record ("sample#hap#seqid[:start-end]"),
/// the PanSN-style convention odgi/vg use when importing walks as paths.
inline std::string walk_path_name(std::string_view sample, std::string_view hap,
                                  std::string_view seq_id, std::string_view start,
                                  std::string_view end) {
    std::string name;
    name.reserve(sample.size() + hap.size() + seq_id.size() + start.size() +
                 end.size() + 4);
    name.append(sample).append("#").append(hap).append("#").append(seq_id);
    if (start != "*" && end != "*") {
        name.append(":").append(start).append("-").append(end);
    }
    return name;
}

/// Parses the LN:i: length tag of an S record whose sequence is "*" (real
/// pipelines emit sequence-free GFAs this way). Returns true and sets `len`
/// when the field is a well-formed LN tag.
inline bool parse_ln_tag(std::string_view field, std::uint32_t& len) {
    constexpr std::string_view kPrefix = "LN:i:";
    if (field.size() <= kPrefix.size() || field.substr(0, kPrefix.size()) != kPrefix) {
        return false;
    }
    std::uint64_t v = 0;
    for (const char c : field.substr(kPrefix.size())) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 0xFFFFFFFFull) return false;
    }
    len = static_cast<std::uint32_t>(v);
    return true;
}

}  // namespace pgl::graph::gfa_detail

#pragma once
// Streaming GFA ingestion — the scale path for real-world pangenomes
// (PGGB, minigraph-cactus whole genomes). Instead of materializing the rich
// VariationGraph (sequences + edge set + per-path Handle vectors) and then
// distilling a LeanGraph from it, this reader makes two single-purpose
// passes over the input and feeds a LeanGraphBuilder directly:
//
//   pass 1 (segments):  S records -> name table + node lengths
//                       (sequence bytes are measured, never stored);
//   pass 2 (topology):  L records -> union-find adjacency only,
//                       P / W records -> streamed step-by-step into the
//                       builder (no per-path step vector is ever built).
//
// Peak memory is the LeanGraph itself plus the name table and two u32 words
// per node for the union-find — roughly half the rich-graph route on
// path-heavy graphs. The union-find doubles as the partition-ready
// adjacency: LeanIngest carries dense component labels computed exactly
// like partition::label_components on the rich graph (edges + path steps,
// numbered by smallest node id), so `--partition` runs byte-identically
// from either ingestion route.
//
// Dialect: GFA 1.0 (S/L/P) and GFA 1.1 (W walk) records, CRLF and
// trailing-whitespace tolerant, "S name *" with LN:i: length tags.
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/lean_graph.hpp"

namespace pgl::graph {

/// Everything the layout + partition pipeline needs from an input graph,
/// without the rich VariationGraph intermediate.
struct LeanIngest {
    LeanGraph graph;

    /// Original segment name per node id (S-record order).
    std::vector<std::string> segment_names;
    /// Path name per path index: the P-record name, or the synthesized
    /// sample#hap#seqid[:start-end] for a W walk.
    std::vector<std::string> path_names;

    /// Partition-ready adjacency: dense connected-component labels over
    /// L-links and path/walk steps, numbered by smallest member node id —
    /// identical to partition::label_components(VariationGraph) on the
    /// same file.
    std::uint32_t component_count = 0;
    std::vector<std::uint32_t> node_component;  ///< node id -> component
    std::vector<std::uint32_t> path_component;  ///< path index -> component

    std::uint64_t edge_count = 0;  ///< L records parsed (diagnostics only)
};

/// Streams GFA 1.0/1.1 from a seekable stream (two passes; file and string
/// streams both qualify). Throws std::runtime_error with a line number on
/// malformed input: duplicate segments, unknown segment references, bad
/// orientations, empty paths/walks.
LeanIngest ingest_gfa(std::istream& in);

/// Convenience overload reading from a file path.
LeanIngest ingest_gfa_file(const std::string& path);

}  // namespace pgl::graph

#pragma once
// GFA v1 reader/writer for variation graphs — the interchange format of the
// pangenome toolchain (odgi, vg, pggb). Supports S (segment), L (link) and
// P (path) records, which is everything the layout pipeline consumes.
#include <iosfwd>
#include <string>

#include "graph/variation_graph.hpp"

namespace pgl::graph {

/// Parses GFA v1 from a stream. Throws std::runtime_error on malformed
/// input. Unknown record types (H, C, W, ...) are skipped.
VariationGraph read_gfa(std::istream& in);

/// Convenience overload reading from a file path.
VariationGraph read_gfa_file(const std::string& path);

/// Writes GFA v1; segments are named 1..N (GFA ids are 1-based by
/// convention), links use overlap 0M, paths use '*' overlaps.
void write_gfa(const VariationGraph& g, std::ostream& out);

void write_gfa_file(const VariationGraph& g, const std::string& path);

}  // namespace pgl::graph

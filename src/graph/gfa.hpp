#pragma once
// GFA v1 reader/writer for variation graphs — the interchange format of the
// pangenome toolchain (odgi, vg, pggb). Supports S (segment), L (link),
// P (path) and GFA 1.1 W (walk) records, which is everything the layout
// pipeline consumes. Lines may end in CRLF (Windows-edited files) and
// sequence-free segments ("S name *" with an LN:i: tag) keep their length.
//
// This reader materializes the full rich graph; for layout-only ingestion
// at scale prefer the streaming reader in graph/gfa_stream.hpp, which
// builds the LeanGraph directly at roughly half the peak memory.
#include <iosfwd>
#include <string>

#include "graph/variation_graph.hpp"

namespace pgl::graph {

/// Parses GFA v1/v1.1 from a stream. Throws std::runtime_error on
/// malformed input. W walks become paths named sample#hap#seqid[:start-end];
/// other record types (H, C, ...) are skipped.
VariationGraph read_gfa(std::istream& in);

/// Convenience overload reading from a file path.
VariationGraph read_gfa_file(const std::string& path);

/// Writes GFA v1 preserving original segment names (nodes created without a
/// name get their 1-based decimal id, the historical behaviour); links use
/// overlap 0M, paths use '*' overlaps.
void write_gfa(const VariationGraph& g, std::ostream& out);

void write_gfa_file(const VariationGraph& g, const std::string& path);

}  // namespace pgl::graph

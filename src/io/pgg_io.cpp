#include "io/pgg_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "io/atomic_file.hpp"

namespace pgl::io {

namespace {

// Integers are written as raw host bytes; the format pins them to
// little-endian (like lay_io's float arrays), so refuse to build a writer
// that would silently emit byte-swapped caches on a big-endian host.
static_assert(std::endian::native == std::endian::little,
              ".pgg serialization assumes a little-endian host");

constexpr char kMagic[8] = {'P', 'G', 'L', 'P', 'G', 'G', '0', '1'};
constexpr std::uint32_t kFlagSegmentNames = 1u;

// Guard rails for corrupt headers: fail fast with a clear message instead
// of attempting a multi-gigabyte allocation from garbage counts.
constexpr std::uint64_t kMaxNodes = (1ull << 31) - 1;  // Handle packs id in 31 bits
constexpr std::uint64_t kMaxSteps = 0xFFFFFFFFull;     // LeanGraph offsets are u32
constexpr std::uint32_t kMaxNameLen = 1u << 20;

/// Incremental FNV-1a 64 over everything between magic and checksum.
struct Fnv1a {
    std::uint64_t h = 0xcbf29ce484222325ull;
    void mix(const void* data, std::size_t n) noexcept {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    }
};

struct HashingWriter {
    std::ostream& out;
    Fnv1a fnv;

    void put(const void* data, std::size_t n) {
        out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
        fnv.mix(data, n);
    }
    template <typename T>
    void put_int(T v) {
        put(&v, sizeof v);
    }
    void put_string(const std::string& s) {
        put_int(static_cast<std::uint32_t>(s.size()));
        put(s.data(), s.size());
    }
};

struct HashingReader {
    std::istream& in;
    Fnv1a fnv;

    void get(void* data, std::size_t n) {
        in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
        if (!in) throw std::runtime_error("graph cache truncated");
        fnv.mix(data, n);
    }
    template <typename T>
    T get_int() {
        T v{};
        get(&v, sizeof v);
        return v;
    }
    std::string get_string() {
        const auto len = get_int<std::uint32_t>();
        if (len > kMaxNameLen) {
            throw std::runtime_error("graph cache corrupt: implausible name length");
        }
        std::string s(len, '\0');
        get(s.data(), len);
        return s;
    }
};

}  // namespace

void write_pgg(const graph::LeanIngest& g, std::ostream& out) {
    out.write(kMagic, sizeof kMagic);
    HashingWriter w{out, {}};

    const graph::LeanGraph& lg = g.graph;
    const std::uint32_t flags =
        g.segment_names.empty() ? 0u : kFlagSegmentNames;
    w.put_int(flags);
    w.put_int(static_cast<std::uint64_t>(lg.node_count()));
    w.put_int(static_cast<std::uint64_t>(lg.path_count()));
    w.put_int(lg.total_path_steps());
    w.put_int(g.component_count);

    const auto lengths = lg.node_lengths();
    w.put(lengths.data(), lengths.size_bytes());
    w.put(g.node_component.data(),
          g.node_component.size() * sizeof(std::uint32_t));

    if (flags & kFlagSegmentNames) {
        for (const std::string& name : g.segment_names) w.put_string(name);
    }

    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        w.put_string(g.path_names[p]);
        w.put_int(lg.path_step_count(p));
        w.put_int(g.path_component[p]);
    }

    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        for (std::uint32_t i = 0; i < lg.path_step_count(p); ++i) {
            const auto& rec = lg.step_record(p, i);
            const std::uint32_t packed =
                graph::Handle::make(rec.node, rec.orient != 0).packed();
            w.put_int(packed);
        }
    }

    const std::uint64_t checksum = w.fnv.h;
    out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
}

void write_pgg_file(const graph::LeanIngest& g, const std::string& path) {
    atomic_write_file(path, [&](std::ostream& out) { write_pgg(g, out); });
}

void write_pgg_graph(const graph::LeanGraph& lg, std::ostream& out) {
    out.write(kMagic, sizeof kMagic);
    HashingWriter w{out, {}};

    w.put_int(std::uint32_t{0});  // flags: no segment names
    w.put_int(static_cast<std::uint64_t>(lg.node_count()));
    w.put_int(static_cast<std::uint64_t>(lg.path_count()));
    w.put_int(lg.total_path_steps());
    w.put_int(std::uint32_t{1});  // component_count

    const auto lengths = lg.node_lengths();
    w.put(lengths.data(), lengths.size_bytes());
    const std::vector<std::uint32_t> zero_labels(lg.node_count(), 0u);
    w.put(zero_labels.data(), zero_labels.size() * sizeof(std::uint32_t));

    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        w.put_string("p" + std::to_string(p));
        w.put_int(lg.path_step_count(p));
        w.put_int(std::uint32_t{0});  // path component
    }

    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        for (std::uint32_t i = 0; i < lg.path_step_count(p); ++i) {
            const auto& rec = lg.step_record(p, i);
            const std::uint32_t packed =
                graph::Handle::make(rec.node, rec.orient != 0).packed();
            w.put_int(packed);
        }
    }

    const std::uint64_t checksum = w.fnv.h;
    out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
}

void write_pgg_graph_file(const graph::LeanGraph& g, const std::string& path) {
    atomic_write_file(path, [&](std::ostream& out) { write_pgg_graph(g, out); });
}

graph::LeanIngest read_pgg(std::istream& in) {
    char magic[8];
    in.read(magic, sizeof magic);
    if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
        throw std::runtime_error("not a PGLPGG01 graph cache");
    }
    HashingReader r{in, {}};

    const auto flags = r.get_int<std::uint32_t>();
    const auto node_count = r.get_int<std::uint64_t>();
    const auto path_count = r.get_int<std::uint64_t>();
    const auto total_steps = r.get_int<std::uint64_t>();
    const auto component_count = r.get_int<std::uint32_t>();
    if (node_count > kMaxNodes || total_steps > kMaxSteps ||
        path_count > total_steps + 1) {
        throw std::runtime_error("graph cache corrupt: implausible header counts");
    }
    // Cross-check the declared payload against the bytes actually present
    // (seekable streams only) so a bit-flipped header cannot demand
    // multi-gigabyte allocations from a kilobyte file: every table below
    // is sized straight from these counts.
    if (const auto pos = in.tellg(); pos != std::istream::pos_type(-1)) {
        in.seekg(0, std::ios::end);
        const auto end = in.tellg();
        in.seekg(pos);
        if (end != std::istream::pos_type(-1) && in) {
            const auto remaining = static_cast<std::uint64_t>(end - pos);
            // Fixed-width payload floor: lengths + labels (+ name-length
            // words), per-path name-length/step-count/component words,
            // packed steps, trailing checksum. Names only add bytes.
            const std::uint64_t min_need =
                node_count * (8 + ((flags & kFlagSegmentNames) ? 4 : 0)) +
                path_count * 12 + total_steps * 4 + 8;
            if (remaining < min_need) {
                throw std::runtime_error("graph cache truncated");
            }
        }
    }

    graph::LeanIngest out;
    out.component_count = component_count;

    std::vector<std::uint32_t> lengths(node_count);
    r.get(lengths.data(), lengths.size() * sizeof(std::uint32_t));
    out.node_component.resize(node_count);
    r.get(out.node_component.data(), node_count * sizeof(std::uint32_t));
    for (const std::uint32_t c : out.node_component) {
        if (c >= component_count) {
            throw std::runtime_error("graph cache corrupt: node component out of range");
        }
    }

    if (flags & kFlagSegmentNames) {
        out.segment_names.reserve(node_count);
        for (std::uint64_t v = 0; v < node_count; ++v) {
            out.segment_names.push_back(r.get_string());
        }
    }

    graph::LeanGraphBuilder builder;
    builder.reserve_nodes(node_count);
    for (const std::uint32_t len : lengths) builder.add_node(len);
    builder.reserve_paths(path_count);
    builder.reserve_steps(total_steps);

    std::vector<std::uint32_t> step_counts(path_count);
    out.path_names.reserve(path_count);
    out.path_component.reserve(path_count);
    std::uint64_t declared_steps = 0;
    for (std::uint64_t p = 0; p < path_count; ++p) {
        out.path_names.push_back(r.get_string());
        step_counts[p] = r.get_int<std::uint32_t>();
        declared_steps += step_counts[p];
        const auto c = r.get_int<std::uint32_t>();
        if (c >= component_count) {
            throw std::runtime_error("graph cache corrupt: path component out of range");
        }
        out.path_component.push_back(c);
    }
    if (declared_steps != total_steps) {
        throw std::runtime_error(
            "graph cache corrupt: path table disagrees with step count");
    }

    // Replay the packed steps through the builder in bounded chunks so peak
    // memory stays flat regardless of path length.
    std::vector<std::uint32_t> chunk;
    for (std::uint64_t p = 0; p < path_count; ++p) {
        builder.begin_path();
        std::uint64_t remaining = step_counts[p];
        while (remaining > 0) {
            const std::size_t n =
                static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 1 << 16));
            chunk.resize(n);
            r.get(chunk.data(), n * sizeof(std::uint32_t));
            for (const std::uint32_t packed : chunk) {
                const auto h = graph::Handle::from_packed(packed);
                if (h.id() >= node_count) {
                    throw std::runtime_error(
                        "graph cache corrupt: step references unknown node");
                }
                builder.add_step(h);
            }
            remaining -= n;
        }
        builder.end_path();
    }

    const std::uint64_t computed = r.fnv.h;
    std::uint64_t stored = 0;
    in.read(reinterpret_cast<char*>(&stored), sizeof stored);
    if (!in) throw std::runtime_error("graph cache truncated");
    if (stored != computed) {
        throw std::runtime_error("graph cache corrupt: checksum mismatch");
    }

    out.graph = builder.finish();
    return out;
}

graph::LeanIngest read_pgg_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open graph cache: " + path);
    auto out = read_pgg(in);
    // A cache *file* must end at the checksum; trailing bytes mean a
    // corrupted or concatenated write. (The stream overload stays lenient
    // so a cache can be embedded in a larger stream.)
    if (in.peek() != std::istream::traits_type::eof()) {
        throw std::runtime_error("graph cache corrupt: trailing bytes after checksum");
    }
    return out;
}

bool is_pgg_path(const std::string& path) {
    return path.size() >= 4 && path.compare(path.size() - 4, 4, ".pgg") == 0;
}

graph::LeanIngest load_graph_file(const std::string& path) {
    return is_pgg_path(path) ? read_pgg_file(path) : graph::ingest_gfa_file(path);
}

}  // namespace pgl::io

#include "io/lay_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "io/atomic_file.hpp"

namespace pgl::io {

namespace {
constexpr char kMagic[8] = {'P', 'G', 'L', 'A', 'Y', '0', '0', '1'};

void write_floats(std::ostream& out, const std::vector<float>& v) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void read_floats(std::istream& in, std::vector<float>& v) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
    if (!in) throw std::runtime_error("layout file truncated");
}
}  // namespace

void write_layout(const core::Layout& l, std::ostream& out) {
    out.write(kMagic, sizeof kMagic);
    const std::uint64_t n = l.size();
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    write_floats(out, l.start_x);
    write_floats(out, l.start_y);
    write_floats(out, l.end_x);
    write_floats(out, l.end_y);
}

void write_layout_file(const core::Layout& l, const std::string& path) {
    // Temp-file + rename: a failed or interrupted run can never leave a
    // truncated .lay behind, and concurrent readers (the daemon's artifact
    // cache, CI's cmp) only ever see complete files.
    atomic_write_file(path, [&](std::ostream& out) { write_layout(l, out); });
}

core::Layout read_layout(std::istream& in) {
    char magic[8];
    in.read(magic, sizeof magic);
    if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
        throw std::runtime_error("not a PGLAY001 layout file");
    }
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof n);
    if (!in) throw std::runtime_error("layout file truncated");
    core::Layout l;
    l.resize(n);
    read_floats(in, l.start_x);
    read_floats(in, l.start_y);
    read_floats(in, l.end_x);
    read_floats(in, l.end_y);
    return l;
}

core::Layout read_layout_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open layout file: " + path);
    return read_layout(in);
}

}  // namespace pgl::io

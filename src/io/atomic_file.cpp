#include "io/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <system_error>

#ifdef __unix__
#include <unistd.h>
#endif

namespace pgl::io {

namespace {

/// Distinct temporary names per (process, call): two writers publishing the
/// same destination concurrently must not scribble into one temporary. The
/// loser of the final rename race simply publishes second — both files were
/// complete, so the destination is always a whole artifact.
std::string temp_name_for(const std::string& path) {
    static std::atomic<std::uint64_t> counter{0};
#ifdef __unix__
    const auto pid = static_cast<std::uint64_t>(::getpid());
#else
    const std::uint64_t pid = 0;
#endif
    return path + ".tmp." + std::to_string(pid) + "." +
           std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
    const std::string tmp = temp_name_for(path);
    const auto fail = [&](const std::string& what) {
        std::error_code ignore;
        std::filesystem::remove(tmp, ignore);
        throw std::runtime_error(what + ": " + path);
    };
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) fail("cannot open temporary for write");
        try {
            writer(out);
        } catch (...) {
            std::error_code ignore;
            std::filesystem::remove(tmp, ignore);
            throw;
        }
        // flush() surfaces buffered write errors (ENOSPC, EPIPE on a FIFO,
        // a revoked permission) that operator<< accumulated silently.
        out.flush();
        if (!out) fail("write failed");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) fail("cannot publish (rename failed: " + ec.message() + ")");
}

}  // namespace pgl::io

#pragma once
// Versioned binary graph cache (".pgg") — the ingest analogue of the ".lay"
// layout files: parse a whole-genome GFA once, cache the engine-ready
// LeanGraph plus the partition-ready component labels, and every later
// layout run skips GFA parsing entirely.
//
// Format (all integers little-endian):
//   magic   "PGLPGG01"                     (8 bytes; version in the magic)
//   u32     flags                          (bit 0: segment names present)
//   u64     node_count
//   u64     path_count
//   u64     total_steps
//   u32     component_count
//   node_count  x u32   node lengths
//   node_count  x u32   node -> component labels
//   [flags&1]   per node:  u32 name_len, name bytes
//   per path:   u32 name_len, name bytes, u32 step_count, u32 component
//   total_steps x u32   packed step records (Handle::packed, path-major)
//   u64     FNV-1a 64 checksum over every byte after the magic
//
// Step positions are NOT stored: the reader replays the packed steps
// through LeanGraphBuilder, so cumulative positions are recomputed exactly
// as GFA ingestion computes them and a cached graph is bit-identical to a
// fresh parse — the byte-equivalence ctest locks this in.
#include <iosfwd>
#include <string>

#include "graph/gfa_stream.hpp"

namespace pgl::io {

void write_pgg(const graph::LeanIngest& g, std::ostream& out);
void write_pgg_file(const graph::LeanIngest& g, const std::string& path);

/// Writes a bare LeanGraph as a single-component cache without copying it
/// into a LeanIngest: no segment names, synthesized path names ("p0",
/// "p1", ...), every node and path labeled component 0. This is how the
/// multi-process partition executor ships one ComponentSubgraph to a
/// worker process; the worker's read_pgg_file round-trips it into a
/// bit-identical LeanGraph (positions replayed through LeanGraphBuilder,
/// exactly like the full writer).
void write_pgg_graph(const graph::LeanGraph& g, std::ostream& out);
void write_pgg_graph_file(const graph::LeanGraph& g, const std::string& path);

/// Throws std::runtime_error on bad magic, truncated data, implausible
/// header counts or checksum mismatch.
graph::LeanIngest read_pgg(std::istream& in);
graph::LeanIngest read_pgg_file(const std::string& path);

/// True when `path` names a graph cache (".pgg" extension).
bool is_pgg_path(const std::string& path);

/// Ingestion front door used by tools: ".pgg" files load through read_pgg,
/// anything else streams through graph::ingest_gfa_file.
graph::LeanIngest load_graph_file(const std::string& path);

}  // namespace pgl::io

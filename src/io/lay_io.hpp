#pragma once
// Binary layout serialization — the equivalent of odgi's ".lay" files used
// by the paper's artifact to ship pre-generated CPU/GPU layouts.
// Format: magic "PGLAY001", u64 node count, then the four coordinate
// arrays (start_x, start_y, end_x, end_y) as little-endian float32.
#include <iosfwd>
#include <string>

#include "core/layout.hpp"

namespace pgl::io {

void write_layout(const core::Layout& l, std::ostream& out);
void write_layout_file(const core::Layout& l, const std::string& path);

/// Throws std::runtime_error on bad magic or truncated data.
core::Layout read_layout(std::istream& in);
core::Layout read_layout_file(const std::string& path);

}  // namespace pgl::io

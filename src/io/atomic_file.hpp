#pragma once
// Atomic file publication — the one way any pgl tool or the serve daemon
// writes an output file. The naive ofstream path had two failure modes the
// CLI could not see: a disk-full or permission error mid-write left a
// truncated file behind with exit status 0 (ofstream swallows write errors
// until you ask), and a reader racing the writer (the daemon's artifact
// cache, a concurrent `cmp` in CI) could observe a half-written file.
//
// atomic_write_file fixes both: the writer callback streams into a unique
// temporary in the destination directory, every stream error is checked
// (including the final flush/close), and only a fully-written temporary is
// renamed onto the destination — rename(2) within one directory is atomic,
// so readers see either the old bytes or the complete new bytes, never a
// prefix. On any failure the temporary is removed and std::runtime_error
// is thrown, so callers exit nonzero instead of reporting success over a
// partial file.
#include <functional>
#include <iosfwd>
#include <string>

namespace pgl::io {

/// Writes `path` atomically: `writer` streams the payload into a unique
/// sibling temporary which is then renamed onto `path`. Throws
/// std::runtime_error (removing the temporary) if the temporary cannot be
/// opened, the writer throws, any stream operation fails, or the rename
/// fails.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace pgl::io

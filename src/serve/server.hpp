#pragma once
// The layout job server — the long-lived heart of `pgl_serve`, usable
// in-process (bench_serve, tests) or behind the socket front end
// (serve/daemon). Lifecycle follows the samgraph CPUEngine shape: construct
// -> start() spins up the worker pool's background loops -> submit/cancel/
// wait from any thread -> shutdown() drains and joins.
//
// One core::ThreadPool owns the job workers; each worker runs one job at a
// time through exactly the engine / partition / multilevel machinery
// `pgl_layout` uses, so a daemon result is byte-identical to a direct CLI
// run for deterministic backends — the serve-smoke CI job cmp's this.
//
// Scheduling is fairness-aware by smallest-first admission: the queue is
// ordered by graph file size (ascending, FIFO within a size), the inverse
// of the partition scheduler's largest-first component order. There, every
// component must finish before the run ends, so starting the largest first
// minimizes makespan; here, jobs are independent requests and p99 latency
// is the target, so a whole-genome job must never make twenty small ones
// wait behind it. Large jobs cannot starve outright: workers only take the
// front of the queue, so once a large job is at the front (no smaller work
// left) it runs.
//
// Results are served from the content-addressed ArtifactCache; a submit
// whose key is already cached completes instantly without an engine. A
// submit whose key is currently *in flight* joins the running job as a
// follower — the work runs exactly once and every follower completes with
// the same artifact (the concurrent double-submit contract).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "graph/gfa_stream.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::serve {

enum class JobState : std::uint8_t {
    kQueued,     ///< waiting for a worker (or for a leader's result)
    kRunning,    ///< a worker is executing it
    kDone,       ///< artifact published
    kFailed,     ///< error set
    kCancelled,  ///< cancelled before or during execution
};

const char* job_state_name(JobState s) noexcept;
inline bool is_terminal(JobState s) noexcept { return s >= JobState::kDone; }

/// Point-in-time public view of a job.
struct JobStatus {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    std::string key;       ///< 32-hex artifact cache key
    std::string artifact;  ///< .lay path (kDone only)
    std::string error;     ///< diagnostic (kFailed only)
    double progress = 0.0;  ///< 0..1, iteration/component granularity
    bool cache_hit = false;  ///< completed without running an engine
    std::uint64_t size = 0;  ///< fairness size proxy (graph bytes on disk)
    double queue_seconds = 0.0;  ///< submit -> start (or terminal)
    double run_seconds = 0.0;    ///< start -> terminal
};

struct ServerOptions {
    std::string cache_dir = ".pgl-cache";
    std::uint32_t workers = 2;  ///< jobs executed concurrently
    /// Parsed graphs kept in memory (keyed by fingerprint, FIFO evicted) so
    /// a burst of jobs against one pangenome loads it once.
    std::uint32_t graph_cache_entries = 4;
};

struct ServerStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t cache_hits = 0;    ///< submits served straight from disk
    std::uint64_t dedup_joins = 0;   ///< submits that joined an in-flight job
    std::uint64_t queued = 0;        ///< current queue depth
    std::uint64_t running = 0;       ///< jobs executing now
};

class Server {
public:
    explicit Server(ServerOptions opt);
    ~Server();  ///< shutdown() if still running

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Spawns the worker pool's background job loops. Idempotent.
    void start();

    /// Stops admission, cancels queued and running jobs cooperatively, and
    /// joins the workers. Idempotent; submit() after shutdown throws.
    void shutdown();

    /// Validates and enqueues a request; returns the job id. Requests whose
    /// key is cached complete immediately; requests whose key is in flight
    /// join the running job. Throws std::runtime_error / invalid_argument
    /// on unknown backend/kernel or an unreadable graph file.
    std::uint64_t submit(const JobRequest& r);

    /// Throws std::out_of_range for an unknown id.
    JobStatus status(std::uint64_t id) const;

    /// Requests cooperative cancellation. Returns false for unknown ids and
    /// jobs already terminal, true when the cancel was delivered (queued
    /// jobs die before starting; running engines exit at the next
    /// iteration boundary).
    bool cancel(std::uint64_t id);

    /// Blocks until the job reaches a terminal state; returns it.
    JobStatus wait(std::uint64_t id);

    ServerStats stats() const;
    const ArtifactCache& cache() const noexcept { return cache_; }

private:
    struct Job {
        std::uint64_t id = 0;
        JobRequest request;
        std::string key;
        std::uint64_t graph_fp = 0;
        std::uint64_t size = 0;  ///< graph bytes on disk (fairness proxy)
        JobState state = JobState::kQueued;
        std::shared_ptr<std::atomic<bool>> cancel_flag;
        std::atomic<double> progress{0.0};
        std::string artifact;
        std::string error;
        bool cache_hit = false;
        std::vector<std::uint64_t> followers;  ///< same-key joiners
        std::chrono::steady_clock::time_point submitted_at{};
        std::uint64_t submitted_ns = 0;  ///< telemetry clock at submit
        double queue_seconds = 0.0;
        double run_seconds = 0.0;
    };

    JobStatus snapshot(const Job& j) const;
    Job* find_job(std::uint64_t id);
    const Job* find_job(std::uint64_t id) const;
    void worker_loop();
    void execute(Job& job);
    core::Layout run_job(Job& job);
    std::shared_ptr<const graph::LeanIngest> load_graph(const JobRequest& r,
                                                        std::uint64_t fp);
    /// Terminal transition + follower propagation; call with mutex_ held.
    void finish(Job& job, JobState state);

    ServerOptions opt_;
    ArtifactCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable cv_work_;  ///< queue became non-empty / stopping
    std::condition_variable cv_done_;  ///< some job reached a terminal state
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    /// Admission order: (size, id) ascending — smallest-first, FIFO within
    /// a size class.
    std::set<std::pair<std::uint64_t, std::uint64_t>> queue_;
    std::map<std::string, std::uint64_t> inflight_;  ///< key -> leader job

    /// In-memory parsed-graph cache (fingerprint-keyed, FIFO eviction).
    std::map<std::uint64_t, std::shared_ptr<const graph::LeanIngest>> graphs_;
    std::deque<std::uint64_t> graph_order_;

    std::unique_ptr<core::ThreadPool> pool_;
    std::uint64_t next_id_ = 1;
    bool started_ = false;
    bool stopping_ = false;
    ServerStats stats_;

    /// Telemetry handles, resolved once in the constructor:
    /// serve.queue_wait_ns (submit -> worker pickup) and serve.run_ns
    /// (pickup -> terminal). The daemon's `stats` command serves their
    /// quantiles; each job's queue wait also lands in the trace as a
    /// "job.queue" async event.
    telemetry::Histogram queue_wait_hist_;
    telemetry::Histogram run_hist_;
};

}  // namespace pgl::serve

#pragma once
// A layout job request — the serve daemon's unit of work — and its two
// textual forms: the wire JSON ("config" object of a submit command) and
// the canonical string that keys the artifact cache.
//
// A request carries everything `pgl_layout` would take on its command
// line: the graph reference plus the full layout configuration (backend,
// kernel, core::LayoutConfig knobs, partition, multilevel). The canonical
// form includes exactly the fields that select the bytes of the finished
// .lay — so two requests that must produce identical output share one
// cache entry — and excludes pure execution knobs (component_workers,
// executor, processes: the partition executors are byte-identical at any
// worker/process count, in-process or multi-process).
#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "multilevel/plan.hpp"
#include "serve/json.hpp"

namespace pgl::serve {

struct JobRequest {
    std::string graph;  ///< path to a .gfa or .pgg graph file
    std::string backend = "cpu-soa";
    core::LayoutConfig config;  ///< kernel/iters/seed/threads/... knobs
    bool partition = false;
    std::uint32_t component_workers = 1;  ///< execution-only: not in the key
    std::string executor = "thread";      ///< execution-only: not in the key
    std::uint32_t processes = 1;          ///< execution-only: not in the key
    bool multilevel = false;
    multilevel::MultilevelOptions ml;
};

/// Builds a JobRequest from a submit command's fields: `graph` (string,
/// required) and the optional `config` object. Unknown config keys and
/// wrongly-typed values throw std::runtime_error naming the key — a
/// mistyped request must fail loudly, not silently run defaults. Field
/// order in the JSON is irrelevant by construction.
JobRequest parse_request(const JsonValue& submit);

/// The request as a wire-format JSON object (inverse of parse_request,
/// modulo defaulted fields, which are always spelled out).
JsonValue request_to_json(const JobRequest& r);

/// The canonical `name=value;...` string over every output-selecting field
/// (backend + core canonical_config + partition + multilevel options).
/// Stable under wire field reordering and default-vs-explicit spelling.
std::string canonical_request(const JobRequest& r);

}  // namespace pgl::serve

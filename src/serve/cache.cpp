#include "serve/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "io/lay_io.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::serve {

namespace {

constexpr char kPggMagic[8] = {'P', 'G', 'L', 'P', 'G', 'G', '0', '1'};

}  // namespace

std::uint64_t fnv1a64(const std::string& s) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t graph_fingerprint(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open graph file: " + path);

    // A well-formed .pgg already ends with an FNV-1a checksum over its
    // whole payload — read it instead of re-hashing the file. Identified
    // by magic, not extension, so a renamed cache still fingerprints
    // cheaply and a mislabeled file still fingerprints correctly.
    char magic[8] = {};
    in.read(magic, sizeof magic);
    if (in && std::equal(magic, magic + 8, kPggMagic)) {
        in.seekg(0, std::ios::end);
        const auto size = static_cast<std::int64_t>(in.tellg());
        if (size >= static_cast<std::int64_t>(sizeof magic + 8)) {
            in.seekg(size - 8, std::ios::beg);
            std::uint64_t checksum = 0;
            in.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
            if (in) return checksum;
        }
    }

    // Anything else (GFA text, a truncated .pgg): hash every byte.
    in.clear();
    in.seekg(0, std::ios::beg);
    std::uint64_t h = 0xcbf29ce484222325ull;
    std::vector<char> buf(1 << 16);
    while (in) {
        in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        const auto n = static_cast<std::size_t>(in.gcount());
        for (std::size_t i = 0; i < n; ++i) {
            h ^= static_cast<unsigned char>(buf[i]);
            h *= 0x100000001b3ull;
        }
    }
    if (!in.eof()) throw std::runtime_error("cannot read graph file: " + path);
    return h;
}

std::string cache_key(std::uint64_t graph_fp, std::uint64_t config_fp) {
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(graph_fp),
                  static_cast<unsigned long long>(config_fp));
    return std::string(buf, 32);
}

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
    std::filesystem::create_directories(dir_);
    // Artifact paths travel to clients in other working directories (the
    // daemon protocol returns them verbatim), so they must be absolute.
    dir_ = std::filesystem::absolute(dir_).lexically_normal().string();
}

std::string ArtifactCache::path_for(const std::string& key) const {
    return dir_ + "/" + key + ".lay";
}

std::optional<std::string> ArtifactCache::lookup(const std::string& key) {
    const std::string path = path_for(key);
    auto& reg = telemetry::Registry::instance();
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        ++misses_;
        reg.counter("cache.misses").add(1);
        return std::nullopt;
    }
    try {
        (void)io::read_layout_file(path);  // full parse: magic + payload
    } catch (const std::exception&) {
        // Corrupt entry (truncated write from a crashed daemon, disk rot):
        // evict so it can never be served, and treat as a miss.
        std::filesystem::remove(path, ec);
        ++evictions_;
        ++misses_;
        reg.counter("cache.evictions").add(1);
        reg.counter("cache.misses").add(1);
        return std::nullopt;
    }
    ++hits_;
    reg.counter("cache.hits").add(1);
    return path;
}

std::string ArtifactCache::publish(const std::string& key,
                                   const core::Layout& layout) {
    const std::string path = path_for(key);
    io::write_layout_file(layout, path);  // atomic temp + rename
    return path;
}

}  // namespace pgl::serve

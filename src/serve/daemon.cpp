#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "serve/json.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        throw std::runtime_error("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/// Writes all of `data` (MSG_NOSIGNAL so a vanished client cannot kill the
/// daemon even before the SIGPIPE ignore is installed).
bool send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

JsonValue status_to_json(const JobStatus& s) {
    JsonObject o;
    o["ok"] = JsonValue(true);
    o["id"] = JsonValue(std::uint64_t{s.id});
    o["state"] = JsonValue(std::string(job_state_name(s.state)));
    o["key"] = JsonValue(s.key);
    o["progress"] = JsonValue(s.progress);
    o["cached"] = JsonValue(s.cache_hit);
    o["queue_seconds"] = JsonValue(s.queue_seconds);
    o["run_seconds"] = JsonValue(s.run_seconds);
    if (!s.artifact.empty()) o["artifact"] = JsonValue(s.artifact);
    if (!s.error.empty()) o["error"] = JsonValue(s.error);
    return JsonValue(std::move(o));
}

std::string error_line(const std::string& message) {
    JsonObject o;
    o["ok"] = JsonValue(false);
    o["error"] = JsonValue(message);
    return JsonValue(std::move(o)).dump() + "\n";
}

std::uint64_t require_id(const JsonValue& req) {
    const JsonValue* id = req.find("id");
    if (!id) throw std::runtime_error("missing \"id\"");
    return id->as_uint();
}

/// Wire form of a telemetry histogram (counts exact, quantiles within the
/// bucketing's 12.5% bound). All zeros when telemetry is compiled out.
JsonValue histogram_json(const telemetry::Histogram& h) {
    JsonObject o;
    o["count"] = JsonValue(h.count());
    o["sum_ns"] = JsonValue(h.sum());
    o["min_ns"] = JsonValue(h.min());
    o["max_ns"] = JsonValue(h.max());
    o["p50_ns"] = JsonValue(h.quantile(0.50));
    o["p95_ns"] = JsonValue(h.quantile(0.95));
    o["p99_ns"] = JsonValue(h.quantile(0.99));
    return JsonValue(std::move(o));
}

}  // namespace

struct Daemon::Impl {
    int listen_fd = -1;
    std::atomic<bool> stop{false};
    std::mutex mutex;                ///< guards conn_fds / threads
    std::vector<int> conn_fds;
    std::vector<std::thread> threads;
};

Daemon::Daemon(DaemonOptions opt)
    : opt_(std::move(opt)), server_(opt_.server) {}

Daemon::~Daemon() = default;

void Daemon::stop() noexcept {
    if (impl_) impl_->stop.store(true, std::memory_order_relaxed);
}

void Daemon::run() {
    ::signal(SIGPIPE, SIG_IGN);

    const sockaddr_un addr = make_addr(opt_.socket_path);

    // A socket file may be left behind by a crashed daemon. Probe it: if
    // nobody answers, it is stale and safe to reclaim; if a peer accepts,
    // a live daemon owns the path and we must not steal it.
    {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe < 0) throw_errno("socket");
        const int rc = ::connect(
            probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
        ::close(probe);
        if (rc == 0) {
            throw std::runtime_error("daemon already running on " +
                                     opt_.socket_path);
        }
        ::unlink(opt_.socket_path.c_str());
    }

    Impl impl;
    impl_ = &impl;
    impl.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl.listen_fd < 0) {
        impl_ = nullptr;
        throw_errno("socket");
    }
    if (::bind(impl.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(impl.listen_fd, 64) != 0) {
        const int saved = errno;
        ::close(impl.listen_fd);
        impl_ = nullptr;
        errno = saved;
        throw_errno("bind " + opt_.socket_path);
    }

    server_.start();

    // Accept loop: poll with a short timeout so a stop() from a signal
    // handler or a shutdown command is observed promptly.
    while (!impl.stop.load(std::memory_order_relaxed)) {
        pollfd pfd{impl.listen_fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN)) continue;
        const int fd = ::accept(impl.listen_fd, nullptr, nullptr);
        if (fd < 0) continue;
        std::lock_guard<std::mutex> lock(impl.mutex);
        impl.conn_fds.push_back(fd);
        impl.threads.emplace_back([this, fd] { handle_connection(fd); });
    }

    ::close(impl.listen_fd);
    // Cancels queued and running jobs; wakes any connection thread blocked
    // in a "result wait" (the jobs it waits on become terminal).
    server_.shutdown();
    {
        std::lock_guard<std::mutex> lock(impl.mutex);
        for (const int fd : impl.conn_fds) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& t : impl.threads) t.join();
    ::unlink(opt_.socket_path.c_str());
    impl_ = nullptr;
}

void Daemon::handle_connection(int fd) {
    std::string buf;
    char chunk[4096];
    bool open = true;
    while (open) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos;
        while (open && (pos = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, pos);
            buf.erase(0, pos + 1);
            if (line.empty()) continue;
            bool want_shutdown = false;
            const std::string response = handle_line(line, want_shutdown);
            if (!send_all(fd, response)) open = false;
            if (want_shutdown) {
                impl_->stop.store(true, std::memory_order_relaxed);
                open = false;  // response is out; let the accept loop wind down
            }
        }
    }
    ::close(fd);
}

std::string Daemon::handle_line(const std::string& line, bool& want_shutdown) {
    try {
        const JsonValue req = json_parse(line);
        const JsonValue* cmd_v = req.find("cmd");
        if (!cmd_v) throw std::runtime_error("missing \"cmd\"");
        const std::string& cmd = cmd_v->as_string();

        if (cmd == "ping") {
            JsonObject o;
            o["ok"] = JsonValue(true);
            o["pong"] = JsonValue(true);
            return JsonValue(std::move(o)).dump() + "\n";
        }
        if (cmd == "submit") {
            const JobRequest r = parse_request(req);
            const std::uint64_t id = server_.submit(r);
            return status_to_json(server_.status(id)).dump() + "\n";
        }
        if (cmd == "status") {
            return status_to_json(server_.status(require_id(req))).dump() +
                   "\n";
        }
        if (cmd == "result") {
            const std::uint64_t id = require_id(req);
            const JsonValue* wait_v = req.find("wait");
            const bool do_wait = wait_v && wait_v->as_bool();
            const JobStatus s =
                do_wait ? server_.wait(id) : server_.status(id);
            return status_to_json(s).dump() + "\n";
        }
        if (cmd == "cancel") {
            const bool delivered = server_.cancel(require_id(req));
            JsonObject o;
            o["ok"] = JsonValue(true);
            o["cancelled"] = JsonValue(delivered);
            return JsonValue(std::move(o)).dump() + "\n";
        }
        if (cmd == "stats") {
            const ServerStats s = server_.stats();
            JsonObject o;
            o["ok"] = JsonValue(true);
            o["submitted"] = JsonValue(std::uint64_t{s.submitted});
            o["completed"] = JsonValue(std::uint64_t{s.completed});
            o["failed"] = JsonValue(std::uint64_t{s.failed});
            o["cancelled"] = JsonValue(std::uint64_t{s.cancelled});
            o["cache_hits"] = JsonValue(std::uint64_t{s.cache_hits});
            o["dedup_joins"] = JsonValue(std::uint64_t{s.dedup_joins});
            o["queued"] = JsonValue(std::uint64_t{s.queued});
            o["running"] = JsonValue(std::uint64_t{s.running});
            o["cache_evictions"] = JsonValue(server_.cache().evictions());
            // Richer nested views; every flat key above is kept verbatim so
            // existing stats consumers are untouched.
            JsonObject cache;
            cache["hits"] = JsonValue(server_.cache().hits());
            cache["misses"] = JsonValue(server_.cache().misses());
            cache["evictions"] = JsonValue(server_.cache().evictions());
            o["cache"] = JsonValue(std::move(cache));
            auto& reg = telemetry::Registry::instance();
            o["queue_wait"] =
                histogram_json(reg.histogram("serve.queue_wait_ns"));
            o["run"] = histogram_json(reg.histogram("serve.run_ns"));
            return JsonValue(std::move(o)).dump() + "\n";
        }
        if (cmd == "metrics") {
            // The full process-wide registry snapshot (counters + histogram
            // quantiles from every subsystem, not just serve).
            JsonObject o;
            o["ok"] = JsonValue(true);
            o["telemetry"] = json_parse(telemetry::snapshot_json());
            return JsonValue(std::move(o)).dump() + "\n";
        }
        if (cmd == "shutdown") {
            want_shutdown = true;
            JsonObject o;
            o["ok"] = JsonValue(true);
            o["stopping"] = JsonValue(true);
            return JsonValue(std::move(o)).dump() + "\n";
        }
        throw std::runtime_error("unknown cmd: " + cmd);
    } catch (const std::exception& e) {
        return error_line(e.what());
    }
}

std::string send_request(const std::string& socket_path,
                         const std::string& line) {
    ::signal(SIGPIPE, SIG_IGN);
    const sockaddr_un addr = make_addr(socket_path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect " + socket_path);
    }
    std::string out = line;
    if (out.empty() || out.back() != '\n') out += '\n';
    if (!send_all(fd, out)) {
        ::close(fd);
        throw std::runtime_error("send failed on " + socket_path);
    }
    std::string buf;
    char chunk[4096];
    while (buf.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t pos = buf.find('\n');
    if (pos == std::string::npos) {
        throw std::runtime_error("no response from daemon (connection closed)");
    }
    return buf.substr(0, pos);
}

}  // namespace pgl::serve

#include "serve/server.hpp"

#include <filesystem>
#include <stdexcept>

#include "core/engine.hpp"
#include "core/kernels/update_kernel.hpp"
#include "driver/driver.hpp"
#include "io/pgg_io.hpp"
#include "telemetry/telemetry.hpp"

namespace pgl::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* job_state_name(JobState s) noexcept {
    switch (s) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kDone: return "done";
        case JobState::kFailed: return "failed";
        case JobState::kCancelled: return "cancelled";
    }
    return "unknown";
}

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      cache_(opt_.cache_dir),
      queue_wait_hist_(telemetry::Registry::instance().histogram(
          "serve.queue_wait_ns")),
      run_hist_(telemetry::Registry::instance().histogram("serve.run_ns")) {
    if (opt_.workers == 0) opt_.workers = 1;
}

Server::~Server() {
    try {
        shutdown();
    } catch (...) {
        // Destructor must not throw; a failed drain leaves the pool to its
        // own destructor.
    }
}

void Server::start() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    if (stopping_) throw std::logic_error("Server restarted after shutdown");
    pool_ = std::make_unique<core::ThreadPool>(opt_.workers);
    // One long-lived dispatch: every pool worker enters the job loop and
    // stays there until shutdown flips stopping_ (the samgraph
    // Start()/background-loop shape on top of our barrier pool).
    pool_->launch([this](std::uint32_t) { worker_loop(); });
    started_ = true;
}

void Server::shutdown() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Cancel everything cooperatively: queued jobs are finished right here
    // (their workers may never see them); running engines observe the flag
    // at their next iteration boundary and return early.
    for (auto& [id, job] : jobs_) {
        if (is_terminal(job->state)) continue;
        job->cancel_flag->store(true, std::memory_order_relaxed);
        if (job->state == JobState::kQueued) {
            queue_.erase({job->size, job->id});
            finish(*job, JobState::kCancelled);
        }
    }
    cv_work_.notify_all();
    if (started_) {
        lock.unlock();
        pool_->wait();  // workers drain their current (cancelled) job
        lock.lock();
        pool_.reset();
    }
}

std::uint64_t Server::submit(const JobRequest& r) {
    // Validate up front, on the caller's thread: a bad request must fail
    // the submit, not a worker later.
    if (!core::EngineRegistry::instance().contains(r.backend)) {
        throw std::runtime_error("unknown backend \"" + r.backend + "\"");
    }
    if (!core::KernelRegistry::instance().contains(r.config.kernel)) {
        throw std::runtime_error("unknown kernel \"" + r.config.kernel + "\"");
    }
    const std::uint64_t graph_fp = graph_fingerprint(r.graph);  // throws if unreadable
    std::error_code ec;
    const auto fsize = std::filesystem::file_size(r.graph, ec);
    const std::string key =
        cache_key(graph_fp, fnv1a64(canonical_request(r)));

    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("server is shutting down");

    auto job = std::make_unique<Job>();
    Job& j = *job;
    j.id = next_id_++;
    j.request = r;
    j.key = key;
    j.graph_fp = graph_fp;
    j.size = ec ? 0 : static_cast<std::uint64_t>(fsize);
    j.cancel_flag = std::make_shared<std::atomic<bool>>(false);
    j.submitted_at = std::chrono::steady_clock::now();
    j.submitted_ns = telemetry::now_ns();
    jobs_.emplace(j.id, std::move(job));
    ++stats_.submitted;
    telemetry::Registry::instance().counter("serve.submitted").add(1);

    // Fast path 1: the artifact already exists — done without an engine.
    if (auto hit = cache_.lookup(key)) {
        j.artifact = *hit;
        j.cache_hit = true;
        j.progress.store(1.0, std::memory_order_relaxed);
        ++stats_.cache_hits;
        finish(j, JobState::kDone);
        return j.id;
    }
    // Fast path 2: the same key is being computed right now — join it.
    // The work runs exactly once; the leader's completion finishes us.
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
        Job* leader = find_job(it->second);
        if (leader && !is_terminal(leader->state)) {
            leader->followers.push_back(j.id);
            ++stats_.dedup_joins;
            telemetry::Registry::instance().counter("serve.dedup_joins").add(1);
            return j.id;
        }
    }
    inflight_[key] = j.id;
    queue_.insert({j.size, j.id});
    cv_work_.notify_one();
    return j.id;
}

JobStatus Server::snapshot(const Job& j) const {
    JobStatus s;
    s.id = j.id;
    s.state = j.state;
    s.key = j.key;
    s.artifact = j.artifact;
    s.error = j.error;
    s.progress = j.progress.load(std::memory_order_relaxed);
    s.cache_hit = j.cache_hit;
    s.size = j.size;
    s.queue_seconds = j.queue_seconds;
    s.run_seconds = j.run_seconds;
    if (!is_terminal(j.state) && j.state == JobState::kQueued) {
        s.queue_seconds = seconds_between(j.submitted_at,
                                          std::chrono::steady_clock::now());
    }
    return s;
}

Server::Job* Server::find_job(std::uint64_t id) {
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

const Server::Job* Server::find_job(std::uint64_t id) const {
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

JobStatus Server::status(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const Job* j = find_job(id);
    if (!j) throw std::out_of_range("unknown job " + std::to_string(id));
    return snapshot(*j);
}

bool Server::cancel(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    Job* j = find_job(id);
    if (!j || is_terminal(j->state)) return false;
    j->cancel_flag->store(true, std::memory_order_relaxed);
    if (j->state == JobState::kQueued) {
        // Queued leaders leave the queue now; followers have no queue entry.
        queue_.erase({j->size, j->id});
        const auto infl = inflight_.find(j->key);
        const bool is_follower = infl != inflight_.end() &&
                                 infl->second != j->id;
        if (!is_follower) {
            finish(*j, JobState::kCancelled);
        } else {
            // A cancelled follower detaches from its leader and dies.
            if (Job* leader = find_job(infl->second)) {
                std::erase(leader->followers, j->id);
            }
            finish(*j, JobState::kCancelled);
        }
    }
    // Running jobs transition when their worker observes the flag.
    return true;
}

JobStatus Server::wait(std::uint64_t id) {
    std::unique_lock<std::mutex> lock(mutex_);
    const Job* j = find_job(id);
    if (!j) throw std::out_of_range("unknown job " + std::to_string(id));
    cv_done_.wait(lock, [&] { return is_terminal(j->state); });
    return snapshot(*j);
}

ServerStats Server::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats s = stats_;
    s.queued = queue_.size();  // derived, so erase paths can't drift it
    return s;
}

void Server::finish(Job& job, JobState state) {
    job.state = state;
    switch (state) {
        case JobState::kDone: ++stats_.completed; break;
        case JobState::kFailed: ++stats_.failed; break;
        case JobState::kCancelled: ++stats_.cancelled; break;
        default: break;
    }
    if (job.queue_seconds == 0.0 && job.run_seconds == 0.0) {
        job.queue_seconds = seconds_between(job.submitted_at,
                                            std::chrono::steady_clock::now());
    }

    // Followers complete with the leader's outcome — except when the leader
    // failed or was cancelled: then the first live follower is promoted to
    // a fresh leader and re-queued, so a cancel of one client's job can
    // never silently kill another client's identical request.
    std::vector<std::uint64_t> followers = std::move(job.followers);
    job.followers.clear();
    if (state == JobState::kDone) {
        for (const std::uint64_t fid : followers) {
            if (Job* f = find_job(fid)) {
                if (is_terminal(f->state)) continue;
                f->artifact = job.artifact;
                f->cache_hit = true;
                f->progress.store(1.0, std::memory_order_relaxed);
                finish(*f, JobState::kDone);
            }
        }
        inflight_.erase(job.key);
    } else {
        Job* promoted = nullptr;
        for (const std::uint64_t fid : followers) {
            Job* f = find_job(fid);
            if (!f || is_terminal(f->state)) continue;
            if (!promoted &&
                !f->cancel_flag->load(std::memory_order_relaxed) &&
                !stopping_) {
                promoted = f;
                continue;
            }
            f->error = job.error;
            finish(*f, state);
        }
        if (promoted) {
            inflight_[job.key] = promoted->id;
            queue_.insert({promoted->size, promoted->id});
            cv_work_.notify_one();
        } else {
            inflight_.erase(job.key);
        }
    }
    cv_done_.notify_all();
}

void Server::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_) return;
            continue;
        }
        // Smallest-first admission: the set is ordered by (size, id).
        const auto front = *queue_.begin();
        queue_.erase(queue_.begin());
        Job* job = find_job(front.second);
        if (!job) continue;
        if (job->cancel_flag->load(std::memory_order_relaxed)) {
            finish(*job, JobState::kCancelled);
            continue;
        }
        job->state = JobState::kRunning;
        ++stats_.running;
        const auto started = std::chrono::steady_clock::now();
        job->queue_seconds = seconds_between(job->submitted_at, started);
        const std::uint64_t started_ns = telemetry::now_ns();
        queue_wait_hist_.record(started_ns - job->submitted_ns);
        // Queue waits go on their own async track (keyed by job id) so they
        // can overlap the worker's job.run span without fighting its stack.
        telemetry::Tracer::instance().record_async(
            "job.queue", "serve", job->id, job->submitted_ns, started_ns);

        lock.unlock();
        execute(*job);
        lock.lock();

        --stats_.running;
        run_hist_.record(telemetry::now_ns() - started_ns);
        job->run_seconds =
            seconds_between(started, std::chrono::steady_clock::now());
        if (!job->error.empty()) {
            finish(*job, JobState::kFailed);
        } else if (job->cancel_flag->load(std::memory_order_relaxed) &&
                   job->artifact.empty()) {
            finish(*job, JobState::kCancelled);
        } else {
            finish(*job, JobState::kDone);
        }
    }
}

void Server::execute(Job& job) {
    try {
        core::Layout layout;
        {
            telemetry::StageSpan span("job.run",
                                      "job" + std::to_string(job.id));
            layout = run_job(job);
        }
        if (job.cancel_flag->load(std::memory_order_relaxed)) {
            return;  // partial layout: never published
        }
        {
            telemetry::StageSpan span("job.publish",
                                      "job" + std::to_string(job.id));
            job.artifact = cache_.publish(job.key, layout);
        }
        job.progress.store(1.0, std::memory_order_relaxed);
    } catch (const std::exception& e) {
        job.error = e.what();
    }
}

std::shared_ptr<const graph::LeanIngest> Server::load_graph(
    const JobRequest& r, std::uint64_t fp) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = graphs_.find(fp); it != graphs_.end()) {
            return it->second;
        }
    }
    // Parse outside the lock: two workers may race to load the same graph;
    // the duplicate parse is wasted work, not a correctness problem, and
    // blocking every submit/status behind a whole-genome parse would be
    // worse.
    auto ingest = std::make_shared<graph::LeanIngest>(
        io::load_graph_file(r.graph));  // .pgg auto-detected by extension
    std::lock_guard<std::mutex> lock(mutex_);
    if (graphs_.emplace(fp, ingest).second) {
        graph_order_.push_back(fp);
        while (graph_order_.size() > opt_.graph_cache_entries) {
            graphs_.erase(graph_order_.front());
            graph_order_.pop_front();
        }
    }
    return ingest;
}

core::Layout Server::run_job(Job& job) {
    const JobRequest& r = job.request;

    // The same driver pipeline `pgl_layout` runs, fed the daemon's cached
    // ingest (the driver copies the labels it needs; the shared entry
    // stays intact for the next job) and no output paths — the artifact
    // cache publishes the layout under the job's canonical key instead.
    driver::RunRequest req;
    req.ingest = load_graph(r, job.graph_fp);
    req.backend = r.backend;
    req.config = r.config;
    req.config.cancel = job.cancel_flag;
    req.partition = r.partition;
    req.component_workers = r.component_workers;
    req.executor = r.executor;
    req.processes = r.processes;
    req.multilevel = r.multilevel;
    req.ml = r.ml;
    req.component_progress = [&job](const partition::ComponentProgress& p) {
        job.progress.store(
            p.total ? static_cast<double>(p.completed) / p.total : 1.0,
            std::memory_order_relaxed);
    };
    req.iteration_progress = [&job](const core::IterationStats& s) {
        job.progress.store(
            s.iter_max ? static_cast<double>(s.iteration + 1) / s.iter_max
                       : 1.0,
            std::memory_order_relaxed);
    };
    return driver::run_layout(req).layout;
}

}  // namespace pgl::serve

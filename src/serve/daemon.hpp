#pragma once
// AF_UNIX socket front end for the layout job server. The wire protocol is
// line-delimited JSON: one request object per line, one response object per
// line, always answered in order on the same connection. Every response
// carries "ok": true on success or "ok": false plus "error" on failure, so
// shell clients can gate on a single grep.
//
// Commands ("cmd" field):
//   ping      -> liveness probe
//   submit    -> {"cmd":"submit","graph":PATH,"config":{...}}; answers with
//                the job id, cache key and state ("cached": true when served
//                straight from the artifact cache)
//   status    -> {"cmd":"status","id":N}
//   result    -> {"cmd":"result","id":N[,"wait":true]}; with wait, blocks
//                this connection until the job is terminal
//   cancel    -> {"cmd":"cancel","id":N}
//   stats     -> server + cache counters
//   shutdown  -> stop accepting, cancel in-flight work, exit the run loop
//
// Connections are handled one thread each (a blocking "result wait" must
// not stall other clients); the accept loop polls so shutdown is prompt.
#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace pgl::serve {

struct DaemonOptions {
    std::string socket_path = "pgl-serve.sock";
    ServerOptions server;
};

class Daemon {
public:
    explicit Daemon(DaemonOptions opt);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Binds the socket, starts the server, and serves until a shutdown
    /// command (or stop()) arrives. Throws std::runtime_error when the
    /// socket cannot be bound (e.g. another live daemon owns it). The
    /// socket file is removed on return.
    void run();

    /// Asks a running run() loop to exit (signal-handler / test hook).
    void stop() noexcept;

private:
    struct Impl;
    void handle_connection(int fd);
    std::string handle_line(const std::string& line, bool& want_shutdown);

    DaemonOptions opt_;
    Server server_;
    Impl* impl_ = nullptr;  ///< live only inside run()
};

/// One-shot client: connects to `socket_path`, sends `line` (newline
/// appended if missing), and returns the single response line. Throws
/// std::runtime_error on connect/IO failure.
std::string send_request(const std::string& socket_path,
                         const std::string& line);

}  // namespace pgl::serve

#include "serve/request.hpp"

#include <limits>
#include <stdexcept>

#include "core/config_canon.hpp"
#include "core/topology.hpp"

namespace pgl::serve {

namespace {

template <typename T>
T checked_uint(const JsonValue& v, const char* key) {
    const std::uint64_t u = v.as_uint();
    if (u > std::numeric_limits<T>::max()) {
        throw std::runtime_error(std::string("config.") + key +
                                 " is out of range");
    }
    return static_cast<T>(u);
}

}  // namespace

JobRequest parse_request(const JsonValue& submit) {
    JobRequest r;
    const JsonValue* graph = submit.find("graph");
    if (!graph) throw std::runtime_error("submit requires a \"graph\" path");
    r.graph = graph->as_string();

    const JsonValue* config = submit.find("config");
    if (!config) return r;
    for (const auto& [key, v] : config->as_object()) {
        try {
            if (key == "backend") {
                r.backend = v.as_string();
            } else if (key == "kernel") {
                r.config.kernel = v.as_string();
            } else if (key == "iters") {
                r.config.iter_max = checked_uint<std::uint32_t>(v, "iters");
            } else if (key == "schedule_iters") {
                r.config.schedule_iter_max =
                    checked_uint<std::uint32_t>(v, "schedule_iters");
            } else if (key == "factor") {
                r.config.steps_per_iter_factor = v.as_double();
            } else if (key == "eps") {
                r.config.eps = v.as_double();
            } else if (key == "eta_max") {
                r.config.eta_max = v.as_double();
            } else if (key == "cooling_start") {
                r.config.cooling_start = v.as_double();
            } else if (key == "zipf_theta") {
                r.config.zipf_theta = v.as_double();
            } else if (key == "zipf_space_max") {
                r.config.zipf_space_max = v.as_uint();
            } else if (key == "threads") {
                r.config.threads = checked_uint<std::uint32_t>(v, "threads");
            } else if (key == "pin") {
                // Execution-only, like executor/processes below: placement
                // never changes the bytes, so neither knob enters the
                // canonical request.
                r.config.pin = v.as_bool();
            } else if (key == "numa") {
                // Validated here so a bad policy fails the submit with a
                // "config.numa: ..." error instead of failing the job later.
                core::parse_numa_policy(v.as_string());
                r.config.numa = v.as_string();
            } else if (key == "seed") {
                r.config.seed = v.as_uint();
            } else if (key == "init_jitter") {
                r.config.init_jitter = v.as_double();
            } else if (key == "partition") {
                r.partition = v.as_bool();
            } else if (key == "component_workers") {
                r.component_workers =
                    checked_uint<std::uint32_t>(v, "component_workers");
            } else if (key == "executor") {
                // Execution mechanism only ("thread" / "process") — the
                // laid-out bytes are identical by contract, so this never
                // enters the canonical request.
                r.executor = v.as_string();
            } else if (key == "processes") {
                r.processes = checked_uint<std::uint32_t>(v, "processes");
            } else if (key == "multilevel") {
                // 0 = off, N >= 1 = on with N coarsening levels — the CLI's
                // --multilevel[=N] shape.
                const auto levels = checked_uint<std::uint32_t>(v, "multilevel");
                r.multilevel = levels > 0;
                if (levels > 0) r.ml.levels = levels;
            } else if (key == "coarse_iters") {
                r.ml.coarse_iters =
                    checked_uint<std::uint32_t>(v, "coarse_iters");
            } else if (key == "refine_iters") {
                r.ml.refine_iters =
                    checked_uint<std::uint32_t>(v, "refine_iters");
            } else if (key == "refine_eta") {
                r.ml.refine_eta = v.as_double();
            } else if (key == "exact_tail") {
                r.ml.exact_tail = v.as_bool();
            } else {
                throw std::runtime_error("unknown config key");
            }
        } catch (const std::exception& e) {
            throw std::runtime_error("config." + key + ": " + e.what());
        }
    }
    return r;
}

JsonValue request_to_json(const JobRequest& r) {
    JsonObject config;
    config["backend"] = JsonValue(r.backend);
    config["kernel"] = JsonValue(r.config.kernel);
    config["iters"] = JsonValue(std::uint64_t{r.config.iter_max});
    config["schedule_iters"] = JsonValue(std::uint64_t{r.config.schedule_iter_max});
    config["factor"] = JsonValue(r.config.steps_per_iter_factor);
    config["eps"] = JsonValue(r.config.eps);
    config["eta_max"] = JsonValue(r.config.eta_max);
    config["cooling_start"] = JsonValue(r.config.cooling_start);
    config["zipf_theta"] = JsonValue(r.config.zipf_theta);
    config["zipf_space_max"] = JsonValue(r.config.zipf_space_max);
    config["threads"] = JsonValue(std::uint64_t{r.config.threads});
    config["pin"] = JsonValue(r.config.pin);
    config["numa"] = JsonValue(r.config.numa);
    config["seed"] = JsonValue(r.config.seed);
    config["init_jitter"] = JsonValue(r.config.init_jitter);
    config["partition"] = JsonValue(r.partition);
    config["component_workers"] = JsonValue(std::uint64_t{r.component_workers});
    config["executor"] = JsonValue(r.executor);
    config["processes"] = JsonValue(std::uint64_t{r.processes});
    config["multilevel"] =
        JsonValue(std::uint64_t{r.multilevel ? r.ml.levels : 0});
    config["coarse_iters"] = JsonValue(std::uint64_t{r.ml.coarse_iters});
    config["refine_iters"] = JsonValue(std::uint64_t{r.ml.refine_iters});
    config["refine_eta"] = JsonValue(r.ml.refine_eta);
    config["exact_tail"] = JsonValue(r.ml.exact_tail);

    JsonObject o;
    o["graph"] = JsonValue(r.graph);
    o["config"] = JsonValue(std::move(config));
    return JsonValue(std::move(o));
}

std::string canonical_request(const JobRequest& r) {
    std::string s;
    s.reserve(320);
    s += "backend=";
    s += r.backend;
    s += ';';
    s += core::canonical_config(r.config);
    s += "partition=";
    s += r.partition ? '1' : '0';
    s += ";multilevel=";
    // One field for the on/off switch and the level count: off is 0, so an
    // off request can never collide with any on request.
    s += std::to_string(r.multilevel ? r.ml.levels : 0);
    s += ';';
    if (r.multilevel) {
        s += "ml.coarse_iters=" + std::to_string(r.ml.coarse_iters) + ';';
        s += "ml.refine_iters=" + std::to_string(r.ml.refine_iters) + ';';
        s += "ml.refine_eta=" + core::canonical_double(r.ml.refine_eta) + ';';
        s += "ml.exact_tail=";
        s += r.ml.exact_tail ? '1' : '0';
        s += ';';
    }
    return s;
}

}  // namespace pgl::serve

#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/config_canon.hpp"

namespace pgl::serve {

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Kind got) {
    static const char* names[] = {"null", "bool",  "number",
                                  "string", "array", "object"};
    throw std::runtime_error(std::string("expected ") + want + ", got " +
                             names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
    if (!is_bool()) type_error("bool", kind_);
    return bool_;
}

double JsonValue::as_double() const {
    if (!is_number()) type_error("number", kind_);
    return num_;
}

std::int64_t JsonValue::as_int() const {
    if (!is_integer()) type_error("integer", kind_);
    return static_cast<std::int64_t>(num_);
}

std::uint64_t JsonValue::as_uint() const {
    if (!is_integer() || num_ < 0) type_error("non-negative integer", kind_);
    return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) type_error("string", kind_);
    return str_;
}

const JsonArray& JsonValue::as_array() const {
    if (!is_array()) type_error("array", kind_);
    return *arr_;
}

const JsonObject& JsonValue::as_object() const {
    if (!is_object()) type_error("object", kind_);
    return *obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
}

std::string json_quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;  // UTF-8 bytes pass through
                }
        }
    }
    out += '"';
    return out;
}

void JsonValue::dump_to(std::string& out) const {
    switch (kind_) {
        case Kind::kNull: out += "null"; break;
        case Kind::kBool: out += bool_ ? "true" : "false"; break;
        case Kind::kNumber:
            if (int_) {
                // Render integrals without an exponent or trailing ".0" so
                // ids and seeds round-trip textually.
                if (num_ < 0) {
                    out += std::to_string(static_cast<std::int64_t>(num_));
                } else {
                    out += std::to_string(static_cast<std::uint64_t>(num_));
                }
            } else {
                out += core::canonical_double(num_);
            }
            break;
        case Kind::kString: out += json_quote(str_); break;
        case Kind::kArray: {
            out += '[';
            bool first = true;
            for (const JsonValue& v : *arr_) {
                if (!first) out += ',';
                first = false;
                v.dump_to(out);
            }
            out += ']';
            break;
        }
        case Kind::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [k, v] : *obj_) {
                if (!first) out += ',';
                first = false;
                out += json_quote(k);
                out += ':';
                v.dump_to(out);
            }
            out += '}';
            break;
        }
    }
}

std::string JsonValue::dump() const {
    std::string out;
    dump_to(out);
    return out;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        std::size_t n = 0;
        while (lit[n]) ++n;
        if (text_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    JsonValue parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return JsonValue(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return JsonValue(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return JsonValue(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue();
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonObject obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(obj));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = parse_value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue(std::move(obj));
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonArray arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(arr));
        }
        for (;;) {
            arr.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue(std::move(arr));
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f') cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') cp |= unsigned(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // Encode the BMP code point as UTF-8 (surrogate pairs
                    // are not needed by this protocol; lone surrogates are
                    // encoded as-is, matching lenient decoders).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        bool integral = true;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
            fail("bad number");
        }
        double d = 0.0;
        try {
            d = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception&) {
            fail("bad number");
        }
        JsonValue v(d);
        if (integral && std::abs(d) <= 9007199254740992.0) {  // 2^53
            v = (d < 0) ? JsonValue(static_cast<std::int64_t>(d))
                        : JsonValue(static_cast<std::uint64_t>(d));
        }
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
    return Parser(text).parse_document();
}

}  // namespace pgl::serve

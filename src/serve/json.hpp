#pragma once
// Minimal JSON value model + parser/serializer for the serve daemon's
// line-delimited protocol. Deliberately tiny: the protocol is flat objects
// with one level of nesting ("config"), so this supports exactly RFC 8259
// objects/arrays/strings/numbers/bools/null with UTF-8 passed through
// opaquely and \uXXXX escapes decoded, and nothing else (no comments, no
// trailing commas, no NaN/Infinity). Numbers are held as double plus the
// is_integer flag so u64 seeds survive exactly when they fit in 2^53 and
// the protocol can reject fractional values where integers are required.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pgl::serve {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;  // sorted: canonical order
using JsonArray = std::vector<JsonValue>;

class JsonValue {
public:
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
    JsonValue(std::int64_t i)
        : kind_(Kind::kNumber), num_(static_cast<double>(i)), int_(true) {}
    JsonValue(std::uint64_t u)
        : kind_(Kind::kNumber), num_(static_cast<double>(u)), int_(true) {}
    JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
    JsonValue(JsonArray a)
        : kind_(Kind::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
    JsonValue(JsonObject o)
        : kind_(Kind::kObject),
          obj_(std::make_shared<JsonObject>(std::move(o))) {}

    Kind kind() const noexcept { return kind_; }
    bool is_null() const noexcept { return kind_ == Kind::kNull; }
    bool is_bool() const noexcept { return kind_ == Kind::kBool; }
    bool is_number() const noexcept { return kind_ == Kind::kNumber; }
    bool is_integer() const noexcept { return kind_ == Kind::kNumber && int_; }
    bool is_string() const noexcept { return kind_ == Kind::kString; }
    bool is_array() const noexcept { return kind_ == Kind::kArray; }
    bool is_object() const noexcept { return kind_ == Kind::kObject; }

    /// Typed accessors; throw std::runtime_error naming the expected kind
    /// on a mismatch (the protocol's "bad field type" error path).
    bool as_bool() const;
    double as_double() const;
    std::int64_t as_int() const;    ///< requires an integral number
    std::uint64_t as_uint() const;  ///< requires an integral number >= 0
    const std::string& as_string() const;
    const JsonArray& as_array() const;
    const JsonObject& as_object() const;

    /// Object lookup: nullptr when absent (or when not an object).
    const JsonValue* find(const std::string& key) const;

    /// Compact single-line serialization (no whitespace), object keys in
    /// map order (sorted) — reparsing and re-dumping any wire object yields
    /// one canonical spelling.
    std::string dump() const;

private:
    void dump_to(std::string& out) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    bool int_ = false;
    std::string str_;
    std::shared_ptr<JsonArray> arr_;
    std::shared_ptr<JsonObject> obj_;
};

/// Parses exactly one JSON document from `text` (trailing whitespace
/// allowed, anything else after the document is an error). Throws
/// std::runtime_error with a byte offset on malformed input.
JsonValue json_parse(const std::string& text);

/// JSON string escaping (quotes included), shared by dump() and ad-hoc
/// error responses.
std::string json_quote(const std::string& s);

}  // namespace pgl::serve

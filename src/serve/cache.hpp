#pragma once
// Content-addressed artifact cache — the serve daemon's fast path. A
// finished layout is addressed by what produced it, not when: the key is
//
//   fnv1a64(graph bytes)  x  fnv1a64(canonical_request(config))
//
// rendered as 32 hex digits. For a .pgg graph the first half IS the
// trailing FNV-1a checksum the format already carries (read from the last
// 8 bytes — no re-hash of a multi-gigabyte cache file); any other input
// is hashed in full. Deterministic backends produce byte-identical .lay
// files for a fixed key, so a hit can be served without touching an
// engine — and is byte-identical to what a fresh run would write.
//
// Robustness: lookups validate the cached artifact by parsing it (magic +
// full payload); a truncated or corrupt entry is evicted (unlinked) and
// reported as a miss, so one bad disk write can never serve garbage
// forever. Publication goes through io::atomic_write_file, so a reader
// never observes a partial artifact and concurrent publishers of the same
// key are safe (last complete file wins; the bytes are identical anyway).
#include <cstdint>
#include <optional>
#include <string>

#include "core/layout.hpp"

namespace pgl::serve {

/// FNV-1a 64 fingerprint of the graph file at `path`: the stored trailing
/// checksum for a well-formed .pgg, a full-file hash otherwise. Throws
/// std::runtime_error if the file cannot be read.
std::uint64_t graph_fingerprint(const std::string& path);

/// 32-hex-digit cache key from the two fingerprint halves.
std::string cache_key(std::uint64_t graph_fp, std::uint64_t config_fp);

/// FNV-1a 64 over a string (the canonical-request half of the key).
std::uint64_t fnv1a64(const std::string& s) noexcept;

class ArtifactCache {
public:
    /// Creates `dir` (and parents) if missing.
    explicit ArtifactCache(std::string dir);

    const std::string& dir() const noexcept { return dir_; }

    /// Where the artifact for `key` lives (whether or not it exists yet).
    std::string path_for(const std::string& key) const;

    /// The artifact path when a *valid* artifact exists for `key`. A
    /// present-but-corrupt entry (bad magic, truncation) is evicted and
    /// reported as a miss.
    std::optional<std::string> lookup(const std::string& key);

    /// Atomically publishes `layout` as the artifact for `key`; returns
    /// its path.
    std::string publish(const std::string& key, const core::Layout& layout);

    std::uint64_t hits() const noexcept { return hits_; }
    std::uint64_t misses() const noexcept { return misses_; }
    std::uint64_t evictions() const noexcept { return evictions_; }

private:
    std::string dir_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace pgl::serve

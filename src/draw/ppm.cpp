#include "draw/ppm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace pgl::draw {

void Image::draw_line(std::int64_t x0, std::int64_t y0, std::int64_t x1,
                      std::int64_t y1, std::uint8_t r, std::uint8_t g,
                      std::uint8_t b) {
    const std::int64_t dx = std::abs(x1 - x0);
    const std::int64_t dy = -std::abs(y1 - y0);
    const std::int64_t sx = x0 < x1 ? 1 : -1;
    const std::int64_t sy = y0 < y1 ? 1 : -1;
    std::int64_t err = dx + dy;
    for (;;) {
        if (x0 >= 0 && y0 >= 0) {
            set(static_cast<std::uint32_t>(x0), static_cast<std::uint32_t>(y0), r,
                g, b);
        }
        if (x0 == x1 && y0 == y1) break;
        const std::int64_t e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

void Image::write_ppm(std::ostream& out) const {
    out << "P6\n" << w_ << ' ' << h_ << "\n255\n";
    out.write(reinterpret_cast<const char*>(pixels_.data()),
              static_cast<std::streamsize>(pixels_.size()));
}

void write_ppm(const core::Layout& l, std::ostream& out, const PpmOptions& opt) {
    Image img(opt.width, opt.height);
    if (l.size() > 0) {
        float min_x = std::numeric_limits<float>::max(), min_y = min_x;
        float max_x = std::numeric_limits<float>::lowest(), max_y = max_x;
        for (std::size_t i = 0; i < l.size(); ++i) {
            min_x = std::min({min_x, l.start_x[i], l.end_x[i]});
            max_x = std::max({max_x, l.start_x[i], l.end_x[i]});
            min_y = std::min({min_y, l.start_y[i], l.end_y[i]});
            max_y = std::max({max_y, l.start_y[i], l.end_y[i]});
        }
        const double span_x = std::max(1e-9, double(max_x) - min_x);
        const double span_y = std::max(1e-9, double(max_y) - min_y);
        const double s = std::min((opt.width - 2.0 * opt.margin) / span_x,
                                  (opt.height - 2.0 * opt.margin) / span_y);
        const auto px = [&](float x) {
            return static_cast<std::int64_t>(opt.margin + (x - min_x) * s);
        };
        const auto py = [&](float y) {
            return static_cast<std::int64_t>(opt.margin + (y - min_y) * s);
        };
        for (std::size_t i = 0; i < l.size(); ++i) {
            img.draw_line(px(l.start_x[i]), py(l.start_y[i]), px(l.end_x[i]),
                          py(l.end_y[i]), opt.r, opt.g, opt.b);
        }
    }
    img.write_ppm(out);
}

void write_ppm_file(const core::Layout& l, const std::string& path,
                    const PpmOptions& opt) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open PPM file for write: " + path);
    write_ppm(l, out, opt);
}

}  // namespace pgl::draw

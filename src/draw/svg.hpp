#pragma once
// SVG rendering of pangenome layouts — the `odgi draw` equivalent used for
// the paper's visual-inspection figures (Figs. 2, 6, 14). Each node is a
// line segment; optionally one highlighted path is overdrawn in color.
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/layout.hpp"
#include "graph/lean_graph.hpp"

namespace pgl::draw {

struct SvgOptions {
    double width_px = 1200.0;
    double height_px = 800.0;
    double stroke_width = 1.0;
    std::string node_color = "#30507a";
    /// Path to overdraw in a highlight color; -1 disables.
    std::int64_t highlight_path = -1;
    std::string highlight_color = "#d0342c";
    double margin_px = 16.0;
};

/// Writes an SVG of the layout; coordinates are auto-fitted to the canvas.
void write_svg(const graph::LeanGraph& g, const core::Layout& l,
               std::ostream& out, const SvgOptions& opt = {});

void write_svg_file(const graph::LeanGraph& g, const core::Layout& l,
                    const std::string& path, const SvgOptions& opt = {});

}  // namespace pgl::draw

#include "draw/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace pgl::draw {

namespace {

struct Bounds {
    float min_x = std::numeric_limits<float>::max();
    float min_y = std::numeric_limits<float>::max();
    float max_x = std::numeric_limits<float>::lowest();
    float max_y = std::numeric_limits<float>::lowest();

    void include(float x, float y) {
        min_x = std::min(min_x, x);
        min_y = std::min(min_y, y);
        max_x = std::max(max_x, x);
        max_y = std::max(max_y, y);
    }
};

}  // namespace

void write_svg(const graph::LeanGraph& g, const core::Layout& l,
               std::ostream& out, const SvgOptions& opt) {
    Bounds b;
    for (std::size_t i = 0; i < l.size(); ++i) {
        b.include(l.start_x[i], l.start_y[i]);
        b.include(l.end_x[i], l.end_y[i]);
    }
    if (l.size() == 0) {
        b = Bounds{0, 0, 1, 1};
    }
    const double span_x = std::max(1e-9, double(b.max_x) - b.min_x);
    const double span_y = std::max(1e-9, double(b.max_y) - b.min_y);
    const double usable_w = opt.width_px - 2 * opt.margin_px;
    const double usable_h = opt.height_px - 2 * opt.margin_px;
    const double s = std::min(usable_w / span_x, usable_h / span_y);

    const auto px = [&](float x) { return opt.margin_px + (x - b.min_x) * s; };
    const auto py = [&](float y) { return opt.margin_px + (y - b.min_y) * s; };

    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opt.width_px
        << "\" height=\"" << opt.height_px << "\">\n";
    out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    out << "<g stroke=\"" << opt.node_color << "\" stroke-width=\""
        << opt.stroke_width << "\" stroke-linecap=\"round\">\n";
    for (std::size_t i = 0; i < l.size(); ++i) {
        out << "<line x1=\"" << px(l.start_x[i]) << "\" y1=\"" << py(l.start_y[i])
            << "\" x2=\"" << px(l.end_x[i]) << "\" y2=\"" << py(l.end_y[i])
            << "\"/>\n";
    }
    out << "</g>\n";

    if (opt.highlight_path >= 0 &&
        opt.highlight_path < static_cast<std::int64_t>(g.path_count())) {
        const auto p = static_cast<std::uint32_t>(opt.highlight_path);
        out << "<g stroke=\"" << opt.highlight_color << "\" stroke-width=\""
            << opt.stroke_width * 1.5 << "\" fill=\"none\">\n<polyline points=\"";
        for (std::uint32_t i = 0; i < g.path_step_count(p); ++i) {
            const std::uint32_t node = g.step_node(p, i);
            const bool rev = g.step_is_reverse(p, i);
            const float x0 = rev ? l.end_x[node] : l.start_x[node];
            const float y0 = rev ? l.end_y[node] : l.start_y[node];
            const float x1 = rev ? l.start_x[node] : l.end_x[node];
            const float y1 = rev ? l.start_y[node] : l.end_y[node];
            out << px(x0) << ',' << py(y0) << ' ' << px(x1) << ',' << py(y1) << ' ';
        }
        out << "\"/>\n</g>\n";
    }
    out << "</svg>\n";
}

void write_svg_file(const graph::LeanGraph& g, const core::Layout& l,
                    const std::string& path, const SvgOptions& opt) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open SVG file for write: " + path);
    write_svg(g, l, out, opt);
}

}  // namespace pgl::draw

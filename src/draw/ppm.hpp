#pragma once
// Minimal raster renderer (binary PPM, P6) — the bitmap analog of the
// paper's `odgi draw` PNG output, for environments without an SVG viewer.
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/layout.hpp"

namespace pgl::draw {

struct PpmOptions {
    std::uint32_t width = 1024;
    std::uint32_t height = 768;
    std::uint8_t r = 0x30, g = 0x50, b = 0x7a;  ///< stroke color
    std::uint32_t margin = 12;
};

/// An RGB raster image.
class Image {
public:
    Image(std::uint32_t w, std::uint32_t h)
        : w_(w), h_(h), pixels_(static_cast<std::size_t>(w) * h * 3, 0xff) {}

    std::uint32_t width() const noexcept { return w_; }
    std::uint32_t height() const noexcept { return h_; }

    void set(std::uint32_t x, std::uint32_t y, std::uint8_t r, std::uint8_t g,
             std::uint8_t b) {
        if (x >= w_ || y >= h_) return;
        const std::size_t i = (static_cast<std::size_t>(y) * w_ + x) * 3;
        pixels_[i] = r;
        pixels_[i + 1] = g;
        pixels_[i + 2] = b;
    }

    bool is_background(std::uint32_t x, std::uint32_t y) const {
        const std::size_t i = (static_cast<std::size_t>(y) * w_ + x) * 3;
        return pixels_[i] == 0xff && pixels_[i + 1] == 0xff && pixels_[i + 2] == 0xff;
    }

    /// Bresenham line.
    void draw_line(std::int64_t x0, std::int64_t y0, std::int64_t x1,
                   std::int64_t y1, std::uint8_t r, std::uint8_t g,
                   std::uint8_t b);

    void write_ppm(std::ostream& out) const;

private:
    std::uint32_t w_, h_;
    std::vector<std::uint8_t> pixels_;
};

/// Rasterizes a layout (one segment per node) and writes binary PPM.
void write_ppm(const core::Layout& l, std::ostream& out, const PpmOptions& opt = {});

void write_ppm_file(const core::Layout& l, const std::string& path,
                    const PpmOptions& opt = {});

}  // namespace pgl::draw

#pragma once
// XORWOW (Marsaglia, 2003) — the default generator of NVIDIA cuRAND. The
// paper (Sec. V-B2) notes each cuRAND state is "a structure consisting of six
// 32-bit fields"; we keep exactly that shape so the AoS-vs-SoA coalescing
// experiment (coalesced random states) is faithful.
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace pgl::rng {

/// Plain-old-data XORWOW state: five xorshift words plus a Weyl counter.
/// Layout matters: sizeof(XorwowState) == 24 bytes, six 32-bit fields.
struct XorwowState {
    std::uint32_t v[5];
    std::uint32_t d;
};

static_assert(sizeof(XorwowState) == 24, "cuRAND-compatible state is 6 x u32");

/// Seed a state the way curand_init seeds sequence `seq` of seed `seed`.
inline XorwowState xorwow_init(std::uint64_t seed, std::uint64_t sequence) noexcept {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (sequence + 1)));
    XorwowState st;
    for (auto& w : st.v) {
        w = static_cast<std::uint32_t>(sm.next() >> 32);
        if (w == 0) w = 0x6c078965u;  // never an all-zero xorshift register
    }
    st.d = static_cast<std::uint32_t>(sm.next());
    return st;
}

/// One XORWOW step: returns a 32-bit variate and advances the state.
inline std::uint32_t xorwow_next(XorwowState& st) noexcept {
    const std::uint32_t t = st.v[0] ^ (st.v[0] >> 2);
    st.v[0] = st.v[1];
    st.v[1] = st.v[2];
    st.v[2] = st.v[3];
    st.v[3] = st.v[4];
    st.v[4] = (st.v[4] ^ (st.v[4] << 4)) ^ (t ^ (t << 1));
    st.d += 362437u;
    return st.v[4] + st.d;
}

/// Uniform float in [0, 1) from one XORWOW draw (curand_uniform semantics).
inline float xorwow_uniform(XorwowState& st) noexcept {
    return static_cast<float>(xorwow_next(st) >> 8) * 0x1.0p-24f;
}

/// Uniform integer in [0, bound).
inline std::uint32_t xorwow_bounded(XorwowState& st, std::uint32_t bound) noexcept {
    const std::uint64_t m = static_cast<std::uint64_t>(xorwow_next(st)) * bound;
    return static_cast<std::uint32_t>(m >> 32);
}

/// Adapter giving a XORWOW state the generator interface the samplers
/// expect (next / next_double / next_bounded / flip_coin). Holds a
/// reference: the state array itself lives wherever the caller keeps it
/// (e.g. the GPU simulator's per-lane state buffers).
class XorwowRng {
public:
    explicit XorwowRng(XorwowState& st) noexcept : st_(&st) {}

    std::uint64_t next() noexcept {
        const std::uint64_t hi = xorwow_next(*st_);
        return (hi << 32) | xorwow_next(*st_);
    }

    double next_double() noexcept {
        return static_cast<double>(xorwow_next(*st_) >> 5) * 0x1.0p-27;
    }

    std::uint64_t next_bounded(std::uint64_t bound) noexcept {
        if (bound <= 1) return 0;
        if (bound <= 0xffffffffULL) {
            return xorwow_bounded(*st_, static_cast<std::uint32_t>(bound));
        }
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    bool flip_coin() noexcept { return (xorwow_next(*st_) >> 31) != 0; }

private:
    XorwowState* st_;
};

}  // namespace pgl::rng

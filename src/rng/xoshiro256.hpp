#pragma once
// Xoshiro256+ (Blackman & Vigna, 2021) — the LFSR-class PRNG used by the
// odgi-layout CPU baseline (paper Sec. III-B). Low computational cost, which
// is precisely why the layout workload is memory- rather than compute-bound.
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace pgl::rng {

class Xoshiro256Plus {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256Plus(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
        SplitMix64 sm(seed);
        for (auto& w : s_) w = sm.next();
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = s_[0] + s_[3];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    std::uint64_t operator()() noexcept { return next(); }

    /// Uniform double in [0, 1).
    double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
    std::uint64_t next_bounded(std::uint64_t bound) noexcept {
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    bool flip_coin() noexcept { return (next() >> 63) != 0; }

    /// Jump function: equivalent to 2^128 calls of next(); used to give each
    /// worker thread a disjoint subsequence.
    void jump() noexcept {
        static constexpr std::uint64_t kJump[] = {
            0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
        std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::uint64_t jump : kJump) {
            for (int b = 0; b < 64; ++b) {
                if (jump & (1ULL << b)) {
                    s0 ^= s_[0];
                    s1 ^= s_[1];
                    s2 ^= s_[2];
                    s3 ^= s_[3];
                }
                next();
            }
        }
        s_[0] = s0;
        s_[1] = s1;
        s_[2] = s2;
        s_[3] = s3;
    }

    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

}  // namespace pgl::rng

#pragma once
// Power-law (Zipfian) node-hop sampler used by the PG-SGD cooling branch
// (Alg. 1 line 8). odgi-layout draws the hop distance between the two nodes
// of a pair from a Zipf distribution so that refinement concentrates on
// nearby nodes while still occasionally touching distant ones.
//
// Implementation: rejection-inversion sampling after W. Hörmann &
// G. Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions" (1996) — O(1) per draw, no per-N table.
#include <cassert>
#include <cmath>
#include <cstdint>

namespace pgl::rng {

/// Samples k in [1, n] with P(k) proportional to 1 / k^theta.
class ZipfSampler {
public:
    ZipfSampler(std::uint64_t n, double theta) { reset(n, theta); }

    void reset(std::uint64_t n, double theta) {
        assert(n >= 1);
        assert(theta > 0.0);
        n_ = n;
        theta_ = theta;
        const double nd = static_cast<double>(n);
        h_x1_ = h(1.5) - 1.0;
        h_n_ = h(nd + 0.5);
        s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -theta_));
    }

    std::uint64_t n() const noexcept { return n_; }
    double theta() const noexcept { return theta_; }

    /// Draw one variate; `Rng` provides next_double() in [0,1).
    template <typename Rng>
    std::uint64_t operator()(Rng& rng) const {
        if (n_ == 1) return 1;
        for (;;) {
            const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
            const double x = h_inv(u);
            std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
            if (k < 1) k = 1;
            if (k > n_) k = n_;
            const double kd = static_cast<double>(k);
            if (kd - x <= s_ || u >= h(kd + 0.5) - std::pow(kd, -theta_)) {
                return k;
            }
        }
    }

private:
    // H(x) = integral of x^-theta; two analytic forms split at theta == 1.
    double h(double x) const {
        if (theta_ == 1.0) return std::log(x);
        return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
    }

    double h_inv(double x) const {
        if (theta_ == 1.0) return std::exp(x);
        return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
    }

    std::uint64_t n_ = 1;
    double theta_ = 0.99;
    double h_x1_ = 0.0;
    double h_n_ = 0.0;
    double s_ = 0.0;
};

}  // namespace pgl::rng

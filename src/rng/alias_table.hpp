#pragma once
// Walker/Vose alias table for O(1) weighted discrete sampling. PG-SGD picks
// a path with probability proportional to its step count (Alg. 1 line 5);
// with thousands of paths per chromosome graph this must be constant-time.
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace pgl::rng {

class AliasTable {
public:
    AliasTable() = default;

    explicit AliasTable(std::span<const double> weights) { build(weights); }

    void build(std::span<const double> weights) {
        const std::size_t n = weights.size();
        assert(n > 0);
        prob_.assign(n, 0.0);
        alias_.assign(n, 0);

        double total = 0.0;
        for (double w : weights) {
            assert(w >= 0.0);
            total += w;
        }
        assert(total > 0.0);

        // Scale so the average bucket holds probability exactly 1.
        std::vector<double> scaled(n);
        for (std::size_t i = 0; i < n; ++i) {
            scaled[i] = weights[i] * static_cast<double>(n) / total;
        }

        std::vector<std::uint32_t> small, large;
        small.reserve(n);
        large.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
        }

        while (!small.empty() && !large.empty()) {
            const std::uint32_t s = small.back();
            small.pop_back();
            const std::uint32_t l = large.back();
            large.pop_back();
            prob_[s] = scaled[s];
            alias_[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            (scaled[l] < 1.0 ? small : large).push_back(l);
        }
        // Numerical leftovers all saturate to probability 1.
        for (std::uint32_t i : large) prob_[i] = 1.0;
        for (std::uint32_t i : small) prob_[i] = 1.0;
    }

    std::size_t size() const noexcept { return prob_.size(); }
    bool empty() const noexcept { return prob_.empty(); }

    /// Draw an index in [0, size()); `Rng` provides next_double() and
    /// next_bounded().
    template <typename Rng>
    std::uint32_t operator()(Rng& rng) const {
        const std::uint32_t i =
            static_cast<std::uint32_t>(rng.next_bounded(prob_.size()));
        return rng.next_double() < prob_[i] ? i : alias_[i];
    }

private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

}  // namespace pgl::rng

#pragma once
// SplitMix64 — the canonical seeding generator (Steele, Lea & Flood, 2014).
// Used here to expand a single 64-bit seed into full generator states for
// Xoshiro256+ and XORWOW, exactly as odgi and cuRAND do.
#include <cstdint>

namespace pgl::rng {

class SplitMix64 {
public:
    using result_type = std::uint64_t;

    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    constexpr std::uint64_t operator()() noexcept { return next(); }

    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

private:
    std::uint64_t state_;
};

}  // namespace pgl::rng

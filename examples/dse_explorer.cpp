// Performance-quality trade-off explorer (paper Sec. VII-D): sweeps the
// warp-level data-reuse design space (DRF x SRF) on a user-selected
// chromosome preset, scoring every scheme with sampled path stress — the
// workflow the paper's scalable metric enables.
//
//   ./dse_explorer [chromosome 1-24] [scale]
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const int chrom = argc > 1 ? std::atoi(argv[1]) : 2;
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.002;

    const auto spec = workloads::chromosome_spec(chrom, scale);
    const auto vg = workloads::generate_pangenome(spec);
    const auto g = graph::LeanGraph::from_graph(vg);
    std::cout << "exploring " << spec.name << " (" << g.node_count()
              << " nodes, scale " << scale << ")\n\n";

    core::LayoutConfig cfg;
    cfg.iter_max = 8;
    cfg.steps_per_iter_factor = 1.0;

    gpusim::SimOptions sopt;
    sopt.counter_sample_period = 32;
    sopt.cache_scale = scale;
    const auto a6000 = gpusim::rtx_a6000();

    std::cout << std::left << std::setw(12) << "(DRF,SRF)" << std::setw(14)
              << "time (model)" << std::setw(12) << "speedup" << std::setw(12)
              << "SPS" << "verdict\n"
              << std::string(60, '-') << "\n";

    double t_ref = 0, sps_ref = 0;
    for (const auto& [drf, srf] :
         {std::pair<std::uint32_t, double>{1, 1.0}, {2, 1.5}, {2, 1.75},
          {4, 1.5}, {4, 2.0}, {8, 2.0}, {8, 2.5}}) {
        gpusim::KernelConfig k = gpusim::KernelConfig::optimized();
        k.data_reuse_factor = drf;
        k.step_reduction_factor = srf;
        const auto r = gpusim::simulate_gpu_layout(g, cfg, k, a6000, sopt);
        const double sps = metrics::sampled_path_stress(g, r.layout, 25).value;
        if (drf == 1) {
            t_ref = r.modeled_seconds;
            sps_ref = sps;
        }
        const double ratio = sps / sps_ref;
        const char* verdict =
            ratio < 2 ? "good" : (ratio < 10 ? "satisfying" : "poor");
        char scheme[32];
        std::snprintf(scheme, sizeof scheme, "(%u,%.2f)", drf, srf);
        std::cout << std::setw(12) << scheme
                  << std::setw(14) << r.modeled_seconds << std::setw(12)
                  << t_ref / r.modeled_seconds << std::setw(12) << sps << verdict
                  << "\n";
    }
    std::cout << "\npick the fastest scheme still rated good (paper: an extra "
                 "~1.5x is available)\n";
    return 0;
}

// Quickstart: build the toy variation graph of the paper's Fig. 1, run the
// PG-SGD layout, report stress and write a GFA + SVG pair.
//
//   ./quickstart [output_dir]
#include <iostream>
#include <string>

#include "core/cpu_engine.hpp"
#include "graph/gfa.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const std::string out_dir = argc > 1 ? argv[1] : ".";

    // Fig. 1a: eight nodes, three genome paths, one SNV / insertion /
    // deletion among them.
    graph::VariationGraph vg;
    const auto v0 = vg.add_node("AA");
    const auto v1 = vg.add_node("T");    // insertion carried by path2
    const auto v2 = vg.add_node("GC");
    const auto v3 = vg.add_node("C");    // SNV alternative to v4
    const auto v4 = vg.add_node("TA");
    const auto v5 = vg.add_node("CA");
    const auto v6 = vg.add_node("AA");   // deleted in path1
    const auto v7 = vg.add_node("C");
    auto f = [](graph::NodeId n) { return graph::Handle::forward(n); };
    vg.add_path("path0", {f(v0), f(v2), f(v4), f(v5), f(v6), f(v7)});
    vg.add_path("path1", {f(v0), f(v2), f(v4), f(v5), f(v7)});
    vg.add_path("path2", {f(v0), f(v1), f(v2), f(v3), f(v5), f(v6), f(v7)});

    std::cout << "graph: " << vg.node_count() << " nodes, " << vg.edge_count()
              << " edges, " << vg.path_count() << " paths\n";

    const auto lean = graph::LeanGraph::from_graph(vg);

    core::LayoutConfig cfg;
    cfg.iter_max = 30;
    cfg.steps_per_iter_factor = 10.0;
    const auto result = core::layout_cpu(lean, cfg);

    const auto stress = metrics::path_stress(lean, result.layout);
    const auto sps = metrics::sampled_path_stress(lean, result.layout);
    std::cout << "layout finished in " << result.seconds << " s ("
              << result.updates << " updates)\n";
    std::cout << "path stress:         " << stress.value << "\n";
    std::cout << "sampled path stress: " << sps.value << "  [" << sps.ci_low
              << ", " << sps.ci_high << "]\n";

    graph::write_gfa_file(vg, out_dir + "/quickstart.gfa");
    std::cout << "wrote " << out_dir << "/quickstart.gfa\n";
    return 0;
}

// Quickstart: build the toy variation graph of the paper's Fig. 1, run the
// PG-SGD layout on any registered backend, report stress and write a
// GFA + SVG pair.
//
//   ./quickstart [output_dir] [backend]
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "graph/gfa.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const std::string out_dir = argc > 1 ? argv[1] : ".";
    const std::string backend = argc > 2 ? argv[2] : "cpu-soa";

    // Fig. 1a: eight nodes, three genome paths, one SNV / insertion /
    // deletion among them.
    graph::VariationGraph vg;
    const auto v0 = vg.add_node("AA");
    const auto v1 = vg.add_node("T");    // insertion carried by path2
    const auto v2 = vg.add_node("GC");
    const auto v3 = vg.add_node("C");    // SNV alternative to v4
    const auto v4 = vg.add_node("TA");
    const auto v5 = vg.add_node("CA");
    const auto v6 = vg.add_node("AA");   // deleted in path1
    const auto v7 = vg.add_node("C");
    auto f = [](graph::NodeId n) { return graph::Handle::forward(n); };
    vg.add_path("path0", {f(v0), f(v2), f(v4), f(v5), f(v6), f(v7)});
    vg.add_path("path1", {f(v0), f(v2), f(v4), f(v5), f(v7)});
    vg.add_path("path2", {f(v0), f(v1), f(v2), f(v3), f(v5), f(v6), f(v7)});

    std::cout << "graph: " << vg.node_count() << " nodes, " << vg.edge_count()
              << " edges, " << vg.path_count() << " paths\n";

    const auto lean = graph::LeanGraph::from_graph(vg);

    if (!core::EngineRegistry::instance().contains(backend)) {
        std::cerr << "unknown backend " << backend << "; available:";
        for (const auto& n : core::EngineRegistry::instance().names()) {
            std::cerr << " " << n;
        }
        std::cerr << "\n";
        return 2;
    }

    core::LayoutConfig cfg;
    cfg.iter_max = 30;
    cfg.steps_per_iter_factor = 10.0;
    auto engine = core::make_engine(backend);
    engine->init(lean, cfg);
    const auto result = engine->run();

    const auto stress = metrics::path_stress(lean, result.layout);
    const auto sps = metrics::sampled_path_stress(lean, result.layout);
    std::cout << engine->name() << " layout finished in " << result.seconds
              << " s (" << result.updates << " updates)\n";
    std::cout << "path stress:         " << stress.value << "\n";
    std::cout << "sampled path stress: " << sps.value << "  [" << sps.ci_low
              << ", " << sps.ci_high << "]\n";

    graph::write_gfa_file(vg, out_dir + "/quickstart.gfa");
    std::cout << "wrote " << out_dir << "/quickstart.gfa\n";
    return 0;
}

// Gene-scale case study on an HLA-DRB1-like pangenome (paper Figs. 2 & 6):
//   1. run the CPU PG-SGD layout and the simulated-GPU layout;
//   2. compare their quality with sampled path stress;
//   3. produce the degenerate fixed-hop layout of Fig. 6;
//   4. render SVGs of the good and the degenerate layout.
//
//   ./hla_drb1_layout [output_dir] [cpu_backend]
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "draw/svg.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const std::string out_dir = argc > 1 ? argv[1] : ".";
    const std::string cpu_backend = argc > 2 ? argv[2] : "cpu-pipelined";

    const auto spec = workloads::hla_drb1_spec();
    const auto vg = workloads::generate_pangenome(spec);
    const auto stats = vg.stats();
    std::cout << "HLA-DRB1-like graph: " << stats.nodes << " nodes, "
              << stats.edges << " edges, " << stats.paths << " paths, "
              << stats.nucleotides << " bp\n";
    const auto g = graph::LeanGraph::from_graph(vg);

    core::LayoutConfig cfg;
    cfg.iter_max = 20;
    cfg.steps_per_iter_factor = 5.0;

    // CPU baseline layout (any cpu-* registry backend).
    if (!core::EngineRegistry::instance().contains(cpu_backend)) {
        std::cerr << "unknown backend " << cpu_backend << "; available:";
        for (const auto& n : core::EngineRegistry::instance().names()) {
            std::cerr << " " << n;
        }
        std::cerr << "\n";
        return 2;
    }
    auto cpu_engine = core::make_engine(cpu_backend);
    cpu_engine->init(g, cfg);
    const auto cpu = cpu_engine->run();
    const auto sps_cpu = metrics::sampled_path_stress(g, cpu.layout);
    std::cout << cpu_engine->name() << " layout:     " << cpu.seconds
              << " s, sampled path stress " << sps_cpu.value << " ["
              << sps_cpu.ci_low << ", " << sps_cpu.ci_high << "]\n";

    // Simulated-GPU layout with all three kernel optimizations, through
    // the same engine interface.
    gpusim::SimOptions sopt;
    sopt.counter_sample_period = 64;
    auto gpu_engine = gpusim::make_gpusim_engine(
        gpusim::KernelConfig::optimized(), gpusim::rtx_a6000(), sopt);
    gpu_engine->init(g, cfg);
    const auto gpu = gpu_engine->run();
    const auto sps_gpu = metrics::sampled_path_stress(g, gpu.layout);
    std::cout << "GPU-sim layout: modeled " << gpu.seconds
              << " s, sampled path stress " << sps_gpu.value << "\n";
    std::cout << "SPS ratio (GPU/CPU): " << sps_gpu.value / sps_cpu.value
              << "  (paper: ~1, no quality loss)\n";

    draw::SvgOptions svg;
    svg.highlight_path = 0;
    draw::write_svg_file(g, cpu.layout, out_dir + "/hla_drb1_cpu.svg", svg);
    draw::write_svg_file(g, gpu.layout, out_dir + "/hla_drb1_gpu.svg", svg);
    std::cout << "wrote " << out_dir << "/hla_drb1_cpu.svg and hla_drb1_gpu.svg\n";
    return 0;
}

// Whole-genome partition pipeline demo: generates a multi-component
// synthetic genome (one component per chromosome-like subgraph), writes it
// as GFA, then runs the explode -> layout -> squeeze pipeline — connected-
// component decomposition, one engine per component scheduled largest-first,
// shelf-stitched canvas — and renders the result.
//
//   ./whole_genome_layout [out_dir] [n_components] [scale] [backend] [sub]
//
// `sub` > 1 regenerates the same genome at `sub` times finer node
// segmentation (with_finer_segmentation) — the bp-resolution form whose
// run redundancy the multilevel coarsener collapses.
//
// The written GFA is the input CI feeds to `pgl_layout --partition` and
// the multilevel smoke comparison.
#include <iostream>
#include <string>

#include "draw/svg.hpp"
#include "graph/gfa.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"
#include "partition/partition.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const std::string out_dir = argc > 1 ? argv[1] : ".";
    const std::uint32_t n_components =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.0005;
    const std::string backend = argc > 4 ? argv[4] : "cpu-batched";
    const std::uint32_t sub =
        argc > 5 ? static_cast<std::uint32_t>(std::atoi(argv[5])) : 1;

    auto specs = workloads::whole_genome_spec(n_components, scale, 0xC0DE);
    if (sub > 1) {
        for (auto& s : specs) s = workloads::with_finer_segmentation(s, sub);
    }
    const auto vg = workloads::generate_whole_genome(specs);
    std::cout << "genome: " << vg.node_count() << " nodes, " << vg.edge_count()
              << " edges, " << vg.path_count() << " paths in " << n_components
              << " components\n";

    const std::string gfa_path = out_dir + "/whole_genome.gfa";
    graph::write_gfa_file(vg, gfa_path);
    std::cout << "wrote " << gfa_path << "\n";

    partition::PartitionOptions popt;
    popt.schedule.backend = backend;
    popt.schedule.config.iter_max = 10;
    popt.schedule.config.steps_per_iter_factor = 2.0;
    popt.schedule.workers = 2;
    popt.progress = [](const partition::ComponentProgress& p) {
        std::cout << "  component " << p.completed << "/" << p.total << " (id "
                  << p.component << "): " << p.nodes << " nodes in " << p.seconds
                  << " s\n";
    };
    const auto part = partition::partition_layout(vg, popt);
    std::cout << backend << ": " << part.updates << " updates over "
              << part.decomposition.count() << " components in " << part.seconds
              << " s (engine time " << part.engine_seconds << " s)\n";
    std::cout << "canvas: " << part.stitched.width << " x "
              << part.stitched.height << "\n";

    const auto lean = graph::LeanGraph::from_graph(vg);
    const auto sps = metrics::sampled_path_stress(lean, part.stitched.layout, 20);
    std::cout << "sampled path stress: " << sps.value << " [" << sps.ci_low
              << ", " << sps.ci_high << "]\n";

    draw::write_svg_file(lean, part.stitched.layout,
                         out_dir + "/whole_genome.svg");
    std::cout << "wrote " << out_dir << "/whole_genome.svg\n";
    return 0;
}

// End-to-end chromosome pipeline, the analog of the paper's artifact flow:
//   generate a scaled Chr-class pangenome -> write GFA -> re-read the GFA ->
//   distill the lean layout graph -> run the multithreaded CPU layout and
//   the optimized simulated-GPU layout -> compare quality -> persist the
//   layout (.lay) and a rendered SVG -> report the modeled paper-scale
//   speedup.
//
//   ./chromosome_pipeline [output_dir] [scale]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/cpu_engine.hpp"
#include "draw/svg.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "graph/gfa.hpp"
#include "graph/lean_graph.hpp"
#include "io/lay_io.hpp"
#include "metrics/path_stress.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const std::string out_dir = argc > 1 ? argv[1] : ".";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.001;

    // 1. Generate and round-trip through GFA (the interchange format).
    const auto spec = workloads::chromosome_spec(20, scale);
    const auto vg = workloads::generate_pangenome(spec);
    const std::string gfa_path = out_dir + "/chr20_scaled.gfa";
    graph::write_gfa_file(vg, gfa_path);
    const auto vg2 = graph::read_gfa_file(gfa_path);
    std::cout << "GFA round trip: " << vg2.node_count() << " nodes, "
              << vg2.edge_count() << " edges, " << vg2.path_count()
              << " paths (validate: "
              << (vg2.validate().empty() ? "ok" : vg2.validate()) << ")\n";

    const auto g = graph::LeanGraph::from_graph(vg2);

    // 2. CPU layout on the pipelined engine (persistent thread pool, 4
    // producer workers sampling ahead of the consumer).
    core::LayoutConfig cfg;
    cfg.iter_max = 10;
    cfg.steps_per_iter_factor = 2.0;
    cfg.threads = 4;
    auto cpu_engine = core::make_engine("cpu-pipelined");
    cpu_engine->init(g, cfg);
    const auto cpu = cpu_engine->run();
    std::cout << "CPU layout (cpu-pipelined, 4 threads): " << cpu.seconds
              << " s measured, " << cpu.updates << " updates\n";

    // 3. Simulated-GPU layout.
    gpusim::SimOptions sopt;
    sopt.counter_sample_period = 32;
    sopt.cache_scale = scale;
    cfg.threads = 1;
    const auto gpu = gpusim::simulate_gpu_layout(
        g, cfg, gpusim::KernelConfig::optimized(), gpusim::rtx_a6000(), sopt);

    // 4. Quality comparison.
    const auto s_cpu = metrics::sampled_path_stress(g, cpu.layout, 50);
    const auto s_gpu = metrics::sampled_path_stress(g, gpu.layout, 50);
    std::cout << "sampled path stress: CPU " << s_cpu.value << "  GPU "
              << s_gpu.value << "  ratio " << s_gpu.value / s_cpu.value << "\n";

    // 5. Persist artifacts.
    io::write_layout_file(gpu.layout, out_dir + "/chr20_scaled.lay");
    const auto reread = io::read_layout_file(out_dir + "/chr20_scaled.lay");
    std::cout << "layout file round trip: " << reread.size() << " nodes\n";
    draw::write_svg_file(g, gpu.layout, out_dir + "/chr20_scaled.svg");

    // 6. Modeled paper-scale speedup summary for this chromosome.
    const double per_update_gpu =
        gpu.modeled_seconds / static_cast<double>(gpu.counters.lane_updates);
    std::cout << "modeled GPU cost: " << per_update_gpu * 1e9
              << " ns/update -> full-scale Chr.20 in "
              << per_update_gpu * 300.0 *
                     static_cast<double>(g.total_path_steps()) / scale
              << " s on an RTX A6000 (paper: 90 s)\n";
    std::cout << "wrote " << gfa_path << ", chr20_scaled.lay, chr20_scaled.svg\n";
    return 0;
}

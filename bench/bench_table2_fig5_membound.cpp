// Reproduces Table II (memory stall cycle percentage, LLC-load miss rate)
// and Fig. 5 (memory-bound pipeline-slot share) for the three representative
// pangenomes, via the cache-simulator characterization of the PG-SGD
// address stream (the substitute for Perf/VTune — see DESIGN.md).
#include <iostream>

#include "bench_common.hpp"
#include "memsim/characterize.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table II + Fig. 5: memory-bound characterization ==\n";

    struct Row {
        workloads::PangenomeSpec spec;
        double scale;
        const char* paper_stall;
        const char* paper_miss;
        const char* paper_membound;
    };
    const Row rows[] = {
        // The gene-scale run is dominated by ODGI's full auxiliary-structure
        // footprint, which the lean replayer underestimates; a scaled cache
        // restores the paper's cache-to-working-set ratio for HLA-DRB1.
        {workloads::hla_drb1_spec(), 0.04, "67.67%", "75.09%", "53.5%"},
        {workloads::mhc_spec(opt.scale * 25), opt.scale * 25, "78.07%", "77.84%",
         "65.4%"},
        {workloads::chromosome_spec(1, opt.scale), opt.scale, "77.38%", "89.88%",
         "70.9%"},
    };

    bench::TablePrinter table({"Pangenome", "Mem stall %", "(paper)",
                               "LLC miss rate", "(paper)", "Mem-bound slots",
                               "(paper)"},
                              {12, 12, 10, 14, 10, 16, 10});
    table.print_header(std::cout);

    for (const Row& r : rows) {
        const auto g = bench::build_lean(r.spec, false);
        const auto cfg = opt.layout_config();
        memsim::CharacterizeOptions chopt;
        chopt.sample_updates = opt.quick ? 200'000 : 1'000'000;
        chopt.llc_scale = r.scale;
        chopt.seed = opt.seed;
        const auto ch =
            memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, chopt);
        table.print_row(
            std::cout,
            {r.spec.name, bench::fmt(ch.memory_stall_pct, 1) + "%", r.paper_stall,
             bench::fmt(100.0 * ch.llc_load_miss_rate, 1) + "%", r.paper_miss,
             bench::fmt(ch.memory_bound_pct, 1) + "%", r.paper_membound});
    }
    std::cout << "\npaper shape: all graphs memory-bound; miss rate and "
                 "memory-bound share grow with graph size\n";
    return 0;
}

// Reproduces Table III: run time, speedup and layout quality of the
// PyTorch-style batched implementation on the MHC pangenome, across batch
// sizes 10K .. 100M (batch sizes scale with --scale so the staleness regime
// relative to graph size matches the paper's).
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "memsim/characterize.hpp"
#include "metrics/path_stress.hpp"
#include "tensor/torch_layout.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table III: PyTorch implementation batch-size sweep (MHC) ==\n";

    const double mhc_scale = opt.scale * 25;  // MHC is ~25x smaller than Chr.1
    const auto g = bench::build_lean(workloads::mhc_spec(mhc_scale));
    const auto cfg = opt.layout_config();
    const double full_updates = bench::full_scale_updates(g, mhc_scale);
    const double sim_updates =
        static_cast<double>(cfg.iter_max) *
        static_cast<double>(cfg.steps_per_iteration(g.total_path_steps()));

    // CPU reference: quality baseline + modeled 32-thread Xeon time.
    const auto cpu = core::layout_cpu(g, cfg);
    const double sps_cpu =
        metrics::sampled_path_stress(g, cpu.layout, 25, opt.seed).value;
    memsim::CharacterizeOptions chopt;
    chopt.sample_updates = opt.quick ? 150'000 : 600'000;
    chopt.llc_scale = mhc_scale;
    const auto ch = memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, chopt);
    const double t_cpu = memsim::CpuPerfModel{}.seconds(
        ch, static_cast<std::uint64_t>(full_updates));
    std::cout << "modeled 32-thread CPU baseline: " << bench::fmt(t_cpu, 1)
              << " s (paper: 107 s)\n\n";

    tensor::KernelCostModel cost;
    cost.coord_bytes_override =
        2.0 * 2.0 * static_cast<double>(g.node_count()) * sizeof(float) / mhc_scale;
    // Batches are scaled down with the graph; per-batch overheads must be
    // amortized as if batches were paper-sized, so scale them down too.
    cost.host_per_batch_us *= mhc_scale;
    cost.launch_overhead_us *= mhc_scale;

    bench::TablePrinter table({"Batch (paper)", "Run time (s)", "Speedup",
                               "SPS ratio", "Quality", "Paper"},
                              {15, 14, 10, 11, 12, 18});
    table.print_header(std::cout);

    struct Row {
        const char* paper_batch;
        double full_batch;
        const char* paper;
    };
    const Row rows[] = {
        {"10K", 1e4, "0.2x Good"},    {"100K", 1e5, "1.6x Good"},
        {"1M", 1e6, "6.8x Good"},     {"10M", 1e7, "7.5x Satisfying"},
        {"100M", 1e8, "9.1x Poor"},
    };
    for (const Row& r : rows) {
        const std::uint64_t batch = static_cast<std::uint64_t>(
            std::max(64.0, r.full_batch * mhc_scale));
        const auto res = tensor::layout_torch(g, cfg, batch, cost);
        const double t = res.modeled_seconds * (full_updates / sim_updates);
        const double sps =
            metrics::sampled_path_stress(g, res.layout, 25, opt.seed).value;
        const double ratio = sps / sps_cpu;
        const char* quality =
            ratio < 2.0 ? "Good" : (ratio < 10.0 ? "Satisfying" : "Poor");
        table.print_row(std::cout,
                        {r.paper_batch, bench::fmt(t, 1),
                         bench::fmt(t_cpu / t, 1) + "x", bench::fmt(ratio, 2),
                         quality, r.paper});
    }
    std::cout << "\npaper shape: run time falls then flattens past batch 1M; "
                 "quality degrades Good -> Satisfying -> Poor\n";
    return 0;
}

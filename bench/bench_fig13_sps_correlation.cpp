// Reproduces Fig. 13: sampled path stress closely approximates exact path
// stress (paper: correlation 0.995 over 1824 small layouts). We generate a
// population of small pangenome layouts at assorted convergence levels and
// report the Pearson correlation of log-stress (the paper's Fig. 13 is a
// log-log scatter), plus seed-robustness of the estimator.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Fig. 13: sampled path stress vs exact path stress ==\n";

    const int n_graphs = opt.quick ? 12 : 48;
    std::vector<double> xs, ys;

    for (int i = 0; i < n_graphs; ++i) {
        workloads::PangenomeSpec spec;
        spec.backbone_nodes = 200 + 57 * static_cast<std::uint64_t>(i % 8);
        spec.n_paths = 3 + (i % 5);
        spec.seed = opt.seed + static_cast<std::uint64_t>(i) * 101;
        const auto g = graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));

        auto cfg = opt.layout_config();
        cfg.iter_max = 1 + (i % 7) * 2;  // assorted convergence levels
        cfg.steps_per_iter_factor = 2.0;
        cfg.seed = spec.seed;
        const auto layout = core::layout_cpu(g, cfg).layout;

        const double exact = metrics::path_stress(g, layout).value;
        const double sampled =
            metrics::sampled_path_stress(g, layout, 100, opt.seed).value;
        if (exact > 0 && sampled > 0) {
            xs.push_back(std::log10(exact));
            ys.push_back(std::log10(sampled));
        }
    }

    // Pearson correlation.
    const auto n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        syy += ys[i] * ys[i];
        sxy += xs[i] * ys[i];
    }
    const double corr = (n * sxy - sx * sy) /
                        std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
    std::cout << "layouts evaluated: " << xs.size() << "\n";
    std::cout << "log-log Pearson correlation(sampled, exact) = "
              << bench::fmt(corr, 4) << "   (paper: 0.995)\n";

    // Seed robustness: the estimator must be stable across sampling seeds.
    {
        const auto g = graph::LeanGraph::from_graph(
            workloads::generate_pangenome(workloads::hla_drb1_spec()));
        auto cfg = opt.layout_config();
        const auto layout = core::layout_cpu(g, cfg).layout;
        double lo = 1e300, hi = 0;
        for (std::uint64_t s = 1; s <= 5; ++s) {
            const double v = metrics::sampled_path_stress(g, layout, 100, s).value;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        std::cout << "seed robustness on HLA-DRB1: sampled PS spread over 5 "
                     "seeds = "
                  << bench::fmt(100.0 * (hi - lo) / lo, 2) << "%\n";
    }
    return 0;
}

// Reproduces Fig. 17: design-space exploration of the warp-level data-reuse
// schemes (DRF = data reuse factor, SRF = step reduction factor) on Chr.1
// and Chr.2 — normalized speedup over the optimized kernel versus sampled
// path stress, with the paper's Good / Satisfying / Poor classification.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    opt.iters = std::min<std::uint32_t>(opt.iters, 8);
    opt.factor = std::min(opt.factor, 0.5);
    std::cout << "== Fig. 17: DSE on data-reuse schemes (DRF, SRF) ==\n";

    const auto a6000 = gpusim::rtx_a6000();
    const std::pair<std::uint32_t, double> schemes[] = {
        {1, 1.0}, {2, 1.5}, {4, 1.5}, {2, 1.75}, {4, 2.0}, {8, 2.0}, {8, 2.5}};

    for (const int chrom : {1, 2}) {
        const auto spec = workloads::chromosome_spec(chrom, opt.scale);
        const auto g = bench::build_lean(spec);
        const auto cfg = opt.layout_config();

        gpusim::SimOptions sopt;
        sopt.counter_sample_period = opt.quick ? 64 : 32;
        sopt.cache_scale = opt.scale;

        bench::TablePrinter table({"(DRF, SRF)", "Norm. speedup", "Sampled PS",
                                   "Quality"},
                                  {12, 15, 12, 12});
        table.print_header(std::cout);

        double t_ref = 0, sps_ref = 0;
        for (const auto& [drf, srf] : schemes) {
            gpusim::KernelConfig k = gpusim::KernelConfig::optimized();
            k.data_reuse_factor = drf;
            k.step_reduction_factor = srf;
            const auto r = gpusim::simulate_gpu_layout(g, cfg, k, a6000, sopt);
            const double sps =
                metrics::sampled_path_stress(g, r.layout, 25, opt.seed).value;
            // Normalize time per the fixed full workload: schemes do fewer
            // steps (SRF), so compare absolute modeled kernel times.
            const double t = r.modeled_seconds;
            if (drf == 1) {
                t_ref = t;
                sps_ref = sps;
            }
            const double ratio = sps / sps_ref;
            const char* quality =
                ratio < 2.0 ? "Good" : (ratio < 10.0 ? "Satisfying" : "Poor");
            table.print_row(std::cout, {"(" + std::to_string(drf) + ", " +
                                            bench::fmt(srf, 2) + ")",
                                        bench::fmt(t_ref / t, 2) + "x",
                                        bench::fmt(sps, 3), quality});
        }
        std::cout << "\n";
    }
    std::cout << "paper shape: higher DRF/SRF buys up to ~1.5-2.2x speedup; "
                 "DRF 2 stays good, DRF 8 turns poor\n";
    return 0;
}

#include "bench_common.hpp"

#include "core/kernels/update_kernel.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace pgl::bench {

BenchOptions BenchOptions::parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            o.scale = std::atof(next());
        } else if (arg == "--iters") {
            o.iters = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--factor") {
            o.factor = std::atof(next());
        } else if (arg == "--threads") {
            o.threads = static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--seed") {
            o.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--quick") {
            o.quick = true;
        } else if (arg == "--backend") {
            o.backend = next();
            if (!core::EngineRegistry::instance().contains(o.backend)) {
                std::cerr << "unknown backend " << o.backend << "; available:";
                for (const auto& n : core::EngineRegistry::instance().names()) {
                    std::cerr << " " << n;
                }
                std::cerr << "\n";
                std::exit(2);
            }
        } else if (arg == "--kernel") {
            o.kernel = next();
            if (!core::KernelRegistry::instance().contains(o.kernel)) {
                std::cerr << "unknown kernel " << o.kernel << "; available:";
                for (const auto& n : core::KernelRegistry::instance().names()) {
                    std::cerr << " " << n;
                }
                std::cerr << "\n";
                std::exit(2);
            }
        } else if (arg == "--json") {
            o.json_path = next();
        } else if (arg == "--input") {
            o.input_path = next();
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --scale F --iters N --factor F --threads N"
                         " --seed N --quick --backend NAME --kernel NAME"
                         " --json FILE --input FILE\n";
            std::cout << "backends:";
            for (const auto& n : core::EngineRegistry::instance().names()) {
                std::cout << " " << n;
            }
            std::cout << "\nkernels:";
            for (const auto& n : core::KernelRegistry::instance().names()) {
                std::cout << " " << n;
            }
            std::cout << "\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option " << arg << "\n";
            std::exit(2);
        }
    }
    if (o.quick) {
        o.scale = std::min(o.scale, 0.001);
        o.iters = std::min<std::uint32_t>(o.iters, 4);
        o.factor = std::min(o.factor, 0.5);
    }
    return o;
}

core::LayoutConfig BenchOptions::layout_config() const {
    core::LayoutConfig cfg;
    cfg.iter_max = iters;
    cfg.steps_per_iter_factor = factor;
    cfg.threads = threads;
    cfg.seed = seed;
    cfg.kernel = kernel;
    return cfg;
}

core::LayoutResult run_backend(const std::string& backend,
                               const graph::LeanGraph& g,
                               const core::LayoutConfig& cfg) {
    auto engine = core::EngineRegistry::instance().create(backend);
    if (!engine) {
        std::cerr << "unknown backend " << backend << "\n";
        std::exit(2);
    }
    engine->init(g, cfg);
    return engine->run();
}

BenchRecord make_record(const BenchOptions& opt, std::string bench,
                        std::string backend, const core::LayoutResult& r) {
    BenchRecord rec;
    rec.bench = std::move(bench);
    rec.backend = std::move(backend);
    rec.scale = opt.scale;
    rec.iters = opt.iters;
    rec.threads = opt.threads;
    rec.seconds = r.seconds;
    rec.updates_per_sec =
        r.seconds > 0.0 ? static_cast<double>(r.updates) / r.seconds : 0.0;
    return rec;
}

namespace {

/// Minimal JSON string escaping — record fields are plain identifiers, but
/// a hand-written path or label must not corrupt the file.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

void JsonReporter::add(BenchRecord record) {
    if (!enabled()) return;
    records_.push_back(std::move(record));
}

void JsonReporter::write() {
    if (!enabled() || written_) return;
    std::ofstream os(path_);
    if (!os) {
        std::cerr << "cannot write " << path_ << "\n";
        std::exit(2);
    }
    os << std::setprecision(12);
    os << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const BenchRecord& r = records_[i];
        os << "  {\"bench\": \"" << json_escape(r.bench) << "\", \"backend\": \""
           << json_escape(r.backend) << "\", \"scale\": " << r.scale
           << ", \"iters\": " << r.iters << ", \"threads\": " << r.threads
           << ", \"seconds\": " << r.seconds
           << ", \"updates_per_sec\": " << r.updates_per_sec;
        if (!r.direction.empty()) {
            os << ", \"value\": " << r.value << ", \"direction\": \""
               << json_escape(r.direction) << "\"";
        }
        if (!r.stages.empty()) {
            os << ", \"stages\": {";
            for (std::size_t s = 0; s < r.stages.size(); ++s) {
                os << "\"" << json_escape(r.stages[s].first)
                   << "\": " << r.stages[s].second
                   << (s + 1 < r.stages.size() ? ", " : "");
            }
            os << "}";
        }
        if (!r.telemetry.empty()) {
            os << ", \"telemetry\": {";
            for (std::size_t s = 0; s < r.telemetry.size(); ++s) {
                os << "\"" << json_escape(r.telemetry[s].first)
                   << "\": " << r.telemetry[s].second
                   << (s + 1 < r.telemetry.size() ? ", " : "");
            }
            os << "}";
        }
        os << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    os << "]\n";
    os.flush();
    os.close();
    if (os.fail()) {
        std::cerr << "failed writing " << path_ << "\n";
        std::exit(2);
    }
    written_ = true;
    std::cerr << "wrote " << records_.size() << " bench records to " << path_
              << "\n";
}

TablePrinter::TablePrinter(std::vector<std::string> headers, std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {}

void TablePrinter::print_header(std::ostream& os) const {
    std::size_t total = 0;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::left << std::setw(widths_[c]) << headers_[c];
        total += static_cast<std::size_t>(widths_[c]);
    }
    os << '\n' << std::string(total, '-') << '\n';
}

void TablePrinter::print_row(std::ostream& os,
                             const std::vector<std::string>& cells) const {
    for (std::size_t c = 0; c < cells.size() && c < widths_.size(); ++c) {
        os << std::left << std::setw(widths_[c]) << cells[c];
    }
    os << '\n';
}

std::string format_hms(double seconds) {
    if (seconds < 0) seconds = 0;
    const int total = static_cast<int>(seconds);
    const int h = total / 3600;
    const int m = (total / 60) % 60;
    const double s = seconds - h * 3600 - m * 60;
    char buf[64];
    if (h == 0 && m == 0 && s < 10.0) {
        std::snprintf(buf, sizeof buf, "0:00:%06.3f", s);
    } else {
        std::snprintf(buf, sizeof buf, "%d:%02d:%02d", h, m, static_cast<int>(s));
    }
    return buf;
}

std::string fmt(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string fmt_sci(double v, int precision) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
}

double full_scale_updates(const graph::LeanGraph& scaled, double scale) {
    const double full_steps =
        static_cast<double>(scaled.total_path_steps()) / std::max(1e-12, scale);
    return 30.0 * 10.0 * full_steps;
}

graph::LeanGraph build_lean(const workloads::PangenomeSpec& spec, bool verbose) {
    const auto g = workloads::generate_pangenome(spec);
    if (verbose) {
        const auto s = g.stats();
        std::cout << "# " << spec.name << ": " << s.nodes << " nodes, " << s.edges
                  << " edges, " << s.paths << " paths, " << s.total_path_steps
                  << " total steps\n";
    }
    return graph::LeanGraph::from_graph(g);
}

}  // namespace pgl::bench

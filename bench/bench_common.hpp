#pragma once
// Shared harness for the table/figure reproduction benches: command-line
// parsing (--scale, --iters, --factor, --threads, --seed), table printing,
// and workload caching so the same scaled graph is reused across benches.
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/lean_graph.hpp"
#include "workloads/synthetic.hpp"

namespace pgl::bench {

/// Options common to every reproduction bench. Defaults are sized so the
/// whole suite finishes on a small 1-core container; raise --scale and
/// --factor on bigger machines to approach paper-scale workloads.
struct BenchOptions {
    double scale = 0.004;        ///< graph-size multiplier vs paper scale
    std::uint32_t iters = 12;    ///< SGD iterations (paper default: 30)
    double factor = 1.0;         ///< steps-per-iteration factor (paper: 10)
    std::uint32_t threads = 1;   ///< CPU threads
    std::uint64_t seed = 42;
    bool quick = false;          ///< further reduce work (CI smoke mode)
    std::string backend = "cpu-soa";  ///< EngineRegistry name (--backend)
    std::string kernel = "scalar";    ///< KernelRegistry name (--kernel)
    std::string json_path;       ///< --json FILE: machine-readable records
    std::string input_path;      ///< --input FILE: real GFA/.pgg instead of
                                 ///< the synthetic workload (where supported)

    static BenchOptions parse(int argc, char** argv);

    core::LayoutConfig layout_config() const;
};

/// One machine-readable measurement, the unit of the bench JSON schema and
/// of the CI perf gate (bench/baseline.json):
///   {"bench": ..., "backend": ..., "scale": ..., "iters": ...,
///    "threads": ..., "seconds": ..., "updates_per_sec": ...}
struct BenchRecord {
    std::string bench;    ///< emitting benchmark, e.g. "bench_backends"
    std::string backend;  ///< EngineRegistry name (or a series label)
    double scale = 0.0;
    std::uint32_t iters = 0;
    std::uint32_t threads = 0;
    double seconds = 0.0;
    double updates_per_sec = 0.0;

    /// Optional gated metric. When `direction` is non-empty the record
    /// emits {"value": ..., "direction": "lower"|"higher"} and
    /// check_regression.py gates `value` with that polarity instead of
    /// updates_per_sec (lower-is-better: fail when current exceeds
    /// baseline * (1 + tolerance)).
    double value = 0.0;
    std::string direction;

    /// Optional per-stage wall-clock breakdown, emitted as
    /// {"stages": {"coarsen": ..., ...}} when non-empty. Purely
    /// informational — the gate never reads it.
    std::vector<std::pair<std::string, double>> stages;

    /// Optional telemetry-sourced metrics (counter values, histogram
    /// quantiles), emitted as {"telemetry": {"name": value, ...}} when
    /// non-empty. Informational like `stages`: check_regression.py matches
    /// records on (bench, backend, threads) and gates value /
    /// updates_per_sec only, so adding keys here never perturbs the gate.
    std::vector<std::pair<std::string, double>> telemetry;
};

/// Builds the record for one engine run under the bench's options.
BenchRecord make_record(const BenchOptions& opt, std::string bench,
                        std::string backend, const core::LayoutResult& r);

/// Collects BenchRecords and writes them as a JSON array. Constructed from
/// BenchOptions::json_path; with an empty path every call is a no-op, so
/// benches can emit records unconditionally alongside their tables. The
/// file is written by write() or, failing that, the destructor.
class JsonReporter {
public:
    JsonReporter() = default;
    explicit JsonReporter(std::string path) : path_(std::move(path)) {}
    ~JsonReporter() { write(); }

    JsonReporter(const JsonReporter&) = delete;
    JsonReporter& operator=(const JsonReporter&) = delete;

    bool enabled() const noexcept { return !path_.empty(); }
    void add(BenchRecord record);

    /// Writes the collected records; idempotent. Prints a diagnostic and
    /// exits with status 2 if the file cannot be written.
    void write();

private:
    std::string path_;
    std::vector<BenchRecord> records_;
    bool written_ = false;
};

/// Runs the layout through the registered engine named `backend`, printing
/// a diagnostic and exiting with status 2 on an unknown name.
core::LayoutResult run_backend(const std::string& backend,
                               const graph::LeanGraph& g,
                               const core::LayoutConfig& cfg);

/// Fixed-width table printer used by all benches so outputs read like the
/// paper's tables.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers,
                          std::vector<int> widths);

    void print_header(std::ostream& os) const;
    void print_row(std::ostream& os, const std::vector<std::string>& cells) const;

private:
    std::vector<std::string> headers_;
    std::vector<int> widths_;
};

/// Formats seconds as the paper's h:mm:ss (with fractional seconds below 10 s).
std::string format_hms(double seconds);

/// Formats a double with the given precision.
std::string fmt(double v, int precision = 2);

/// Formats in scientific notation like the paper ("1.1e7").
std::string fmt_sci(double v, int precision = 1);

/// Builds the lean graph for a preset, printing a one-line summary.
graph::LeanGraph build_lean(const workloads::PangenomeSpec& spec, bool verbose = true);

/// Paper-default full-scale update count for a graph generated at `scale`:
/// 30 iterations x 10 x (total path steps scaled back up). Used to
/// extrapolate modeled per-update costs to the paper's workload sizes.
double full_scale_updates(const graph::LeanGraph& scaled, double scale);

}  // namespace pgl::bench

#pragma once
// Shared harness for the table/figure reproduction benches: command-line
// parsing (--scale, --iters, --factor, --threads, --seed), table printing,
// and workload caching so the same scaled graph is reused across benches.
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "graph/lean_graph.hpp"
#include "workloads/synthetic.hpp"

namespace pgl::bench {

/// Options common to every reproduction bench. Defaults are sized so the
/// whole suite finishes on a small 1-core container; raise --scale and
/// --factor on bigger machines to approach paper-scale workloads.
struct BenchOptions {
    double scale = 0.004;        ///< graph-size multiplier vs paper scale
    std::uint32_t iters = 12;    ///< SGD iterations (paper default: 30)
    double factor = 1.0;         ///< steps-per-iteration factor (paper: 10)
    std::uint32_t threads = 1;   ///< CPU threads
    std::uint64_t seed = 42;
    bool quick = false;          ///< further reduce work (CI smoke mode)
    std::string backend = "cpu-soa";  ///< EngineRegistry name (--backend)

    static BenchOptions parse(int argc, char** argv);

    core::LayoutConfig layout_config() const;
};

/// Runs the layout through the registered engine named `backend`, printing
/// a diagnostic and exiting with status 2 on an unknown name.
core::LayoutResult run_backend(const std::string& backend,
                               const graph::LeanGraph& g,
                               const core::LayoutConfig& cfg);

/// Fixed-width table printer used by all benches so outputs read like the
/// paper's tables.
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers,
                          std::vector<int> widths);

    void print_header(std::ostream& os) const;
    void print_row(std::ostream& os, const std::vector<std::string>& cells) const;

private:
    std::vector<std::string> headers_;
    std::vector<int> widths_;
};

/// Formats seconds as the paper's h:mm:ss (with fractional seconds below 10 s).
std::string format_hms(double seconds);

/// Formats a double with the given precision.
std::string fmt(double v, int precision = 2);

/// Formats in scientific notation like the paper ("1.1e7").
std::string fmt_sci(double v, int precision = 1);

/// Builds the lean graph for a preset, printing a one-line summary.
graph::LeanGraph build_lean(const workloads::PangenomeSpec& spec, bool verbose = true);

/// Paper-default full-scale update count for a graph generated at `scale`:
/// 30 iterations x 10 x (total path steps scaled back up). Used to
/// extrapolate modeled per-update costs to the paper's workload sizes.
double full_scale_updates(const graph::LeanGraph& scaled, double scale);

}  // namespace pgl::bench

// Reproduces Table VII: run time and speedup of the optimized GPU kernel on
// the RTX A6000 and A100 versus the 32-thread CPU baseline, for all 24
// chromosome pangenomes.
//
// CPU times come from the cache-characterization Xeon model; GPU times from
// the GPU simulator, both extrapolated to paper-scale update counts (see
// DESIGN.md substitutions). The paper's geometric means are 27.7x (A6000)
// and 57.3x (A100).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "memsim/characterize.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    // This bench sweeps 24 graphs; trim per-graph work to keep the sweep
    // tractable on small hosts (override with --iters/--factor).
    opt.iters = std::min<std::uint32_t>(opt.iters, 6);
    opt.factor = std::min(opt.factor, 0.5);
    std::cout << "== Table VII: run time and speedup over the 24 chromosomes ==\n";

    bench::TablePrinter table({"Pan.", "CPU", "A6000", "Speedup", "A100",
                               "Speedup"},
                              {8, 10, 10, 9, 10, 9});
    table.print_header(std::cout);

    const auto a6000 = gpusim::rtx_a6000();
    const auto a100 = gpusim::a100();
    const auto kernel = gpusim::KernelConfig::optimized();

    double log_sum_a6000 = 0, log_sum_a100 = 0;
    int count = 0;
    const int last = opt.quick ? 4 : 24;

    for (int k = 1; k <= last; ++k) {
        const auto spec = workloads::chromosome_spec(k, opt.scale);
        const auto g = bench::build_lean(spec, false);
        const auto cfg = opt.layout_config();
        const double full_updates = bench::full_scale_updates(g, opt.scale);

        memsim::CharacterizeOptions chopt;
        chopt.sample_updates = opt.quick ? 150'000 : 400'000;
        chopt.llc_scale = opt.scale;
        chopt.seed = opt.seed;
        const auto ch =
            memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, chopt);
        const double t_cpu = memsim::CpuPerfModel{}.seconds(
            ch, static_cast<std::uint64_t>(full_updates));

        gpusim::SimOptions sopt;
        sopt.counter_sample_period = 32;
        sopt.cache_scale = opt.scale;
        const auto gpu_time = [&](const gpusim::GpuSpec& spec_gpu) {
            const auto r = gpusim::simulate_gpu_layout(g, cfg, kernel, spec_gpu, sopt);
            return r.modeled_seconds *
                   (full_updates / static_cast<double>(r.counters.lane_updates));
        };
        const double t_a6000 = gpu_time(a6000);
        const double t_a100 = gpu_time(a100);

        log_sum_a6000 += std::log(t_cpu / t_a6000);
        log_sum_a100 += std::log(t_cpu / t_a100);
        ++count;

        table.print_row(std::cout,
                        {spec.name, bench::format_hms(t_cpu),
                         bench::format_hms(t_a6000),
                         bench::fmt(t_cpu / t_a6000, 1) + "x",
                         bench::format_hms(t_a100),
                         bench::fmt(t_cpu / t_a100, 1) + "x"});
    }

    std::cout << "\nGeometric mean speedup: A6000 "
              << bench::fmt(std::exp(log_sum_a6000 / count), 1) << "x (paper 27.7x), "
              << "A100 " << bench::fmt(std::exp(log_sum_a100 / count), 1)
              << "x (paper 57.3x)\n";
    return 0;
}

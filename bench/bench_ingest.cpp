// Ingestion bench: GFA -> layout-ready LeanGraph through the three routes —
// the legacy rich-graph path (read_gfa -> VariationGraph -> from_graph),
// the streaming reader (gfa_stream, no intermediate), and the binary .pgg
// graph cache — reporting wall-clock, peak RSS and steps/second for each.
// The peak-RSS column is the paper-facing number: streaming ingestion must
// come in measurably below the VariationGraph route on path-heavy graphs,
// and the cache below both.
//
//   ./bench_ingest [--scale F] [--seed N] [--quick] [--json FILE]
//
// Each route runs in a forked child process (re-exec of this binary), so
// peak RSS comes from the kernel's per-process high-water mark
// (wait4 -> ru_maxrss) uncontaminated by the other routes or by workload
// generation. With --json FILE one record per route is written — the
// ingest entries of CI's perf-regression gate.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/gfa.hpp"
#include "graph/gfa_stream.hpp"
#include "graph/lean_graph.hpp"
#include "io/pgg_io.hpp"
#include "workloads/synthetic.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace pgl;

struct RouteResult {
    std::uint64_t steps = 0;
    double seconds = 0.0;
    double peak_rss_mb = 0.0;  ///< 0 when unavailable (non-Linux fallback)
};

/// Runs one ingestion route in-process and reports steps + wall time.
RouteResult run_route(const std::string& mode, const std::string& path) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t steps = 0;
    if (mode == "gfa-variation-graph") {
        const auto vg = graph::read_gfa_file(path);
        const auto lean = graph::LeanGraph::from_graph(vg);
        steps = lean.total_path_steps();
    } else if (mode == "gfa-stream") {
        const auto ingest = graph::ingest_gfa_file(path);
        steps = ingest.graph.total_path_steps();
    } else if (mode == "pgg-cache") {
        const auto ingest = io::read_pgg_file(path);
        steps = ingest.graph.total_path_steps();
    } else {
        std::cerr << "unknown ingest mode " << mode << "\n";
        std::exit(2);
    }
    RouteResult r;
    r.steps = steps;
    r.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return r;
}

#if defined(__linux__)
/// Re-execs this binary as `--__child MODE PATH`, parses the child's
/// "steps seconds" stdout line and collects its ru_maxrss. A child process
/// per route keeps every high-water mark independent: the fork+exec resets
/// RSS, so the kernel measures exactly one ingestion.
RouteResult run_route_forked(const std::string& mode, const std::string& path) {
    int fds[2];
    if (pipe(fds) != 0) {
        std::cerr << "pipe failed, falling back to in-process timing\n";
        return run_route(mode, path);
    }
    const pid_t pid = fork();
    if (pid < 0) {
        std::cerr << "fork failed, falling back to in-process timing\n";
        close(fds[0]);
        close(fds[1]);
        return run_route(mode, path);
    }
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        execl("/proc/self/exe", "bench_ingest", "--__child", mode.c_str(),
              path.c_str(), static_cast<char*>(nullptr));
        std::perror("execl");
        _exit(127);
    }
    close(fds[1]);
    std::string child_out;
    char buf[256];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof buf)) > 0) {
        child_out.append(buf, static_cast<std::size_t>(n));
    }
    close(fds[0]);
    int status = 0;
    struct rusage ru {};
    if (wait4(pid, &status, 0, &ru) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
        std::cerr << "ingest child for route '" << mode << "' failed\n";
        std::exit(1);
    }
    RouteResult r;
    std::istringstream is(child_out);
    if (!(is >> r.steps >> r.seconds)) {
        std::cerr << "cannot parse child output: " << child_out << "\n";
        std::exit(1);
    }
    r.peak_rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB -> MiB
    return r;
}
#else
RouteResult run_route_forked(const std::string& mode, const std::string& path) {
    return run_route(mode, path);  // no per-route RSS off Linux
}
#endif

}  // namespace

int main(int argc, char** argv) {
    // Hidden child mode: one ingestion, machine-readable result, exit.
    if (argc == 4 && std::strcmp(argv[1], "--__child") == 0) {
        const RouteResult r = run_route(argv[2], argv[3]);
        std::cout << r.steps << " " << r.seconds << "\n";
        return 0;
    }

    auto opt = bench::BenchOptions::parse(argc, argv);
    const std::uint32_t n_components = opt.quick ? 2 : 4;

    namespace fs = std::filesystem;
#if defined(__linux__)
    const std::string uniq = std::to_string(::getpid());
#else
    const std::string uniq = "local";
#endif
    const fs::path dir = fs::temp_directory_path() / ("pgl_bench_ingest_" + uniq);
    fs::create_directories(dir);
    const std::string gfa_path = (dir / "genome.gfa").string();
    const std::string pgg_path = (dir / "genome.pgg").string();

    std::cout << "== GFA ingestion (" << n_components
              << " components, scale " << opt.scale << ") ==\n";
    {
        // Workload generation stays out of every measured child.
        const auto vg = workloads::generate_whole_genome(
            workloads::whole_genome_spec(n_components, opt.scale, opt.seed));
        graph::write_gfa_file(vg, gfa_path);
        std::cout << "genome: " << vg.node_count() << " nodes, "
                  << vg.edge_count() << " edges, " << vg.path_count()
                  << " paths, " << vg.total_path_steps() << " steps -> "
                  << gfa_path << "\n";
    }
    io::write_pgg_file(graph::ingest_gfa_file(gfa_path), pgg_path);

    const std::vector<std::string> routes{"gfa-variation-graph", "gfa-stream",
                                          "pgg-cache"};
    bench::TablePrinter table({"Route", "Seconds", "PeakRSS_MB", "Steps/s"},
                              {21, 10, 12, 12});
    table.print_header(std::cout);

    bench::JsonReporter json(opt.json_path);
    std::vector<RouteResult> results;
    for (const std::string& route : routes) {
        const std::string& input = route == "pgg-cache" ? pgg_path : gfa_path;
        const RouteResult r = run_route_forked(route, input);
        results.push_back(r);
        table.print_row(
            std::cout,
            {route, bench::fmt(r.seconds, 4),
             r.peak_rss_mb > 0.0 ? bench::fmt(r.peak_rss_mb, 1) : "n/a",
             bench::fmt_sci(r.seconds > 0.0
                                ? static_cast<double>(r.steps) / r.seconds
                                : 0.0,
                            2)});
        core::LayoutResult summary;
        summary.updates = r.steps;
        summary.seconds = r.seconds;
        json.add(bench::make_record(opt, "bench_ingest", route, summary));
    }

    if (results[0].peak_rss_mb > 0.0 && results[1].peak_rss_mb > 0.0) {
        std::cout << "\nstreaming peak RSS is "
                  << bench::fmt(results[1].peak_rss_mb / results[0].peak_rss_mb,
                                2)
                  << "x the VariationGraph route ("
                  << bench::fmt(results[1].peak_rss_mb, 1) << " vs "
                  << bench::fmt(results[0].peak_rss_mb, 1) << " MB)\n";
    }
    fs::remove_all(dir);
    return 0;
}

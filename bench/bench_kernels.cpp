// bench_kernels — apply-side microbenchmark of the pluggable update-kernel
// layer: every registered kernel drains identical TermBatches into an
// XYStore, swept across batch sizes and conflict densities.
//
//   ./bench_kernels [--scale F] [--seed N] [--quick] [--json FILE]
//
// Two term populations per batch size:
//   * sampled   — real PairSampler terms from the scaled MHC graph: the
//                 conflict rate the engines actually see (near zero on any
//                 non-toy graph), i.e. the vectorized fast path;
//   * conflict  — node ids drawn from a tiny window, so nearly every lane
//                 group contains duplicate endpoints and the SIMD kernel's
//                 chained fallback dominates (its worst case).
//
// With --json a record per (kernel, population, batch size) is written for
// the CI perf gate; the "backend" field is "<kernel>-<population>-b<size>".
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "core/kernels/update_kernel.hpp"
#include "core/sampling.hpp"
#include "core/term_batch.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace pgl;
using core::TermBatch;
using core::TermSample;
using core::XYStore;

/// Synthetic batch whose node ids come from a `window`-node range: with 8
/// endpoint draws per 4-wide lane group, a small window makes cross-slot
/// duplicates — and therefore the chained fallback — near-certain.
TermBatch make_conflict_batch(std::size_t n, std::uint32_t window,
                              rng::Xoshiro256Plus& rng) {
    TermBatch b;
    b.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        TermSample t{};
        t.node_i = static_cast<std::uint32_t>(rng.next_bounded(window));
        t.node_j = static_cast<std::uint32_t>(rng.next_bounded(window));
        t.end_i = rng.flip_coin() ? core::End::kStart : core::End::kEnd;
        t.end_j = rng.flip_coin() ? core::End::kStart : core::End::kEnd;
        t.d_ref = 1.0 + static_cast<double>(rng.next_bounded(1000));
        t.valid = true;
        b.append(t, core::draw_nudge(rng));
    }
    return b;
}

/// Fraction of 4-slot groups with a coordinate shared by two different
/// valid slots (the group width of the widest built-in SIMD path).
double conflict_group_fraction(const TermBatch& b) {
    std::size_t groups = 0, conflicted = 0;
    for (std::size_t base = 0; base + 4 <= b.size(); base += 4) {
        ++groups;
        std::uint32_t idx[8];
        int m = 0;
        bool hit = false;
        for (int t = 0; t < 4 && !hit; ++t) {
            const std::size_t k = base + t;
            if (!b.valid[k]) continue;
            const std::uint32_t ii = 2 * b.node_i[k] + b.end_i[k];
            const std::uint32_t jj = 2 * b.node_j[k] + b.end_j[k];
            for (int u = 0; u < m && !hit; ++u) hit = idx[u] == ii || idx[u] == jj;
            idx[m++] = ii;
            idx[m++] = jj;
        }
        conflicted += hit;
    }
    return groups ? static_cast<double>(conflicted) / groups : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    auto opt = bench::BenchOptions::parse(argc, argv);

    std::cout << "== Update-kernel apply throughput (scalar vs simd) ==\n";
    const auto g = bench::build_lean(workloads::mhc_spec(opt.scale * 10));
    core::LayoutConfig cfg = opt.layout_config();

    rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
    const core::Layout initial =
        core::make_linear_initial_layout(g, init_rng, cfg.init_jitter);
    const core::PairSampler sampler(g, cfg);

    const std::vector<std::size_t> batch_sizes =
        opt.quick ? std::vector<std::size_t>{1024, 4096}
                  : std::vector<std::size_t>{1024, 4096, 16384};
    // Even --quick keeps a multi-millisecond timing window per cell: the
    // perf gate compares these rates across runs, and sub-millisecond
    // windows on a shared CI core are dominated by scheduler noise.
    const std::uint64_t target_terms = opt.quick ? 2'000'000 : 8'000'000;
    const std::uint32_t window = static_cast<std::uint32_t>(
        std::min<std::size_t>(48, std::max<std::size_t>(2, g.node_count())));
    const auto kernels = core::KernelRegistry::instance().names();

    bench::TablePrinter table(
        {"Kernel", "Variant", "Terms", "Batch", "Conf4", "Mupd/s", "vs scalar"},
        {9, 17, 10, 8, 8, 10, 10});
    table.print_header(std::cout);

    bench::JsonReporter json(opt.json_path);
    // (kernel, population, batch) -> updates/sec; scalar rows feed the
    // ratio column and the end-of-run simd summary.
    std::map<std::tuple<std::string, std::string, std::size_t>, double> rate;
    const auto scalar_base = [&](const std::string& population,
                                 std::size_t n) {
        const auto it = rate.find({"scalar", population, n});
        return it == rate.end() ? 0.0 : it->second;
    };

    for (const std::string population : {"sampled", "conflict"}) {
        for (const std::size_t n : batch_sizes) {
            rng::Xoshiro256Plus rng(cfg.seed + n);
            TermBatch batch;
            if (population == "sampled") {
                sampler.fill_batch(false, rng, n, batch);
            } else {
                batch = make_conflict_batch(n, window, rng);
            }
            const std::uint64_t valid_terms = n - batch.invalid_count();
            const std::uint64_t reps = std::max<std::uint64_t>(
                1, target_terms / std::max<std::uint64_t>(1, valid_terms));
            const double conf4 = conflict_group_fraction(batch);

            for (const auto& name : kernels) {
                const auto kern = core::make_update_kernel(name);
                XYStore store(initial);
                kern->apply(batch, cfg.eps, store);  // warm caches and pages
                const auto t0 = std::chrono::steady_clock::now();
                for (std::uint64_t r = 0; r < reps; ++r) {
                    kern->apply(batch, cfg.eps, store);
                }
                const double seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                const double ups =
                    seconds > 0.0 ? static_cast<double>(valid_terms * reps) /
                                        seconds
                                  : 0.0;
                rate[{name, population, n}] = ups;
                const double base = scalar_base(population, n);
                table.print_row(
                    std::cout,
                    {name, std::string(kern->variant()), population,
                     std::to_string(n), bench::fmt(100.0 * conf4, 1) + "%",
                     bench::fmt(ups / 1e6, 2),
                     base > 0.0 ? bench::fmt(ups / base, 2) + "x" : "-"});

                core::LayoutResult r;
                r.seconds = seconds;
                r.updates = valid_terms * reps;
                json.add(bench::make_record(
                    opt, "bench_kernels",
                    name + "-" + population + "-b" + std::to_string(n), r));
            }
        }
    }

    // The acceptance-gate summary: the vectorized fast path on real terms.
    std::cout << "\n";
    for (const std::size_t n : batch_sizes) {
        const double base = scalar_base("sampled", n);
        const auto it = rate.find({"simd", "sampled", n});
        if (base > 0.0 && it != rate.end()) {
            std::cout << "simd/scalar on sampled b" << n << ": "
                      << bench::fmt(it->second / base, 2) << "x\n";
        }
    }
    std::cout << "\nnote: \"Conf4\" is the fraction of 4-slot lane groups "
                 "containing a cross-slot\nduplicate endpoint (the SIMD "
                 "kernel's chained-fallback trigger)\n";
    return 0;
}

// Reproduces Table IV (CUDA kernel launching overhead) and Fig. 7 (kernel
// time breakdown) for the PyTorch-style implementation on MHC.
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "tensor/torch_layout.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table IV + Fig. 7: PyTorch kernel launches & breakdown ==\n";

    const double mhc_scale = opt.scale * 25;
    const auto g = bench::build_lean(workloads::mhc_spec(mhc_scale));
    const auto cfg = opt.layout_config();

    tensor::KernelCostModel cost;
    cost.coord_bytes_override =
        2.0 * 2.0 * static_cast<double>(g.node_count()) * sizeof(float) / mhc_scale;
    // Batches are scaled down with the graph; per-batch overheads must be
    // amortized as if batches were paper-sized, so scale them down too.
    cost.host_per_batch_us *= mhc_scale;
    cost.launch_overhead_us *= mhc_scale;

    // Table IV: launches and API-time percentage per batch size.
    bench::TablePrinter t4({"Batch (paper)", "Kernels launched", "API time %",
                            "Paper kernels", "Paper API %"},
                           {15, 18, 12, 15, 12});
    std::cout << "\n-- Table IV --\n";
    t4.print_header(std::cout);
    struct Row {
        const char* name;
        double full_batch;
        const char* paper_kernels;
        const char* paper_api;
    };
    const Row rows[] = {
        {"100K", 1e5, "6,562,860", "76.4%"},
        {"1M", 1e6, "651,480", "20.2%"},
        {"10M", 1e7, "64,080", "2.1%"},
    };
    tensor::TorchLayoutResult mid;  // keep the 1M run for the Fig. 7 breakdown
    for (const Row& r : rows) {
        const std::uint64_t batch = static_cast<std::uint64_t>(
            std::max(64.0, r.full_batch * mhc_scale));
        auto res = tensor::layout_torch(g, cfg, batch, cost);
        t4.print_row(std::cout, {r.name, std::to_string(res.kernel_launches),
                                 bench::fmt(100.0 * res.api_time_fraction, 1) + "%",
                                 r.paper_kernels, r.paper_api});
        if (r.full_batch == 1e6) mid = std::move(res);
    }
    std::cout << "(launch counts are lower than the paper's by ~1/scale: the "
                 "graph and batch are both scaled)\n";

    // Fig. 7: kernel-time shares for the batch-1M run.
    std::cout << "\n-- Fig. 7 (batch 1M): kernel time breakdown --\n";
    double total = 0;
    for (const auto& [name, sec] : mid.profiler.per_kernel_seconds()) total += sec;
    std::vector<std::pair<std::string, double>> shares(
        mid.profiler.per_kernel_seconds().begin(),
        mid.profiler.per_kernel_seconds().end());
    std::sort(shares.begin(), shares.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [name, sec] : shares) {
        std::cout << "  " << std::left << std::setw(12) << name
                  << bench::fmt(100.0 * sec / total, 1) << "%\n";
    }
    std::cout << "paper: index ~34-36% (largest), then pow/mul/where/add\n";
    return 0;
}

// Cross-backend comparison: runs the same PG-SGD schedule through every
// registered LayoutEngine (or just --backend NAME) on one scaled graph and
// reports updates, time and layout quality side by side. This is the bench
// the CI smoke job drives once per backend name; it is also the quickest
// way to sanity-check that a new engine plugged into the registry actually
// optimizes the common objective.
//
//   ./bench_backends [--backend NAME] [--scale F] [--iters N] [--factor F]
//                    [--threads N] [--seed N] [--quick] [--json FILE]
//
// With --json FILE a machine-readable record per backend is written
// alongside the table — the input of CI's perf-regression gate (compared
// against bench/baseline.json by bench/check_regression.py).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);

    // Unless the caller narrowed it with --backend, sweep every engine.
    bool sweep_all = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--backend") sweep_all = false;
    }
    const std::vector<std::string> backends =
        sweep_all ? core::EngineRegistry::instance().names()
                  : std::vector<std::string>{opt.backend};

    std::cout << "== Cross-backend PG-SGD comparison (common LayoutEngine"
                 " interface) ==\n";
    const auto g = bench::build_lean(workloads::mhc_spec(opt.scale * 10));
    const auto cfg = opt.layout_config();

    bench::TablePrinter table(
        {"Backend", "Updates", "Skipped", "Seconds", "SPS", "CI95"},
        {18, 12, 10, 12, 9, 18});
    table.print_header(std::cout);

    bench::JsonReporter json(opt.json_path);
    for (const auto& name : backends) {
        const auto r = bench::run_backend(name, g, cfg);
        json.add(bench::make_record(opt, "bench_backends", name, r));
        const auto sps = metrics::sampled_path_stress(g, r.layout, 20, opt.seed);
        table.print_row(
            std::cout,
            {name, bench::fmt_sci(static_cast<double>(r.updates), 2),
             std::to_string(r.skipped), bench::fmt(r.seconds, 4),
             bench::fmt(sps.value, 2),
             "[" + bench::fmt(sps.ci_low, 2) + ", " + bench::fmt(sps.ci_high, 2) +
                 "]"});
    }
    std::cout << "\nnote: cpu-* report measured wall time; gpusim-*/torch"
                 " report modeled device time\n";
    return 0;
}

// Reproduces Fig. 15: run time scales linearly with total path length for
// both the CPU baseline and the GPU kernel (the number of updates is
// proportional to total path length). With --json the measured host runs
// are also emitted as BenchRecords (one per path-length fraction, labeled
// "host-f<frac>") so the linearity series rides the same regression gate
// as every other bench.
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "memsim/characterize.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    opt.iters = std::min<std::uint32_t>(opt.iters, 6);
    opt.factor = std::min(opt.factor, 0.5);
    std::cout << "== Fig. 15: scalability vs total path length ==\n";

    bench::TablePrinter table({"Total path len (M, full)", "CPU model (s)",
                               "A6000 model (s)", "Measured host (s)"},
                              {26, 15, 17, 19});
    table.print_header(std::cout);

    const auto kernel = gpusim::KernelConfig::optimized();
    const auto a6000 = gpusim::rtx_a6000();
    bench::JsonReporter json(opt.json_path);

    for (const double frac : {0.25, 0.5, 0.75, 1.0, 1.5}) {
        const double scale = opt.scale * frac;
        const auto spec = workloads::chromosome_spec(1, scale);
        const auto g = bench::build_lean(spec, false);
        const auto cfg = opt.layout_config();
        const double full_updates = bench::full_scale_updates(g, opt.scale);
        const double full_path_len =
            static_cast<double>(g.total_path_nucleotides()) / opt.scale / 1e6;

        memsim::CharacterizeOptions chopt;
        chopt.sample_updates = opt.quick ? 100'000 : 300'000;
        chopt.llc_scale = opt.scale;
        const auto ch =
            memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, chopt);
        const double t_cpu = memsim::CpuPerfModel{}.seconds(
            ch, static_cast<std::uint64_t>(full_updates));

        gpusim::SimOptions sopt;
        sopt.counter_sample_period = 32;
        sopt.cache_scale = opt.scale;
        const auto gpu = gpusim::simulate_gpu_layout(g, cfg, kernel, a6000, sopt);
        const double t_gpu =
            gpu.modeled_seconds *
            (full_updates / static_cast<double>(gpu.counters.lane_updates));

        // Real single-thread host run: also linear, directly measured.
        const auto host = core::layout_cpu(g, cfg);

        table.print_row(std::cout,
                        {bench::fmt(full_path_len, 1), bench::fmt(t_cpu, 0),
                         bench::fmt(t_gpu, 1), bench::fmt(host.seconds, 2)});
        json.add(bench::make_record(opt, "bench_fig15_scalability",
                                    "host-f" + bench::fmt(frac, 2), host));
    }
    std::cout << "\npaper shape: both series are straight lines through the "
                 "origin (updates proportional to total path length)\n";
    return 0;
}

// Reproduces Table V: run time of exact path stress vs sampled path stress
// on the three representative pangenomes, plus the quadratic-vs-linear
// extrapolation that makes exact stress infeasible at chromosome scale.
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table V: run time of metric computation ==\n";

    struct Row {
        workloads::PangenomeSpec spec;
        bool exact_feasible;
        const char* paper_exact;
        const char* paper_sampled;
    };
    const Row rows[] = {
        {workloads::hla_drb1_spec(), true, "1.6 sec", "0.3 sec"},
        {workloads::mhc_spec(std::min(opt.scale * 25, 0.03)), true, "53.0 min", "6.5 sec"},
        {workloads::chromosome_spec(1, opt.scale), false, "(est.) 194 hour",
         "5.5 min"},
    };

    bench::TablePrinter table({"Pangenome", "# Nodes", "Path stress (s)",
                               "Sampled (s)", "Paper exact", "Paper sampled"},
                              {12, 10, 17, 13, 17, 14});
    table.print_header(std::cout);

    for (const Row& r : rows) {
        const auto g = bench::build_lean(r.spec, false);
        auto cfg = opt.layout_config();
        cfg.iter_max = std::min<std::uint32_t>(cfg.iter_max, 6);
        const auto layout = core::layout_cpu(g, cfg).layout;

        const auto sampled =
            metrics::sampled_path_stress(g, layout, 100, opt.seed, opt.threads);
        std::string exact_str;
        if (r.exact_feasible) {
            const auto exact = metrics::path_stress(g, layout, opt.threads);
            exact_str = bench::fmt(exact.seconds, 2);
        } else {
            // Quadratic extrapolation from a single path's pair count, as
            // the paper estimates 194 GPU-hours for Chr.1.
            double pairs = 0;
            for (std::uint32_t p = 0; p < g.path_count(); ++p) {
                const double s = g.path_step_count(p);
                pairs += s * (s - 1) / 2;
            }
            const double per_term_s = 6e-9;  // measured term cost, this host
            exact_str = "(est.) " + bench::fmt(pairs * per_term_s, 1);
        }
        table.print_row(std::cout,
                        {r.spec.name,
                         bench::fmt_sci(static_cast<double>(g.node_count())),
                         exact_str, bench::fmt(sampled.seconds, 2), r.paper_exact,
                         r.paper_sampled});
    }
    std::cout << "\npaper shape: exact path stress is quadratic (infeasible "
                 "at chromosome scale); sampling makes it linear\n";
    return 0;
}

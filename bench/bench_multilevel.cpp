// Multilevel time-to-quality bench: on a segmentation-refined whole-genome
// workload, how quickly does the coarsen -> layout -> interpolate -> refine
// pipeline reach the final path-stress of a flat run on the same backend?
//
//   ./bench_multilevel [--backend NAME] [--scale F] [--iters N] [--factor F]
//                      [--threads N] [--seed N] [--quick] [--json FILE]
//
// Method. One flat run (default backend cpu-pipelined) fixes the quality
// target: its final sampled path stress. The multilevel pass list
// (multilevel::build_plan defaults) is then executed pass by pass with
// per-iteration wall-clock taken from the engine's progress hook, and the
// quality reached after refine iteration i is recovered *off the clock* by
// replaying the deterministic refine run truncated at i (run(i) replays the
// same pinned schedule bit for bit on the deterministic backends). The
// time-to-quality (TTQ) is the earliest cumulative multilevel wall-clock at
// which the sampled stress is <= the flat final; the gated metric is
//
//   value = TTQ / flat wall-clock          (direction: lower)
//
// which is a same-machine ratio, so the committed baseline transfers
// across runner classes. A full multilevel::run_plan execution is also
// compared byte-for-byte against the manual pass interpretation — the
// bench refuses (exit 1) if the product path diverges from what it timed.
//
// The workload is whole_genome_spec mapped through with_finer_segmentation:
// same genomes, bp-scale node segmentation. Run coarsening targets exactly
// that redundancy dimension, which real pggb-style builds exhibit and the
// coarse odgi-style segmentation of the plain synthetic specs hides.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/layout.hpp"
#include "metrics/path_stress.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/interpolate.hpp"
#include "multilevel/plan.hpp"
#include "workloads/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_bytes(const pgl::core::Layout& a, const pgl::core::Layout& b) {
    if (a.size() != b.size()) return false;
    const std::size_t bytes = a.size() * sizeof(float);
    return std::memcmp(a.start_x.data(), b.start_x.data(), bytes) == 0 &&
           std::memcmp(a.start_y.data(), b.start_y.data(), bytes) == 0 &&
           std::memcmp(a.end_x.data(), b.end_x.data(), bytes) == 0 &&
           std::memcmp(a.end_y.data(), b.end_y.data(), bytes) == 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    // The paper's CPU reference point; the TTQ target is this backend's
    // own flat result, so any deterministic backend is a fair choice.
    if (opt.backend == "cpu-soa") opt.backend = "cpu-pipelined";

    const std::uint32_t n_components = 1;
    const std::uint32_t sub = 4;
    auto specs =
        workloads::whole_genome_spec(n_components, opt.scale * 0.5, opt.seed);
    for (auto& s : specs) s = workloads::with_finer_segmentation(s, sub);
    const auto vg = workloads::generate_whole_genome(specs);
    const auto g = graph::LeanGraph::from_graph(vg);
    std::cout << "== Multilevel time-to-quality (" << n_components
              << " components, segmentation x" << sub << ", backend "
              << opt.backend << ") ==\n"
              << "genome: " << g.node_count() << " nodes, " << g.path_count()
              << " paths, " << g.total_path_steps() << " steps\n";

    core::LayoutConfig cfg = opt.layout_config();
    auto engine = core::make_engine(opt.backend);
    const auto stress = [&](const core::Layout& l) {
        return metrics::sampled_path_stress(g, l, 25.0, 7, opt.threads).value;
    };

    // --- Flat reference: wall-clock and the quality target ---
    auto t0 = Clock::now();
    engine->init(g, cfg);
    core::LayoutResult flat = engine->run();
    const double t_flat = secs_since(t0);
    const double q_flat = stress(flat.layout);
    std::cout << "flat: " << bench::fmt(t_flat, 3) << " s, final stress "
              << bench::fmt_sci(q_flat, 3) << "\n";

    // --- Multilevel passes, timed on-clock, measured off-clock ---
    const multilevel::MultilevelOptions mlopt;
    const auto plan = multilevel::build_plan(
        cfg, mlopt, static_cast<double>(g.max_path_nuc_length()));
    std::cout << "plan: " << multilevel::describe(plan) << "\n";

    t0 = Clock::now();
    const auto lvl = multilevel::coarsen(g);
    const double t_coarsen = secs_since(t0);
    std::cout << "coarse level: " << lvl.graph.node_count() << " nodes ("
              << bench::fmt(static_cast<double>(lvl.graph.node_count()) /
                                static_cast<double>(g.node_count()),
                            2)
              << "x), " << lvl.graph.total_path_steps() << " steps ("
              << bench::fmt(static_cast<double>(lvl.graph.total_path_steps()) /
                                static_cast<double>(g.total_path_steps()),
                            2)
              << "x)\n";

    // Coarse anneal + interpolate, exactly as run_plan configures them.
    const multilevel::Pass* layout_pass = nullptr;
    const multilevel::Pass* refine_pass = nullptr;
    for (const auto& p : plan.passes) {
        if (p.kind == multilevel::PassKind::kLayout) layout_pass = &p;
        if (p.kind == multilevel::PassKind::kRefine) refine_pass = &p;
    }
    core::LayoutConfig coarse_cfg = cfg;
    coarse_cfg.iter_max = layout_pass->iter_max;
    coarse_cfg.schedule_iter_max = layout_pass->schedule_iters;
    coarse_cfg.eta_max = layout_pass->eta_max;
    t0 = Clock::now();
    engine->init(lvl.graph, coarse_cfg);
    core::LayoutResult coarse = engine->run();
    const double t_coarse = secs_since(t0);

    t0 = Clock::now();
    core::Layout interp = multilevel::interpolate(lvl.map, coarse.layout, g);
    const double t_interp = secs_since(t0);
    const double q_interp = stress(interp);

    core::LayoutConfig refine_cfg = cfg;
    refine_cfg.iter_max = refine_pass->iter_max;
    refine_cfg.schedule_iter_max = refine_pass->schedule_iters;
    refine_cfg.eta_max = refine_pass->eta_max != 0.0
                             ? refine_pass->eta_max
                             : multilevel::adaptive_refine_eta(lvl.graph);
    if (refine_pass->eta_max == 0.0) {
        refine_cfg.eps = std::max(cfg.eps, multilevel::kRefineEtaFloor);
    }
    refine_cfg.cooling_start = 0.0;
    refine_cfg.initial_layout = std::make_shared<const core::Layout>(interp);

    std::vector<double> refine_cum;  // cumulative refine wall after iter i
    t0 = Clock::now();
    engine->set_progress_hook([&](const core::IterationStats&) {
        refine_cum.push_back(secs_since(t0));
    });
    engine->init(g, refine_cfg);
    core::LayoutResult refined = engine->run();
    const double t_refine = secs_since(t0);
    engine->set_progress_hook(nullptr);
    if (refine_cum.size() != refine_cfg.iter_max) {
        // Engine without per-iteration progress (Hogwild multithreaded):
        // fall back to attributing the whole refine to its last iteration.
        refine_cum.assign(refine_cfg.iter_max, t_refine);
    }
    const double q_refined = stress(refined.layout);

    const double t_base = t_coarsen + t_coarse + t_interp;
    const double t_ml = t_base + t_refine;

    // Off-clock quality at every refine checkpoint: truncated replays of
    // the same deterministic schedule.
    bench::TablePrinter table({"Checkpoint", "Stress", "CumSec", "xFlat"},
                              {14, 12, 10, 8});
    table.print_header(std::cout);
    const auto row = [&](const std::string& name, double q, double cum) {
        table.print_row(std::cout,
                        {name, bench::fmt_sci(q, 3), bench::fmt(cum, 3),
                         bench::fmt(cum / t_flat, 2) +
                             (q <= q_flat ? " *" : "")});
    };
    row("interpolate", q_interp, t_base);
    double ttq = q_interp <= q_flat ? t_base : -1.0;
    for (std::uint32_t i = 1; i <= refine_cfg.iter_max; ++i) {
        double q = q_refined;
        if (i < refine_cfg.iter_max) {
            core::LayoutResult part = engine->run(i);
            q = stress(part.layout);
        }
        const double cum = t_base + refine_cum[i - 1];
        row("refine " + std::to_string(i), q, cum);
        if (ttq < 0.0 && q <= q_flat) ttq = cum;
    }

    const bool crossed = ttq >= 0.0;
    // Sentinel far above any honest ratio: a never-crossing run must fail
    // the lower-is-better gate, not sneak past it.
    const double ttq_ratio = crossed ? ttq / t_flat : 99.0;
    std::cout << "multilevel: " << bench::fmt(t_ml, 3) << " s total, final "
              << "stress " << bench::fmt_sci(q_refined, 3) << "\n";
    if (crossed) {
        std::cout << "TTQ: reached flat-final stress at "
                  << bench::fmt(ttq, 3) << " s = " << bench::fmt(ttq_ratio, 2)
                  << "x the flat wall-clock\n";
    } else {
        std::cout << "TTQ: never reached flat-final stress "
                  << "(recording sentinel ratio 99)\n";
    }

    // --- The product path must be what we just timed ---
    auto verify_engine = core::make_engine(opt.backend);
    const auto product =
        multilevel::run_plan(plan, g, *verify_engine, cfg);
    const bool bytes_ok = same_bytes(product.layout, refined.layout);
    std::cout << "run_plan byte-check: " << (bytes_ok ? "ok" : "MISMATCH")
              << "\n";

    bench::JsonReporter json(opt.json_path);
    {
        bench::BenchRecord rec =
            bench::make_record(opt, "bench_multilevel", opt.backend + "-flat",
                               flat);
        rec.seconds = t_flat;
        rec.updates_per_sec =
            t_flat > 0.0 ? static_cast<double>(flat.updates) / t_flat : 0.0;
        json.add(std::move(rec));
    }
    {
        bench::BenchRecord rec;
        rec.bench = "bench_multilevel";
        rec.backend = opt.backend + "-ttq";
        rec.scale = opt.scale;
        rec.iters = opt.iters;
        rec.threads = opt.threads;
        rec.seconds = crossed ? ttq : t_ml;
        rec.updates_per_sec = 0.0;
        rec.value = ttq_ratio;
        rec.direction = "lower";
        rec.stages = {{"coarsen", t_coarsen},
                      {"layout", t_coarse},
                      {"interpolate", t_interp},
                      {"refine", t_refine}};
        json.add(std::move(rec));
    }
    json.write();

    return bytes_ok ? 0 : 1;
}

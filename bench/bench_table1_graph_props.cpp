// Reproduces Table I: properties of the three representative pangenomes
// (HLA-DRB1, MHC, Chr.1) — nucleotides, nodes, edges, paths. MHC and Chr.1
// are generated at --scale; the paper-scale targets are printed alongside.
#include <iostream>

#include "bench_common.hpp"
#include "graph/variation_graph.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table I: properties of representative pangenomes ==\n";

    bench::TablePrinter table({"Pangenome", "# Nuc.", "# Nodes", "# Edges",
                               "# Paths", "Edges/Nodes", "Paper nodes"},
                              {12, 10, 10, 10, 9, 12, 12});
    table.print_header(std::cout);

    struct Row {
        workloads::PangenomeSpec spec;
        const char* paper_nodes;
        double scale;
    };
    const Row rows[] = {
        {workloads::hla_drb1_spec(), "5.0e3", 1.0},
        {workloads::mhc_spec(opt.scale * 25), "2.3e5 (scaled)", opt.scale * 25},
        {workloads::chromosome_spec(1, opt.scale), "1.1e7 (scaled)", opt.scale},
    };
    for (const Row& r : rows) {
        const auto g = workloads::generate_pangenome(r.spec);
        const auto s = g.stats();
        table.print_row(
            std::cout,
            {r.spec.name, bench::fmt_sci(static_cast<double>(s.nucleotides)),
             bench::fmt_sci(static_cast<double>(s.nodes)),
             bench::fmt_sci(static_cast<double>(s.edges)),
             std::to_string(s.paths),
             bench::fmt(static_cast<double>(s.edges) / static_cast<double>(s.nodes)),
             r.paper_nodes});
    }
    std::cout << "\npaper Edges/Nodes ratios: HLA-DRB1 1.36, MHC 1.39, Chr.1 1.36\n";
    return 0;
}

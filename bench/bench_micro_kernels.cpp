// google-benchmark microbenchmarks for the hot primitives of the layout
// engine: PRNGs, samplers, the SGD update step and the stress metrics.
#include <benchmark/benchmark.h>

#include "core/cpu_engine.hpp"
#include "core/sampling.hpp"
#include "core/step_math.hpp"
#include "metrics/path_stress.hpp"
#include "rng/alias_table.hpp"
#include "rng/xorwow.hpp"
#include "rng/xoshiro256.hpp"
#include "rng/zipf.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;

const graph::LeanGraph& micro_graph() {
    static const graph::LeanGraph g = [] {
        workloads::PangenomeSpec spec;
        spec.backbone_nodes = 20000;
        spec.n_paths = 12;
        spec.seed = 99;
        return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
    }();
    return g;
}

void BM_Xoshiro256Next(benchmark::State& state) {
    rng::Xoshiro256Plus rng(1);
    for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro256Next);

void BM_XorwowNext(benchmark::State& state) {
    auto st = rng::xorwow_init(1, 0);
    for (auto _ : state) benchmark::DoNotOptimize(rng::xorwow_next(st));
}
BENCHMARK(BM_XorwowNext);

void BM_ZipfSample(benchmark::State& state) {
    rng::Xoshiro256Plus rng(2);
    rng::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
    for (auto _ : state) benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(100000);

void BM_AliasTableSample(benchmark::State& state) {
    rng::Xoshiro256Plus rng(3);
    std::vector<double> w(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1.0 + (i % 37);
    rng::AliasTable t{std::span<const double>(w)};
    for (auto _ : state) benchmark::DoNotOptimize(t(rng));
}
BENCHMARK(BM_AliasTableSample)->Arg(16)->Arg(4096);

void BM_PairSample(benchmark::State& state) {
    const auto& g = micro_graph();
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(4);
    const bool cooling = state.range(0) != 0;
    for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(cooling, rng));
}
BENCHMARK(BM_PairSample)->Arg(0)->Arg(1);

void BM_SgdTermUpdate(benchmark::State& state) {
    double x = 0;
    for (auto _ : state) {
        const auto d = core::sgd_term_update(0.f, 0.f, 10.f, 3.f, 4.0, 0.5, 1e-4);
        x += d.dx_i;
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_SgdTermUpdate);

void BM_FullUpdateStep(benchmark::State& state) {
    const auto& g = micro_graph();
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(5);
    rng::Xoshiro256Plus init(6);
    const auto initial = core::make_linear_initial_layout(g, init);
    core::XYStore store(initial);
    for (auto _ : state) {
        const auto t = sampler.sample(false, rng);
        if (!t.valid) continue;
        const float xi = store.load_x(t.node_i, t.end_i);
        const float yi = store.load_y(t.node_i, t.end_i);
        const float xj = store.load_x(t.node_j, t.end_j);
        const float yj = store.load_y(t.node_j, t.end_j);
        const auto d = core::sgd_term_update(xi, yi, xj, yj, t.d_ref, 1.0, 1e-4);
        store.store_x(t.node_i, t.end_i, xi + d.dx_i);
        store.store_y(t.node_i, t.end_i, yi + d.dy_i);
        store.store_x(t.node_j, t.end_j, xj + d.dx_j);
        store.store_y(t.node_j, t.end_j, yj + d.dy_j);
    }
}
BENCHMARK(BM_FullUpdateStep);

void BM_SampledPathStress(benchmark::State& state) {
    const auto& g = micro_graph();
    rng::Xoshiro256Plus init(7);
    const auto layout = core::make_linear_initial_layout(g, init);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            metrics::sampled_path_stress(g, layout, 5, 1).value);
    }
}
BENCHMARK(BM_SampledPathStress);

}  // namespace

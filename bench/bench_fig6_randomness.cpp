// Reproduces Fig. 6: destroying sampling randomness destroys the layout.
// Forcing every node pair to a fixed 10-hop distance (instead of the
// uniform/Zipf mixture) biases the SGD and the layout does not converge
// within the same iteration budget — visible as a large sampled-path-stress
// gap against the properly randomized run.
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "core/sampling.hpp"
#include "core/schedule.hpp"
#include "core/step_math.hpp"
#include "metrics/path_stress.hpp"
#include "rng/xoshiro256.hpp"

namespace {

using namespace pgl;

/// A degenerate engine: identical to the CPU baseline except that the
/// partner step is always exactly `hops` away (direction random).
core::Layout layout_fixed_hop(const graph::LeanGraph& g,
                              const core::LayoutConfig& cfg, std::uint32_t hops) {
    rng::Xoshiro256Plus init_rng(cfg.seed ^ 0xa02bdbf7bb3c0a7ULL);
    const auto initial = core::make_linear_initial_layout(g, init_rng, cfg.init_jitter);
    core::XYStore store(initial);
    const auto etas = core::make_eta_schedule(
        cfg.iter_max, cfg.eps, static_cast<double>(g.max_path_nuc_length()));
    rng::Xoshiro256Plus rng(cfg.seed);

    // Path selection stays length-proportional via rejection on steps.
    const std::uint64_t steps = cfg.steps_per_iteration(g.total_path_steps());
    for (std::uint32_t iter = 0; iter < cfg.iter_max; ++iter) {
        const double eta = etas[iter];
        for (std::uint64_t s = 0; s < steps; ++s) {
            const std::uint32_t p =
                static_cast<std::uint32_t>(rng.next_bounded(g.path_count()));
            const std::uint32_t n = g.path_step_count(p);
            if (n <= hops) continue;
            const std::uint32_t i =
                static_cast<std::uint32_t>(rng.next_bounded(n - hops));
            const std::uint32_t j = i + hops;  // ALWAYS exactly `hops` away
            const std::uint32_t ni = g.step_node(p, i);
            const std::uint32_t nj = g.step_node(p, j);
            const core::End ei = rng.flip_coin() ? core::End::kStart : core::End::kEnd;
            const core::End ej = rng.flip_coin() ? core::End::kStart : core::End::kEnd;
            const std::uint64_t pi = core::endpoint_path_position(
                g.step_position(p, i), g.node_length(ni), g.step_is_reverse(p, i), ei);
            const std::uint64_t pj = core::endpoint_path_position(
                g.step_position(p, j), g.node_length(nj), g.step_is_reverse(p, j), ej);
            if (pi == pj) continue;
            const double d_ref =
                static_cast<double>(pi > pj ? pi - pj : pj - pi);
            const float xi = store.load_x(ni, ei), yi = store.load_y(ni, ei);
            const float xj = store.load_x(nj, ej), yj = store.load_y(nj, ej);
            const auto d = core::sgd_term_update(xi, yi, xj, yj, d_ref, eta, 1e-4);
            store.store_x(ni, ei, xi + d.dx_i);
            store.store_y(ni, ei, yi + d.dy_i);
            store.store_x(nj, ej, xj + d.dx_j);
            store.store_y(nj, ej, yj + d.dy_j);
        }
    }
    return store.snapshot();
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Fig. 6: randomness is critical to layout quality ==\n";

    const auto g = bench::build_lean(workloads::hla_drb1_spec());
    auto cfg = opt.layout_config();
    cfg.iter_max = std::max<std::uint32_t>(cfg.iter_max, 15);
    cfg.steps_per_iter_factor = std::max(cfg.steps_per_iter_factor, 2.0);

    const auto random_layout = core::layout_cpu(g, cfg).layout;
    const auto fixed_layout = layout_fixed_hop(g, cfg, 10);

    const auto sps_rand = metrics::sampled_path_stress(g, random_layout, 50, 1);
    const auto sps_fixed = metrics::sampled_path_stress(g, fixed_layout, 50, 1);

    bench::TablePrinter table({"Node-pair selection", "Sampled path stress"},
                              {32, 20});
    table.print_header(std::cout);
    table.print_row(std::cout, {"random (uniform + Zipf cooling)",
                                bench::fmt(sps_rand.value, 3)});
    table.print_row(std::cout,
                    {"forced 10-hop pairs", bench::fmt(sps_fixed.value, 3)});
    std::cout << "\nstress ratio (fixed / random): "
              << bench::fmt(sps_fixed.value / sps_rand.value, 1)
              << "x  — the biased scheme does not converge (paper Fig. 6)\n";
    return 0;
}

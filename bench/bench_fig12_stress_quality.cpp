// Reproduces Fig. 12: path stress separates HLA-DRB1 layouts of different
// quality. Four layouts are produced by truncating the SGD schedule at
// increasing depths (initial jumble -> fully converged); both exact path
// stress and sampled path stress are reported for each.
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "metrics/path_stress.hpp"
#include "rng/xoshiro256.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Fig. 12: layouts of HLA-DRB1 of different qualities ==\n";

    const auto g = bench::build_lean(workloads::hla_drb1_spec());

    // A deliberately bad starting point (random scatter).
    rng::Xoshiro256Plus rng(opt.seed);
    core::Layout scattered;
    scattered.resize(g.node_count());
    // Scatter box sized so the worst layout's stress lands in the same
    // order of magnitude as the paper's worst example (~1e2).
    const double span = static_cast<double>(g.total_path_nucleotides()) / 150.0;
    for (std::size_t i = 0; i < scattered.size(); ++i) {
        scattered.start_x[i] = static_cast<float>(rng.next_double() * span);
        scattered.start_y[i] = static_cast<float>(rng.next_double() * span);
        scattered.end_x[i] = static_cast<float>(rng.next_double() * span);
        scattered.end_y[i] = static_cast<float>(rng.next_double() * span);
    }

    bench::TablePrinter table({"Layout", "Path stress", "Sampled PS", "CI95",
                               "Paper analog"},
                              {24, 13, 12, 24, 14});
    table.print_header(std::cout);

    const auto report = [&](const std::string& name, const core::Layout& l,
                            const char* paper) {
        const auto exact = metrics::path_stress(g, l, opt.threads);
        const auto sps = metrics::sampled_path_stress(g, l, 100, opt.seed);
        table.print_row(std::cout,
                        {name, bench::fmt_sci(exact.value, 2),
                         bench::fmt_sci(sps.value, 2),
                         "[" + bench::fmt_sci(sps.ci_low, 1) + ", " +
                             bench::fmt_sci(sps.ci_high, 1) + "]",
                         paper});
    };

    report("random scatter", scattered, "142.2");
    // Truncated runs of one 30-iteration schedule: partially converged
    // layouts of decreasing stress, the analog of the paper's four panels.
    for (const auto& [iters, paper] :
         std::vector<std::pair<std::uint32_t, const char*>>{
             {6, "22.4"}, {15, "1.3"}, {30, "0.07"}}) {
        auto cfg = opt.layout_config();
        cfg.schedule_iter_max = 30;
        cfg.iter_max = iters;
        cfg.steps_per_iter_factor = 2.0;
        const auto r = core::layout_cpu_from(g, cfg, scattered);
        report("SGD, " + std::to_string(iters) + "/30 iterations", r.layout,
               paper);
    }
    std::cout << "\npaper shape: stress falls by orders of magnitude as the "
                 "layout converges; lower stress = more legible layout\n";
    return 0;
}

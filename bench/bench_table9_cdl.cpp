// Reproduces Table IX: effects of the cache-friendly data layout (CDL) on
// both the CPU baseline (LLC loads / misses, modeled run time) and the GPU
// kernel (DRAM traffic, modeled run time), on the Chr.1-class graph.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "memsim/characterize.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table IX: effects of the cache-friendly data layout ==\n";

    const auto spec = workloads::chromosome_spec(1, opt.scale);
    const auto g = bench::build_lean(spec);
    const auto cfg = opt.layout_config();
    const double full_updates = bench::full_scale_updates(g, opt.scale);

    // --- CPU side ---
    memsim::CharacterizeOptions chopt;
    chopt.sample_updates = opt.quick ? 200'000 : 1'000'000;
    chopt.llc_scale = opt.scale;
    chopt.seed = opt.seed;
    const auto soa = memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, chopt);
    const auto aos = memsim::characterize_cpu(g, cfg, core::CoordStore::kAoS, chopt);
    memsim::CpuPerfModel cpu_model;
    const double scale_up = full_updates / static_cast<double>(soa.updates);

    bench::TablePrinter table({"Metric", "w/o CDL", "w/ CDL", "Improv.",
                               "Paper improv."},
                              {30, 14, 14, 10, 14});
    table.print_header(std::cout);
    const auto row = [&](const std::string& name, double a, double b,
                         const char* paper) {
        table.print_row(std::cout, {name, bench::fmt_sci(a), bench::fmt_sci(b),
                                    bench::fmt(a / b, 1) + "x", paper});
    };
    row("CPU LLC-loads (#, full scale)",
        static_cast<double>(soa.llc.accesses) * scale_up,
        static_cast<double>(aos.llc.accesses) * scale_up, "3.2x");
    row("CPU LLC-load-misses (#)", static_cast<double>(soa.llc.misses) * scale_up,
        static_cast<double>(aos.llc.misses) * scale_up, "3.3x");
    row("CPU run time (s, modeled)",
        cpu_model.seconds(soa, static_cast<std::uint64_t>(full_updates)),
        cpu_model.seconds(aos, static_cast<std::uint64_t>(full_updates)), "3.1x");

    // --- GPU side ---
    gpusim::SimOptions sopt;
    sopt.counter_sample_period = opt.quick ? 32 : 24;
    sopt.cache_scale = opt.scale;
    const auto a6000 = gpusim::rtx_a6000();
    gpusim::KernelConfig base = gpusim::KernelConfig::base();
    gpusim::KernelConfig cdl = base;
    cdl.cache_friendly_layout = true;
    const auto r_base = gpusim::simulate_gpu_layout(g, cfg, base, a6000, sopt);
    const auto r_cdl = gpusim::simulate_gpu_layout(g, cfg, cdl, a6000, sopt);
    const double gscale =
        full_updates / static_cast<double>(r_base.counters.lane_updates);
    row("GPU DRAM access (GB, full scale)",
        r_base.counters.dram_bytes() * gscale / 1e9,
        r_cdl.counters.dram_bytes() * gscale / 1e9, "1.3x");
    row("GPU run time (s, modeled)", r_base.modeled_seconds * gscale,
        r_cdl.modeled_seconds * gscale, "1.4x");
    std::cout << "\npaper: LLC loads 3.0e12 -> 9.4e11, DRAM 5191.9 GB -> "
                 "3974.4 GB, CPU 9158 s -> 2935 s, GPU 569 s -> 393 s\n";
    return 0;
}

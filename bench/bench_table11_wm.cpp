// Reproduces Table XI: effects of warp merging (WM) — executed
// instructions, average active threads per warp, modeled run time.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table XI: effects of warp merging ==\n";

    const auto spec = workloads::chromosome_spec(1, opt.scale);
    const auto g = bench::build_lean(spec);
    const auto cfg = opt.layout_config();
    const double full_updates = bench::full_scale_updates(g, opt.scale);

    gpusim::SimOptions sopt;
    sopt.counter_sample_period = opt.quick ? 32 : 24;
    sopt.cache_scale = opt.scale;
    const auto a6000 = gpusim::rtx_a6000();
    gpusim::KernelConfig base = gpusim::KernelConfig::base();
    gpusim::KernelConfig wm = base;
    wm.warp_merge = true;
    const auto r_base = gpusim::simulate_gpu_layout(g, cfg, base, a6000, sopt);
    const auto r_wm = gpusim::simulate_gpu_layout(g, cfg, wm, a6000, sopt);
    const double scale_up =
        full_updates / static_cast<double>(r_base.counters.lane_updates);

    bench::TablePrinter table({"Metric", "w/o WM", "w/ WM", "Improv.",
                               "Paper improv."},
                              {36, 12, 12, 10, 14});
    table.print_header(std::cout);
    table.print_row(
        std::cout,
        {"Executed instructions (billions, full)",
         bench::fmt(r_base.counters.executed_warp_instructions * scale_up / 1e9, 1),
         bench::fmt(r_wm.counters.executed_warp_instructions * scale_up / 1e9, 1),
         bench::fmt(r_base.counters.executed_warp_instructions /
                        r_wm.counters.executed_warp_instructions,
                    1) +
             "x",
         "1.5x"});
    table.print_row(std::cout,
                    {"Avg. active threads per warp (#)",
                     bench::fmt(r_base.counters.avg_active_threads(), 1),
                     bench::fmt(r_wm.counters.avg_active_threads(), 1),
                     bench::fmt(r_wm.counters.avg_active_threads() /
                                    r_base.counters.avg_active_threads(),
                                1) +
                         "x",
                     "1.4x"});
    table.print_row(std::cout,
                    {"GPU run time (s, modeled)",
                     bench::fmt(r_base.modeled_seconds * scale_up, 1),
                     bench::fmt(r_wm.modeled_seconds * scale_up, 1),
                     bench::fmt(r_base.modeled_seconds / r_wm.modeled_seconds, 1) +
                         "x",
                     "1.1x"});
    std::cout << "\npaper: 131.3e9 -> 90.1e9 instructions; 20.5 -> 27.9 "
                 "active threads; 569.4 -> 527.4 s\n";
    return 0;
}

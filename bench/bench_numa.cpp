// NUMA placement bench: pinned + node-local vs unpinned updates/s on the
// whole-genome workload, at worker counts sized from the discovered
// topology (the CPUs of 1 node, of 2 nodes, of all nodes — on a one-node
// machine the sweep collapses to {1, all}). Two mixes:
//
//   cross   one flat graph spanning every component: shards touch
//           coordinates across the whole store, so auto placement rotates
//           the pages over the worker nodes (the hard case for placement);
//   local   the partitioned scheduler with one single-threaded engine per
//           component, whole components assigned to nodes largest-first —
//           each engine's store, buffers and worker share one node (the
//           case the NUMA layer is built for).
//
// Every pinned run is byte-compared against its unpinned twin before any
// number is reported: placement that changed a float is a bug, and this
// bench refuses to benchmark it. With --json the records feed CI's
// perf-regression gate; the "pin-speedup" series carries
// pinned/unpinned updates/s with direction "higher", so a regression that
// makes pinning a slowdown fails the gate.
//
//   ./bench_numa [--backend NAME] [--scale F] [--iters N] [--factor F]
//                [--seed N] [--quick] [--json FILE]
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/topology.hpp"
#include "partition/partition.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;

bool same_layout(const core::Layout& a, const core::Layout& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.start_x[i] != b.start_x[i] || a.start_y[i] != b.start_y[i] ||
            a.end_x[i] != b.end_x[i] || a.end_y[i] != b.end_y[i]) {
            return false;
        }
    }
    return true;
}

double median_of(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/// Worker counts to sweep: 1, then the cumulative CPU counts of the first
/// 1, 2, ..., all nodes — "one node's worth of workers, two nodes' worth,
/// the whole machine" — deduplicated.
std::vector<std::uint32_t> worker_sweep(const core::Topology& topo) {
    std::vector<std::uint32_t> sweep{1};
    std::uint32_t cum = 0;
    for (const auto& node : topo.nodes) {
        cum += static_cast<std::uint32_t>(node.cpus.size());
        sweep.push_back(cum);
    }
    std::sort(sweep.begin(), sweep.end());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
    return sweep;
}

}  // namespace

int main(int argc, char** argv) {
    auto opt = bench::BenchOptions::parse(argc, argv);
    if (opt.backend == "cpu-soa") opt.backend = "cpu-pipelined";  // deterministic
    // Median of 3 even in --quick: the gated pin-speedup ratio needs the
    // noise suppression more than CI needs the two extra sub-second runs.
    const int reps = 3;

    const auto& topo = core::discover_topology();
    std::cout << "== NUMA placement (" << opt.backend << ", "
              << topo.node_count() << " node(s), "
              << topo.allowed_cpu_count() << " allowed CPUs) ==\n";

    const std::uint32_t n_components = opt.quick ? 3 : 6;
    const auto specs =
        workloads::whole_genome_spec(n_components, opt.scale, opt.seed);
    const auto vg = workloads::generate_whole_genome(specs);
    const auto flat = graph::LeanGraph::from_graph(vg);
    std::cout << "genome: " << flat.node_count() << " nodes, "
              << flat.path_count() << " paths, " << n_components
              << " components\n";

    bench::TablePrinter table({"Mix", "Workers", "Unpinned/s", "Pinned/s",
                               "Speedup"},
                              {7, 9, 13, 13, 9});
    table.print_header(std::cout);
    bench::JsonReporter json(opt.json_path);

    const auto emit = [&](const std::string& mix, std::uint32_t workers,
                          std::uint64_t updates, double sec_unpinned,
                          double sec_pinned) {
        const double ups_un =
            sec_unpinned > 0.0 ? static_cast<double>(updates) / sec_unpinned : 0.0;
        const double ups_pin =
            sec_pinned > 0.0 ? static_cast<double>(updates) / sec_pinned : 0.0;
        const double speedup = ups_un > 0.0 ? ups_pin / ups_un : 0.0;
        table.print_row(std::cout,
                        {mix, std::to_string(workers), bench::fmt_sci(ups_un, 2),
                         bench::fmt_sci(ups_pin, 2), bench::fmt(speedup, 3)});
        for (const auto& [label, sec] :
             {std::pair<std::string, double>{mix + "-unpinned", sec_unpinned},
              {mix + "-pinned", sec_pinned}}) {
            core::LayoutResult r;
            r.updates = updates;
            r.seconds = sec;
            bench::BenchRecord rec = bench::make_record(opt, "bench_numa", label, r);
            rec.threads = workers;
            json.add(rec);
        }
        bench::BenchRecord gate =
            bench::make_record(opt, "bench_numa", mix + "-pin-speedup", {});
        gate.threads = workers;
        gate.value = speedup;
        gate.direction = "higher";
        gate.telemetry = {
            {"topology.nodes",
             static_cast<double>(
                 telemetry::Registry::instance().counter("topology.nodes").value())},
            {"pool.pin.failures",
             static_cast<double>(telemetry::Registry::instance()
                                     .counter("pool.pin.failures")
                                     .value())},
        };
        json.add(gate);
    };

    for (const std::uint32_t workers : worker_sweep(topo)) {
        // Cross-component mix: one flat engine, threads = workers.
        {
            core::LayoutConfig cfg = opt.layout_config();
            cfg.threads = workers;
            std::vector<double> t_un, t_pin;
            core::Layout lay_un, lay_pin;
            std::uint64_t updates = 0;
            for (int rep = 0; rep < reps; ++rep) {
                cfg.pin = false;
                cfg.numa = "off";
                auto r = bench::run_backend(opt.backend, flat, cfg);
                t_un.push_back(r.seconds);
                updates = r.updates;
                lay_un = std::move(r.layout);

                cfg.pin = true;
                cfg.numa = "auto";
                r = bench::run_backend(opt.backend, flat, cfg);
                t_pin.push_back(r.seconds);
                lay_pin = std::move(r.layout);
            }
            if (!same_layout(lay_un, lay_pin)) {
                std::cerr << "FATAL: pinned cross-mix layout diverged from "
                             "unpinned at workers="
                          << workers << "\n";
                return 1;
            }
            emit("cross", workers, updates, median_of(t_un), median_of(t_pin));
        }

        // Component-local mix: partitioned scheduler, single-threaded
        // engines, components assigned whole to nodes.
        {
            partition::PartitionOptions popt;
            popt.schedule.backend = opt.backend;
            popt.schedule.config = opt.layout_config();
            popt.schedule.config.threads = 1;
            popt.schedule.workers = workers;
            std::vector<double> t_un, t_pin;
            core::Layout lay_un, lay_pin;
            std::uint64_t updates = 0;
            for (int rep = 0; rep < reps; ++rep) {
                popt.schedule.config.pin = false;
                popt.schedule.config.numa = "off";
                auto part = partition::partition_layout(
                    partition::decompose(vg), popt);
                t_un.push_back(part.seconds);
                updates = part.updates;
                lay_un = std::move(part.stitched.layout);

                popt.schedule.config.pin = true;
                popt.schedule.config.numa = "auto";
                part = partition::partition_layout(partition::decompose(vg),
                                                   popt);
                t_pin.push_back(part.seconds);
                lay_pin = std::move(part.stitched.layout);
            }
            if (!same_layout(lay_un, lay_pin)) {
                std::cerr << "FATAL: pinned local-mix layout diverged from "
                             "unpinned at workers="
                          << workers << "\n";
                return 1;
            }
            emit("local", workers, updates, median_of(t_un), median_of(t_pin));
        }
    }

    std::cout << "\nnote: every pinned run byte-compared equal to its "
                 "unpinned twin before reporting\n";
    return 0;
}

// Reproduces Table VIII: layout quality comparison between the CPU baseline
// and the GPU kernel (A6000/A100 runs differ only in schedule partitioning
// here, so one functional GPU run per chromosome is compared twice in the
// paper; we run the simulator once per device seed). Reports sampled path
// stress with CI95 and the GPU/CPU SPS ratio; the paper's geometric-mean
// ratios are 1.08 (A6000) and 1.03 (A100) — i.e. no quality loss.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "metrics/path_stress.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    opt.iters = std::min<std::uint32_t>(opt.iters, 6);
    opt.factor = std::min(opt.factor, 0.5);
    std::cout << "== Table VIII: layout quality (sampled path stress) ==\n";

    bench::TablePrinter table({"Pan.", "CPU SPS", "CI95", "GPU SPS", "CI95",
                               "SPS ratio"},
                              {8, 9, 18, 9, 18, 9});
    table.print_header(std::cout);

    const auto kernel = gpusim::KernelConfig::optimized();
    const auto spec_gpu = gpusim::rtx_a6000();

    double log_sum = 0;
    int count = 0;
    const int last = opt.quick ? 4 : 24;

    for (int k = 1; k <= last; ++k) {
        const auto spec = workloads::chromosome_spec(k, opt.scale);
        const auto g = bench::build_lean(spec, false);
        const auto cfg = opt.layout_config();

        const auto cpu = core::layout_cpu(g, cfg);
        gpusim::SimOptions sopt;
        sopt.counter_sample_period = 64;  // quality run: minimize modeling cost
        sopt.cache_scale = opt.scale;
        const auto gpu = gpusim::simulate_gpu_layout(g, cfg, kernel, spec_gpu, sopt);

        const auto s_cpu =
            metrics::sampled_path_stress(g, cpu.layout, 25, opt.seed);
        const auto s_gpu =
            metrics::sampled_path_stress(g, gpu.layout, 25, opt.seed);
        const double ratio = s_gpu.value / s_cpu.value;
        log_sum += std::log(ratio);
        ++count;

        const auto ci = [](const metrics::StressResult& r) {
            return "[" + bench::fmt(r.ci_low, 2) + ", " + bench::fmt(r.ci_high, 2) +
                   "]";
        };
        table.print_row(std::cout,
                        {spec.name, bench::fmt(s_cpu.value, 2), ci(s_cpu),
                         bench::fmt(s_gpu.value, 2), ci(s_gpu),
                         bench::fmt(ratio, 2)});
    }
    std::cout << "\nGeometric mean SPS ratio (GPU/CPU): "
              << bench::fmt(std::exp(log_sum / count), 2)
              << "   (paper: 1.08 A6000 / 1.03 A100 — ~1 means no quality loss)\n";
    return 0;
}

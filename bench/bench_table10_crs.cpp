// Reproduces Table X: effects of coalesced random states (CRS) on the GPU
// kernel — L1 sectors per request, cache traffic per level, modeled time.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table X: effects of coalesced random states ==\n";

    const auto spec = workloads::chromosome_spec(1, opt.scale);
    const auto g = bench::build_lean(spec);
    const auto cfg = opt.layout_config();
    const double full_updates = bench::full_scale_updates(g, opt.scale);

    gpusim::SimOptions sopt;
    sopt.counter_sample_period = opt.quick ? 32 : 24;
    sopt.cache_scale = opt.scale;
    const auto a6000 = gpusim::rtx_a6000();
    gpusim::KernelConfig base = gpusim::KernelConfig::base();
    gpusim::KernelConfig crs = base;
    crs.coalesced_rng = true;
    const auto r_base = gpusim::simulate_gpu_layout(g, cfg, base, a6000, sopt);
    const auto r_crs = gpusim::simulate_gpu_layout(g, cfg, crs, a6000, sopt);
    const double scale_up =
        full_updates / static_cast<double>(r_base.counters.lane_updates);

    bench::TablePrinter table({"Metric", "w/o CRS", "w/ CRS", "Improv.",
                               "Paper improv."},
                              {30, 12, 12, 10, 14});
    table.print_header(std::cout);
    const auto row = [&](const std::string& name, double a, double b, int prec,
                         const char* paper) {
        table.print_row(std::cout, {name, bench::fmt(a, prec), bench::fmt(b, prec),
                                    bench::fmt(a / b, 1) + "x", paper});
    };
    row("L1 sectors / request (#)", r_base.counters.sectors_per_request(),
        r_crs.counters.sectors_per_request(), 1, "2.7x");
    row("L1 cache access (GB, full)", r_base.counters.l1_bytes() * scale_up / 1e9,
        r_crs.counters.l1_bytes() * scale_up / 1e9, 1, "1.8x");
    row("L2 cache access (GB, full)", r_base.counters.l2_bytes() * scale_up / 1e9,
        r_crs.counters.l2_bytes() * scale_up / 1e9, 1, "1.7x");
    row("DRAM access (GB, full)", r_base.counters.dram_bytes() * scale_up / 1e9,
        r_crs.counters.dram_bytes() * scale_up / 1e9, 1, "1.3x");
    row("GPU run time (s, modeled)", r_base.modeled_seconds * scale_up,
        r_crs.modeled_seconds * scale_up, 1, "1.2x");
    std::cout << "\npaper: 26.8 -> 9.9 sectors/req; L1 8686.7 -> 4787.7 GB; "
                 "L2 7498.9 -> 4339.3 GB; DRAM 5191.9 -> 4077.8 GB; 569.4 -> "
                 "471.7 s\n";
    return 0;
}

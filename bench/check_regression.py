#!/usr/bin/env python3
"""CI perf-regression gate over bench JSON records (stdlib only).

Usage:
    check_regression.py BASELINE.json CURRENT.json [--tolerance 0.30]
    check_regression.py --self-test

Both files hold arrays of records emitted by a bench's --json flag:
    {"bench": ..., "backend": ..., "scale": ..., "iters": ...,
     "threads": ..., "seconds": ..., "updates_per_sec": ...}

Records may carry two optional fields that change how they are gated:

    "value":      the gated metric. When absent, updates_per_sec is gated
                  (the historical throughput contract).
    "direction":  "higher" (default) or "lower". Higher-is-better metrics
                  (throughput) fail when the current value drops more than
                  --tolerance below baseline; lower-is-better metrics
                  (latency, time-to-quality ratios) fail when the current
                  value rises more than --tolerance above baseline.

A record pair is matched on (bench, backend, threads). Backends present
on only one side are reported but never fail the gate, so registering a
new engine does not require touching the baseline in the same commit —
the next baseline refresh picks it up.

--normalize BACKEND divides every higher-is-better metric by that
backend's value on its own side before comparing, turning the gate into a
relative one. Use it when baseline and current runs come from different
machine classes (a slower host then cancels out). Lower-is-better records
are never normalized: the ones this repo emits (multilevel time-to-quality)
are already ratios of two same-machine runs, so machine speed cancels by
construction.

Refresh the baseline with:
    ./build/bench_backends --quick --json bench/baseline.json
(or download BENCH_pr.json from a trusted main build's bench-smoke job so
the committed numbers reflect the CI runner class).

--self-test runs the gate logic against synthetic in-memory records and
exits nonzero on any contract violation; CI runs it before trusting the
gate with real numbers.
"""

import argparse
import json
import sys


def metric(rec):
    """The gated value of a record: explicit "value" or updates_per_sec."""
    return rec["value"] if "value" in rec else rec["updates_per_sec"]


def direction(rec):
    d = rec.get("direction", "higher")
    if d not in ("higher", "lower"):
        sys.exit(f"record {rec.get('bench')}/{rec.get('backend')}: "
                 f"bad direction {d!r} (want 'higher' or 'lower')")
    return d


def to_table(records, path):
    table = {}
    for rec in records:
        key = (rec["bench"], rec["backend"], rec["threads"])
        if key in table:
            sys.exit(f"{path}: duplicate record for {key}")
        table[key] = rec
    return table


def load(path, normalize=None):
    with open(path) as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        sys.exit(f"{path}: expected a JSON array of bench records")
    table = to_table(records, path)
    if normalize is not None:
        anchors = [metric(r) for r in table.values()
                   if r["backend"] == normalize and direction(r) == "higher"]
        if not anchors or anchors[0] <= 0:
            sys.exit(f"{path}: no usable --normalize backend {normalize!r}")
        for rec in table.values():
            if direction(rec) == "higher":
                rec["value"] = metric(rec) / anchors[0]
    return table


def compare(baseline, current, tolerance):
    """Returns (rows, failures). Each row is a display tuple; each failure
    is (name, base, cur, ratio, direction)."""
    rows, failures = [], []
    for key in sorted(baseline):
        name = f"{key[0]}/{key[1]}@{key[2]}"
        if key not in current:
            rows.append((name, None, None, None, "missing"))
            continue
        brec, crec = baseline[key], current[key]
        base, cur = metric(brec), metric(crec)
        dirn = direction(brec)
        if direction(crec) != dirn:
            sys.exit(f"{name}: direction mismatch between baseline ({dirn}) "
                     f"and current ({direction(crec)})")
        ratio = cur / base if base > 0 else float("inf")
        bad = (base > 0 and cur < base * (1.0 - tolerance)) \
            if dirn == "higher" else (cur > base * (1.0 + tolerance))
        rows.append((name, base, cur, ratio, "FAIL" if bad else dirn))
        if bad:
            failures.append((name, base, cur, ratio, dirn))
    for key in sorted(set(current) - set(baseline)):
        rows.append((f"{key[0]}/{key[1]}@{key[2]}", None, None, None, "new"))
    return rows, failures


def run_gate(args):
    baseline = load(args.baseline, args.normalize)
    current = load(args.current, args.normalize)
    rows, failures = compare(baseline, current, args.tolerance)

    print(f"{'bench/backend@threads':40s} {'baseline':>14s} "
          f"{'current':>14s} {'ratio':>7s}  dir")
    for name, base, cur, ratio, tag in rows:
        if tag == "missing":
            print(f"{name:40s} {'(missing in current run — skipped)':>37s}")
        elif tag == "new":
            print(f"{name:40s} {'(new — no baseline, skipped)':>37s}")
        else:
            flag = "  << REGRESSION" if tag == "FAIL" else ""
            dirn = "lower" if tag == "lower" or (tag == "FAIL" and cur > base) \
                else "higher"
            print(f"{name:40s} {base:14.3e} {cur:14.3e} {ratio:7.2f}  "
                  f"{dirn}{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} record(s) regressed more than "
              f"{args.tolerance:.0%} vs {args.baseline}:")
        for name, base, cur, ratio, dirn in failures:
            print(f"  {name} ({dirn} is better): {base:.3e} -> {cur:.3e} "
                  f"({ratio:.2f}x)")
        return 1
    print(f"\nOK: no record regressed more than {args.tolerance:.0%}")
    return 0


def self_test():
    def rec(bench, backend, ups=None, value=None, dirn=None, threads=1):
        r = {"bench": bench, "backend": backend, "threads": threads,
             "scale": 0.001, "iters": 4, "seconds": 1.0}
        if ups is not None:
            r["updates_per_sec"] = ups
        if value is not None:
            r["value"] = value
        if dirn is not None:
            r["direction"] = dirn
        return r

    checks = []

    def expect(label, cond):
        checks.append((label, cond))
        print(f"  {'ok ' if cond else 'FAIL'} {label}")

    # 1. throughput drop beyond tolerance fails
    base = to_table([rec("b", "x", ups=100.0)], "base")
    cur = to_table([rec("b", "x", ups=60.0)], "cur")
    _, fails = compare(base, cur, 0.30)
    expect("throughput drop > tol fails", len(fails) == 1)

    # 2. throughput drop within tolerance passes
    cur = to_table([rec("b", "x", ups=80.0)], "cur")
    _, fails = compare(base, cur, 0.30)
    expect("throughput drop < tol passes", not fails)

    # 3. lower-is-better rise beyond tolerance fails
    base = to_table([rec("b", "ttq", value=0.5, dirn="lower")], "base")
    cur = to_table([rec("b", "ttq", value=0.7, dirn="lower")], "cur")
    _, fails = compare(base, cur, 0.30)
    expect("lower-metric rise > tol fails", len(fails) == 1)

    # 4. lower-is-better improvement (drop) passes however large
    cur = to_table([rec("b", "ttq", value=0.1, dirn="lower")], "cur")
    _, fails = compare(base, cur, 0.30)
    expect("lower-metric drop passes", not fails)

    # 5. lower-is-better rise within tolerance passes
    cur = to_table([rec("b", "ttq", value=0.55, dirn="lower")], "cur")
    _, fails = compare(base, cur, 0.30)
    expect("lower-metric rise < tol passes", not fails)

    # 6. "value" takes precedence over updates_per_sec
    base = to_table([rec("b", "x", ups=100.0, value=10.0)], "base")
    cur = to_table([rec("b", "x", ups=100.0, value=1.0)], "cur")
    _, fails = compare(base, cur, 0.30)
    expect("explicit value field is gated", len(fails) == 1)

    # 7. records on one side only are reported, never gated
    base = to_table([rec("b", "only-base", ups=1.0)], "base")
    cur = to_table([rec("b", "only-cur", ups=1.0)], "cur")
    rows, fails = compare(base, cur, 0.30)
    expect("one-sided records skip the gate",
           not fails and {t for *_, t in rows} == {"missing", "new"})

    bad = [label for label, ok in checks if not ok]
    if bad:
        print(f"\nSELF-TEST FAIL: {len(bad)} check(s): {', '.join(bad)}")
        return 1
    print(f"\nSELF-TEST OK: {len(checks)} checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression of the gated "
                             "metric (default 0.30)")
    parser.add_argument("--normalize", metavar="BACKEND", default=None,
                        help="compare higher-is-better metrics relative to "
                             "this backend's on each side (cancels "
                             "machine-speed skew)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate logic against synthetic records "
                             "and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current files are required "
                     "(or use --self-test)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())

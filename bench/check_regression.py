#!/usr/bin/env python3
"""CI perf-regression gate over bench JSON records (stdlib only).

Usage:
    check_regression.py BASELINE.json CURRENT.json [--tolerance 0.30]

Both files hold arrays of records emitted by a bench's --json flag:
    {"bench": ..., "backend": ..., "scale": ..., "iters": ...,
     "threads": ..., "seconds": ..., "updates_per_sec": ...}

A record pair is matched on (bench, backend, threads). The gate fails
(exit 1) when any matched backend's updates_per_sec drops more than
--tolerance (default 30%) below the committed baseline. Backends present
on only one side are reported but never fail the gate, so registering a
new engine does not require touching the baseline in the same commit —
the next baseline refresh picks it up.

--normalize BACKEND divides every updates_per_sec by that backend's
throughput on its own side before comparing, turning the gate into a
relative one. Use it when baseline and current runs come from different
machine classes (a slower host then cancels out); the plain absolute gate
is right when both sides run on comparable hardware, which is why CI
refreshes bench/baseline.json from its own runners' artifacts.

Refresh the baseline with:
    ./build/bench_backends --quick --json bench/baseline.json
(or download BENCH_pr.json from a trusted main build's bench-smoke job so
the committed numbers reflect the CI runner class).
"""

import argparse
import json
import sys


def load(path, normalize=None):
    with open(path) as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        sys.exit(f"{path}: expected a JSON array of bench records")
    table = {}
    for rec in records:
        key = (rec["bench"], rec["backend"], rec["threads"])
        if key in table:
            sys.exit(f"{path}: duplicate record for {key}")
        table[key] = rec
    if normalize is not None:
        anchors = [r["updates_per_sec"] for r in table.values()
                   if r["backend"] == normalize]
        if not anchors or anchors[0] <= 0:
            sys.exit(f"{path}: no usable --normalize backend {normalize!r}")
        for rec in table.values():
            rec["updates_per_sec"] /= anchors[0]
    return table


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop in updates_per_sec "
                             "(default 0.30)")
    parser.add_argument("--normalize", metavar="BACKEND", default=None,
                        help="compare throughputs relative to this backend's "
                             "on each side (cancels machine-speed skew)")
    args = parser.parse_args()

    baseline = load(args.baseline, args.normalize)
    current = load(args.current, args.normalize)

    failures = []
    print(f"{'bench/backend@threads':40s} {'baseline u/s':>14s} "
          f"{'current u/s':>14s} {'ratio':>7s}")
    for key in sorted(baseline):
        name = f"{key[0]}/{key[1]}@{key[2]}"
        if key not in current:
            print(f"{name:40s} {'(missing in current run — skipped)':>37s}")
            continue
        base = baseline[key]["updates_per_sec"]
        cur = current[key]["updates_per_sec"]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if base > 0 and cur < base * (1.0 - args.tolerance):
            failures.append((name, base, cur, ratio))
            flag = "  << REGRESSION"
        print(f"{name:40s} {base:14.3e} {cur:14.3e} {ratio:7.2f}{flag}")
    for key in sorted(set(current) - set(baseline)):
        print(f"{key[0]}/{key[1]}@{key[2]:<6} "
              f"{'(new — no baseline, skipped)':>37s}")

    if failures:
        print(f"\nFAIL: {len(failures)} backend(s) regressed more than "
              f"{args.tolerance:.0%} vs {args.baseline}:")
        for name, base, cur, ratio in failures:
            print(f"  {name}: {base:.3e} -> {cur:.3e} updates/sec "
                  f"({ratio:.2f}x)")
        return 1
    print(f"\nOK: no backend regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

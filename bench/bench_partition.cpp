// Partitioned whole-genome layout bench: decomposes a multi-component
// synthetic genome (workloads::whole_genome_spec), lays every component out
// through the ComponentScheduler and stitches one canvas, reporting
// per-component and end-to-end numbers. The scheduler-worker sweep shows
// the speedup of laying out independent chromosomes concurrently.
//
//   ./bench_partition [--backend NAME] [--scale F] [--iters N] [--factor F]
//                     [--threads N] [--seed N] [--quick] [--json FILE]
//                     [--input FILE.gfa|FILE.pgg]
//
// --threads sets the scheduler's component workers (engines run with one
// thread each so the sweep measures component-level parallelism, not
// nested pools). With --json FILE one record for the --threads run is
// written — the partition entry of CI's perf-regression gate. With
// --input a real GFA or .pgg graph cache is ingested through the
// streaming reader instead of generating the synthetic genome, using the
// component labels computed at parse time.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "io/pgg_io.hpp"
#include "partition/partition.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    if (opt.backend == "cpu-soa") opt.backend = "cpu-batched";  // richer default

    partition::Decomposition d;
    if (!opt.input_path.empty()) {
        std::cout << "== Partitioned layout of " << opt.input_path
                  << " (backend " << opt.backend << ") ==\n";
        auto ingest = io::load_graph_file(opt.input_path);
        std::cout << "graph: " << ingest.graph.node_count() << " nodes, "
                  << ingest.graph.path_count() << " paths\n";
        d = partition::decompose(ingest.graph, partition::take_labels(ingest));
    } else {
        const std::uint32_t n_components = opt.quick ? 3 : 6;
        std::cout << "== Partitioned whole-genome layout (" << n_components
                  << " components, backend " << opt.backend << ") ==\n";
        const auto specs =
            workloads::whole_genome_spec(n_components, opt.scale, opt.seed);
        const auto vg = workloads::generate_whole_genome(specs);
        std::cout << "genome: " << vg.node_count() << " nodes, "
                  << vg.path_count() << " paths\n";
        d = partition::decompose(vg);
    }
    std::cout << d.count() << " components\n";

    partition::PartitionOptions popt;
    popt.schedule.backend = opt.backend;
    popt.schedule.config = opt.layout_config();
    popt.schedule.config.threads = 1;  // sweep component-level parallelism only

    bench::TablePrinter table(
        {"Executor", "Workers", "Components", "Updates", "EngineSec", "WallSec",
         "Upd/s"},
        {10, 9, 12, 12, 11, 9, 12});
    table.print_header(std::cout);

    bench::JsonReporter json(opt.json_path);
    std::vector<std::uint32_t> worker_sweep{1};
    if (opt.threads > 1) worker_sweep.push_back(opt.threads);

    // In-process sweep, then the same points through the multi-process
    // executor: fork/exec + .pgg/.lay shuttling per component, so the
    // WallSec gap between the two "Executor" blocks is the process
    // protocol's overhead (the stitched canvas is byte-identical). JSON
    // records are keyed "<backend>" and "<backend>-mp" so the regression
    // gate tracks both series.
    for (const std::string executor : {"thread", "process"}) {
        popt.schedule.executor = executor;
        for (const std::uint32_t workers : worker_sweep) {
            popt.schedule.workers = workers;
            popt.schedule.processes = workers;
            partition::PartitionResult part;
            try {
                part = partition::partition_layout(std::move(d), popt);
            } catch (const std::runtime_error& e) {
                // No pgl_layout next to this bench (e.g. a benches-only
                // build): report and skip the series, don't fail the bench.
                std::cout << executor << " executor unavailable: " << e.what()
                          << "\n";
                break;
            }
            const double ups = part.seconds > 0.0
                                   ? static_cast<double>(part.updates) /
                                         part.seconds
                                   : 0.0;
            table.print_row(
                std::cout,
                {executor, std::to_string(workers),
                 std::to_string(part.decomposition.count()),
                 bench::fmt_sci(static_cast<double>(part.updates), 2),
                 bench::fmt(part.engine_seconds, 4), bench::fmt(part.seconds, 4),
                 bench::fmt_sci(ups, 2)});
            if (workers == opt.threads || (opt.threads <= 1 && workers == 1)) {
                core::LayoutResult summary;
                summary.updates = part.updates;
                summary.skipped = part.skipped;
                summary.seconds = part.seconds;
                const std::string label =
                    executor == "process" ? opt.backend + "-mp" : opt.backend;
                json.add(
                    bench::make_record(opt, "bench_partition", label, summary));
            }
            d = std::move(part.decomposition);  // reuse for the next point
        }
    }

    std::cout << "\nnote: per-component engines are seeded with "
                 "component_seed(seed, id); the stitched canvas is identical "
                 "for every executor and worker count\n";
    return 0;
}

// Layout-service throughput/latency bench: drives the in-process job
// server (the exact machinery behind `pgl_serve`) with a mixed open-loop
// workload — many small jobs, a few large ones, plus repeat submits of one
// hot config — and reports end-to-end service throughput and tail latency.
//
//   ./bench_serve [--scale F] [--iters N] [--threads N] [--backend NAME]
//                 [--seed N] [--quick] [--json FILE]
//
// Method. Two synthetic pangenomes (MHC-like, ~4x apart in size) are
// written as .pgg workloads to a scratch directory. All jobs are submitted
// up front (open loop: admission pressure exists from t0, so the
// smallest-first scheduler actually has choices to make), then the bench
// waits for every job and takes per-job end-to-end latency = queue + run
// from the server's own accounting. Repeat submits of the first small
// config exercise the artifact-cache / in-flight-dedup fast path, exactly
// as a CI fleet re-running an unchanged layout would.
//
// Gated records (bench/baseline.json, via check_regression.py):
//   backend "serve-jobs-per-sec"  value = jobs / wall-clock   (higher)
//   backend "serve-p99-latency"   value = p99 latency seconds (lower)
//
// --threads sets the server's worker count (not the per-engine threads;
// jobs run the deterministic single-thread engine config so results stay
// byte-stable and cacheable).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/gfa.hpp"
#include "graph/lean_graph.hpp"
#include "io/pgg_io.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/synthetic.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Generates a spec'd pangenome and stores it as a .pgg workload file.
std::string write_workload(const pgl::workloads::PangenomeSpec& spec,
                           const std::string& dir, const std::string& name) {
    const auto vg = pgl::workloads::generate_pangenome(spec);
    const std::string gfa = dir + "/" + name + ".gfa";
    const std::string pgg = dir + "/" + name + ".pgg";
    pgl::graph::write_gfa_file(vg, gfa);
    pgl::io::write_pgg_file(pgl::io::load_graph_file(gfa), pgg);
    std::filesystem::remove(gfa);
    return pgg;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    const std::uint32_t workers = std::max(2u, opt.threads);
    const std::uint32_t small_jobs = opt.quick ? 12 : 24;
    const std::uint32_t large_jobs = opt.quick ? 3 : 8;
    const std::uint32_t repeat_jobs = opt.quick ? 5 : 12;

    const std::string dir =
        (std::filesystem::temp_directory_path() / "pgl_bench_serve").string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    auto small_spec = workloads::mhc_spec(opt.scale);
    small_spec.seed = opt.seed;
    auto large_spec = workloads::mhc_spec(opt.scale * 4.0);
    large_spec.seed = opt.seed + 1;
    const std::string small_pgg = write_workload(small_spec, dir, "small");
    const std::string large_pgg = write_workload(large_spec, dir, "large");

    serve::ServerOptions sopt;
    sopt.cache_dir = dir + "/cache";
    sopt.workers = workers;
    serve::Server server(sopt);
    server.start();

    const auto request = [&](const std::string& graph, std::uint64_t seed) {
        serve::JobRequest r;
        r.graph = graph;
        r.backend = opt.backend;
        r.config = opt.layout_config();
        r.config.threads = 1;  // deterministic + cacheable per job
        r.config.seed = seed;
        return r;
    };

    std::cout << "== Layout service (" << workers << " workers, backend "
              << opt.backend << ") ==\n"
              << "workload: " << small_jobs << " small + " << large_jobs
              << " large + " << repeat_jobs << " repeat submits\n";

    // Open loop: every job is in the building before the first one leaves.
    const auto t0 = Clock::now();
    std::vector<std::uint64_t> ids;
    // Interleave large among small so largest-last never happens by
    // construction — the scheduler, not submit order, must produce fairness.
    for (std::uint32_t i = 0; i < small_jobs; ++i) {
        if (i < large_jobs) {
            ids.push_back(server.submit(request(large_pgg, opt.seed + i)));
        }
        ids.push_back(server.submit(request(small_pgg, opt.seed + i)));
    }
    for (std::uint32_t i = 0; i < repeat_jobs; ++i) {
        ids.push_back(server.submit(request(small_pgg, opt.seed)));
    }

    std::vector<double> latency;
    latency.reserve(ids.size());
    for (const std::uint64_t id : ids) {
        const serve::JobStatus s = server.wait(id);
        if (s.state != serve::JobState::kDone) {
            std::cerr << "job " << id << " " << job_state_name(s.state) << ": "
                      << s.error << "\n";
            return 1;
        }
        latency.push_back(s.queue_seconds + s.run_seconds);
    }
    const double wall = secs_since(t0);
    const serve::ServerStats stats = server.stats();
    server.shutdown();

    std::sort(latency.begin(), latency.end());
    const auto pct = [&](double p) {
        const std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(latency.size() - 1));
        return latency[idx];
    };
    const double jobs_per_sec = static_cast<double>(ids.size()) / wall;

    std::cout << ids.size() << " jobs in " << bench::fmt(wall, 3) << " s  ("
              << bench::fmt(jobs_per_sec, 2) << " jobs/s)\n"
              << "latency p50 " << bench::fmt(pct(0.50) * 1e3, 1) << " ms   p99 "
              << bench::fmt(pct(0.99) * 1e3, 1) << " ms   max "
              << bench::fmt(latency.back() * 1e3, 1) << " ms\n"
              << "cache hits " << stats.cache_hits << "  dedup joins "
              << stats.dedup_joins << "  completed " << stats.completed << "\n";

    // Server-side telemetry view of the same run: queue-wait and run-time
    // histograms (counts exact, quantiles within the bucketing's 12.5%
    // bound). Rides along in the informational "telemetry" object — the
    // gated value/direction fields above stay byte-compatible with
    // check_regression.py. All zeros under PGL_TELEMETRY=OFF.
    std::vector<std::pair<std::string, double>> tele;
    const auto add_hist = [&tele](const std::string& name,
                                  const std::string& prefix) {
        const telemetry::Histogram h =
            telemetry::Registry::instance().histogram(name);
        tele.emplace_back(prefix + "_count", static_cast<double>(h.count()));
        tele.emplace_back(prefix + "_p50_s", h.quantile(0.50) / 1e9);
        tele.emplace_back(prefix + "_p99_s", h.quantile(0.99) / 1e9);
        tele.emplace_back(prefix + "_max_s",
                          static_cast<double>(h.max()) / 1e9);
    };
    add_hist("serve.queue_wait_ns", "queue_wait");
    add_hist("serve.run_ns", "run");

    bench::JsonReporter reporter(opt.json_path);
    {
        bench::BenchRecord r;
        r.bench = "bench_serve";
        r.backend = "serve-jobs-per-sec";
        r.scale = opt.scale;
        r.iters = opt.iters;
        r.threads = workers;
        r.seconds = wall;
        r.value = jobs_per_sec;
        r.direction = "higher";
        r.telemetry = tele;
        reporter.add(r);
        r.backend = "serve-p99-latency";
        r.value = pct(0.99);
        r.direction = "lower";
        reporter.add(r);
    }
    reporter.write();
    std::filesystem::remove_all(dir);
    return 0;
}

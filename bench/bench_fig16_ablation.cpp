// Reproduces Fig. 16: speedup through successive optimizations, relative to
// the 32-thread CPU baseline, on the Chr.1-class pangenome.
//
//   CPU baseline (1.0x) -> CPU w/ CDL (~3.1x) -> base PyTorch (~6.8x) ->
//   base CUDA (~14.6x) -> +CDL -> +CRS -> +WM (optimized, ~27.7x)
//
// CPU times come from the cache-simulator-driven Xeon model; GPU times from
// the GPU simulator's counters + latency model; PyTorch from the tensor
// substrate's kernel cost model. All are extrapolated to paper-scale update
// counts so the bars are comparable to the paper's.
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "memsim/characterize.hpp"
#include "tensor/torch_layout.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Fig. 16: speedup through successive optimizations ==\n";

    const auto spec = workloads::chromosome_spec(1, opt.scale);
    const auto g = bench::build_lean(spec);
    const auto cfg = opt.layout_config();
    const double full_updates = bench::full_scale_updates(g, opt.scale);

    // --- CPU baseline and CPU w/ CDL (modeled 32-thread Xeon) ---
    memsim::CharacterizeOptions chopt;
    chopt.sample_updates = opt.quick ? 200'000 : 1'000'000;
    chopt.llc_scale = opt.scale;
    chopt.seed = opt.seed;
    const auto ch_soa =
        memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, chopt);
    const auto ch_aos =
        memsim::characterize_cpu(g, cfg, core::CoordStore::kAoS, chopt);
    memsim::CpuPerfModel cpu_model;
    const double t_cpu = cpu_model.seconds(
        ch_soa, static_cast<std::uint64_t>(full_updates));
    const double t_cpu_cdl = cpu_model.seconds(
        ch_aos, static_cast<std::uint64_t>(full_updates));

    // --- Base PyTorch (batch 1M, the Table III sweet spot) ---
    // The modeled gather cost must see the full-scale coordinate footprint
    // (Chr.1's coordinate tensors spill the GPU L2 at paper scale even
    // though the scaled replica's fit).
    tensor::KernelCostModel torch_cost;
    torch_cost.coord_bytes_override =
        2.0 * 2.0 * static_cast<double>(g.node_count()) * sizeof(float) / opt.scale;
    const auto torch = tensor::layout_torch(g, cfg, 1'000'000, torch_cost);
    const double sim_updates_torch =
        static_cast<double>(cfg.iter_max) *
        static_cast<double>(cfg.steps_per_iteration(g.total_path_steps()));
    const double t_torch =
        torch.modeled_seconds * (full_updates / sim_updates_torch);

    // --- GPU ladder on the RTX A6000 ---
    const auto gpu_spec = gpusim::rtx_a6000();
    gpusim::SimOptions sopt;
    sopt.counter_sample_period = opt.quick ? 32 : 24;
    sopt.cache_scale = opt.scale;

    const auto run_gpu = [&](const gpusim::KernelConfig& k) {
        const auto r = gpusim::simulate_gpu_layout(g, cfg, k, gpu_spec, sopt);
        const double sim_updates = static_cast<double>(r.counters.lane_updates);
        return r.modeled_seconds * (full_updates / sim_updates);
    };

    gpusim::KernelConfig k = gpusim::KernelConfig::base();
    const double t_base = run_gpu(k);
    k.cache_friendly_layout = true;
    const double t_cdl = run_gpu(k);
    k.coalesced_rng = true;
    const double t_crs = run_gpu(k);
    k.warp_merge = true;
    const double t_opt = run_gpu(k);

    bench::TablePrinter table({"Configuration", "Modeled time", "Speedup",
                               "Paper"},
                              {30, 14, 10, 10});
    table.print_header(std::cout);
    const auto row = [&](const std::string& name, double t, const char* paper) {
        table.print_row(std::cout, {name, bench::format_hms(t),
                                    bench::fmt(t_cpu / t, 1) + "x", paper});
    };
    row("CPU baseline (32T model)", t_cpu, "1.0x");
    row("CPU w/ CDL", t_cpu_cdl, "3.1x");
    row("Base PyTorch (batch 1M)", t_torch, "6.8x");
    row("Base CUDA kernel", t_base, "14.6x");
    row("+ cache-friendly layout", t_cdl, "-");
    row("+ coalesced random states", t_crs, "-");
    row("+ warp merging (optimized)", t_opt, "27.7x");
    return 0;
}

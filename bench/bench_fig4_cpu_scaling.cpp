// Reproduces Fig. 4: thread scaling of the CPU baseline on HLA-DRB1, MHC
// and Chr.1-class graphs.
//
// The paper measures wall time on a 32-core Xeon. This container has a
// single core, so two series are reported per graph: the real measured wall
// time with T std::threads (flat on one core — included for honesty) and a
// critical-path work model (per-thread share of the update stream at the
// measured single-thread rate), which is what linear scaling looks like
// when every thread has its own core.
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "core/cpu_engine.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Fig. 4: scaling of the CPU baseline with threads ==\n";
    std::cout << "host hardware threads: " << std::thread::hardware_concurrency()
              << " (paper: 32-core Xeon)\n\n";

    const workloads::PangenomeSpec specs[] = {
        workloads::hla_drb1_spec(),
        workloads::mhc_spec(opt.scale * 10),
        workloads::chromosome_spec(1, opt.scale),
    };

    bench::JsonReporter json(opt.json_path);
    for (const auto& spec : specs) {
        const auto g = bench::build_lean(spec);
        auto cfg = opt.layout_config();

        // Single-thread measured run establishes the per-update rate.
        cfg.threads = 1;
        const auto base = core::layout_cpu(g, cfg);
        const double rate = base.seconds /
                            static_cast<double>(std::max<std::uint64_t>(1, base.updates));

        bench::TablePrinter table(
            {"Threads", "Measured (s)", "Modeled multicore (s)", "Speedup"},
            {9, 14, 24, 9});
        table.print_header(std::cout);
        for (std::uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u}) {
            cfg.threads = t;
            const auto r = core::layout_cpu(g, cfg);
            auto rec = bench::make_record(opt, "bench_fig4_cpu_scaling",
                                          spec.name + "/cpu-soa", r);
            rec.threads = t;
            json.add(std::move(rec));
            const double modeled =
                rate * static_cast<double>(base.updates) / static_cast<double>(t);
            table.print_row(std::cout,
                            {std::to_string(t), bench::fmt(r.seconds, 3),
                             bench::fmt(modeled, 3),
                             bench::fmt(base.seconds / modeled, 1) + "x"});
        }
        std::cout << "\n";
    }
    std::cout << "paper shape: near-linear scaling from 1 to 32 threads on "
                 "all three graphs\n";
    return 0;
}

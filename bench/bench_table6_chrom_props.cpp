// Reproduces Table VI: properties of the 24 human chromosome pangenome
// graphs (min / max / mean of nucleotides, nodes, edges, paths, degree,
// density), over the scaled synthetic chromosome presets.
#include <algorithm>
#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "graph/variation_graph.hpp"

int main(int argc, char** argv) {
    using namespace pgl;
    const auto opt = bench::BenchOptions::parse(argc, argv);
    std::cout << "== Table VI: properties of the 24 chromosome pangenomes "
                 "(scale = "
              << opt.scale << ") ==\n";

    struct Agg {
        double min = std::numeric_limits<double>::max();
        double max = std::numeric_limits<double>::lowest();
        double sum = 0;
        void add(double v) {
            min = std::min(min, v);
            max = std::max(max, v);
            sum += v;
        }
    };
    Agg nuc, nodes, edges, paths, deg, density;

    for (int k = 1; k <= 24; ++k) {
        const auto spec = workloads::chromosome_spec(k, opt.scale);
        const auto g = workloads::generate_pangenome(spec);
        const auto s = g.stats();
        nuc.add(static_cast<double>(s.nucleotides));
        nodes.add(static_cast<double>(s.nodes));
        edges.add(static_cast<double>(s.edges));
        paths.add(static_cast<double>(s.paths));
        deg.add(static_cast<double>(s.edges) / static_cast<double>(s.nodes));
        density.add(s.density);
    }

    bench::TablePrinter table(
        {"", "# Nuc.", "# Nodes", "# Edges", "# Paths", "deg", "Density"},
        {6, 10, 10, 10, 9, 7, 10});
    table.print_header(std::cout);
    const auto row = [&](const char* name, auto get) {
        table.print_row(std::cout,
                        {name, bench::fmt_sci(get(nuc)), bench::fmt_sci(get(nodes)),
                         bench::fmt_sci(get(edges)), bench::fmt(get(paths), 0),
                         bench::fmt(get(deg), 2), bench::fmt_sci(get(density))});
    };
    row("Min", [](const Agg& a) { return a.min; });
    row("Max", [](const Agg& a) { return a.max; });
    row("Mean", [](const Agg& a) { return a.sum / 24.0; });

    std::cout << "\npaper (full scale): nodes 3.2e5..1.1e7 (mean 4.0e6), "
                 "deg 1.4, density 1.3e-7..4.4e-6 (mean 3.5e-7)\n"
                 "note: density scales as 1/nodes, so scaled graphs read "
                 "~1/scale higher than paper values.\n";
    return 0;
}

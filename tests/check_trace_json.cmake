# Chrome-trace export contract, run as a ctest:
#
#   1. `pgl_layout --trace out.json` on a whole-genome workload (with
#      --partition --multilevel, so the full span tree exists) must exit 0
#      and write the trace file.
#   2. The file must be well-formed JSON — validated with python3 when
#      available — with a non-empty traceEvents array containing the
#      nested multilevel stage spans (coarsen/layout/interpolate/refine),
#      per-component spans, and a nonzero engine.updates counter in the
#      embedded telemetry snapshot.
#   3. A telemetry-disabled build still writes a valid document; the
#      content assertions key off its "telemetryEnabled" flag.
#
# Expects -DTOOL=<pgl_layout> -DGENERATOR=<whole_genome_layout>
#         -DWORKDIR=<scratch dir>
foreach(var TOOL GENERATOR WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_trace_json.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND ${GENERATOR} ${WORKDIR} 3 0.0002 cpu-batched
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "whole_genome_layout failed: ${err}")
endif()

set(trace "${WORKDIR}/trace.json")
execute_process(
  COMMAND ${TOOL} -i ${WORKDIR}/whole_genome.gfa -o ${WORKDIR}/out.lay
          --iters 3 --factor 0.5 --seed 42
          --partition --component-workers 2 --multilevel
          --trace ${trace}
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pgl_layout --trace run failed: ${err}")
endif()
if(NOT EXISTS "${trace}")
  message(FATAL_ERROR "--trace did not write ${trace}")
endif()

find_program(PYTHON3 python3)
if(PYTHON3)
  # Full structural validation: parse, then assert the span tree and the
  # embedded counter snapshot — only when telemetry was compiled in (the
  # writer says so itself via "telemetryEnabled").
  file(WRITE "${WORKDIR}/validate.py" "
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc['traceEvents']
assert isinstance(events, list), 'traceEvents is not a list'
if not doc.get('telemetryEnabled', False):
    print('telemetry compiled out; well-formedness only')
    sys.exit(0)
names = [e.get('name', '') for e in events]
for stage in ('parse', 'coarsen', 'layout', 'interpolate', 'refine',
              'stitch', 'component', 'render'):
    assert stage in names, f'missing span {stage!r} in trace'
phases = {e.get('ph') for e in events}
assert 'X' in phases, 'no duration events'
counters = doc['telemetry']['counters']
assert counters.get('engine.updates', 0) > 0, 'engine.updates is zero'
assert counters.get('partition.components', 0) > 0, 'no component count'
print(f'{len(events)} trace events OK')
")
  execute_process(
    COMMAND ${PYTHON3} "${WORKDIR}/validate.py" "${trace}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace validation failed: ${out}${err}")
  endif()
  message(STATUS "trace JSON validated: ${out}")
else()
  # No python3: fall back to shape checks that catch gross breakage.
  file(READ "${trace}" doc)
  if(NOT doc MATCHES "\"traceEvents\"")
    message(FATAL_ERROR "trace file has no traceEvents key")
  endif()
  message(STATUS "python3 not found; trace shape check only")
endif()

// Tests for the RNG substrate: SplitMix64, Xoshiro256+, XORWOW, the Zipf
// sampler and the alias table.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "rng/alias_table.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xorwow.hpp"
#include "rng/xoshiro256.hpp"
#include "rng/zipf.hpp"

namespace {

using namespace pgl::rng;

TEST(SplitMix64, KnownSequenceFromSeedZero) {
    // Reference values from the canonical splitmix64.c (Vigna).
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
    SplitMix64 a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Plus, DeterministicForSeed) {
    Xoshiro256Plus a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Plus, DoubleInUnitInterval) {
    Xoshiro256Plus rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xoshiro256Plus, DoubleMeanNearHalf) {
    Xoshiro256Plus rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256Plus, BoundedStaysInRange) {
    Xoshiro256Plus rng(13);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.next_bounded(bound), bound);
        }
    }
}

TEST(Xoshiro256Plus, BoundedIsRoughlyUniform) {
    Xoshiro256Plus rng(17);
    constexpr std::uint64_t kBound = 10;
    std::array<int, kBound> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) counts[rng.next_bounded(kBound)]++;
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
    }
}

TEST(Xoshiro256Plus, FlipCoinIsFair) {
    Xoshiro256Plus rng(19);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) heads += rng.flip_coin();
    EXPECT_NEAR(heads, n / 2.0, n * 0.01);
}

TEST(Xoshiro256Plus, JumpProducesDisjointStream) {
    Xoshiro256Plus a(23);
    Xoshiro256Plus b = a;
    b.jump();
    // Streams should not collide over a short horizon.
    std::vector<std::uint64_t> av, bv;
    for (int i = 0; i < 100; ++i) {
        av.push_back(a.next());
        bv.push_back(b.next());
    }
    EXPECT_NE(av, bv);
}

TEST(Xorwow, StateIsSixWords) {
    EXPECT_EQ(sizeof(XorwowState), 24u);
}

TEST(Xorwow, DeterministicPerSequence) {
    XorwowState a = xorwow_init(99, 5);
    XorwowState b = xorwow_init(99, 5);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(xorwow_next(a), xorwow_next(b));
}

TEST(Xorwow, SequencesAreDecorrelated) {
    XorwowState a = xorwow_init(99, 0);
    XorwowState b = xorwow_init(99, 1);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) equal += (xorwow_next(a) == xorwow_next(b));
    EXPECT_LT(equal, 5);
}

TEST(Xorwow, UniformInUnitInterval) {
    XorwowState st = xorwow_init(1, 2);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const float f = xorwow_uniform(st);
        ASSERT_GE(f, 0.0f);
        ASSERT_LT(f, 1.0f);
        sum += f;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xorwow, BoundedStaysInRange) {
    XorwowState st = xorwow_init(3, 4);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(xorwow_bounded(st, 37), 37u);
    }
}

TEST(Zipf, AlwaysInRange) {
    Xoshiro256Plus rng(31);
    ZipfSampler zipf(1000, 0.99);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t k = zipf(rng);
        ASSERT_GE(k, 1u);
        ASSERT_LE(k, 1000u);
    }
}

TEST(Zipf, SingleElementDomain) {
    Xoshiro256Plus rng(32);
    ZipfSampler zipf(1, 0.99);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 1u);
}

TEST(Zipf, MatchesAnalyticMassForSmallN) {
    // Compare empirical frequencies against the exact normalized 1/k^theta
    // mass for a small domain.
    const double theta = 0.99;
    const std::uint64_t n = 10;
    double z = 0;
    for (std::uint64_t k = 1; k <= n; ++k) z += std::pow(k, -theta);

    Xoshiro256Plus rng(33);
    ZipfSampler zipf(n, theta);
    std::map<std::uint64_t, int> counts;
    const int draws = 400000;
    for (int i = 0; i < draws; ++i) counts[zipf(rng)]++;
    for (std::uint64_t k = 1; k <= n; ++k) {
        const double expected = std::pow(k, -theta) / z;
        const double got = counts[k] / static_cast<double>(draws);
        EXPECT_NEAR(got, expected, 0.01) << "k=" << k;
    }
}

TEST(Zipf, HeavierHeadWithLargerTheta) {
    Xoshiro256Plus rng(34);
    ZipfSampler flat(1000, 0.2), steep(1000, 2.0);
    std::uint64_t ones_flat = 0, ones_steep = 0;
    for (int i = 0; i < 50000; ++i) {
        ones_flat += flat(rng) == 1;
        ones_steep += steep(rng) == 1;
    }
    EXPECT_GT(ones_steep, ones_flat * 2);
}

TEST(AliasTable, SingleBucket) {
    const std::vector<double> w{5.0};
    AliasTable t{std::span<const double>(w)};
    Xoshiro256Plus rng(35);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(t(rng), 0u);
}

TEST(AliasTable, MatchesWeights) {
    const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
    AliasTable t{std::span<const double>(w)};
    Xoshiro256Plus rng(36);
    std::array<int, 4> counts{};
    const int n = 400000;
    for (int i = 0; i < n; ++i) counts[t(rng)]++;
    for (int k = 0; k < 4; ++k) {
        EXPECT_NEAR(counts[k] / static_cast<double>(n), (k + 1) / 10.0, 0.01);
    }
}

TEST(AliasTable, HandlesZeroWeightEntries) {
    const std::vector<double> w{0.0, 1.0, 0.0, 1.0};
    AliasTable t{std::span<const double>(w)};
    Xoshiro256Plus rng(37);
    for (int i = 0; i < 20000; ++i) {
        const auto k = t(rng);
        EXPECT_TRUE(k == 1 || k == 3) << k;
    }
}

TEST(AliasTable, ExtremeWeightSkew) {
    const std::vector<double> w{1e-9, 1e9};
    AliasTable t{std::span<const double>(w)};
    Xoshiro256Plus rng(38);
    int zeros = 0;
    for (int i = 0; i < 100000; ++i) zeros += (t(rng) == 0);
    EXPECT_LT(zeros, 5);
}

}  // namespace

// Tests for the layout driver facade (src/driver/): one RunRequest in, the
// whole load -> (partition|multilevel|flat) -> publish pipeline out. The
// contracts pinned here are the ones pgl_layout and the serve daemon rely
// on: a driver run is byte-identical to hand-wiring the subsystems, the
// .lay it publishes round-trips, a caller-supplied LeanIngest is adopted
// without a reload, save-graph-only requests stop after the cache write,
// and the worker-spec codec used by the process executor round-trips.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/driver.hpp"
#include "graph/gfa_stream.hpp"
#include "io/lay_io.hpp"
#include "partition/executor.hpp"
#include "partition/partition.hpp"

namespace {

using namespace pgl;
namespace fs = std::filesystem;

// Two path-connected components (s1-s2-s3 and s4-s5) plus one isolated
// segment — enough shape to exercise the partition path end to end.
const std::string kMultiGfa =
    "H\tVN:Z:1.0\n"
    "S\ts1\tACGT\n"
    "S\ts2\tTT\n"
    "S\ts3\tG\n"
    "S\ts4\tACACAC\n"
    "S\ts5\tGGGG\n"
    "S\ts6\tC\n"
    "L\ts1\t+\ts2\t-\t0M\n"
    "L\ts2\t+\ts3\t+\t0M\n"
    "P\tp1\ts1+,s2-,s3+\t*\n"
    "P\tp2\ts1+,s2+\t*\n"
    "P\tp3\ts4+,s5-\t*\n";

class DriverTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("pgl-driver-test-" + std::to_string(::getpid()));
        fs::create_directories(dir_);
        gfa_ = (dir_ / "g.gfa").string();
        std::ofstream(gfa_) << kMultiGfa;
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const char* name) const { return (dir_ / name).string(); }

    static core::LayoutConfig quick_config() {
        core::LayoutConfig cfg;
        cfg.iter_max = 2;
        cfg.steps_per_iter_factor = 0.5;
        cfg.seed = 42;
        return cfg;
    }

    static void expect_layout_equal(const core::Layout& a,
                                    const core::Layout& b) {
        ASSERT_EQ(a.size(), b.size());
        std::uint64_t mismatches = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            mismatches +=
                (a.start_x[i] != b.start_x[i]) + (a.start_y[i] != b.start_y[i]) +
                (a.end_x[i] != b.end_x[i]) + (a.end_y[i] != b.end_y[i]);
        }
        EXPECT_EQ(mismatches, 0u);
    }

    fs::path dir_;
    std::string gfa_;
};

TEST_F(DriverTest, FlatRunPublishesLayoutAndReportsShape) {
    driver::RunRequest req;
    req.graph_path = gfa_;
    req.out_path = path("flat.lay");
    req.config = quick_config();
    const auto out = driver::run_layout(req);

    EXPECT_FALSE(out.convert_only);
    EXPECT_FALSE(out.partitioned);
    EXPECT_EQ(out.nodes, 6u);
    EXPECT_EQ(out.paths, 3u);
    EXPECT_EQ(out.steps, 7u);
    EXPECT_EQ(out.components, 3u);
    EXPECT_EQ(out.engine_name, "cpu-soa");
    EXPECT_EQ(out.layout.size(), 6u);
    // The published file is the returned layout, byte for byte.
    ASSERT_TRUE(fs::exists(req.out_path));
    expect_layout_equal(io::read_layout_file(req.out_path), out.layout);
}

TEST_F(DriverTest, NarratesThroughLogHookOnly) {
    driver::RunRequest req;
    req.graph_path = gfa_;
    req.out_path = path("logged.lay");
    req.config = quick_config();
    std::vector<std::string> lines;
    req.log = [&](const std::string& line) { lines.push_back(line); };
    driver::run_layout(req);

    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines.front().rfind("loaded ", 0), 0u) << lines.front();
    bool wrote = false;
    for (const auto& l : lines) wrote |= l.rfind("wrote ", 0) == 0;
    EXPECT_TRUE(wrote);
}

TEST_F(DriverTest, SaveGraphWithoutOutputConvertsAndStops) {
    driver::RunRequest req;
    req.graph_path = gfa_;
    req.save_graph_path = path("g.pgg");
    req.config = quick_config();
    const auto out = driver::run_layout(req);
    EXPECT_TRUE(out.convert_only);
    EXPECT_EQ(out.layout.size(), 0u);
    ASSERT_TRUE(fs::exists(req.save_graph_path));

    // The cache reloads into the same layout bytes as the GFA.
    driver::RunRequest from_gfa;
    from_gfa.graph_path = gfa_;
    from_gfa.config = quick_config();
    driver::RunRequest from_pgg;
    from_pgg.graph_path = req.save_graph_path;
    from_pgg.config = quick_config();
    expect_layout_equal(driver::run_layout(from_gfa).layout,
                        driver::run_layout(from_pgg).layout);
}

TEST_F(DriverTest, AdoptedIngestMatchesFileLoad) {
    // The serve daemon hands the driver its cached ingest; the result must
    // be byte-identical to the driver loading the same file itself.
    auto ingest = std::make_shared<graph::LeanIngest>(graph::ingest_gfa_file(gfa_));

    driver::RunRequest from_file;
    from_file.graph_path = gfa_;
    from_file.partition = true;
    from_file.config = quick_config();
    driver::RunRequest from_ingest;
    from_ingest.ingest = ingest;
    from_ingest.partition = true;
    from_ingest.config = quick_config();

    const auto a = driver::run_layout(from_file);
    const auto b = driver::run_layout(from_ingest);
    EXPECT_TRUE(a.partitioned);
    EXPECT_EQ(a.partition.decomposition.count(), 3u);
    expect_layout_equal(a.layout, b.layout);
}

TEST_F(DriverTest, PartitionRunMatchesDirectPartitionLayout) {
    driver::RunRequest req;
    req.graph_path = gfa_;
    req.partition = true;
    req.component_workers = 2;
    req.config = quick_config();
    const auto out = driver::run_layout(req);

    const auto ing = graph::ingest_gfa_file(gfa_);
    partition::ComponentLabels labels;
    labels.count = ing.component_count;
    labels.node_component = ing.node_component;
    labels.path_component = ing.path_component;
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    popt.schedule.workers = 2;
    const auto direct =
        partition::partition_layout(ing.graph, std::move(labels), popt);

    ASSERT_TRUE(out.partitioned);
    EXPECT_EQ(out.updates, direct.updates);
    expect_layout_equal(out.layout, direct.stitched.layout);
}

TEST_F(DriverTest, ComponentProgressReachesPartitionedRuns) {
    driver::RunRequest req;
    req.graph_path = gfa_;
    req.partition = true;
    req.config = quick_config();
    std::vector<std::uint32_t> seen;
    req.component_progress = [&](const partition::ComponentProgress& p) {
        seen.push_back(p.component);
        EXPECT_EQ(p.total, 3u);
    };
    driver::run_layout(req);
    EXPECT_EQ(seen.size(), 3u);
}

TEST(WorkerSpec, RoundTripsFlatOptions) {
    partition::SchedulerOptions opt;
    opt.backend = "cpu-pipelined";
    opt.config.kernel = "simd";
    opt.config.iter_max = 9;
    opt.config.steps_per_iter_factor = 0.75;
    opt.config.threads = 3;
    opt.config.pin = true;
    opt.config.numa = "node:1";
    opt.config.seed = 123;  // pre-mix; the spec carries the mixed seed
    const std::uint64_t mixed = partition::component_seed(123, 2);

    const auto parsed =
        partition::parse_worker_spec(partition::encode_worker_spec(opt, mixed));
    EXPECT_EQ(parsed.backend, "cpu-pipelined");
    EXPECT_EQ(parsed.config.kernel, "simd");
    EXPECT_EQ(parsed.config.iter_max, 9u);
    EXPECT_EQ(parsed.config.steps_per_iter_factor, 0.75);
    EXPECT_EQ(parsed.config.threads, 3u);
    EXPECT_TRUE(parsed.config.pin);
    EXPECT_EQ(parsed.config.numa, "node:1");
    EXPECT_EQ(parsed.config.seed, mixed);
    EXPECT_FALSE(parsed.multilevel);
    // A worker lays out exactly one component in-process.
    EXPECT_EQ(parsed.executor, "thread");
    EXPECT_EQ(parsed.workers, 1u);
}

TEST(WorkerSpec, RoundTripsMultilevelOptions) {
    partition::SchedulerOptions opt;
    opt.multilevel = true;
    opt.multilevel_opt.levels = 3;
    opt.multilevel_opt.coarse_iters = 11;
    opt.multilevel_opt.refine_iters = 4;
    opt.multilevel_opt.refine_eta = 0.125;
    opt.multilevel_opt.exact_tail = true;

    const auto parsed =
        partition::parse_worker_spec(partition::encode_worker_spec(opt, 7));
    ASSERT_TRUE(parsed.multilevel);
    EXPECT_EQ(parsed.multilevel_opt.levels, 3u);
    EXPECT_EQ(parsed.multilevel_opt.coarse_iters, 11u);
    EXPECT_EQ(parsed.multilevel_opt.refine_iters, 4u);
    EXPECT_EQ(parsed.multilevel_opt.refine_eta, 0.125);
    EXPECT_TRUE(parsed.multilevel_opt.exact_tail);
}

TEST(WorkerSpec, RejectsUnknownFields) {
    EXPECT_THROW(partition::parse_worker_spec("backend=cpu-soa;bogus=1;"),
                 std::invalid_argument);
}

}  // namespace

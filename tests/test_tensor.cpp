// Tests for the tensor substrate and the batched "PyTorch" layout.
#include <gtest/gtest.h>

#include <vector>

#include "core/cpu_engine.hpp"
#include "metrics/path_stress.hpp"
#include "tensor/tensor.hpp"
#include "tensor/torch_layout.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using tensor::KernelProfiler;
using tensor::Tensor;

TEST(TensorOps, IndexSelectGathers) {
    KernelProfiler prof;
    Tensor src(std::vector<float>{10, 20, 30, 40});
    const std::vector<std::uint32_t> idx{3, 0, 3};
    const Tensor out = tensor::index_select(src, idx, prof);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_FLOAT_EQ(out[0], 40);
    EXPECT_FLOAT_EQ(out[1], 10);
    EXPECT_FLOAT_EQ(out[2], 40);
    EXPECT_EQ(prof.total_launches(), 1u);
}

TEST(TensorOps, IndexAddAccumulatesDuplicates) {
    KernelProfiler prof;
    Tensor dst(std::vector<float>{0, 0});
    const std::vector<std::uint32_t> idx{1, 1, 0};
    tensor::index_add(dst, idx, Tensor(std::vector<float>{1, 2, 3}), prof);
    EXPECT_FLOAT_EQ(dst[0], 3);
    EXPECT_FLOAT_EQ(dst[1], 3);
}

TEST(TensorOps, ElementwiseMath) {
    KernelProfiler prof;
    Tensor a(std::vector<float>{1, 2, 3});
    Tensor b(std::vector<float>{4, 5, 6});
    EXPECT_FLOAT_EQ(tensor::add(a, b, prof)[2], 9);
    EXPECT_FLOAT_EQ(tensor::sub(b, a, prof)[0], 3);
    EXPECT_FLOAT_EQ(tensor::mul(a, b, prof)[1], 10);
    EXPECT_FLOAT_EQ(tensor::div(b, a, prof)[1], 2.5);
    EXPECT_FLOAT_EQ(tensor::pow2(a, prof)[2], 9);
    EXPECT_FLOAT_EQ(tensor::sqrt(Tensor(std::vector<float>{16}), prof)[0], 4);
    EXPECT_FLOAT_EQ(tensor::mul_scalar(a, -2, prof)[0], -2);
}

TEST(TensorOps, WhereAndClamps) {
    KernelProfiler prof;
    Tensor cond(std::vector<float>{1, 0});
    Tensor a(std::vector<float>{7, 7});
    Tensor b(std::vector<float>{9, 9});
    const Tensor w = tensor::where(cond, a, b, prof);
    EXPECT_FLOAT_EQ(w[0], 7);
    EXPECT_FLOAT_EQ(w[1], 9);
    EXPECT_FLOAT_EQ(tensor::clamp_max(b, 8, prof)[0], 8);
    EXPECT_FLOAT_EQ(tensor::clamp_min(a, 8, prof)[0], 8);
}

TEST(TensorOps, SumReduction) {
    KernelProfiler prof;
    EXPECT_DOUBLE_EQ(tensor::sum(Tensor(std::vector<float>{1, 2, 3.5}), prof), 6.5);
}

TEST(KernelProfilerTest, CountsLaunchesAndTime) {
    KernelProfiler prof;
    prof.record("index", 1000);
    prof.record("index", 1000);
    prof.record("mul", 500);
    EXPECT_EQ(prof.total_launches(), 3u);
    EXPECT_EQ(prof.per_kernel_launches().at("index"), 2u);
    EXPECT_GT(prof.per_kernel_seconds().at("index"),
              prof.per_kernel_seconds().at("mul"));
    EXPECT_GT(prof.api_seconds(), 0.0);
    prof.reset();
    EXPECT_EQ(prof.total_launches(), 0u);
}

TEST(KernelProfilerTest, ApiFractionShrinksWithBiggerKernels) {
    KernelProfiler small, big;
    small.record("index", 100);
    big.record("index", 100'000'000);
    EXPECT_GT(small.api_time_fraction(), big.api_time_fraction());
}

graph::LeanGraph torch_graph() {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = 1500;
    spec.n_paths = 8;
    spec.seed = 3;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

core::LayoutConfig torch_cfg() {
    core::LayoutConfig cfg;
    cfg.iter_max = 8;
    cfg.steps_per_iter_factor = 2.0;
    return cfg;
}

TEST(TorchLayout, ConvergesWithModerateBatch) {
    const auto g = torch_graph();
    const auto r = tensor::layout_torch(g, torch_cfg(), 4096);
    const double sps = metrics::sampled_path_stress(g, r.layout, 20, 1).value;
    const auto cpu = core::layout_cpu(g, torch_cfg());
    const double sps_cpu = metrics::sampled_path_stress(g, cpu.layout, 20, 1).value;
    EXPECT_LT(sps, sps_cpu * 5 + 1.0);
}

TEST(TorchLayout, SmallerBatchesLaunchMoreKernels) {
    const auto g = torch_graph();
    const auto small = tensor::layout_torch(g, torch_cfg(), 512);
    const auto big = tensor::layout_torch(g, torch_cfg(), 16384);
    // Table IV: kernel launches scale inversely with batch size.
    EXPECT_GT(small.kernel_launches, 4 * big.kernel_launches);
    EXPECT_GT(small.api_time_fraction, big.api_time_fraction);
}

TEST(TorchLayout, IndexKernelDominatesBreakdown) {
    const auto g = torch_graph();
    const auto r = tensor::layout_torch(g, torch_cfg(), 8192);
    const auto& per = r.profiler.per_kernel_seconds();
    ASSERT_TRUE(per.contains("index"));
    // Fig. 7: the index (gather/scatter) kernel is the single biggest slice.
    for (const auto& [name, sec] : per) {
        if (name != "index") EXPECT_GE(per.at("index"), sec) << name;
    }
}

TEST(TorchLayout, HugeBatchDegradesQuality) {
    const auto g = torch_graph();
    const auto good = tensor::layout_torch(g, torch_cfg(), 4096);
    // A batch spanning several iterations' worth of updates goes stale.
    const auto stale = tensor::layout_torch(g, torch_cfg(), 4'000'000);
    const double s_good = metrics::sampled_path_stress(g, good.layout, 20, 1).value;
    const double s_stale = metrics::sampled_path_stress(g, stale.layout, 20, 1).value;
    // Table III: quality decays from "Good" to "Poor" as batches grow.
    EXPECT_GT(s_stale, s_good * 1.5);
}

TEST(TorchLayout, ModeledTimeDropsThenFlattens) {
    const auto g = torch_graph();
    const auto t_small = tensor::layout_torch(g, torch_cfg(), 256).modeled_seconds;
    const auto t_mid = tensor::layout_torch(g, torch_cfg(), 8192).modeled_seconds;
    EXPECT_GT(t_small, t_mid);  // launch overhead dominates small batches
}

}  // namespace

# Asserts the `pgl_layout --list-backends` contract that CI's backend smoke
# loop depends on: exit status 0, every registered engine name on stdout —
# exactly one per line, nothing else (no banner, no stderr noise) — so that
# `for backend in $(pgl_layout --list-backends)` iterates real names.
#
# Run as: cmake -DTOOL=<path-to-pgl_layout> -P check_list_backends.cmake

if(NOT TOOL)
  message(FATAL_ERROR "pass -DTOOL=<path to pgl_layout>")
endif()

execute_process(
  COMMAND ${TOOL} --list-backends
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-backends exited ${rc} (expected 0)")
endif()
if(NOT err STREQUAL "")
  message(FATAL_ERROR "--list-backends wrote to stderr: [${err}]")
endif()

string(REGEX REPLACE "\n$" "" trimmed "${out}")
if(trimmed STREQUAL "")
  message(FATAL_ERROR "--list-backends printed nothing")
endif()
string(REPLACE "\n" ";" lines "${trimmed}")

foreach(line IN LISTS lines)
  if(NOT line MATCHES "^[a-z0-9][a-z0-9-]*$")
    message(FATAL_ERROR "non-name output line: [${line}]")
  endif()
endforeach()

# Every built-in engine must be listed.
foreach(required cpu-soa cpu-aos cpu-batched cpu-pipelined
                 gpusim-base gpusim-optimized torch)
  list(FIND lines ${required} idx)
  if(idx EQUAL -1)
    message(FATAL_ERROR "built-in backend missing from listing: ${required}")
  endif()
endforeach()

list(LENGTH lines n)
message(STATUS "--list-backends contract OK (${n} backends)")

# CLI-level ingestion contract, run as a ctest:
#
#   1. Checked numeric option parsing: garbage / out-of-range values for
#      --iters, --threads, --component-workers must exit non-zero with a
#      diagnostic naming the flag (std::atoi silently made them 0).
#   2. Graph-cache byte equivalence: laying out a whole-genome GFA and
#      laying out its .pgg cache (--save-graph / --load-graph) must produce
#      byte-identical .lay files, with and without --partition.
#   3. A W-record-only, CRLF-terminated GFA (tests/data/walks_crlf.gfa)
#      must ingest and lay out end-to-end.
#
# Expects -DTOOL=<pgl_layout> -DGENERATOR=<whole_genome_layout>
#         -DDATA=<tests/data dir> -DWORKDIR=<scratch dir>
foreach(var TOOL GENERATOR DATA WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_ingest_cli.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# --- 1. numeric option error paths -----------------------------------------
foreach(bad_args
    "--iters|banana"
    "--iters|-3"
    "--iters|99999999999999999999"
    "--threads|2x"
    "--component-workers|many"
    "--factor|fast"
    "--seed|0xg")
  string(REPLACE "|" ";" bad_list "${bad_args}")
  list(GET bad_list 0 flag)
  execute_process(
    COMMAND ${TOOL} -i in.gfa -o out.lay --partition ${bad_list}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "pgl_layout accepted bad value for ${flag}: ${bad_args}")
  endif()
  if(NOT err MATCHES "${flag}")
    message(FATAL_ERROR
        "diagnostic for ${bad_args} does not name the flag; stderr: ${err}")
  endif()
endforeach()
message(STATUS "numeric option error paths OK")

# --- 2. GFA vs .pgg cache byte equivalence ---------------------------------
execute_process(
  COMMAND ${GENERATOR} ${WORKDIR} 3 0.0002 cpu-batched
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "whole_genome_layout failed: ${err}")
endif()
set(gfa "${WORKDIR}/whole_genome.gfa")

# Convert-only mode: --save-graph without -o writes the cache and exits.
execute_process(
  COMMAND ${TOOL} -i ${gfa} --save-graph ${WORKDIR}/genome.pgg
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--save-graph convert run failed: ${err}")
endif()

set(common --iters 3 --factor 0.5 --seed 42)
foreach(mode plain partition)
  if(mode STREQUAL "partition")
    set(extra --partition --component-workers 2)
  else()
    set(extra "")
  endif()
  execute_process(
    COMMAND ${TOOL} -i ${gfa} -o ${WORKDIR}/${mode}_gfa.lay ${common} ${extra}
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "GFA ${mode} run failed: ${err}")
  endif()
  execute_process(
    COMMAND ${TOOL} --load-graph ${WORKDIR}/genome.pgg
            -o ${WORKDIR}/${mode}_pgg.lay ${common} ${extra}
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR ".pgg ${mode} run failed: ${err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/${mode}_gfa.lay ${WORKDIR}/${mode}_pgg.lay
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "${mode}: layout from .pgg cache differs from layout from GFA")
  endif()
  message(STATUS "${mode}: GFA and .pgg layouts are byte-identical")
endforeach()

# Auto-detect by extension: -i genome.pgg must load the cache too.
execute_process(
  COMMAND ${TOOL} -i ${WORKDIR}/genome.pgg -o ${WORKDIR}/auto_pgg.lay ${common}
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "-i with .pgg extension failed: ${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/auto_pgg.lay ${WORKDIR}/plain_gfa.lay
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "-i auto-detected .pgg layout differs")
endif()

# --- 3. W-record-only CRLF GFA lays out end-to-end -------------------------
execute_process(
  COMMAND ${TOOL} -i ${DATA}/walks_crlf.gfa -o ${WORKDIR}/walks.lay
          --iters 3 --factor 2 --stress
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "W-only CRLF GFA failed to lay out: ${err}")
endif()
if(NOT EXISTS "${WORKDIR}/walks.lay")
  message(FATAL_ERROR "W-only run produced no layout file")
endif()
message(STATUS "W-record-only CRLF GFA laid out end-to-end")

// Tests for the GPU simulator: functional quality, counter directions for
// each of the paper's three optimizations, and the time model.
#include <gtest/gtest.h>

#include "core/cpu_engine.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "metrics/path_stress.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using gpusim::GpuSimResult;
using gpusim::KernelConfig;
using gpusim::SimOptions;

graph::LeanGraph test_graph(std::uint64_t backbone = 3000, std::uint32_t paths = 8) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = paths;
    spec.seed = 21;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

core::LayoutConfig small_cfg() {
    core::LayoutConfig cfg;
    cfg.iter_max = 6;
    cfg.steps_per_iter_factor = 2.0;
    return cfg;
}

GpuSimResult run(const graph::LeanGraph& g, const KernelConfig& k,
                 const gpusim::GpuSpec& spec = gpusim::rtx_a6000()) {
    SimOptions opt;
    opt.counter_sample_period = 4;
    opt.cache_scale = 0.001;
    return gpusim::simulate_gpu_layout(g, small_cfg(), k, spec, opt);
}

TEST(GpuSpecs, PresetsMatchPublishedNumbers) {
    const auto a6000 = gpusim::rtx_a6000();
    EXPECT_EQ(a6000.sm_count, 84u);
    EXPECT_NEAR(a6000.dram_gbps, 768.0, 1e-9);
    const auto a = gpusim::a100();
    EXPECT_EQ(a.sm_count, 108u);
    EXPECT_NEAR(a.dram_gbps, 1555.0, 1e-9);
    EXPECT_GT(a.l2_bytes, a6000.l2_bytes);
}

TEST(GpuSim, ProducesConvergedLayout) {
    const auto g = test_graph();
    const auto r = run(g, KernelConfig::optimized());
    const auto sps = metrics::sampled_path_stress(g, r.layout, 20, 1);
    // A converged PG-SGD layout of these graphs lands well below stress 10;
    // the initial jittered-linear layout of a variant-rich graph is worse.
    EXPECT_LT(sps.value, 10.0);
    EXPECT_GT(r.counters.lane_updates, 0u);
}

TEST(GpuSim, QualityComparableToCpuBaseline) {
    const auto g = test_graph();
    const auto cfg = small_cfg();
    const auto cpu = core::layout_cpu(g, cfg);
    const auto gpu = run(g, KernelConfig::optimized());
    const double s_cpu = metrics::sampled_path_stress(g, cpu.layout, 20, 1).value;
    const double s_gpu = metrics::sampled_path_stress(g, gpu.layout, 20, 1).value;
    // Table VIII: GPU/CPU sampled-path-stress ratio ~ 1 (we allow wide
    // slack because these are tiny graphs with few iterations).
    EXPECT_GT(s_gpu / s_cpu, 0.2);
    EXPECT_LT(s_gpu / s_cpu, 5.0);
}

TEST(GpuSim, LaunchesOneKernelPerIterationPlusInit) {
    const auto g = test_graph(500, 4);
    const auto r = run(g, KernelConfig::base());
    EXPECT_EQ(r.counters.kernel_launches, small_cfg().iter_max + 1);
}

TEST(GpuSim, CoalescedRandomStatesReduceSectorsPerRequest) {
    const auto g = test_graph();
    KernelConfig base = KernelConfig::base();
    KernelConfig crs = base;
    crs.coalesced_rng = true;
    const auto r_base = run(g, base);
    const auto r_crs = run(g, crs);
    // Table X: 26.8 -> 9.9 sectors per request (2.7x).
    EXPECT_GT(r_base.counters.sectors_per_request(),
              1.8 * r_crs.counters.sectors_per_request());
    EXPECT_GT(r_base.counters.l1_bytes(), r_crs.counters.l1_bytes());
}

TEST(GpuSim, CacheFriendlyLayoutReducesDramTraffic) {
    const auto g = test_graph();
    KernelConfig base = KernelConfig::base();
    KernelConfig cdl = base;
    cdl.cache_friendly_layout = true;
    const auto r_base = run(g, base);
    const auto r_cdl = run(g, cdl);
    // Table IX: DRAM access drops ~1.3x with CDL.
    EXPECT_GT(r_base.counters.dram_bytes(), 1.05 * r_cdl.counters.dram_bytes());
}

TEST(GpuSim, WarpMergingReducesInstructionsAndRaisesOccupancy) {
    const auto g = test_graph();
    KernelConfig base = KernelConfig::base();
    KernelConfig wm = base;
    wm.warp_merge = true;
    const auto r_base = run(g, base);
    const auto r_wm = run(g, wm);
    // Table XI: executed instructions 1.5x lower, active threads 20.5->27.9.
    EXPECT_GT(r_base.counters.executed_warp_instructions,
              1.2 * r_wm.counters.executed_warp_instructions);
    EXPECT_GT(r_wm.counters.avg_active_threads(),
              r_base.counters.avg_active_threads() + 3.0);
    EXPECT_LT(r_base.counters.avg_active_threads(), 24.0);
    EXPECT_GT(r_wm.counters.avg_active_threads(), 26.0);
}

TEST(GpuSim, EveryOptimizationImprovesModeledTime) {
    const auto g = test_graph();
    KernelConfig k = KernelConfig::base();
    const double t0 = run(g, k).modeled_seconds;
    k.cache_friendly_layout = true;
    const double t1 = run(g, k).modeled_seconds;
    k.coalesced_rng = true;
    const double t2 = run(g, k).modeled_seconds;
    k.warp_merge = true;
    const double t3 = run(g, k).modeled_seconds;
    EXPECT_LT(t1, t0);
    EXPECT_LT(t2, t1);
    EXPECT_LT(t3, t2);
}

TEST(GpuSim, A100FasterThanA6000) {
    const auto g = test_graph();
    const auto k = KernelConfig::optimized();
    const double t_a6000 = run(g, k, gpusim::rtx_a6000()).modeled_seconds;
    const double t_a100 = run(g, k, gpusim::a100()).modeled_seconds;
    EXPECT_LT(t_a100, t_a6000);
}

TEST(GpuSim, DataReuseTradesQualityForSpeed) {
    const auto g = test_graph();
    KernelConfig base = KernelConfig::optimized();
    KernelConfig reuse = base;
    reuse.data_reuse_factor = 8;
    reuse.step_reduction_factor = 2.5;
    const auto r_base = run(g, base);
    const auto r_reuse = run(g, reuse);
    // Fewer steps -> less modeled time.
    EXPECT_LT(r_reuse.modeled_seconds, r_base.modeled_seconds);
    // Aggressive reuse costs layout quality (Fig. 17: DRF 8 is "poor").
    const double s_base = metrics::sampled_path_stress(g, r_base.layout, 20, 1).value;
    const double s_reuse =
        metrics::sampled_path_stress(g, r_reuse.layout, 20, 1).value;
    EXPECT_GT(s_reuse, s_base);
}

TEST(GpuSim, TimeModelMonotonicInDramTraffic) {
    gpusim::GpuCounters a, b;
    a.l1_sectors = b.l1_sectors = 1e9;
    a.l2_sectors = b.l2_sectors = 1e8;
    a.dram_sectors = 1e7;
    b.dram_sectors = 5e7;
    a.executed_warp_instructions = b.executed_warp_instructions = 1e9;
    const auto spec = gpusim::rtx_a6000();
    EXPECT_LT(gpusim::model_time_seconds(a, spec),
              gpusim::model_time_seconds(b, spec));
}

TEST(GpuSim, DeterministicAcrossRuns) {
    const auto g = test_graph(800, 4);
    const auto r1 = run(g, KernelConfig::optimized());
    const auto r2 = run(g, KernelConfig::optimized());
    ASSERT_EQ(r1.layout.size(), r2.layout.size());
    for (std::size_t i = 0; i < r1.layout.size(); ++i) {
        EXPECT_EQ(r1.layout.start_x[i], r2.layout.start_x[i]);
    }
    EXPECT_EQ(r1.counters.lane_updates, r2.counters.lane_updates);
}

}  // namespace

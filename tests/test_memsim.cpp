// Tests for the cache simulator and the CPU characterization replayer.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "graph/lean_graph.hpp"
#include "memsim/cache.hpp"
#include "memsim/characterize.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using memsim::Cache;
using memsim::CacheConfig;
using memsim::CacheHierarchy;

TEST(Cache, ColdMissThenHit) {
    Cache c(CacheConfig{1024, 64, 2});
    EXPECT_FALSE(c.access_line(5));
    EXPECT_TRUE(c.access_line(5));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, LruEvictsOldest) {
    // 2-way, 2 sets (4 lines of 64B = 256B total).
    Cache c(CacheConfig{256, 64, 2});
    // Lines 0, 2, 4 all map to set 0 (line % 2 sets).
    c.access_line(0);
    c.access_line(2);
    c.access_line(4);  // evicts line 0 (LRU)
    EXPECT_TRUE(c.access_line(2));
    EXPECT_TRUE(c.access_line(4));
    EXPECT_FALSE(c.access_line(0));  // was evicted
}

TEST(Cache, LruRefreshOnHit) {
    Cache c(CacheConfig{256, 64, 2});
    c.access_line(0);
    c.access_line(2);
    c.access_line(0);  // refresh 0: now 2 is LRU
    c.access_line(4);  // evicts 2
    EXPECT_TRUE(c.access_line(0));
    EXPECT_FALSE(c.access_line(2));
}

TEST(Cache, MultiLineAccessCountsEachLine) {
    Cache c(CacheConfig{1024, 64, 2});
    // 100 bytes starting at 60 spans lines 0 and 1 (and byte 159 is line 2).
    const auto misses = c.access(60, 100);
    EXPECT_EQ(misses, 3u);
    EXPECT_EQ(c.stats().accesses, 3u);
}

TEST(Cache, SequentialStreamHitsWithinLine) {
    Cache c(CacheConfig{32 * 1024, 64, 8});
    for (std::uint64_t a = 0; a < 6400; a += 4) c.access(a, 4);
    // 1600 accesses over 100 lines: 100 misses.
    EXPECT_EQ(c.stats().misses, 100u);
}

TEST(CacheHierarchy, MissesRippleToDram) {
    CacheHierarchy h({CacheConfig{256, 64, 2}, CacheConfig{1024, 64, 4}});
    h.access(0, 4);
    EXPECT_EQ(h.dram_accesses(), 1u);
    h.access(0, 4);  // L1 hit
    EXPECT_EQ(h.dram_accesses(), 1u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions) {
    CacheHierarchy h({CacheConfig{128, 64, 1}, CacheConfig{64 * 1024, 64, 8}});
    h.access(0, 4);
    h.access(128, 4);  // maps to same L1 set (2 sets: line 0 and line 2)
    h.access(256, 4);  // evicts line 0 from L1
    h.reset_stats();
    h.access(0, 4);  // L1 miss, L2 hit -> no DRAM
    EXPECT_EQ(h.dram_accesses(), 0u);
    EXPECT_EQ(h.level(0).stats().misses, 1u);
    EXPECT_EQ(h.level(1).stats().hits, 1u);
}

TEST(CacheHierarchy, DramBytesAreLineSized) {
    CacheHierarchy h({CacheConfig{256, 64, 2}});
    h.access(0, 4);
    EXPECT_EQ(h.dram_bytes(), 64u);
}

TEST(XeonHierarchy, HasThreeLevels) {
    const auto levels = memsim::xeon_6246r_hierarchy();
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_LT(levels[0].size_bytes, levels[1].size_bytes);
    EXPECT_LT(levels[1].size_bytes, levels[2].size_bytes);
}

TEST(XeonHierarchy, ScalesDownWithFloor) {
    const auto levels = memsim::xeon_6246r_hierarchy(1e-6);
    for (const auto& l : levels) EXPECT_GE(l.size_bytes, 4096u);
}

graph::LeanGraph characterize_graph(std::uint64_t backbone) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = 8;
    spec.seed = 11;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

TEST(Characterize, WorkloadIsMemoryBound) {
    const auto g = characterize_graph(20000);
    core::LayoutConfig cfg;
    memsim::CharacterizeOptions opt;
    opt.sample_updates = 200000;
    opt.llc_scale = 0.002;  // scaled graph -> scaled caches
    const auto ch = memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, opt);
    // The paper reports 67-78% memory stall cycles and >50% memory-bound
    // slots on all graphs.
    EXPECT_GT(ch.memory_stall_pct, 50.0);
    EXPECT_GT(ch.llc_load_miss_rate, 0.3);
}

TEST(Characterize, MissRateGrowsWithGraphSize) {
    core::LayoutConfig cfg;
    memsim::CharacterizeOptions opt;
    opt.sample_updates = 150000;
    opt.llc_scale = 0.002;
    const auto small = memsim::characterize_cpu(characterize_graph(2000), cfg,
                                                core::CoordStore::kSoA, opt);
    const auto large = memsim::characterize_cpu(characterize_graph(40000), cfg,
                                                core::CoordStore::kSoA, opt);
    // Table II: LLC miss rate rises from 75% (small) to 90% (Chr.1).
    EXPECT_GT(large.llc_load_miss_rate, small.llc_load_miss_rate);
}

TEST(Characterize, CdlReducesLlcLoads) {
    const auto g = characterize_graph(20000);
    core::LayoutConfig cfg;
    memsim::CharacterizeOptions opt;
    opt.sample_updates = 200000;
    opt.llc_scale = 0.002;
    const auto soa = memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, opt);
    const auto aos = memsim::characterize_cpu(g, cfg, core::CoordStore::kAoS, opt);
    // Table IX: CDL cuts LLC loads ~3.2x and misses ~3.3x.
    EXPECT_GT(static_cast<double>(soa.llc.accesses),
              1.5 * static_cast<double>(aos.llc.accesses));
    EXPECT_GT(static_cast<double>(soa.llc.misses),
              1.5 * static_cast<double>(aos.llc.misses));
}

TEST(Characterize, CdlReducesModeledCycles) {
    const auto g = characterize_graph(20000);
    core::LayoutConfig cfg;
    memsim::CharacterizeOptions opt;
    opt.sample_updates = 200000;
    opt.llc_scale = 0.002;
    const auto soa = memsim::characterize_cpu(g, cfg, core::CoordStore::kSoA, opt);
    const auto aos = memsim::characterize_cpu(g, cfg, core::CoordStore::kAoS, opt);
    EXPECT_LT(aos.cycles_per_update, soa.cycles_per_update);
    memsim::CpuPerfModel model;
    EXPECT_LT(model.seconds(aos, 1000000), model.seconds(soa, 1000000));
}

TEST(CpuPerfModel, LinearInUpdates) {
    memsim::CpuCharacterization ch;
    ch.cycles_per_update = 1000;
    memsim::CpuPerfModel model;
    const double t1 = model.seconds(ch, 1'000'000);
    const double t2 = model.seconds(ch, 2'000'000);
    EXPECT_NEAR(t2, 2 * t1, t1 * 1e-9);
}

}  // namespace

// Tests for the streaming ingestion subsystem: the gfa_stream reader
// (GFA 1.0 P records, GFA 1.1 W walks, CRLF tolerance, malformed-input
// rejection), equivalence with the legacy VariationGraph route, and the
// .pgg binary graph cache (round trip, truncation, corruption, checksum).
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "graph/gfa.hpp"
#include "graph/gfa_stream.hpp"
#include "graph/lean_graph.hpp"
#include "io/pgg_io.hpp"
#include "partition/components.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using graph::LeanGraph;
using graph::LeanIngest;

/// Asserts two lean graphs are bit-identical in every field the engines
/// and the partition subsystem consume.
void expect_same_lean(const LeanGraph& a, const LeanGraph& b) {
    ASSERT_EQ(a.node_count(), b.node_count());
    ASSERT_EQ(a.path_count(), b.path_count());
    ASSERT_EQ(a.total_path_steps(), b.total_path_steps());
    EXPECT_EQ(a.total_path_nucleotides(), b.total_path_nucleotides());
    EXPECT_EQ(a.max_path_nuc_length(), b.max_path_nuc_length());
    for (std::uint32_t v = 0; v < a.node_count(); ++v) {
        ASSERT_EQ(a.node_length(v), b.node_length(v)) << "node " << v;
    }
    for (std::uint32_t p = 0; p < a.path_count(); ++p) {
        ASSERT_EQ(a.path_step_count(p), b.path_step_count(p)) << "path " << p;
        EXPECT_EQ(a.path_nuc_length(p), b.path_nuc_length(p));
        for (std::uint32_t i = 0; i < a.path_step_count(p); ++i) {
            const auto& ra = a.step_record(p, i);
            const auto& rb = b.step_record(p, i);
            ASSERT_EQ(ra.node, rb.node) << "path " << p << " step " << i;
            ASSERT_EQ(ra.orient, rb.orient);
            ASSERT_EQ(ra.position, rb.position);
        }
    }
}

const std::string kMiniGfa =
    "H\tVN:Z:1.0\n"
    "S\ts1\tACGT\n"
    "S\ts2\tTT\n"
    "S\ts3\tG\n"
    "L\ts1\t+\ts2\t-\t0M\n"
    "L\ts2\t+\ts3\t+\t0M\n"
    "P\tp1\ts1+,s2-,s3+\t*\n"
    "P\tp2\ts1+,s2+\t*\n";

// --- streaming reader basics ---

TEST(GfaStream, ParsesSegmentsLinksPaths) {
    std::stringstream ss(kMiniGfa);
    const auto ing = graph::ingest_gfa(ss);
    EXPECT_EQ(ing.graph.node_count(), 3u);
    EXPECT_EQ(ing.graph.path_count(), 2u);
    EXPECT_EQ(ing.graph.total_path_steps(), 5u);
    EXPECT_EQ(ing.edge_count, 2u);
    ASSERT_EQ(ing.segment_names.size(), 3u);
    EXPECT_EQ(ing.segment_names[0], "s1");
    EXPECT_EQ(ing.segment_names[2], "s3");
    ASSERT_EQ(ing.path_names.size(), 2u);
    EXPECT_EQ(ing.path_names[0], "p1");
    // Orientation and positions of p1 = s1(4) s2rev(2) s3(1).
    EXPECT_FALSE(ing.graph.step_is_reverse(0, 0));
    EXPECT_TRUE(ing.graph.step_is_reverse(0, 1));
    EXPECT_EQ(ing.graph.step_position(0, 1), 4u);
    EXPECT_EQ(ing.graph.step_position(0, 2), 6u);
    EXPECT_EQ(ing.graph.path_nuc_length(0), 7u);
    // One connected component; every node and path labeled 0.
    EXPECT_EQ(ing.component_count, 1u);
    EXPECT_EQ(ing.node_component, (std::vector<std::uint32_t>{0, 0, 0}));
    EXPECT_EQ(ing.path_component, (std::vector<std::uint32_t>{0, 0}));
}

TEST(GfaStream, ParsesWalkRecords) {
    const std::string gfa =
        "H\tVN:Z:1.1\n"
        "S\ts1\tACGT\n"
        "S\ts2\tTT\n"
        "S\ts3\tG\n"
        "W\tHG002\t1\tchr1\t0\t7\t>s1<s2>s3\n"
        "W\tHG002\t2\tchr1\t*\t*\t>s1>s2\n";
    std::stringstream ss(gfa);
    const auto ing = graph::ingest_gfa(ss);
    EXPECT_EQ(ing.graph.path_count(), 2u);
    EXPECT_EQ(ing.path_names[0], "HG002#1#chr1:0-7");
    EXPECT_EQ(ing.path_names[1], "HG002#2#chr1");  // '*' range omitted
    EXPECT_FALSE(ing.graph.step_is_reverse(0, 0));
    EXPECT_TRUE(ing.graph.step_is_reverse(0, 1));   // '<' = reverse
    EXPECT_FALSE(ing.graph.step_is_reverse(0, 2));
    EXPECT_EQ(ing.graph.path_nuc_length(0), 7u);
    // Walk steps connect the component even without L records.
    EXPECT_EQ(ing.component_count, 1u);
}

TEST(GfaStream, ToleratesCrlfAndTrailingWhitespace) {
    std::string crlf;
    for (const char c : kMiniGfa) {
        if (c == '\n') crlf += "\r\n";
        else crlf += c;
    }
    std::stringstream unix_ss(kMiniGfa), crlf_ss(crlf);
    const auto a = graph::ingest_gfa(unix_ss);
    const auto b = graph::ingest_gfa(crlf_ss);
    expect_same_lean(a.graph, b.graph);
    EXPECT_EQ(a.segment_names, b.segment_names);  // no '\r' in names
    EXPECT_EQ(a.path_names, b.path_names);
}

TEST(GfaStream, HonorsLnLengthTagOnSequenceFreeSegments) {
    const std::string gfa =
        "S\ts1\t*\tLN:i:123\n"
        "S\ts2\t*\n"
        "P\tp\ts1+,s2+\t*\n";
    std::stringstream ss(gfa);
    const auto ing = graph::ingest_gfa(ss);
    EXPECT_EQ(ing.graph.node_length(0), 123u);
    EXPECT_EQ(ing.graph.node_length(1), 0u);
}

TEST(GfaStream, LabelsMultipleComponents) {
    const std::string gfa =
        "S\ta1\tAA\n"
        "S\ta2\tCC\n"
        "S\tb1\tGG\n"
        "S\tb2\tTT\n"
        "S\tlonely\tA\n"
        "L\ta1\t+\ta2\t+\t0M\n"
        "P\tpb\tb1+,b2+\t*\n";
    std::stringstream ss(gfa);
    const auto ing = graph::ingest_gfa(ss);
    // Components numbered by smallest node id: {a1,a2}=0, {b1,b2}=1,
    // {lonely}=2.
    EXPECT_EQ(ing.component_count, 3u);
    EXPECT_EQ(ing.node_component, (std::vector<std::uint32_t>{0, 0, 1, 1, 2}));
    EXPECT_EQ(ing.path_component, (std::vector<std::uint32_t>{1}));
}

// --- malformed input rejection ---

TEST(GfaStream, RejectsDuplicateSegments) {
    std::stringstream ss("S\tx\tA\nS\tx\tC\n");
    EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
}

TEST(GfaStream, RejectsUnknownSegmentInLink) {
    std::stringstream ss("S\tx\tA\nL\tx\t+\tmissing\t+\t0M\n");
    EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
}

TEST(GfaStream, RejectsUnknownSegmentInPathAndWalk) {
    {
        std::stringstream ss("S\tx\tA\nP\tp\tx+,missing+\t*\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
    {
        std::stringstream ss("S\tx\tA\nW\ts\t1\tc\t0\t1\t>x>missing\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
}

TEST(GfaStream, RejectsEmptyPathAndWalk) {
    {
        std::stringstream ss("S\tx\tA\nP\tp\t\t*\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
    {
        std::stringstream ss("S\tx\tA\nW\ts\t1\tc\t0\t0\t*\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
}

TEST(GfaStream, RejectsBadOrientationAndMalformedWalk) {
    {
        std::stringstream ss("S\tx\tA\nS\ty\tC\nL\tx\t?\ty\t+\t0M\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
    {
        std::stringstream ss("S\tx\tA\nW\ts\t1\tc\t0\t1\tx>\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
    {
        std::stringstream ss("S\tx\tA\nW\ts\t1\tc\t0\t1\t><\n");
        EXPECT_THROW(graph::ingest_gfa(ss), std::runtime_error);
    }
}

// --- equivalence with the legacy VariationGraph route ---

TEST(GfaStream, MatchesVariationGraphRouteOnWholeGenome) {
    const auto vg = workloads::generate_whole_genome(
        workloads::whole_genome_spec(3, 0.0003, 77));
    std::stringstream gfa;
    graph::write_gfa(vg, gfa);

    // Legacy: GFA -> VariationGraph -> LeanGraph.
    const auto vg2 = graph::read_gfa(gfa);
    const auto lean_legacy = graph::LeanGraph::from_graph(vg2);

    // Streaming: GFA -> LeanGraph, no intermediate.
    gfa.clear();
    gfa.seekg(0);
    const auto ing = graph::ingest_gfa(gfa);
    expect_same_lean(ing.graph, lean_legacy);

    // The ingest-time component labels must match the rich-graph labeler
    // (edge + path connectivity) so partitioned runs are byte-identical.
    const auto labels = partition::label_components(vg2);
    EXPECT_EQ(ing.component_count, labels.count);
    EXPECT_EQ(ing.node_component, labels.node_component);
    EXPECT_EQ(ing.path_component, labels.path_component);
}

TEST(GfaStream, WalkAndPathRecordsYieldIdenticalStepRecords) {
    const std::string base =
        "S\ts1\tACGT\nS\ts2\tTT\nS\ts3\tG\n";
    std::stringstream p_ss(base + "P\tw\ts1+,s2-,s3+\t*\n");
    std::stringstream w_ss(base + "W\tsamp\t1\tchr\t0\t7\t>s1<s2>s3\n");
    const auto via_p = graph::ingest_gfa(p_ss);
    const auto via_w = graph::ingest_gfa(w_ss);
    expect_same_lean(via_p.graph, via_w.graph);
}

// --- .pgg binary graph cache ---

LeanIngest make_ingest() {
    const auto vg = workloads::generate_whole_genome(
        workloads::whole_genome_spec(2, 0.0002, 5));
    std::stringstream gfa;
    graph::write_gfa(vg, gfa);
    return graph::ingest_gfa(gfa);
}

TEST(PggIo, RoundTripIsExact) {
    const auto ing = make_ingest();
    std::stringstream ss;
    io::write_pgg(ing, ss);
    const auto back = io::read_pgg(ss);
    expect_same_lean(back.graph, ing.graph);
    EXPECT_EQ(back.segment_names, ing.segment_names);
    EXPECT_EQ(back.path_names, ing.path_names);
    EXPECT_EQ(back.component_count, ing.component_count);
    EXPECT_EQ(back.node_component, ing.node_component);
    EXPECT_EQ(back.path_component, ing.path_component);
}

TEST(PggIo, RejectsBadMagic) {
    std::stringstream ss("definitely not a graph cache");
    EXPECT_THROW(io::read_pgg(ss), std::runtime_error);
}

TEST(PggIo, RejectsTruncatedHeader) {
    const auto ing = make_ingest();
    std::stringstream full;
    io::write_pgg(ing, full);
    std::stringstream cut(full.str().substr(0, 14));  // inside the counts
    EXPECT_THROW(io::read_pgg(cut), std::runtime_error);
}

TEST(PggIo, RejectsTruncatedPayload) {
    const auto ing = make_ingest();
    std::stringstream full;
    io::write_pgg(ing, full);
    const std::string bytes = full.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(io::read_pgg(cut), std::runtime_error);
}

TEST(PggIo, RejectsImplausibleHeaderCounts) {
    const auto ing = make_ingest();
    std::stringstream full;
    io::write_pgg(ing, full);
    std::string bytes = full.str();
    // node_count lives at offset 12 (magic 8 + flags 4); blow it up.
    for (std::size_t i = 12; i < 20; ++i) bytes[i] = '\xFF';
    std::stringstream corrupt(bytes);
    EXPECT_THROW(io::read_pgg(corrupt), std::runtime_error);
}

TEST(PggIo, RejectsHeaderCountsLargerThanFile) {
    const auto ing = make_ingest();
    std::stringstream full;
    io::write_pgg(ing, full);
    std::string bytes = full.str();
    // A node_count that passes the plausibility cap but dwarfs the actual
    // file must be rejected by the payload-size cross-check *before* any
    // count-sized allocation is attempted.
    const std::uint64_t big = 1ull << 30;
    std::memcpy(&bytes[12], &big, sizeof big);
    std::stringstream corrupt(bytes);
    try {
        io::read_pgg(corrupt);
        FAIL() << "oversized header was accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
            << e.what();
    }
}

TEST(PggIo, RejectsChecksumMismatch) {
    const auto ing = make_ingest();
    std::stringstream full;
    io::write_pgg(ing, full);
    std::string bytes = full.str();
    // Flip one bit inside the node-length table (offset 40 onward): the
    // value itself is plausible, so only the checksum can catch it.
    bytes[44] = static_cast<char>(bytes[44] ^ 0x01);
    std::stringstream corrupt(bytes);
    try {
        io::read_pgg(corrupt);
        FAIL() << "corrupt cache was accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
            << e.what();
    }
}

TEST(PggIo, FileRoundTripAndExtensionDispatch) {
    const auto ing = make_ingest();
    const std::string gfa_path = ::testing::TempDir() + "/pgl_ingest.gfa";
    const std::string pgg_path = ::testing::TempDir() + "/pgl_ingest.pgg";
    {
        // Write a GFA alongside the cache so both dispatch branches run.
        const auto vg = workloads::generate_whole_genome(
            workloads::whole_genome_spec(2, 0.0002, 5));
        graph::write_gfa_file(vg, gfa_path);
    }
    io::write_pgg_file(ing, pgg_path);
    EXPECT_TRUE(io::is_pgg_path(pgg_path));
    EXPECT_FALSE(io::is_pgg_path(gfa_path));

    const auto from_pgg = io::load_graph_file(pgg_path);
    const auto from_gfa = io::load_graph_file(gfa_path);
    expect_same_lean(from_pgg.graph, ing.graph);
    expect_same_lean(from_gfa.graph, ing.graph);
    EXPECT_EQ(from_pgg.node_component, from_gfa.node_component);
}

TEST(PggIo, FileRejectsTrailingBytesAfterChecksum) {
    const auto ing = make_ingest();
    const std::string path = ::testing::TempDir() + "/pgl_trailing.pgg";
    io::write_pgg_file(ing, path);
    {
        std::ofstream append(path, std::ios::binary | std::ios::app);
        append << "junk";
    }
    EXPECT_THROW(io::read_pgg_file(path), std::runtime_error);
}

TEST(PggIo, MissingFileThrows) {
    EXPECT_THROW(io::read_pgg_file("/nonexistent/nowhere.pgg"),
                 std::runtime_error);
}

// --- legacy reader keeps up: W walks, CRLF, LN tags ---

TEST(Gfa, LegacyReaderParsesWalkRecords) {
    const std::string gfa =
        "S\ts1\tACGT\n"
        "S\ts2\tTT\n"
        "W\tHG002\t1\tchr1\t0\t6\t>s1<s2\n";
    std::stringstream ss(gfa);
    const auto g = graph::read_gfa(ss);
    ASSERT_EQ(g.path_count(), 1u);
    EXPECT_EQ(g.path(0).name, "HG002#1#chr1:0-6");
    ASSERT_EQ(g.path(0).steps.size(), 2u);
    EXPECT_TRUE(g.path(0).steps[1].is_reverse());
    // add_path materializes the traversed edge, as for P records.
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Gfa, SequenceFreeSegmentsRoundTripWithoutFabricatedBases) {
    // "S name * LN:i:N" must keep its declared length without synthesizing
    // N placeholder bases — and write back as "* LN:i:N", not as sequence.
    std::stringstream in("S\tbig\t*\tLN:i:8\nS\ttiny\t*\nP\tp\tbig+,tiny+\t*\n");
    const auto g = graph::read_gfa(in);
    EXPECT_EQ(g.node_length(0), 8u);
    EXPECT_EQ(g.sequence(0), "");  // no fabricated bytes
    EXPECT_EQ(g.node_length(1), 0u);
    std::stringstream out;
    graph::write_gfa(g, out);
    EXPECT_NE(out.str().find("S\tbig\t*\tLN:i:8"), std::string::npos);
    EXPECT_NE(out.str().find("S\ttiny\t*\n"), std::string::npos);
}

TEST(Gfa, LegacyReaderToleratesCrlf) {
    std::string crlf;
    for (const char c : kMiniGfa) {
        if (c == '\n') crlf += "\r\n";
        else crlf += c;
    }
    std::stringstream ss(crlf);
    const auto g = graph::read_gfa(ss);
    EXPECT_EQ(g.node_count(), 3u);
    EXPECT_EQ(g.path_count(), 2u);
    EXPECT_EQ(g.node_name(0), "s1");  // no trailing '\r' registered
    EXPECT_EQ(g.validate(), "");
}

}  // namespace

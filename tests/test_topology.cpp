// Tests for the NUMA topology layer: cpulist parsing, sysfs-fixture
// discovery, policy parsing, worker placement plans, placement resolution
// and the node-local allocator. Discovery is exercised against temp-dir
// fixtures shaped like /sys/devices/system/node, so the tests behave the
// same on a laptop, a restricted container, and a multi-socket box.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/node_alloc.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace pgl;
namespace fs = std::filesystem;

using Cpus = std::vector<std::uint32_t>;

// --- parse_cpu_list ---

TEST(CpuList, ParsesRangesAndSingles) {
    EXPECT_EQ(core::parse_cpu_list("0-3,8,10-11"), (Cpus{0, 1, 2, 3, 8, 10, 11}));
    EXPECT_EQ(core::parse_cpu_list("5"), (Cpus{5}));
    EXPECT_EQ(core::parse_cpu_list("0\n"), (Cpus{0}));
    EXPECT_EQ(core::parse_cpu_list(" 2 , 4 "), (Cpus{2, 4}));
}

TEST(CpuList, SortsAndDeduplicates) {
    EXPECT_EQ(core::parse_cpu_list("8,0-2,1"), (Cpus{0, 1, 2, 8}));
}

TEST(CpuList, EmptyInputYieldsEmptyList) {
    EXPECT_TRUE(core::parse_cpu_list("").empty());
    EXPECT_TRUE(core::parse_cpu_list(" \n").empty());
}

TEST(CpuList, ThrowsOnMalformedInput) {
    EXPECT_THROW(core::parse_cpu_list("3-1"), std::invalid_argument);
    EXPECT_THROW(core::parse_cpu_list("x"), std::invalid_argument);
    EXPECT_THROW(core::parse_cpu_list("1-"), std::invalid_argument);
    // A stray comma is kernel-tolerated, not an error.
    EXPECT_EQ(core::parse_cpu_list("1,,2"), (Cpus{1, 2}));
}

// --- discovery against a sysfs-shaped fixture ---

class SysfsFixture {
public:
    SysfsFixture() {
        dir_ = fs::temp_directory_path() /
               ("pgl_topo_test_" + std::to_string(counter_++));
        std::error_code ec;
        fs::remove_all(dir_, ec);
        fs::create_directories(dir_);
    }
    ~SysfsFixture() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    SysfsFixture(const SysfsFixture&) = delete;
    SysfsFixture& operator=(const SysfsFixture&) = delete;

    void write(const std::string& rel, const std::string& text) {
        const fs::path p = dir_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << text;
    }

    std::string path() const { return dir_.string(); }

private:
    fs::path dir_;
    static inline int counter_ = 0;
};

void fill_two_nodes(SysfsFixture& fx) {
    fx.write("online", "0-1\n");
    fx.write("node0/cpulist", "0-3\n");
    fx.write("node1/cpulist", "4-7\n");
}

TEST(Discovery, TwoNodesFullCpuset) {
    SysfsFixture fx;
    fill_two_nodes(fx);
    const core::Topology t =
        core::discover_topology_from(fx.path(), {0, 1, 2, 3, 4, 5, 6, 7});
    ASSERT_EQ(t.node_count(), 2u);
    EXPECT_EQ(t.nodes[0].os_id, 0u);
    EXPECT_EQ(t.nodes[0].cpus, (Cpus{0, 1, 2, 3}));
    EXPECT_EQ(t.nodes[1].os_id, 1u);
    EXPECT_EQ(t.nodes[1].cpus, (Cpus{4, 5, 6, 7}));
    EXPECT_EQ(t.allowed, (Cpus{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_FALSE(t.single_node());
}

TEST(Discovery, CpusetSubsetMasksNodeCpus) {
    SysfsFixture fx;
    fill_two_nodes(fx);
    // Allowed cpuset straddles both nodes but covers neither fully.
    const core::Topology t = core::discover_topology_from(fx.path(), {1, 2, 5});
    ASSERT_EQ(t.node_count(), 2u);
    EXPECT_EQ(t.nodes[0].cpus, (Cpus{1, 2}));
    EXPECT_EQ(t.nodes[1].cpus, (Cpus{5}));
    EXPECT_EQ(t.allowed, (Cpus{1, 2, 5}));
}

TEST(Discovery, CpusetOnOneNodeCollapsesToSingleNode) {
    SysfsFixture fx;
    fill_two_nodes(fx);
    // Every allowed CPU on node 1: node 0 is dropped, the view stays dense.
    const core::Topology t = core::discover_topology_from(fx.path(), {4, 6});
    ASSERT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.nodes[0].os_id, 1u);
    EXPECT_EQ(t.nodes[0].cpus, (Cpus{4, 6}));
    EXPECT_TRUE(t.single_node());
}

TEST(Discovery, MissingDirFallsBackToOneNode) {
    const core::Topology t =
        core::discover_topology_from("/nonexistent/pgl_topo", {0, 1, 2});
    ASSERT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.nodes[0].os_id, 0u);
    EXPECT_EQ(t.nodes[0].cpus, (Cpus{0, 1, 2}));
    EXPECT_EQ(t.allowed, (Cpus{0, 1, 2}));
}

TEST(Discovery, GarbageSysfsFallsBackToOneNode) {
    SysfsFixture fx;
    fx.write("online", "not a cpulist\n");
    const core::Topology t = core::discover_topology_from(fx.path(), {0, 1});
    ASSERT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.nodes[0].cpus, (Cpus{0, 1}));
}

TEST(Discovery, NodeMissingCpulistFallsBack) {
    SysfsFixture fx;
    fx.write("online", "0-1\n");
    fx.write("node0/cpulist", "0-1\n");
    // node1/cpulist missing entirely: discovery must not invent a machine.
    const core::Topology t = core::discover_topology_from(fx.path(), {0, 1, 2, 3});
    ASSERT_EQ(t.node_count(), 1u);
    EXPECT_EQ(t.allowed, (Cpus{0, 1, 2, 3}));
}

TEST(Discovery, ProcessTopologyIsCachedAndNonEmpty) {
    const core::Topology& a = core::discover_topology();
    const core::Topology& b = core::discover_topology();
    EXPECT_EQ(&a, &b);
    ASSERT_GE(a.node_count(), 1u);
    EXPECT_GE(a.allowed_cpu_count(), 1u);
    EXPECT_FALSE(a.nodes[0].cpus.empty());
}

TEST(Discovery, AllowedCpusSelfIsNonEmptyAndSorted) {
    const Cpus cpus = core::allowed_cpus_self();
    ASSERT_FALSE(cpus.empty());
    EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
}

// --- parse_numa_policy ---

TEST(NumaPolicy, ParsesAllForms) {
    EXPECT_EQ(core::parse_numa_policy("off").mode, core::NumaMode::kOff);
    EXPECT_EQ(core::parse_numa_policy("auto").mode, core::NumaMode::kAuto);
    EXPECT_EQ(core::parse_numa_policy("interleave").mode,
              core::NumaMode::kInterleave);
    const core::NumaPolicy p = core::parse_numa_policy("node:3");
    EXPECT_EQ(p.mode, core::NumaMode::kNode);
    EXPECT_EQ(p.node, 3u);
    EXPECT_FALSE(core::parse_numa_policy("off").active());
    EXPECT_TRUE(core::parse_numa_policy("auto").active());
}

TEST(NumaPolicy, RoundTripsThroughToString) {
    for (const char* s : {"off", "auto", "interleave", "node:2"}) {
        EXPECT_EQ(core::to_string(core::parse_numa_policy(s)), s);
    }
}

TEST(NumaPolicy, ThrowsOnMalformedInput) {
    EXPECT_THROW(core::parse_numa_policy(""), std::invalid_argument);
    EXPECT_THROW(core::parse_numa_policy("bogus"), std::invalid_argument);
    EXPECT_THROW(core::parse_numa_policy("node:"), std::invalid_argument);
    EXPECT_THROW(core::parse_numa_policy("node:x"), std::invalid_argument);
    EXPECT_THROW(core::parse_numa_policy("NODE:1"), std::invalid_argument);
}

// --- plan_worker_placement ---

core::Topology two_node_topology() {
    core::Topology t;
    t.nodes = {{0, {0, 1, 2, 3}}, {1, {4, 5, 6, 7}}};
    t.allowed = {0, 1, 2, 3, 4, 5, 6, 7};
    return t;
}

std::vector<std::uint32_t> plan_nodes(const core::WorkerPlacement& p) {
    std::vector<std::uint32_t> out;
    for (const auto& s : p.slots) out.push_back(s.node);
    return out;
}

TEST(Placement, AutoFillsContiguousBlocksPerNode) {
    const auto t = two_node_topology();
    const auto p = core::plan_worker_placement(t, {core::NumaMode::kAuto, 0}, 4);
    ASSERT_EQ(p.slots.size(), 4u);
    EXPECT_EQ(plan_nodes(p), (Cpus{0, 0, 1, 1}));
    EXPECT_EQ(p.slots[0].cpu, 0u);
    EXPECT_EQ(p.slots[1].cpu, 1u);
    EXPECT_EQ(p.slots[2].cpu, 4u);
    EXPECT_EQ(p.slots[3].cpu, 5u);
}

TEST(Placement, AutoGivesRemainderToFirstNodes) {
    const auto t = two_node_topology();
    // 3 workers over 2 nodes: shard_share hands the extra to node 0.
    const auto p = core::plan_worker_placement(t, {core::NumaMode::kAuto, 0}, 3);
    EXPECT_EQ(plan_nodes(p), (Cpus{0, 0, 1}));
}

TEST(Placement, InterleaveAlternatesNodes) {
    const auto t = two_node_topology();
    const auto p =
        core::plan_worker_placement(t, {core::NumaMode::kInterleave, 0}, 4);
    EXPECT_EQ(plan_nodes(p), (Cpus{0, 1, 0, 1}));
    EXPECT_EQ(p.slots[0].cpu, 0u);
    EXPECT_EQ(p.slots[1].cpu, 4u);
    EXPECT_EQ(p.slots[2].cpu, 1u);
    EXPECT_EQ(p.slots[3].cpu, 5u);
}

TEST(Placement, NodePolicyPutsEveryWorkerOnThatNode) {
    const auto t = two_node_topology();
    const auto p = core::plan_worker_placement(t, {core::NumaMode::kNode, 1}, 3);
    EXPECT_EQ(plan_nodes(p), (Cpus{1, 1, 1}));
    EXPECT_EQ(p.slots[0].cpu, 4u);
    EXPECT_EQ(p.slots[1].cpu, 5u);
    EXPECT_EQ(p.slots[2].cpu, 6u);
}

TEST(Placement, CpusWrapWhenWorkersExceedNodeCpus) {
    core::Topology t;
    t.nodes = {{0, {0, 1}}};
    t.allowed = {0, 1};
    const auto p = core::plan_worker_placement(t, {core::NumaMode::kAuto, 0}, 5);
    ASSERT_EQ(p.slots.size(), 5u);
    EXPECT_EQ(p.slots[0].cpu, 0u);
    EXPECT_EQ(p.slots[1].cpu, 1u);
    EXPECT_EQ(p.slots[2].cpu, 0u);
    EXPECT_EQ(p.slots[4].cpu, 0u);
}

TEST(Placement, DescribeIsStable) {
    const auto t = two_node_topology();
    const auto p = core::plan_worker_placement(t, {core::NumaMode::kAuto, 0}, 2);
    EXPECT_EQ(p.describe(), "0@0,4@1");
}

// --- resolve_placement ---

TEST(ResolvePlacement, BothKnobsOffIsInert) {
    core::LayoutConfig cfg;
    const auto ctx = core::resolve_placement(cfg, 4);
    EXPECT_FALSE(ctx.active());
    EXPECT_FALSE(ctx.memory_active());
    EXPECT_EQ(ctx.topo, nullptr);
    EXPECT_TRUE(ctx.plan.empty());
    EXPECT_TRUE(ctx.mem_nodes.empty());
}

TEST(ResolvePlacement, NumaWithoutPinPlacesMemoryOnly) {
    core::LayoutConfig cfg;
    cfg.numa = "interleave";
    const auto ctx = core::resolve_placement(cfg, 4);
    EXPECT_TRUE(ctx.active());
    EXPECT_TRUE(ctx.memory_active());
    ASSERT_NE(ctx.topo, nullptr);
    EXPECT_TRUE(ctx.plan.empty());  // no pin -> no worker plan
    EXPECT_EQ(ctx.mem_nodes.size(), ctx.topo->node_count());
}

TEST(ResolvePlacement, OutOfRangeNodeDegradesModulo) {
    core::LayoutConfig cfg;
    cfg.numa = "node:1000000";
    const auto ctx = core::resolve_placement(cfg, 2);
    ASSERT_NE(ctx.topo, nullptr);
    ASSERT_EQ(ctx.mem_nodes.size(), 1u);
    EXPECT_LT(ctx.mem_nodes[0], ctx.topo->node_count());
    EXPECT_EQ(ctx.mem_nodes[0], 1000000u % ctx.topo->node_count());
}

TEST(ResolvePlacement, MalformedPolicyThrows) {
    core::LayoutConfig cfg;
    cfg.numa = "bogus";
    EXPECT_THROW(core::resolve_placement(cfg, 2), std::invalid_argument);
}

TEST(ResolvePlacement, PageNodeRotatesOverMemNodes) {
    core::PlacementContext ctx;
    ctx.mem_nodes = {0, 1};
    EXPECT_EQ(ctx.page_node(0), 0u);
    EXPECT_EQ(ctx.page_node(1), 1u);
    EXPECT_EQ(ctx.page_node(2), 0u);
    ctx.mem_nodes.clear();
    EXPECT_EQ(ctx.page_node(7), 0u);  // policy off: everything "node 0"
}

TEST(ResolvePlacement, KeySeparatesDistinctPlacements) {
    core::LayoutConfig off, pin, node;
    pin.pin = true;
    node.numa = "node:0";
    const auto k_off = core::resolve_placement(off, 2).key();
    const auto k_pin = core::resolve_placement(pin, 2).key();
    const auto k_node = core::resolve_placement(node, 2).key();
    EXPECT_NE(k_off, k_pin);
    EXPECT_NE(k_off, k_node);
    EXPECT_NE(k_pin, k_node);
}

// --- NodeAllocator ---

TEST(NodeAllocator, BlocksAreZeroedAndWritable) {
    core::LayoutConfig cfg;
    cfg.numa = "auto";
    cfg.pin = true;
    const auto ctx = core::resolve_placement(cfg, 2);
    core::ThreadPool pool(2, ctx.plan);
    core::NodeAllocator alloc(ctx, pool);
    core::PlacedBlock blk = alloc.allocate_floats(10000);
    ASSERT_TRUE(static_cast<bool>(blk));
    float* p = blk.floats();
    for (std::size_t i = 0; i < 10000; ++i) ASSERT_EQ(p[i], 0.0f) << i;
    for (std::size_t i = 0; i < 10000; ++i) p[i] = static_cast<float>(i);
    EXPECT_EQ(p[9999], 9999.0f);
}

TEST(NodeAllocator, PlacedStoreMatchesVectorStore) {
    core::LayoutConfig cfg;
    cfg.numa = "interleave";
    const auto ctx = core::resolve_placement(cfg, 2);
    core::ThreadPool pool(2, ctx.plan);
    core::NodeAllocator alloc(ctx, pool);

    core::Layout init;
    init.resize(100);
    for (std::size_t i = 0; i < 100; ++i) {
        init.start_x[i] = static_cast<float>(i);
        init.start_y[i] = 0.5f * static_cast<float>(i);
        init.end_x[i] = static_cast<float>(i) + 1.0f;
        init.end_y[i] = 0.5f * static_cast<float>(i) + 2.0f;
    }
    core::XYStore placed, plain;
    placed.load(init, alloc);
    plain.load(init);
    ASSERT_EQ(placed.node_count(), plain.node_count());
    for (std::uint32_t n = 0; n < placed.node_count(); ++n) {
        for (const auto e : {core::End::kStart, core::End::kEnd}) {
            EXPECT_EQ(placed.load_x(n, e), plain.load_x(n, e));
            EXPECT_EQ(placed.load_y(n, e), plain.load_y(n, e));
        }
    }
    // Copying a placed store deep-copies to plain heap; bytes survive.
    const core::XYStore copy = placed;
    EXPECT_EQ(copy.load_x(42, core::End::kEnd), plain.load_x(42, core::End::kEnd));
}

#ifndef PGL_TELEMETRY_DISABLED
TEST(NodeAllocator, AccountsBytesPerNode) {
    auto& reg = telemetry::Registry::instance();
    const auto& topo = core::discover_topology();
    const std::string name =
        "alloc.node" + std::to_string(topo.nodes[0].os_id) + ".bytes";
    const std::uint64_t before = reg.counter(name).value();

    core::LayoutConfig cfg;
    cfg.numa = "node:0";
    const auto ctx = core::resolve_placement(cfg, 1);
    core::ThreadPool pool(0, {});
    core::NodeAllocator alloc(ctx, pool);
    const auto blk = alloc.allocate_floats(1024);
    EXPECT_GE(reg.counter(name).value(), before + 1024 * sizeof(float));
}
#endif

// --- ThreadPool pinning ---

TEST(ThreadPoolPin, FailedPinContinuesUnpinned) {
#ifndef PGL_TELEMETRY_DISABLED
    const std::uint64_t before =
        telemetry::Registry::instance().counter("pool.pin.failures").value();
#endif
    // CPU 1 << 20 exists on no machine this test will ever run on, so the
    // pin fails — the contract is the job still runs to completion.
    core::WorkerPlacement plan;
    plan.slots = {{1u << 20, 0}, {1u << 20, 0}};
    core::ThreadPool pool(2, plan);
    std::atomic<std::uint32_t> ran{0};
    pool.run([&](std::uint32_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2u);
    EXPECT_TRUE(pool.pinning_requested());
#ifndef PGL_TELEMETRY_DISABLED
    EXPECT_GE(
        telemetry::Registry::instance().counter("pool.pin.failures").value(),
        before + 2);
#endif
}

TEST(ThreadPoolPin, SuccessfulPinLandsOnRequestedCpu) {
#if defined(__linux__)
    const Cpus allowed = core::allowed_cpus_self();
    ASSERT_FALSE(allowed.empty());
    core::WorkerPlacement plan;
    plan.slots = {{allowed[0], 0}};
    core::ThreadPool pool(1, plan);
    std::atomic<int> cpu{-1};
    pool.run([&](std::uint32_t) { cpu.store(sched_getcpu()); });
    EXPECT_EQ(cpu.load(), static_cast<int>(allowed[0]));
    EXPECT_EQ(pool.worker_node(0), 0u);
#else
    GTEST_SKIP() << "pinning is Linux-only";
#endif
}

TEST(ThreadPoolPin, UnpinnedPoolReportsNodeZero) {
    core::ThreadPool pool(2);
    EXPECT_FALSE(pool.pinning_requested());
    EXPECT_EQ(pool.worker_node(0), 0u);
    EXPECT_EQ(pool.worker_node(1), 0u);
}

}  // namespace

// Tests for layout serialization (.lay) and SVG rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cpu_engine.hpp"
#include "draw/svg.hpp"
#include "graph/lean_graph.hpp"
#include "io/lay_io.hpp"
#include "partition/partition.hpp"
#include "rng/xoshiro256.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;

graph::LeanGraph io_graph() {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = 120;
    spec.n_paths = 3;
    spec.seed = 8;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

core::Layout io_layout(const graph::LeanGraph& g) {
    rng::Xoshiro256Plus rng(9);
    return core::make_linear_initial_layout(g, rng);
}

TEST(LayIo, RoundTripIsExact) {
    const auto g = io_graph();
    const auto l = io_layout(g);
    std::stringstream ss;
    io::write_layout(l, ss);
    const auto l2 = io::read_layout(ss);
    ASSERT_EQ(l2.size(), l.size());
    for (std::size_t i = 0; i < l.size(); ++i) {
        EXPECT_EQ(l2.start_x[i], l.start_x[i]);
        EXPECT_EQ(l2.start_y[i], l.start_y[i]);
        EXPECT_EQ(l2.end_x[i], l.end_x[i]);
        EXPECT_EQ(l2.end_y[i], l.end_y[i]);
    }
}

TEST(LayIo, EmptyLayoutRoundTrips) {
    core::Layout l;
    std::stringstream ss;
    io::write_layout(l, ss);
    EXPECT_EQ(io::read_layout(ss).size(), 0u);
}

TEST(LayIo, RejectsBadMagic) {
    std::stringstream ss("not a layout file at all");
    EXPECT_THROW(io::read_layout(ss), std::runtime_error);
}

TEST(LayIo, RejectsTruncatedFile) {
    const auto g = io_graph();
    const auto l = io_layout(g);
    std::stringstream ss;
    io::write_layout(l, ss);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(io::read_layout(cut), std::runtime_error);
}

TEST(LayIo, FileRoundTrip) {
    const auto g = io_graph();
    const auto l = io_layout(g);
    const std::string path = ::testing::TempDir() + "/pgl_test.lay";
    io::write_layout_file(l, path);
    const auto l2 = io::read_layout_file(path);
    EXPECT_EQ(l2.size(), l.size());
}

TEST(LayIo, MissingFileThrows) {
    EXPECT_THROW(io::read_layout_file("/nonexistent/nowhere.lay"),
                 std::runtime_error);
}

TEST(LayIo, RejectsTruncatedHeader) {
    const auto l = io_layout(io_graph());
    std::stringstream ss;
    io::write_layout(l, ss);
    // Cut inside the u64 node count, right after the 8-byte magic.
    std::stringstream cut(ss.str().substr(0, 12));
    EXPECT_THROW(io::read_layout(cut), std::runtime_error);
}

TEST(LayIo, RejectsPayloadShortByOneFloat) {
    const auto l = io_layout(io_graph());
    std::stringstream ss;
    io::write_layout(l, ss);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() - sizeof(float)));
    EXPECT_THROW(io::read_layout(cut), std::runtime_error);
}

TEST(LayIo, ZeroNodeFileRoundTrips) {
    const std::string path = ::testing::TempDir() + "/pgl_zero.lay";
    io::write_layout_file(core::Layout{}, path);
    EXPECT_EQ(io::read_layout_file(path).size(), 0u);
}

TEST(LayIo, PartitionStitchedRoundTripIsBitwise) {
    // A stitched multi-component canvas must survive the .lay round trip
    // bit-for-bit, exactly like a single-component layout.
    const auto vg = workloads::generate_whole_genome(
        workloads::whole_genome_spec(2, 0.0002, 11));
    partition::PartitionOptions popt;
    popt.schedule.config.iter_max = 2;
    popt.schedule.config.steps_per_iter_factor = 0.2;
    const auto part = partition::partition_layout(vg, popt);
    const std::string path = ::testing::TempDir() + "/pgl_partition.lay";
    io::write_layout_file(part.stitched.layout, path);
    const auto back = io::read_layout_file(path);
    ASSERT_EQ(back.size(), part.stitched.layout.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back.start_x[i], part.stitched.layout.start_x[i]);
        EXPECT_EQ(back.start_y[i], part.stitched.layout.start_y[i]);
        EXPECT_EQ(back.end_x[i], part.stitched.layout.end_x[i]);
        EXPECT_EQ(back.end_y[i], part.stitched.layout.end_y[i]);
    }
}

TEST(Svg, ContainsOneLinePerNode) {
    const auto g = io_graph();
    const auto l = io_layout(g);
    std::stringstream ss;
    draw::write_svg(g, l, ss);
    const std::string svg = ss.str();
    std::size_t lines = 0, pos = 0;
    while ((pos = svg.find("<line ", pos)) != std::string::npos) {
        ++lines;
        pos += 6;
    }
    EXPECT_EQ(lines, g.node_count());
    EXPECT_NE(svg.find("<svg "), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, HighlightAddsPolyline) {
    const auto g = io_graph();
    const auto l = io_layout(g);
    draw::SvgOptions opt;
    opt.highlight_path = 0;
    std::stringstream ss;
    draw::write_svg(g, l, ss, opt);
    EXPECT_NE(ss.str().find("<polyline"), std::string::npos);
}

TEST(Svg, CoordinatesStayOnCanvas) {
    const auto g = io_graph();
    auto l = io_layout(g);
    // Extreme coordinates must still be fitted inside the viewport.
    l.start_x[0] = -1e6;
    l.end_x[1] = 1e6;
    draw::SvgOptions opt;
    opt.width_px = 400;
    opt.height_px = 300;
    std::stringstream ss;
    draw::write_svg(g, l, ss, opt);
    // Parse every x1= attribute and check bounds.
    const std::string svg = ss.str();
    std::size_t pos = 0;
    while ((pos = svg.find("x1=\"", pos)) != std::string::npos) {
        pos += 4;
        const double v = std::stod(svg.substr(pos));
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 400.0);
    }
}

TEST(Svg, EmptyLayoutStillValidSvg) {
    graph::VariationGraph vg;
    const auto g = graph::LeanGraph::from_graph(vg);
    core::Layout l;
    std::stringstream ss;
    draw::write_svg(g, l, ss);
    EXPECT_NE(ss.str().find("</svg>"), std::string::npos);
}

}  // namespace

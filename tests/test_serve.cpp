// Tests for the layout service: the line-protocol JSON model, canonical
// cache keys (stability under field reordering, sensitivity to every
// layout-relevant knob), artifact-cache robustness (corrupt-entry
// eviction), atomic .lay publication, and the job server's scheduling
// contracts — daemon results byte-identical to direct engine runs, repeat
// submits served from cache, concurrent identical submits running the
// work exactly once, cooperative cancel with follower promotion, and the
// socket daemon end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "core/engine.hpp"
#include "io/atomic_file.hpp"
#include "io/lay_io.hpp"
#include "io/pgg_io.hpp"
#include "serve/cache.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace {

using namespace pgl;
namespace fs = std::filesystem;

const std::string kMiniGfa =
    "H\tVN:Z:1.0\n"
    "S\ts1\tACGT\n"
    "S\ts2\tTT\n"
    "S\ts3\tG\n"
    "S\ts4\tCCA\n"
    "L\ts1\t+\ts2\t-\t0M\n"
    "L\ts2\t+\ts3\t+\t0M\n"
    "L\ts3\t+\ts4\t+\t0M\n"
    "P\tp1\ts1+,s2-,s3+,s4+\t*\n"
    "P\tp2\ts1+,s2+\t*\n";

/// Fresh per-test scratch directory (gtest's TempDir is shared).
std::string scratch_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/pgl_serve_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string write_mini_gfa(const std::string& dir) {
    const std::string path = dir + "/mini.gfa";
    std::ofstream out(path, std::ios::binary);
    out << kMiniGfa;
    return path;
}

serve::JobRequest mini_request(const std::string& graph,
                               const std::string& backend = "cpu-batched") {
    serve::JobRequest r;
    r.graph = graph;
    r.backend = backend;
    r.config.iter_max = 4;
    return r;
}

void expect_same_layout(const core::Layout& a, const core::Layout& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.start_x[i], b.start_x[i]) << "node " << i;
        ASSERT_EQ(a.start_y[i], b.start_y[i]) << "node " << i;
        ASSERT_EQ(a.end_x[i], b.end_x[i]) << "node " << i;
        ASSERT_EQ(a.end_y[i], b.end_y[i]) << "node " << i;
    }
}

// --- JSON model ---

TEST(ServeJson, RoundTripIsCanonical) {
    const std::string text =
        R"({"z":1,"a":[1,2.5,"x",true,null],"s":"a\nbA","neg":-3})";
    const serve::JsonValue v = serve::json_parse(text);
    const std::string once = v.dump();
    EXPECT_EQ(serve::json_parse(once).dump(), once);  // fixpoint
    EXPECT_EQ(v.find("a")->as_array().size(), 5u);
    EXPECT_EQ(v.find("s")->as_string(), "a\nbA");
    EXPECT_EQ(v.find("neg")->as_int(), -3);
    EXPECT_TRUE(v.find("z")->is_integer());
    EXPECT_FALSE(v.find("a")->as_array()[1].is_integer());
}

TEST(ServeJson, RejectsMalformedInput) {
    EXPECT_THROW(serve::json_parse("{"), std::runtime_error);
    EXPECT_THROW(serve::json_parse("{\"a\":1,}"), std::runtime_error);
    EXPECT_THROW(serve::json_parse("{\"a\":1} extra"), std::runtime_error);
    EXPECT_THROW(serve::json_parse("nope"), std::runtime_error);
}

TEST(ServeJson, IntegerAccessorRejectsFractions) {
    const serve::JsonValue v = serve::json_parse(R"({"x":1.5,"y":-1})");
    EXPECT_THROW(v.find("x")->as_uint(), std::runtime_error);
    EXPECT_THROW(v.find("y")->as_uint(), std::runtime_error);
    EXPECT_EQ(v.find("y")->as_int(), -1);
}

// --- request canonicalization / cache keys ---

TEST(ServeRequest, KeyStableUnderFieldReordering) {
    const serve::JobRequest a = serve::parse_request(serve::json_parse(
        R"({"graph":"g.gfa","config":{"backend":"cpu-soa","iters":7,)"
        R"("seed":42,"kernel":"simd","threads":2}})"));
    const serve::JobRequest b = serve::parse_request(serve::json_parse(
        R"({"config":{"threads":2,"kernel":"simd","seed":42,)"
        R"("iters":7,"backend":"cpu-soa"},"graph":"g.gfa"})"));
    EXPECT_EQ(serve::canonical_request(a), serve::canonical_request(b));
}

TEST(ServeRequest, EveryKnobChangesTheKey) {
    const std::string base = serve::canonical_request(
        serve::parse_request(serve::json_parse(R"({"graph":"g.gfa"})")));
    const char* variants[] = {
        R"({"graph":"g.gfa","config":{"backend":"cpu-aos"}})",
        R"({"graph":"g.gfa","config":{"kernel":"simd"}})",
        R"({"graph":"g.gfa","config":{"iters":31}})",
        R"({"graph":"g.gfa","config":{"seed":1}})",
        R"({"graph":"g.gfa","config":{"threads":2}})",
        R"({"graph":"g.gfa","config":{"partition":true}})",
        R"({"graph":"g.gfa","config":{"multilevel":1}})",
        R"({"graph":"g.gfa","config":{"multilevel":2}})",
    };
    for (const char* text : variants) {
        const std::string canon = serve::canonical_request(
            serve::parse_request(serve::json_parse(text)));
        EXPECT_NE(canon, base) << text;
    }
    // The multilevel sub-options must distinguish keys when multilevel is on.
    const std::string ml1 = serve::canonical_request(serve::parse_request(
        serve::json_parse(R"({"graph":"g","config":{"multilevel":1}})")));
    const std::string ml2 =
        serve::canonical_request(serve::parse_request(serve::json_parse(
            R"({"graph":"g","config":{"multilevel":1,"exact_tail":true}})")));
    EXPECT_NE(ml1, ml2);
}

TEST(ServeRequest, ExecutionOnlyKnobsDoNotChangeTheKey) {
    // component_workers changes *where* the work runs, never the bytes of
    // the result — two clients with different worker budgets must share one
    // cache entry.
    const std::string a = serve::canonical_request(serve::parse_request(
        serve::json_parse(R"({"graph":"g","config":{"partition":true}})")));
    const std::string b =
        serve::canonical_request(serve::parse_request(serve::json_parse(
            R"({"graph":"g","config":{"partition":true,)"
            R"("component_workers":8}})")));
    EXPECT_EQ(a, b);
    // Same for the executor choice: thread and process runs are
    // byte-identical by contract, so they key the same cache entry.
    const std::string c =
        serve::canonical_request(serve::parse_request(serve::json_parse(
            R"({"graph":"g","config":{"partition":true,)"
            R"("executor":"process","processes":4}})")));
    EXPECT_EQ(a, c);
    // And for placement: pinning and NUMA policy move pages and workers,
    // never a float, so a pinned request shares the unpinned cache entry.
    const std::string d =
        serve::canonical_request(serve::parse_request(serve::json_parse(
            R"({"graph":"g","config":{"partition":true,)"
            R"("pin":true,"numa":"interleave"}})")));
    EXPECT_EQ(a, d);
}

TEST(ServeRequest, ExecutorKnobsParseAndRoundTripTheWire) {
    // Explicit seed: the JSON number model only holds integers exactly up
    // to 2^53, and the default seed is larger (documented in json.hpp).
    const serve::JobRequest r = serve::parse_request(serve::json_parse(
        R"({"graph":"g","config":{"partition":true,"executor":"process",)"
        R"("processes":3,"seed":41}})"));
    EXPECT_EQ(r.executor, "process");
    EXPECT_EQ(r.processes, 3u);
    // The wire form keeps the execution knobs (a resubmitted request must
    // run the same way), even though the cache key drops them.
    const serve::JobRequest back =
        serve::parse_request(serve::request_to_json(r));
    EXPECT_EQ(back.executor, "process");
    EXPECT_EQ(back.processes, 3u);
    EXPECT_EQ(serve::canonical_request(back), serve::canonical_request(r));
}

TEST(ServeRequest, PlacementKnobsRideTheWireAndRejectBadPolicy) {
    const serve::JobRequest r = serve::parse_request(serve::json_parse(
        R"({"graph":"g","config":{"pin":true,"numa":"node:2","seed":41}})"));
    EXPECT_TRUE(r.config.pin);
    EXPECT_EQ(r.config.numa, "node:2");
    const serve::JobRequest back =
        serve::parse_request(serve::request_to_json(r));
    EXPECT_TRUE(back.config.pin);
    EXPECT_EQ(back.config.numa, "node:2");
    // A malformed policy fails the submit, tagged with its config key.
    try {
        serve::parse_request(serve::json_parse(
            R"({"graph":"g","config":{"numa":"bogus"}})"));
        FAIL() << "expected rejection of numa=bogus";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("config.numa"), std::string::npos)
            << e.what();
    }
}

TEST(ServeRequest, UnknownConfigKeyIsRejected) {
    EXPECT_THROW(serve::parse_request(serve::json_parse(
                     R"({"graph":"g","config":{"itres":5}})")),
                 std::runtime_error);
    EXPECT_THROW(serve::parse_request(serve::json_parse(R"({"config":{}})")),
                 std::runtime_error);  // missing graph
}

// --- graph fingerprint ---

TEST(ServeCache, FingerprintTracksContentNotName) {
    const std::string dir = scratch_dir("fp");
    const std::string a = dir + "/a.gfa";
    const std::string b = dir + "/b.gfa";
    std::ofstream(a, std::ios::binary) << kMiniGfa;
    std::ofstream(b, std::ios::binary) << kMiniGfa;
    const std::string c = dir + "/c.gfa";
    std::ofstream(c, std::ios::binary) << kMiniGfa << "S\ts5\tA\n";
    EXPECT_EQ(serve::graph_fingerprint(a), serve::graph_fingerprint(b));
    EXPECT_NE(serve::graph_fingerprint(a), serve::graph_fingerprint(c));
    EXPECT_THROW(serve::graph_fingerprint(dir + "/missing.gfa"),
                 std::runtime_error);
}

// --- artifact cache ---

core::Layout tiny_layout() {
    core::Layout l;
    l.resize(3);
    for (std::size_t i = 0; i < 3; ++i) {
        l.start_x[i] = static_cast<float>(i);
        l.start_y[i] = 0.5f;
        l.end_x[i] = static_cast<float>(i) + 1.0f;
        l.end_y[i] = -0.5f;
    }
    return l;
}

TEST(ServeCache, PublishThenLookup) {
    serve::ArtifactCache cache(scratch_dir("cache_pub") + "/artifacts");
    const std::string key(32, 'a');
    EXPECT_FALSE(cache.lookup(key).has_value());
    const std::string path = cache.publish(key, tiny_layout());
    EXPECT_TRUE(fs::path(path).is_absolute());
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, path);
    expect_same_layout(io::read_layout_file(*hit), tiny_layout());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ServeCache, CorruptEntryIsEvicted) {
    serve::ArtifactCache cache(scratch_dir("cache_evict") + "/artifacts");
    const std::string key(32, 'b');
    const std::string path = cache.publish(key, tiny_layout());
    // Truncate mid-payload: magic intact, body short — read must fail.
    fs::resize_file(path, 12);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_FALSE(fs::exists(path)) << "corrupt artifact must be unlinked";
    EXPECT_EQ(cache.evictions(), 1u);
    // The slot is reusable after eviction.
    cache.publish(key, tiny_layout());
    EXPECT_TRUE(cache.lookup(key).has_value());
}

// --- atomic file publication ---

TEST(ServeAtomicFile, WritesAreAllOrNothing) {
    const std::string dir = scratch_dir("atomic");
    const std::string path = dir + "/out.txt";
    io::atomic_write_file(path, [](std::ostream& out) { out << "payload"; });
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "payload");
    // No temp droppings next to the result.
    std::size_t entries = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);

    // A failing writer must leave no file at the destination.
    const std::string bad = dir + "/bad.txt";
    EXPECT_THROW(io::atomic_write_file(
                     bad,
                     [](std::ostream&) {
                         throw std::runtime_error("writer failed");
                     }),
                 std::runtime_error);
    EXPECT_FALSE(fs::exists(bad));

    // An unwritable directory fails the call, not the process.
    EXPECT_THROW(
        io::atomic_write_file(dir + "/no/such/dir/x.txt",
                              [](std::ostream& out) { out << "x"; }),
        std::runtime_error);
}

// --- job server ---

TEST(ServeServer, ResultMatchesDirectEngineRun) {
    const std::string dir = scratch_dir("direct");
    const std::string gfa = write_mini_gfa(dir);

    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    opt.workers = 1;
    serve::Server server(opt);
    server.start();
    const std::uint64_t id = server.submit(mini_request(gfa));
    const serve::JobStatus done = server.wait(id);
    ASSERT_EQ(done.state, serve::JobState::kDone) << done.error;
    ASSERT_FALSE(done.artifact.empty());
    EXPECT_FALSE(done.cache_hit);
    EXPECT_EQ(done.progress, 1.0);

    const graph::LeanIngest ingest = io::load_graph_file(gfa);
    core::LayoutConfig cfg;
    cfg.iter_max = 4;
    auto engine = core::make_engine("cpu-batched");
    engine->init(ingest.graph, cfg);
    expect_same_layout(io::read_layout_file(done.artifact),
                       engine->run().layout);
    server.shutdown();
}

TEST(ServeServer, RepeatSubmitIsServedFromCache) {
    const std::string dir = scratch_dir("cachehit");
    const std::string gfa = write_mini_gfa(dir);
    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    opt.workers = 1;
    serve::Server server(opt);
    server.start();
    const serve::JobStatus first = server.wait(server.submit(mini_request(gfa)));
    ASSERT_EQ(first.state, serve::JobState::kDone) << first.error;
    const serve::JobStatus second =
        server.wait(server.submit(mini_request(gfa)));
    EXPECT_EQ(second.state, serve::JobState::kDone);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(second.artifact, first.artifact);
    EXPECT_EQ(second.key, first.key);
    EXPECT_EQ(server.stats().cache_hits, 1u);
    // A different seed is a different key — must not hit.
    serve::JobRequest other = mini_request(gfa);
    other.config.seed += 1;
    const serve::JobStatus third = server.wait(server.submit(other));
    EXPECT_EQ(third.state, serve::JobState::kDone);
    EXPECT_FALSE(third.cache_hit);
    EXPECT_NE(third.key, first.key);
    server.shutdown();
}

TEST(ServeServer, ConcurrentIdenticalSubmitsRunOnce) {
    const std::string dir = scratch_dir("dedup");
    const std::string gfa = write_mini_gfa(dir);
    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    opt.workers = 2;
    serve::Server server(opt);
    // Submit both before the workers start: the second is guaranteed to
    // observe the first in flight and join it as a follower.
    const std::uint64_t a = server.submit(mini_request(gfa));
    const std::uint64_t b = server.submit(mini_request(gfa));
    server.start();
    const serve::JobStatus sa = server.wait(a);
    const serve::JobStatus sb = server.wait(b);
    ASSERT_EQ(sa.state, serve::JobState::kDone) << sa.error;
    ASSERT_EQ(sb.state, serve::JobState::kDone) << sb.error;
    EXPECT_EQ(sa.artifact, sb.artifact);
    EXPECT_TRUE(sb.cache_hit);  // completed by the leader, no second run
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.dedup_joins, 1u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.cache_hits, 0u);  // joined in flight, not via disk
    server.shutdown();
}

TEST(ServeServer, CancelQueuedJobAndPromoteFollower) {
    const std::string dir = scratch_dir("cancel");
    const std::string gfa = write_mini_gfa(dir);
    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    opt.workers = 1;
    serve::Server server(opt);
    // Not started yet: both jobs sit queued, b is a's follower.
    const std::uint64_t a = server.submit(mini_request(gfa));
    const std::uint64_t b = server.submit(mini_request(gfa));
    // Cancelling the leader must not kill the follower's request: b is
    // promoted to a fresh leader and still completes.
    EXPECT_TRUE(server.cancel(a));
    EXPECT_EQ(server.status(a).state, serve::JobState::kCancelled);
    EXPECT_FALSE(server.cancel(a)) << "cancel of a terminal job is a no-op";
    server.start();
    const serve::JobStatus sb = server.wait(b);
    EXPECT_EQ(sb.state, serve::JobState::kDone) << sb.error;
    EXPECT_FALSE(sb.artifact.empty());
    EXPECT_EQ(server.stats().cancelled, 1u);
    server.shutdown();
}

TEST(ServeServer, ShutdownCancelsQueuedWorkAndRefusesNewSubmits) {
    const std::string dir = scratch_dir("shutdown");
    const std::string gfa = write_mini_gfa(dir);
    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    opt.workers = 1;
    serve::Server server(opt);
    const std::uint64_t id = server.submit(mini_request(gfa));
    server.shutdown();
    EXPECT_EQ(server.status(id).state, serve::JobState::kCancelled);
    EXPECT_THROW(server.submit(mini_request(gfa)), std::runtime_error);
}

TEST(ServeServer, InvalidRequestsFailTheSubmitNotTheWorker) {
    const std::string dir = scratch_dir("invalid");
    const std::string gfa = write_mini_gfa(dir);
    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    serve::Server server(opt);
    server.start();
    serve::JobRequest bad_backend = mini_request(gfa, "cpu-nope");
    EXPECT_THROW(server.submit(bad_backend), std::runtime_error);
    serve::JobRequest bad_kernel = mini_request(gfa);
    bad_kernel.config.kernel = "avx1024";
    EXPECT_THROW(server.submit(bad_kernel), std::runtime_error);
    serve::JobRequest bad_graph = mini_request(dir + "/missing.gfa");
    EXPECT_THROW(server.submit(bad_graph), std::runtime_error);
    EXPECT_EQ(server.stats().submitted, 0u);
    server.shutdown();
}

TEST(ServeServer, SmallestJobAdmittedFirst) {
    const std::string dir = scratch_dir("fairness");
    const std::string small = write_mini_gfa(dir);
    // A strictly larger graph file (same structure, longer tail of nodes).
    const std::string large = dir + "/large.gfa";
    {
        std::ofstream out(large, std::ios::binary);
        out << kMiniGfa;
        for (int i = 0; i < 64; ++i) {
            out << "S\tx" << i << "\tACGTACGT\n";
        }
    }
    serve::ServerOptions opt;
    opt.cache_dir = dir + "/cache";
    opt.workers = 1;
    serve::Server server(opt);
    // Enqueue large first while the workers are parked; the small job must
    // still be admitted first (smallest-first fairness).
    const std::uint64_t big_id = server.submit(mini_request(large));
    const std::uint64_t small_id = server.submit(mini_request(small));
    EXPECT_GT(server.status(big_id).size, server.status(small_id).size);
    server.start();
    server.wait(big_id);
    server.wait(small_id);
    // Both completed; the queue order is observable through queue time only
    // statistically, but the run must finish both with one worker.
    EXPECT_EQ(server.stats().completed, 2u);
    server.shutdown();
}

// --- socket daemon ---

TEST(ServeDaemon, LineProtocolEndToEnd) {
    const std::string dir = scratch_dir("daemon");
    const std::string gfa = write_mini_gfa(dir);
    // AF_UNIX paths are limited to ~108 bytes; keep it short.
    const std::string sock = dir + "/d.sock";

    serve::DaemonOptions opt;
    opt.socket_path = sock;
    opt.server.cache_dir = dir + "/cache";
    opt.server.workers = 1;
    serve::Daemon daemon(opt);
    std::thread runner([&] { daemon.run(); });
    while (!fs::exists(sock)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    EXPECT_EQ(serve::send_request(sock, R"({"cmd":"ping"})"),
              R"({"ok":true,"pong":true})");

    const serve::JsonValue submitted = serve::json_parse(serve::send_request(
        sock, R"({"cmd":"submit","graph":")" + gfa +
                  R"(","config":{"backend":"cpu-batched","iters":4}})"));
    ASSERT_TRUE(submitted.find("ok")->as_bool()) << submitted.dump();
    const std::uint64_t id = submitted.find("id")->as_uint();

    const serve::JsonValue done = serve::json_parse(serve::send_request(
        sock, R"({"cmd":"result","id":)" + std::to_string(id) +
                  R"(,"wait":true})"));
    ASSERT_TRUE(done.find("ok")->as_bool()) << done.dump();
    EXPECT_EQ(done.find("state")->as_string(), "done");
    ASSERT_NE(done.find("artifact"), nullptr);
    EXPECT_TRUE(fs::exists(done.find("artifact")->as_string()));

    // Unknown command and malformed JSON answer with ok:false, not a close.
    const serve::JsonValue bad = serve::json_parse(
        serve::send_request(sock, R"({"cmd":"frobnicate"})"));
    EXPECT_FALSE(bad.find("ok")->as_bool());
    const serve::JsonValue worse =
        serve::json_parse(serve::send_request(sock, "not json"));
    EXPECT_FALSE(worse.find("ok")->as_bool());

    const serve::JsonValue stats = serve::json_parse(
        serve::send_request(sock, R"({"cmd":"stats"})"));
    EXPECT_EQ(stats.find("completed")->as_uint(), 1u);

    const serve::JsonValue stop = serve::json_parse(
        serve::send_request(sock, R"({"cmd":"shutdown"})"));
    EXPECT_TRUE(stop.find("ok")->as_bool());
    runner.join();
    EXPECT_FALSE(fs::exists(sock)) << "socket file must be removed on exit";
}

}  // namespace

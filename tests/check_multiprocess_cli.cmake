# Multi-process partition execution contract, run as a ctest:
#
#   1. Byte parity across executors: `--partition` output must be
#      byte-identical across the {thread, process} executors at 1/2/4
#      workers, for cpu-batched and cpu-pipelined — the determinism
#      contract the process executor ships under (same mixed per-component
#      seeds, same run_component_graph leaf, any concurrency).
#   2. Crash containment: a worker killed mid-run (PGL_COMPONENT_WORKER_CRASH)
#      must fail only its component — the parent exits non-zero with a
#      diagnostic naming the component, and no partial or stale .lay is
#      published (a pre-existing output file is left untouched).
#
# Expects -DTOOL=<pgl_layout> -DGENERATOR=<whole_genome_layout>
#         -DWORKDIR=<scratch dir>
foreach(var TOOL GENERATOR WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_multiprocess_cli.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND ${GENERATOR} ${WORKDIR} 3 0.0002 cpu-batched
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "whole_genome_layout failed: ${err}")
endif()
set(gfa "${WORKDIR}/whole_genome.gfa")
set(common --iters 3 --factor 0.5 --seed 42 --partition)

# --- 1. executor x worker-count byte parity --------------------------------
foreach(backend cpu-batched cpu-pipelined)
  set(ref "${WORKDIR}/${backend}_ref.lay")
  execute_process(
    COMMAND ${TOOL} -i ${gfa} -o ${ref} ${common} --backend ${backend}
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${backend} reference run failed: ${err}")
  endif()
  foreach(n 1 2 4)
    foreach(executor thread process)
      if(executor STREQUAL "thread")
        set(par --component-workers ${n})
      else()
        set(par --processes ${n})
      endif()
      set(out "${WORKDIR}/${backend}_${executor}_${n}.lay")
      execute_process(
        COMMAND ${TOOL} -i ${gfa} -o ${out} ${common} --backend ${backend}
                ${par}
        RESULT_VARIABLE rc ERROR_VARIABLE err)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${backend} ${executor} x${n} run failed: ${err}")
      endif()
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${ref} ${out}
        RESULT_VARIABLE rc)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${backend}: ${executor} executor with ${n} workers is not "
            "byte-identical to the single-worker thread run")
      endif()
    endforeach()
  endforeach()
  message(STATUS "${backend}: thread/process x 1/2/4 all byte-identical")
endforeach()

# --- 2. crash containment --------------------------------------------------
set(crash_out "${WORKDIR}/crash.lay")
file(WRITE ${crash_out} "stale-sentinel")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env PGL_COMPONENT_WORKER_CRASH=/c0.lay
          ${TOOL} -i ${gfa} -o ${crash_out} ${common} --backend cpu-batched
          --processes 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "parent exited 0 despite a crashed worker")
endif()
if(NOT err MATCHES "component 0")
  message(FATAL_ERROR
      "crash diagnostic does not name the failed component; stderr: ${err}")
endif()
if(NOT err MATCHES "signal")
  message(FATAL_ERROR
      "crash diagnostic does not mention the signal; stderr: ${err}")
endif()
file(READ ${crash_out} sentinel)
if(NOT sentinel STREQUAL "stale-sentinel")
  message(FATAL_ERROR
      "crashed run touched the output file (must stay unpublished)")
endif()
message(STATUS "crash containment OK: nonzero exit, diagnostic, no output")

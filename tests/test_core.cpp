// Tests for the core PG-SGD machinery: schedule, step math, sampling and
// the CPU engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cpu_engine.hpp"
#include "core/sampling.hpp"
#include "core/schedule.hpp"
#include "core/step_math.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"
#include "rng/xoshiro256.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using core::End;

graph::LeanGraph small_graph(std::uint64_t backbone = 200, std::uint32_t paths = 4,
                             std::uint64_t seed = 5) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = paths;
    spec.seed = seed;
    const auto g = workloads::generate_pangenome(spec);
    return graph::LeanGraph::from_graph(g);
}

// --- Schedule ---

TEST(Schedule, MonotonicallyDecreasing) {
    const auto etas = core::make_eta_schedule(30, 0.01, 1e6);
    ASSERT_EQ(etas.size(), 30u);
    for (std::size_t i = 1; i < etas.size(); ++i) EXPECT_LT(etas[i], etas[i - 1]);
}

TEST(Schedule, EndpointsMatchTheory) {
    const double d_max = 1e4;
    const auto etas = core::make_eta_schedule(10, 0.01, d_max);
    EXPECT_NEAR(etas.front(), d_max * d_max, d_max * d_max * 1e-9);
    EXPECT_NEAR(etas.back(), 0.01, 0.01 * 1e-6);
}

TEST(Schedule, SingleIterationUsesEtaMax) {
    const auto etas = core::make_eta_schedule(1u, 0.01, 100.0);
    ASSERT_EQ(etas.size(), 1u);
    EXPECT_DOUBLE_EQ(etas[0], 1e4);
}

TEST(Schedule, EmptyForZeroIterations) {
    EXPECT_TRUE(core::make_eta_schedule(0u, 0.01, 100.0).empty());
}

// --- Explicit-temperature overload (eta_max, eta_min, iter_max) ---

TEST(Schedule, ExplicitOverloadEndpointsAndDecay) {
    const auto etas = core::make_eta_schedule(1e6, 0.01, 20u);
    ASSERT_EQ(etas.size(), 20u);
    EXPECT_NEAR(etas.front(), 1e6, 1e6 * 1e-12);
    EXPECT_NEAR(etas.back(), 0.01, 0.01 * 1e-9);
    for (std::size_t i = 1; i < etas.size(); ++i) EXPECT_LT(etas[i], etas[i - 1]);
}

TEST(Schedule, ExplicitOverloadClampsEtaMinAboveEtaMax) {
    // eta_min > eta_max must clamp down, never grow the learning rate.
    const auto etas = core::make_eta_schedule(1.0, 100.0, 8u);
    ASSERT_EQ(etas.size(), 8u);
    for (double e : etas) EXPECT_DOUBLE_EQ(e, 1.0);
}

TEST(Schedule, ExplicitOverloadSingleIterationUsesEtaMax) {
    const auto etas = core::make_eta_schedule(42.0, 0.01, 1u);
    ASSERT_EQ(etas.size(), 1u);
    EXPECT_DOUBLE_EQ(etas[0], 42.0);
}

TEST(Schedule, OverloadsAgreeOnGraphDerivedCeiling) {
    // The graph-derived overload is the explicit one at eta_max = d^2.
    const double d = 1e4;
    const auto a = core::make_eta_schedule(16u, 0.01, d);
    const auto b = core::make_eta_schedule(d * d, 0.01, 16u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Schedule, RestartReproducesScheduleTail) {
    // A refine pass restarting at eta_max = flat[I - R] replays the last R
    // entries of the flat schedule bit for bit — the warm-start contract
    // the multilevel refiner relies on.
    const std::uint32_t I = 12, R = 4;
    const auto flat = core::make_eta_schedule(I, 0.01, 1e5);
    const auto tail = core::make_eta_schedule(flat[I - R], 0.01, R);
    ASSERT_EQ(tail.size(), R);
    for (std::uint32_t i = 0; i < R; ++i) {
        EXPECT_NEAR(tail[i], flat[I - R + i], flat[I - R + i] * 1e-12);
    }
}

TEST(Schedule, TinyGraphClampsEtaMinToEtaMax) {
    // max_dref = 1 gives eta_max = 1; an eps above that used to flip the
    // decay's sign (negative lambda) so the learning rate *grew* across
    // iterations. The clamp must keep the schedule non-increasing and
    // capped at eta_max.
    const auto etas = core::make_eta_schedule(8, 2.0, 1.0);
    ASSERT_EQ(etas.size(), 8u);
    EXPECT_DOUBLE_EQ(etas.front(), 1.0);
    for (std::size_t i = 1; i < etas.size(); ++i) {
        EXPECT_LE(etas[i], etas[i - 1]);
        EXPECT_LE(etas[i], 1.0);
    }
}

// --- Step math ---

TEST(StepMath, PullsPointsTogetherWhenTooFar) {
    // Points 10 apart with reference distance 2: both should move inward.
    const auto d = core::sgd_term_update(0, 0, 10, 0, 2.0, 1e9, 1e-4);
    EXPECT_GT(d.dx_i, 0.0f);  // v_i moves toward v_j (positive x)
    EXPECT_LT(d.dx_j, 0.0f);
    EXPECT_FLOAT_EQ(d.dy_i, 0.0f);
}

TEST(StepMath, PushesPointsApartWhenTooClose) {
    const auto d = core::sgd_term_update(0, 0, 1, 0, 5.0, 1e9, 1e-4);
    EXPECT_LT(d.dx_i, 0.0f);
    EXPECT_GT(d.dx_j, 0.0f);
}

TEST(StepMath, ClampedStepLandsExactlyAtReferenceDistance) {
    // With mu clamped to 1 the update moves the pair to distance d_ref.
    const float xi = 0, xj = 10;
    const auto d = core::sgd_term_update(xi, 0, xj, 0, 4.0, 1e12, 1e-4);
    const double nxi = xi + d.dx_i, nxj = xj + d.dx_j;
    EXPECT_NEAR(std::abs(nxj - nxi), 4.0, 1e-4);
}

TEST(StepMath, SymmetricDisplacements) {
    const auto d = core::sgd_term_update(1, 2, 5, 7, 3.0, 10.0, 1e-4);
    EXPECT_FLOAT_EQ(d.dx_i, -d.dx_j);
    EXPECT_FLOAT_EQ(d.dy_i, -d.dy_j);
}

TEST(StepMath, StressIsRelativeSquaredResidual) {
    const auto d = core::sgd_term_update(0, 0, 6, 0, 2.0, 0.0, 1e-4);
    // |v_i - v_j| = 6, d_ref = 2 -> ((6-2)/2)^2 = 4.
    EXPECT_NEAR(d.stress, 4.0, 1e-9);
}

TEST(StepMath, CoincidentPointsAreSeparated) {
    const auto d = core::sgd_term_update(3, 3, 3, 3, 2.0, 1e9, 1e-4);
    // Must produce a finite, nonzero displacement.
    EXPECT_TRUE(std::isfinite(d.dx_i));
    EXPECT_TRUE(std::isfinite(d.dy_i));
    EXPECT_NE(d.dx_i, 0.0f);
}

TEST(StepMath, TinyEtaMakesTinyMoves) {
    const auto d = core::sgd_term_update(0, 0, 10, 0, 2.0, 1e-6, 1e-4);
    EXPECT_LT(std::abs(d.dx_i), 1e-4);
}

// --- Endpoint path positions ---

TEST(EndpointPosition, ForwardStep) {
    EXPECT_EQ(core::endpoint_path_position(100, 5, false, End::kStart), 100u);
    EXPECT_EQ(core::endpoint_path_position(100, 5, false, End::kEnd), 105u);
}

TEST(EndpointPosition, ReverseStepSwapsEnds) {
    EXPECT_EQ(core::endpoint_path_position(100, 5, true, End::kStart), 105u);
    EXPECT_EQ(core::endpoint_path_position(100, 5, true, End::kEnd), 100u);
}

TEST(EndpointPosition, ReverseStepCoversSameIntervalAsForward) {
    // A reverse-complement traversal of a node spans the same nucleotide
    // interval as the forward traversal; only the segment orientation
    // flips. The two endpoint positions are therefore the same *set*.
    for (std::uint32_t len : {1u, 7u, 1024u}) {
        const auto fwd_s = core::endpoint_path_position(50, len, false, End::kStart);
        const auto fwd_e = core::endpoint_path_position(50, len, false, End::kEnd);
        const auto rev_s = core::endpoint_path_position(50, len, true, End::kStart);
        const auto rev_e = core::endpoint_path_position(50, len, true, End::kEnd);
        EXPECT_EQ(fwd_s, rev_e);
        EXPECT_EQ(fwd_e, rev_s);
        EXPECT_EQ(fwd_e - fwd_s, len);
    }
}

TEST(EndpointPosition, ZeroLengthNodeCollapsesBothEnds) {
    // Degenerate zero-length node: both endpoints sit at the step offset
    // regardless of orientation, so such terms always yield d_ref == 0
    // between the two ends of the same step.
    for (bool rev : {false, true}) {
        EXPECT_EQ(core::endpoint_path_position(42, 0, rev, End::kStart), 42u);
        EXPECT_EQ(core::endpoint_path_position(42, 0, rev, End::kEnd), 42u);
    }
}

// --- PairSampler ---

TEST(PairSampler, ProducesValidTerms) {
    const auto g = small_graph();
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(1);
    int valid = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto t = sampler.sample(false, rng);
        if (!t.valid) continue;
        ++valid;
        ASSERT_LT(t.path, g.path_count());
        ASSERT_LT(t.step_i, g.path_step_count(t.path));
        ASSERT_LT(t.step_j, g.path_step_count(t.path));
        ASSERT_NE(t.step_i, t.step_j);
        ASSERT_GT(t.d_ref, 0.0);
        ASSERT_EQ(t.node_i, g.step_node(t.path, t.step_i));
    }
    EXPECT_GT(valid, 4000);
}

TEST(PairSampler, CoolingShortensHops) {
    const auto g = small_graph(2000, 2);
    core::LayoutConfig cfg;
    cfg.zipf_space_max = 0;  // unbounded: let hops roam the whole path
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(2);
    auto mean_hop = [&](bool cooling) {
        double total = 0;
        int n = 0;
        for (int i = 0; i < 20000; ++i) {
            const auto t = sampler.sample(cooling, rng);
            if (!t.valid) continue;
            total += std::abs(static_cast<double>(t.step_i) -
                              static_cast<double>(t.step_j));
            ++n;
        }
        return total / n;
    };
    // Cooling draws Zipf hops; always-cooling must give much shorter hops
    // than never-cooling (which is a 50/50 mix of uniform and Zipf).
    EXPECT_LT(mean_hop(true), mean_hop(false) * 0.8);
}

TEST(PairSampler, PathSelectionProportionalToLength) {
    // Two paths with very different lengths: the longer is picked more.
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = 100;
    spec.n_paths = 2;
    spec.seed = 6;
    auto vg = workloads::generate_pangenome(spec);
    // Append a path ~10x longer by concatenating an existing path walk.
    std::vector<graph::Handle> long_walk;
    for (int r = 0; r < 10; ++r) {
        const auto& steps = vg.path(0).steps;
        if (!long_walk.empty()) {
            // Close the loop so consecutive steps stay connected: revisit
            // from the first node again (edge added by add_path).
        }
        long_walk.insert(long_walk.end(), steps.begin(), steps.end());
    }
    vg.add_path("long", long_walk);
    const auto g = graph::LeanGraph::from_graph(vg);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(3);
    std::vector<int> counts(g.path_count(), 0);
    for (int i = 0; i < 30000; ++i) {
        counts[sampler.sample(false, rng).path]++;
    }
    const std::uint32_t long_path = g.path_count() - 1;
    EXPECT_GT(counts[long_path], counts[0] * 5);
}

// --- CPU engine ---

TEST(CpuEngine, ReducesSampledPathStress) {
    const auto g = small_graph(400, 6);
    core::LayoutConfig cfg;
    cfg.iter_max = 15;
    cfg.steps_per_iter_factor = 5.0;
    rng::Xoshiro256Plus rng(9);
    const auto initial = core::make_linear_initial_layout(g, rng);
    // Perturb the initial layout badly so there is something to fix.
    core::Layout bad = initial;
    rng::Xoshiro256Plus noise(10);
    for (std::size_t i = 0; i < bad.size(); ++i) {
        bad.start_x[i] += static_cast<float>((noise.next_double() - 0.5) * 1e4);
        bad.end_y[i] += static_cast<float>((noise.next_double() - 0.5) * 1e4);
    }
    const double before = metrics::sampled_path_stress(g, bad, 20, 1).value;
    const auto result = core::layout_cpu_from(g, cfg, bad);
    const double after = metrics::sampled_path_stress(g, result.layout, 20, 1).value;
    EXPECT_LT(after, before * 0.2);
}

TEST(CpuEngine, DeterministicSingleThread) {
    const auto g = small_graph();
    core::LayoutConfig cfg;
    cfg.iter_max = 3;
    cfg.steps_per_iter_factor = 1.0;
    cfg.seed = 77;
    const auto a = core::layout_cpu(g, cfg);
    const auto b = core::layout_cpu(g, cfg);
    ASSERT_EQ(a.layout.size(), b.layout.size());
    for (std::size_t i = 0; i < a.layout.size(); ++i) {
        EXPECT_EQ(a.layout.start_x[i], b.layout.start_x[i]);
        EXPECT_EQ(a.layout.end_y[i], b.layout.end_y[i]);
    }
}

TEST(CpuEngine, SoAAndAoSConvergeToSimilarQuality) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    cfg.iter_max = 12;
    cfg.steps_per_iter_factor = 4.0;
    const auto soa = core::layout_cpu(g, cfg, core::CoordStore::kSoA);
    const auto aos = core::layout_cpu(g, cfg, core::CoordStore::kAoS);
    const double s1 = metrics::sampled_path_stress(g, soa.layout, 20, 1).value;
    const double s2 = metrics::sampled_path_stress(g, aos.layout, 20, 1).value;
    // Same algorithm, same seed, different storage: quality must match
    // within noise.
    EXPECT_LT(std::abs(s1 - s2) / std::max(s1, s2), 0.5);
}

TEST(CpuEngine, MultiThreadedHogwildPreservesQuality) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    cfg.iter_max = 12;
    cfg.steps_per_iter_factor = 4.0;
    cfg.threads = 1;
    const auto single = core::layout_cpu(g, cfg);
    cfg.threads = 4;
    const auto multi = core::layout_cpu(g, cfg);
    const double s1 = metrics::sampled_path_stress(g, single.layout, 20, 1).value;
    const double s4 = metrics::sampled_path_stress(g, multi.layout, 20, 1).value;
    EXPECT_LT(s4, s1 * 3 + 0.5);  // Hogwild races must not wreck quality
}

TEST(CpuEngine, ReportsUpdateCounts) {
    const auto g = small_graph(100, 2);
    core::LayoutConfig cfg;
    cfg.iter_max = 2;
    cfg.steps_per_iter_factor = 1.0;
    const auto r = core::layout_cpu(g, cfg);
    EXPECT_EQ(r.updates, 2 * cfg.steps_per_iteration(g.total_path_steps()));
    EXPECT_EQ(r.eta_schedule.size(), 2u);
    EXPECT_GE(r.seconds, 0.0);
}

TEST(LayoutInit, LinearAlongCumulativeLength) {
    const auto g = small_graph(50, 2);
    rng::Xoshiro256Plus rng(4);
    const auto l = core::make_linear_initial_layout(g, rng);
    ASSERT_EQ(l.size(), g.node_count());
    double x = 0;
    for (std::uint32_t i = 0; i < g.node_count(); ++i) {
        EXPECT_FLOAT_EQ(l.start_x[i], static_cast<float>(x));
        x += g.node_length(i);
        EXPECT_FLOAT_EQ(l.end_x[i], static_cast<float>(x));
    }
}

TEST(LayoutStores, SnapshotRoundTrip) {
    const auto g = small_graph(40, 2);
    rng::Xoshiro256Plus rng(5);
    const auto l = core::make_linear_initial_layout(g, rng);
    core::XYStore store(l);
    const auto s = store.snapshot();
    for (std::size_t i = 0; i < l.size(); ++i) {
        EXPECT_EQ(s.start_x[i], l.start_x[i]);
        EXPECT_EQ(s.end_y[i], l.end_y[i]);
    }
}

TEST(LayoutStores, AtomicAccessorsAliasTheRawArrays) {
    const auto g = small_graph(10, 1);
    rng::Xoshiro256Plus rng(6);
    const auto l = core::make_linear_initial_layout(g, rng);
    core::XYStore store(l);
    ASSERT_EQ(store.coord_count(), 2 * l.size());
    store.store_x(3, End::kEnd, 42.5f);
    EXPECT_FLOAT_EQ(store.load_x(3, End::kEnd), 42.5f);
    // The atomic accessors and the kernels' raw pointers address the same
    // floats through the same 2*node + end indexing.
    EXPECT_FLOAT_EQ(store.x()[core::XYStore::index(3, End::kEnd)], 42.5f);
    store.y()[core::XYStore::index(2, End::kStart)] = -7.25f;
    EXPECT_FLOAT_EQ(store.load_y(2, End::kStart), -7.25f);
}

}  // namespace

// Telemetry layer contracts: bucket boundaries, exact count/sum/min/max,
// merge associativity, quantiles against a sorted-vector oracle (within the
// bucketing's 12.5% relative-error bound), concurrent recording (exercised
// under TSan in CI), registry handle identity, snapshot/trace exporter
// shape. A PGL_TELEMETRY=OFF build compiles this file too: the enabled-only
// tests skip, and the exporters must still produce valid empty documents.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using pgl::telemetry::Histogram;
using pgl::telemetry::Registry;
using pgl::telemetry::StageSpan;
using pgl::telemetry::Tracer;

// Deterministic value stream (SplitMix64) so the oracle comparison never
// flakes; spans ~16 orders of magnitude to hit every bucket regime.
std::uint64_t mix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

#ifndef PGL_TELEMETRY_DISABLED

TEST(HistogramBuckets, BoundariesContainTheirValues) {
    // Every value must land in a bucket whose [lower, next lower) range
    // contains it, and indices must be monotone in the value.
    std::uint32_t prev_bucket = 0;
    for (std::uint64_t v = 0; v < 4096; ++v) {
        const std::uint32_t b = Histogram::bucket_index(v);
        ASSERT_LT(b, Histogram::kNumBuckets);
        ASSERT_GE(b, prev_bucket) << "bucket_index not monotone at " << v;
        prev_bucket = b;
        ASSERT_LE(Histogram::bucket_lower(b), v);
        if (b + 1 < Histogram::kNumBuckets) {
            ASSERT_LT(v, Histogram::bucket_lower(b + 1));
        }
    }
    // Large values, including the extremes of the u64 range.
    for (int shift = 12; shift < 64; ++shift) {
        for (const std::uint64_t v :
             {(std::uint64_t{1} << shift),
              (std::uint64_t{1} << shift) + (std::uint64_t{1} << (shift - 2)),
              (std::uint64_t{1} << shift) - 1}) {
            const std::uint32_t b = Histogram::bucket_index(v);
            ASSERT_LT(b, Histogram::kNumBuckets);
            ASSERT_LE(Histogram::bucket_lower(b), v);
            if (b + 1 < Histogram::kNumBuckets) {
                ASSERT_LT(v, Histogram::bucket_lower(b + 1));
            }
        }
    }
}

TEST(HistogramBuckets, WidthWithin12Point5Percent) {
    // The quantile error bound rests on this: above the exact range every
    // bucket's width is at most 1/8 of its lower bound.
    for (std::uint32_t b = 16; b + 1 < Histogram::kNumBuckets; ++b) {
        const std::uint64_t lo = Histogram::bucket_lower(b);
        const std::uint64_t hi = Histogram::bucket_lower(b + 1);
        ASSERT_GT(hi, lo) << "empty bucket " << b;
        ASSERT_LE(hi - lo, lo / 8) << "bucket " << b << " too wide";
    }
}

TEST(Histogram, CountSumMinMaxExact) {
    const Histogram h =
        Registry::instance().histogram("test.exact_stats_ns");
    h.reset();
    std::uint64_t sum = 0;
    for (const std::uint64_t v : {7ull, 0ull, 123456789ull, 15ull, 16ull,
                                  999999999999ull, 42ull}) {
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 999999999999ull);
}

TEST(Histogram, QuantilesMatchSortedOracle) {
    const Histogram h = Registry::instance().histogram("test.oracle_ns");
    h.reset();
    std::uint64_t state = 42;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 10000; ++i) {
        // Mixed magnitudes: exact small values and wide log-range ones.
        const std::uint64_t r = mix64(state);
        values.push_back(r >> (r % 50));
    }
    for (const std::uint64_t v : values) h.record(v);
    std::sort(values.begin(), values.end());

    for (const double q : {0.0, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0}) {
        const double rank = q * static_cast<double>(values.size() - 1);
        const double lo = static_cast<double>(
            values[static_cast<std::size_t>(std::floor(rank))]);
        const double hi = static_cast<double>(
            values[static_cast<std::size_t>(std::ceil(rank))]);
        const double est = h.quantile(q);
        // est interpolates inside the bucket holding the rank'd sample, so
        // it can undershoot lo / overshoot hi by at most one bucket width
        // (12.5% relative; +1 absorbs the exact-bucket regime edge).
        EXPECT_GE(est, lo / 1.125 - 1.0) << "q=" << q;
        EXPECT_LE(est, hi * 1.125 + 1.0) << "q=" << q;
    }
}

TEST(Histogram, MergeIsAssociativeAndExact) {
    auto& reg = Registry::instance();
    const Histogram a = reg.histogram("test.merge_a");
    const Histogram b = reg.histogram("test.merge_b");
    const Histogram c = reg.histogram("test.merge_c");
    const Histogram left = reg.histogram("test.merge_left");
    const Histogram right = reg.histogram("test.merge_right");
    for (const Histogram& h : {a, b, c, left, right}) h.reset();

    std::uint64_t state = 7;
    for (int i = 0; i < 300; ++i) a.record(mix64(state) >> 40);
    for (int i = 0; i < 200; ++i) b.record(mix64(state) >> 20);
    for (int i = 0; i < 100; ++i) c.record(mix64(state) >> 4);

    // (a + b) + c
    left.merge_from(a);
    left.merge_from(b);
    left.merge_from(c);
    // a + (b + c): merge b and c into a scratch first.
    const Histogram bc = reg.histogram("test.merge_bc");
    bc.reset();
    bc.merge_from(b);
    bc.merge_from(c);
    right.merge_from(a);
    right.merge_from(bc);

    EXPECT_EQ(left.count(), 600u);
    EXPECT_EQ(left.count(), right.count());
    EXPECT_EQ(left.sum(), right.sum());
    EXPECT_EQ(left.sum(), a.sum() + b.sum() + c.sum());
    EXPECT_EQ(left.min(), right.min());
    EXPECT_EQ(left.max(), right.max());
    for (const double q : {0.01, 0.5, 0.95, 0.99}) {
        EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << "q=" << q;
    }
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
    const Histogram h = Registry::instance().histogram("test.concurrent_ns");
    h.reset();
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h, t] {
            const Histogram mine =
                Registry::instance().histogram("test.concurrent_ns");
            std::uint64_t state = 1000 + static_cast<std::uint64_t>(t);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                (i % 2 ? h : mine).record(mix64(state) >> 32);
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_GT(h.sum(), 0u);
}

TEST(Counter, HandlesAliasTheSameSlot) {
    auto& reg = Registry::instance();
    const auto c1 = reg.counter("test.alias");
    c1.reset();
    const auto c2 = reg.counter("test.alias");
    c1.add(3);
    c2.add(4);
    EXPECT_EQ(c1.value(), 7u);
    EXPECT_EQ(c2.value(), 7u);
}

TEST(StageSpan, FeedsSpanHistogram) {
    const Histogram h = Registry::instance().histogram("span.test_stage");
    h.reset();
    {
        StageSpan span("test_stage", "test");
        EXPECT_GE(span.elapsed_ns(), 0u);
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GT(h.sum(), 0u);
}

TEST(Snapshot, ContainsRecordedMetrics) {
    Registry::instance().counter("test.snapshot_counter").add(5);
    Registry::instance().histogram("test.snapshot_hist").record(100);
    const std::string json = pgl::telemetry::snapshot_json();
    EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(json.find("\"test.snapshot_counter\""), std::string::npos);
    EXPECT_NE(json.find("\"test.snapshot_hist\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Trace, WriterEmitsSpansWhenEnabled) {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
    {
        StageSpan span("trace_test_span", "test");
    }
    Tracer::instance().set_enabled(false);
    const std::string path = "test_telemetry_trace.json";
    ASSERT_TRUE(pgl::telemetry::write_chrome_trace(path));
    const std::string doc = read_file(path);
    std::remove(path.c_str());
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"trace_test_span\""), std::string::npos);
    EXPECT_NE(doc.find("\"telemetryEnabled\":true"), std::string::npos);
}

#else  // PGL_TELEMETRY_DISABLED

TEST(TelemetryDisabled, ExportersStillEmitValidDocuments) {
    const std::string snap = pgl::telemetry::snapshot_json();
    EXPECT_NE(snap.find("\"enabled\":false"), std::string::npos);

    const std::string path = "test_telemetry_trace_off.json";
    ASSERT_TRUE(pgl::telemetry::write_chrome_trace(path));
    const std::string doc = read_file(path);
    std::remove(path.c_str());
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"telemetryEnabled\":false"), std::string::npos);
}

TEST(TelemetryDisabled, ApiIsInertButCallable) {
    const auto c = pgl::telemetry::Registry::instance().counter("test.off");
    c.add(10);
    EXPECT_EQ(c.value(), 0u);
    const auto h =
        pgl::telemetry::Registry::instance().histogram("test.off_ns");
    h.record(123);
    EXPECT_EQ(h.count(), 0u);
    pgl::telemetry::StageSpan span("off_span");
    EXPECT_EQ(span.elapsed_ns(), 0u);
}

#endif  // PGL_TELEMETRY_DISABLED

}  // namespace

// Tests for the pluggable LayoutEngine interface, the EngineRegistry and
// the batched term pipeline (TermBatch / PairSampler::fill_batch).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <atomic>

#include "core/cpu_engine.hpp"
#include "core/engine.hpp"
#include "core/term_batch.hpp"
#include "core/thread_pool.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"
#include "rng/xoshiro256.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;

graph::LeanGraph small_graph(std::uint64_t backbone = 200, std::uint32_t paths = 4,
                             std::uint64_t seed = 5) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = paths;
    spec.seed = seed;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

core::LayoutConfig tiny_cfg() {
    core::LayoutConfig cfg;
    cfg.iter_max = 3;
    cfg.steps_per_iter_factor = 0.5;
    cfg.seed = 99;
    return cfg;
}

// --- Registry ---

TEST(EngineRegistry, ListsAllBuiltinBackends) {
    const auto names = core::EngineRegistry::instance().names();
    const std::set<std::string> have(names.begin(), names.end());
    for (const char* expected :
         {"cpu-soa", "cpu-aos", "cpu-batched", "cpu-pipelined", "gpusim-base",
          "gpusim-optimized", "torch"}) {
        EXPECT_TRUE(have.count(expected)) << "missing backend " << expected;
    }
}

TEST(EngineRegistry, CreateReturnsEngineWithMatchingName) {
    for (const auto& name : core::EngineRegistry::instance().names()) {
        auto engine = core::EngineRegistry::instance().create(name);
        ASSERT_NE(engine, nullptr) << name;
        EXPECT_EQ(engine->name(), name);
    }
}

TEST(EngineRegistry, UnknownNameIsNullAndMakeEngineThrows) {
    EXPECT_EQ(core::EngineRegistry::instance().create("no-such-engine"), nullptr);
    EXPECT_FALSE(core::EngineRegistry::instance().contains("no-such-engine"));
    EXPECT_THROW(core::make_engine("no-such-engine"), std::invalid_argument);
}

TEST(EngineRegistry, CustomEngineCanBeRegistered) {
    auto& reg = core::EngineRegistry::instance();
    reg.add("test-alias", [] {
        return core::make_cpu_engine(core::CoordStore::kSoA, false);
    });
    EXPECT_TRUE(reg.contains("test-alias"));
    auto engine = reg.create("test-alias");
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), "cpu-soa");
}

// --- LayoutEngine contract ---

TEST(LayoutEngine, RunBeforeInitThrows) {
    auto engine = core::make_engine("cpu-soa");
    EXPECT_THROW(engine->run(), std::logic_error);
}

TEST(LayoutEngine, EveryBackendProducesFiniteLayout) {
    const auto g = small_graph();
    const auto cfg = tiny_cfg();
    for (const auto& name : core::EngineRegistry::instance().names()) {
        auto engine = core::EngineRegistry::instance().create(name);
        engine->init(g, cfg);
        const auto r = engine->run();
        ASSERT_EQ(r.layout.size(), g.node_count()) << name;
        EXPECT_GT(r.updates, 0u) << name;
        EXPECT_EQ(r.eta_schedule.size(), cfg.iter_max) << name;
        for (std::size_t i = 0; i < r.layout.size(); ++i) {
            ASSERT_TRUE(std::isfinite(r.layout.start_x[i])) << name;
            ASSERT_TRUE(std::isfinite(r.layout.start_y[i])) << name;
            ASSERT_TRUE(std::isfinite(r.layout.end_x[i])) << name;
            ASSERT_TRUE(std::isfinite(r.layout.end_y[i])) << name;
        }
    }
}

TEST(LayoutEngine, RunIterationsTruncatesTheConfiguredSchedule) {
    const auto g = small_graph();
    auto engine = core::make_engine("cpu-soa");
    core::LayoutConfig cfg = tiny_cfg();
    cfg.iter_max = 30;
    engine->init(g, cfg);
    std::vector<core::IterationStats> seen;
    engine->set_progress_hook(
        [&](const core::IterationStats& s) { seen.push_back(s); });
    const auto r = engine->run(2);
    // Only 2 iterations execute, but they walk the *30-iteration*
    // annealing schedule (a partially-converged prefix, not a compressed
    // 2-iteration schedule).
    EXPECT_EQ(seen.size(), 2u);
    ASSERT_EQ(r.eta_schedule.size(), 30u);
    EXPECT_EQ(seen[0].eta, r.eta_schedule[0]);
    EXPECT_EQ(seen[1].eta, r.eta_schedule[1]);
}

TEST(LayoutEngine, ProgressHookFiresPerIteration) {
    const auto g = small_graph();
    const auto cfg = tiny_cfg();
    for (const char* name :
         {"cpu-soa", "cpu-batched", "cpu-pipelined", "gpusim-base", "torch"}) {
        auto engine = core::make_engine(name);
        engine->init(g, cfg);
        std::vector<core::IterationStats> seen;
        engine->set_progress_hook(
            [&](const core::IterationStats& s) { seen.push_back(s); });
        engine->run();
        ASSERT_EQ(seen.size(), cfg.iter_max) << name;
        for (std::uint32_t i = 0; i < cfg.iter_max; ++i) {
            EXPECT_EQ(seen[i].iteration, i) << name;
            EXPECT_EQ(seen[i].iter_max, cfg.iter_max) << name;
            EXPECT_GT(seen[i].updates, 0u) << name;
        }
        // The annealing schedule decays monotonically.
        for (std::size_t i = 1; i < seen.size(); ++i) {
            EXPECT_LT(seen[i].eta, seen[i - 1].eta) << name;
        }
    }
}

// --- Batched CPU engine vs legacy scalar path (acceptance criterion) ---

TEST(CpuBatchedEngine, BitIdenticalToScalarForSingleThread) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    cfg.iter_max = 6;
    cfg.steps_per_iter_factor = 2.0;
    cfg.threads = 1;
    cfg.seed = 4242;

    const auto scalar = core::layout_cpu(g, cfg);  // legacy wrapper

    auto engine = core::make_engine("cpu-batched");
    engine->init(g, cfg);
    const auto batched = engine->run();

    ASSERT_EQ(scalar.layout.size(), batched.layout.size());
    for (std::size_t i = 0; i < scalar.layout.size(); ++i) {
        ASSERT_EQ(scalar.layout.start_x[i], batched.layout.start_x[i]) << i;
        ASSERT_EQ(scalar.layout.start_y[i], batched.layout.start_y[i]) << i;
        ASSERT_EQ(scalar.layout.end_x[i], batched.layout.end_x[i]) << i;
        ASSERT_EQ(scalar.layout.end_y[i], batched.layout.end_y[i]) << i;
    }
    EXPECT_EQ(scalar.updates, batched.updates);
    EXPECT_EQ(scalar.skipped, batched.skipped);
}

TEST(CpuBatchedEngine, MultithreadedRunStaysFinite) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    cfg.iter_max = 4;
    cfg.steps_per_iter_factor = 2.0;
    cfg.threads = 4;
    auto engine = core::make_engine("cpu-batched");
    engine->init(g, cfg);
    const auto r = engine->run();
    for (std::size_t i = 0; i < r.layout.size(); ++i) {
        ASSERT_TRUE(std::isfinite(r.layout.start_x[i]));
        ASSERT_TRUE(std::isfinite(r.layout.end_y[i]));
    }
}

// --- ThreadPool (the seam every multithreaded backend now runs on) ---

TEST(ThreadPool, RunsEveryWorkerExactlyOncePerDispatch) {
    core::ThreadPool pool(4);
    ASSERT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(4);
    for (int round = 0; round < 50; ++round) {
        pool.run([&](std::uint32_t tid) {
            hits[tid].fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (int t = 0; t < 4; ++t) EXPECT_EQ(hits[t].load(), 50) << t;
}

TEST(ThreadPool, LaunchOverlapsCallerAndWaitEstablishesVisibility) {
    core::ThreadPool pool(3);
    std::vector<std::uint64_t> produced(3, 0);
    std::uint64_t expected = 0;
    for (int round = 1; round <= 20; ++round) {
        pool.launch([&, round](std::uint32_t tid) {
            produced[tid] += static_cast<std::uint64_t>(round) * (tid + 1);
        });
        // Caller-side work between launch and wait, as the pipelined
        // consumer does.
        expected += static_cast<std::uint64_t>(round);
        pool.wait();
    }
    // Plain (non-atomic) writes must be visible after wait().
    for (std::uint32_t t = 0; t < 3; ++t) {
        EXPECT_EQ(produced[t], expected * (t + 1)) << t;
    }
}

TEST(ThreadPool, SizeZeroRunsInline) {
    core::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    int calls = 0;
    pool.run([&](std::uint32_t tid) {
        EXPECT_EQ(tid, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

// --- Pipelined CPU engine (determinism + quality, acceptance criteria) ---

TEST(CpuPipelinedEngine, FixedSeedAndThreadsIsByteIdenticalAcrossRuns) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    cfg.iter_max = 5;
    cfg.steps_per_iter_factor = 2.0;
    cfg.threads = 4;
    cfg.seed = 20240117;

    core::LayoutResult runs[2];
    for (auto& r : runs) {
        auto engine = core::make_engine("cpu-pipelined");
        engine->init(g, cfg);
        r = engine->run();
    }
    ASSERT_EQ(runs[0].layout.size(), runs[1].layout.size());
    for (std::size_t i = 0; i < runs[0].layout.size(); ++i) {
        ASSERT_EQ(runs[0].layout.start_x[i], runs[1].layout.start_x[i]) << i;
        ASSERT_EQ(runs[0].layout.start_y[i], runs[1].layout.start_y[i]) << i;
        ASSERT_EQ(runs[0].layout.end_x[i], runs[1].layout.end_x[i]) << i;
        ASSERT_EQ(runs[0].layout.end_y[i], runs[1].layout.end_y[i]) << i;
    }
    EXPECT_EQ(runs[0].updates, runs[1].updates);
    EXPECT_EQ(runs[0].skipped, runs[1].skipped);
}

TEST(CpuPipelinedEngine, ReRunningTheSameEngineInstanceIsDeterministicToo) {
    // The persistent pool must not leak state between run() calls.
    const auto g = small_graph(200, 4);
    core::LayoutConfig cfg = tiny_cfg();
    cfg.threads = 3;
    auto engine = core::make_engine("cpu-pipelined");
    engine->init(g, cfg);
    const auto a = engine->run();
    const auto b = engine->run();
    ASSERT_EQ(a.layout.size(), b.layout.size());
    for (std::size_t i = 0; i < a.layout.size(); ++i) {
        ASSERT_EQ(a.layout.start_x[i], b.layout.start_x[i]) << i;
        ASSERT_EQ(a.layout.end_y[i], b.layout.end_y[i]) << i;
    }
}

TEST(CpuPipelinedEngine, MatchesBatchedQualityWithinStressTolerance) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    // A full 30-iteration schedule: partially-converged runs have
    // order-of-magnitude stress variance across PRNG streams for every
    // engine, so only the converged layouts compare meaningfully.
    cfg.iter_max = 30;
    cfg.steps_per_iter_factor = 2.0;
    cfg.threads = 4;
    cfg.seed = 777;

    auto batched = core::make_engine("cpu-batched");
    batched->init(g, cfg);
    const auto rb = batched->run();

    auto pipelined = core::make_engine("cpu-pipelined");
    pipelined->init(g, cfg);
    const auto rp = pipelined->run();

    EXPECT_EQ(rb.updates, rp.updates);
    const auto sb = metrics::sampled_path_stress(g, rb.layout, 50, 1);
    const auto sp = metrics::sampled_path_stress(g, rp.layout, 50, 1);
    // Same objective, same schedule, different update interleaving: the
    // two engines must land on layouts of comparable quality.
    ASSERT_GT(sb.value, 0.0);
    ASSERT_GT(sp.value, 0.0);
    EXPECT_LT(sp.value, sb.value * 2.0);
    EXPECT_GT(sp.value, sb.value * 0.5);
}

// --- Update accounting (multithreaded over-count fix) ---

TEST(CpuEngine, MultithreadedUpdateCountMatchesRequestedSteps) {
    const auto g = small_graph(100, 2);
    core::LayoutConfig cfg;
    cfg.iter_max = 3;
    cfg.steps_per_iter_factor = 1.0;
    const std::uint64_t n_steps = cfg.steps_per_iteration(g.total_path_steps());
    // A thread count that does not divide n_steps used to round the
    // reported count up past the requested steps.
    for (std::uint32_t threads : {2u, 3u, 7u}) {
        cfg.threads = threads;
        const auto r = core::layout_cpu(g, cfg);
        EXPECT_EQ(r.updates, cfg.iter_max * n_steps) << threads << " threads";
    }
}

// --- TermBatch / fill_batch ---

TEST(TermBatch, FillBatchMatchesScalarSampleStream) {
    const auto g = small_graph(250, 4);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);

    // Reference: the scalar CPU loop's PRNG consumption — sample, then one
    // nudge draw per valid term.
    rng::Xoshiro256Plus rng_scalar(31337);
    std::vector<core::TermSample> ref;
    std::vector<double> ref_nudge;
    for (int k = 0; k < 3000; ++k) {
        const auto t = sampler.sample(false, rng_scalar);
        double nd = 0.0;
        if (t.valid) {
            nd = (rng_scalar.next_double() - 0.5) * 1e-3;
            if (nd == 0.0) nd = 1e-4;
        }
        ref.push_back(t);
        ref_nudge.push_back(nd);
    }

    rng::Xoshiro256Plus rng_batch(31337);
    core::TermBatch batch;
    const std::uint64_t skipped = sampler.fill_batch(false, rng_batch, 3000, batch);

    ASSERT_EQ(batch.size(), ref.size());
    std::uint64_t ref_skipped = 0;
    for (std::size_t k = 0; k < ref.size(); ++k) {
        ASSERT_EQ(batch.valid[k] != 0, ref[k].valid) << k;
        if (!ref[k].valid) {
            ++ref_skipped;
            continue;
        }
        ASSERT_EQ(batch.path[k], ref[k].path) << k;
        ASSERT_EQ(batch.step_i[k], ref[k].step_i) << k;
        ASSERT_EQ(batch.step_j[k], ref[k].step_j) << k;
        ASSERT_EQ(batch.node_i[k], ref[k].node_i) << k;
        ASSERT_EQ(batch.node_j[k], ref[k].node_j) << k;
        ASSERT_EQ(batch.end_i_of(k), ref[k].end_i) << k;
        ASSERT_EQ(batch.end_j_of(k), ref[k].end_j) << k;
        ASSERT_EQ(batch.pos_i[k], ref[k].pos_i) << k;
        ASSERT_EQ(batch.pos_j[k], ref[k].pos_j) << k;
        ASSERT_EQ(batch.d_ref[k], ref[k].d_ref) << k;
        ASSERT_EQ(batch.nudge[k], ref_nudge[k]) << k;
    }
    EXPECT_EQ(skipped, ref_skipped);
    EXPECT_EQ(batch.invalid_count(), ref_skipped);
}

TEST(TermBatch, SlicedFillsReplayOneBigFill) {
    // Filling 4 x 250 terms in slices consumes the PRNG exactly like one
    // 1000-term fill — the property the batched engine's slicing relies on.
    const auto g = small_graph(250, 4);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);

    rng::Xoshiro256Plus rng_one(7);
    core::TermBatch one;
    sampler.fill_batch(true, rng_one, 1000, one);

    rng::Xoshiro256Plus rng_sliced(7);
    core::TermBatch sliced;
    for (int s = 0; s < 4; ++s) sampler.fill_batch(true, rng_sliced, 250, sliced);

    ASSERT_EQ(one.size(), sliced.size());
    for (std::size_t k = 0; k < one.size(); ++k) {
        ASSERT_EQ(one.valid[k], sliced.valid[k]) << k;
        ASSERT_EQ(one.node_i[k], sliced.node_i[k]) << k;
        ASSERT_EQ(one.node_j[k], sliced.node_j[k]) << k;
        ASSERT_EQ(one.d_ref[k], sliced.d_ref[k]) << k;
        ASSERT_EQ(one.nudge[k], sliced.nudge[k]) << k;
    }
}

TEST(TermBatch, WithoutNudgeDrawsNoExtraVariates) {
    const auto g = small_graph(250, 4);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);

    rng::Xoshiro256Plus rng_scalar(11);
    std::vector<core::TermSample> ref;
    for (int k = 0; k < 500; ++k) ref.push_back(sampler.sample(false, rng_scalar));

    rng::Xoshiro256Plus rng_batch(11);
    core::TermBatch batch;
    sampler.fill_batch(false, rng_batch, 500, batch, /*with_nudge=*/false);

    ASSERT_EQ(batch.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k) {
        ASSERT_EQ(batch.valid[k] != 0, ref[k].valid) << k;
        if (!ref[k].valid) continue;
        ASSERT_EQ(batch.node_i[k], ref[k].node_i) << k;
        ASSERT_EQ(batch.d_ref[k], ref[k].d_ref) << k;
        ASSERT_EQ(batch.nudge[k], 0.0) << k;
    }
}

// --- Placement never changes the bytes ---

// The NUMA layer's hard guardrail: for the deterministic backends a fixed
// (seed, threads) run is byte-identical with pinning and memory placement
// on, off, or any mix — placement may move pages and workers, never a
// float. One reference run per (backend, threads), compared against every
// placement variant, including a pin plan whose CPUs do not exist (the
// partial-failure path: pinning fails, the run must neither abort nor
// diverge).
core::LayoutResult run_placed(const graph::LeanGraph& g, const char* backend,
                              std::uint32_t threads, bool pin,
                              const std::string& numa) {
    core::LayoutConfig cfg;
    cfg.iter_max = 4;
    cfg.steps_per_iter_factor = 1.0;
    cfg.threads = threads;
    cfg.seed = 424242;
    cfg.pin = pin;
    cfg.numa = numa;
    auto engine = core::make_engine(backend);
    engine->init(g, cfg);
    return engine->run();
}

void expect_same_layout(const core::LayoutResult& a,
                        const core::LayoutResult& b, const std::string& what) {
    ASSERT_EQ(a.layout.size(), b.layout.size()) << what;
    for (std::size_t i = 0; i < a.layout.size(); ++i) {
        ASSERT_EQ(a.layout.start_x[i], b.layout.start_x[i]) << what << " " << i;
        ASSERT_EQ(a.layout.start_y[i], b.layout.start_y[i]) << what << " " << i;
        ASSERT_EQ(a.layout.end_x[i], b.layout.end_x[i]) << what << " " << i;
        ASSERT_EQ(a.layout.end_y[i], b.layout.end_y[i]) << what << " " << i;
    }
    EXPECT_EQ(a.updates, b.updates) << what;
    EXPECT_EQ(a.skipped, b.skipped) << what;
}

class PlacementByteIdentity
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t>> {
};

TEST_P(PlacementByteIdentity, PinnedAndPlacedRunsMatchUnpinned) {
    const auto [backend, threads] = GetParam();
    const auto g = small_graph(300, 5);
    const auto base = run_placed(g, backend, threads, false, "off");
    expect_same_layout(base, run_placed(g, backend, threads, true, "off"),
                       "pin only");
    expect_same_layout(base, run_placed(g, backend, threads, true, "auto"),
                       "pin + auto");
    expect_same_layout(base, run_placed(g, backend, threads, false, "interleave"),
                       "interleave, unpinned");
    // Out-of-range node:K degrades to K % node_count, still byte-identical.
    expect_same_layout(base, run_placed(g, backend, threads, true, "node:7"),
                       "pin + node:7");
}

INSTANTIATE_TEST_SUITE_P(
    DeterministicBackends, PlacementByteIdentity,
    ::testing::Combine(::testing::Values("cpu-batched", "cpu-pipelined"),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
        std::string name = std::string(std::get<0>(info.param)) + "_t" +
                           std::to_string(std::get<1>(info.param));
        for (char& c : name) {
            if (c == '-') c = '_';
        }
        return name;
    });

TEST(PlacementByteIdentityExtra, PartiallyFailedPinStillMatches) {
    // Drive the failure path directly: a pool pinned to a nonexistent CPU
    // must run the job unpinned and to completion.
    core::WorkerPlacement plan;
    plan.slots = {{1u << 20, 0}};
    core::ThreadPool pool(1, plan);
    std::atomic<int> ran{0};
    pool.run([&](std::uint32_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

}  // namespace

// Tests for the synthetic pangenome generator — the HPRC-dataset
// substitute must produce structurally valid graphs whose statistics match
// the paper's dataset profile (Table I / Table VI).
#include <gtest/gtest.h>

#include "graph/lean_graph.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using workloads::PangenomeSpec;

TEST(Workloads, GraphIsStructurallyValid) {
    PangenomeSpec spec;
    spec.backbone_nodes = 2000;
    spec.n_paths = 10;
    spec.seed = 1;
    const auto g = workloads::generate_pangenome(spec);
    EXPECT_EQ(g.validate(), "");
}

TEST(Workloads, DeterministicForSeed) {
    PangenomeSpec spec;
    spec.backbone_nodes = 500;
    spec.n_paths = 4;
    spec.seed = 7;
    const auto a = workloads::generate_pangenome(spec);
    const auto b = workloads::generate_pangenome(spec);
    EXPECT_EQ(a.node_count(), b.node_count());
    EXPECT_EQ(a.edge_count(), b.edge_count());
    EXPECT_EQ(a.total_path_steps(), b.total_path_steps());
    for (graph::NodeId i = 0; i < a.node_count(); ++i) {
        ASSERT_EQ(a.sequence(i), b.sequence(i));
    }
}

TEST(Workloads, DifferentSeedsDiffer) {
    PangenomeSpec spec;
    spec.backbone_nodes = 500;
    spec.n_paths = 4;
    spec.seed = 7;
    const auto a = workloads::generate_pangenome(spec);
    spec.seed = 8;
    const auto b = workloads::generate_pangenome(spec);
    EXPECT_NE(a.edge_count(), b.edge_count());
}

TEST(Workloads, AllPathsShareSourceNode) {
    PangenomeSpec spec;
    spec.backbone_nodes = 300;
    spec.n_paths = 6;
    spec.seed = 2;
    const auto g = workloads::generate_pangenome(spec);
    for (std::size_t p = 0; p < g.path_count(); ++p) {
        EXPECT_EQ(g.path(p).steps.front().id(), 0u);
    }
}

TEST(Workloads, HlaPresetMatchesTableOne) {
    const auto g = workloads::generate_pangenome(workloads::hla_drb1_spec());
    const auto s = g.stats();
    // Table I: 5.0e3 nodes, 6.8e3 edges, 12 paths, 2.2e4 nucleotides.
    EXPECT_NEAR(static_cast<double>(s.nodes), 5.0e3, 5.0e3 * 0.25);
    EXPECT_NEAR(static_cast<double>(s.edges), 6.8e3, 6.8e3 * 0.25);
    EXPECT_EQ(s.paths, 12u);
    EXPECT_NEAR(static_cast<double>(s.nucleotides), 2.2e4, 2.2e4 * 0.4);
    EXPECT_EQ(g.validate(), "");
}

TEST(Workloads, EdgeNodeRatioMatchesHprc) {
    // HPRC chromosome graphs have edges/nodes ~ 1.36-1.4.
    for (int k : {1, 12, 24}) {
        const auto g = workloads::generate_pangenome(
            workloads::chromosome_spec(k, 0.002));
        const auto s = g.stats();
        const double ratio =
            static_cast<double>(s.edges) / static_cast<double>(s.nodes);
        EXPECT_GT(ratio, 1.2) << "chr " << k;
        EXPECT_LT(ratio, 1.55) << "chr " << k;
    }
}

TEST(Workloads, ChromosomeSizesFollowWeights) {
    const auto big = workloads::generate_pangenome(workloads::chromosome_spec(1, 0.002));
    const auto small =
        workloads::generate_pangenome(workloads::chromosome_spec(24, 0.002));
    EXPECT_GT(big.node_count(), 5 * small.node_count());
}

TEST(Workloads, ChromosomeNames) {
    EXPECT_EQ(workloads::chromosome_name(1), "Chr.1");
    EXPECT_EQ(workloads::chromosome_name(22), "Chr.22");
    EXPECT_EQ(workloads::chromosome_name(23), "Chr.X");
    EXPECT_EQ(workloads::chromosome_name(24), "Chr.Y");
}

TEST(Workloads, InversionProducesReverseSteps) {
    PangenomeSpec spec;
    spec.backbone_nodes = 3000;
    spec.n_paths = 8;
    spec.inv_rate = 0.05;  // force plenty of inversions
    spec.seed = 3;
    const auto g = workloads::generate_pangenome(spec);
    std::uint64_t reverse_steps = 0;
    for (std::size_t p = 0; p < g.path_count(); ++p) {
        for (const auto& h : g.path(p).steps) reverse_steps += h.is_reverse();
    }
    EXPECT_GT(reverse_steps, 0u);
    EXPECT_EQ(g.validate(), "");
}

TEST(Workloads, LoopsRevisitNodes) {
    PangenomeSpec spec;
    spec.backbone_nodes = 3000;
    spec.n_paths = 4;
    spec.loop_rate = 0.05;
    spec.allele_frequency = 0.9;
    spec.seed = 4;
    const auto g = workloads::generate_pangenome(spec);
    // A tandem duplication makes some path longer than its distinct nodes.
    bool found_revisit = false;
    for (std::size_t p = 0; p < g.path_count() && !found_revisit; ++p) {
        std::vector<bool> seen(g.node_count(), false);
        for (const auto& h : g.path(p).steps) {
            if (seen[h.id()]) {
                found_revisit = true;
                break;
            }
            seen[h.id()] = true;
        }
    }
    EXPECT_TRUE(found_revisit);
    EXPECT_EQ(g.validate(), "");
}

TEST(Workloads, InsertionsAndDeletionsVaryPathLengths) {
    PangenomeSpec spec;
    spec.backbone_nodes = 2000;
    spec.n_paths = 10;
    spec.ins_rate = 0.05;
    spec.del_rate = 0.05;
    spec.seed = 5;
    const auto g = workloads::generate_pangenome(spec);
    std::size_t min_len = SIZE_MAX, max_len = 0;
    for (std::size_t p = 0; p < g.path_count(); ++p) {
        min_len = std::min(min_len, g.path(p).steps.size());
        max_len = std::max(max_len, g.path(p).steps.size());
    }
    EXPECT_LT(min_len, max_len);
}

// Parameterized sweep: every (backbone, paths) combination must generate a
// valid graph whose lean form is internally consistent.
class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(WorkloadSweep, ValidAndLeanConsistent) {
    const auto [backbone, paths] = GetParam();
    PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = paths;
    spec.seed = backbone * 31 + paths;
    const auto g = workloads::generate_pangenome(spec);
    ASSERT_EQ(g.validate(), "");
    const auto lg = graph::LeanGraph::from_graph(g);
    ASSERT_EQ(lg.path_count(), g.path_count());
    ASSERT_EQ(lg.total_path_steps(), g.total_path_steps());
    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        const std::uint32_t n = lg.path_step_count(p);
        ASSERT_EQ(n, g.path(p).steps.size());
        std::uint64_t pos = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            ASSERT_EQ(lg.step_position(p, i), pos);
            pos += lg.node_length(lg.step_node(p, i));
        }
        ASSERT_EQ(lg.path_nuc_length(p), pos);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WorkloadSweep,
    ::testing::Combine(::testing::Values(2ULL, 16ULL, 100ULL, 1000ULL),
                       ::testing::Values(1u, 2u, 7u, 20u)));

}  // namespace

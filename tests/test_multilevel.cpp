// Tests for the multilevel subsystem: exact coarsener structure on the
// closed-form linear-run workload, path/nucleotide invariants, interpolation
// exactness, plan building/validation, run_plan determinism (including
// scalar vs SIMD kernels), and the partition contract — a partitioned
// multilevel run equals standalone per-component multilevel runs
// byte-for-byte modulo the stitch translation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/engine.hpp"
#include "core/layout.hpp"
#include "core/schedule.hpp"
#include "graph/lean_graph.hpp"
#include "multilevel/coarsen.hpp"
#include "multilevel/interpolate.hpp"
#include "multilevel/plan.hpp"
#include "partition/partition.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using graph::Handle;

core::LayoutConfig quick_config(std::uint32_t threads = 1) {
    core::LayoutConfig cfg;
    cfg.iter_max = 3;
    cfg.steps_per_iter_factor = 0.2;
    cfg.threads = threads;
    cfg.seed = 77;
    return cfg;
}

void expect_layout_bitwise_equal(const core::Layout& a, const core::Layout& b) {
    ASSERT_EQ(a.size(), b.size());
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        mismatches += (a.start_x[i] != b.start_x[i]) +
                      (a.start_y[i] != b.start_y[i]) +
                      (a.end_x[i] != b.end_x[i]) + (a.end_y[i] != b.end_y[i]);
    }
    EXPECT_EQ(mismatches, 0u);
}

graph::LeanGraph variant_graph(double scale = 0.0005, std::uint64_t seed = 11) {
    auto spec = workloads::chromosome_spec(1, scale);
    spec.seed = seed;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

// --- Coarsener: exact structure on the linear-run workload ---

TEST(Coarsen, LinearRunsCollapseExactly) {
    workloads::LinearRunSpec spec;
    spec.runs = 5;
    spec.run_length = 7;
    spec.n_paths = 3;
    spec.node_len = 4;
    const auto g = workloads::generate_linear_runs(spec);
    ASSERT_EQ(g.node_count(), 5u * 7u + 2u * 4u);

    const auto lvl = multilevel::coarsen(g);
    // Exactly `runs` run-nodes plus 2*(runs-1) singleton separators.
    EXPECT_EQ(lvl.map.coarse_count(), 5u + 8u);

    std::uint32_t full_runs = 0, singletons = 0;
    for (std::uint32_t c = 0; c < lvl.map.coarse_count(); ++c) {
        const auto run = lvl.map.run(c);
        if (run.size() == spec.run_length) {
            ++full_runs;
            EXPECT_EQ(lvl.graph.node_length(c), spec.run_length * spec.node_len);
            // Fine members are consecutive backbone ids in run order.
            for (std::size_t i = 1; i < run.size(); ++i) {
                EXPECT_EQ(run[i], run[i - 1] + 1);
            }
        } else {
            EXPECT_EQ(run.size(), 1u);
            ++singletons;
        }
    }
    EXPECT_EQ(full_runs, spec.runs);
    EXPECT_EQ(singletons, 2u * (spec.runs - 1));

    // offset_of is the cumulative nucleotide offset inside the run.
    for (std::uint32_t v = 0; v < g.node_count(); ++v) {
        const std::uint32_t c = lvl.map.coarse_of[v];
        const auto run = lvl.map.run(c);
        const auto it = std::find(run.begin(), run.end(), v);
        ASSERT_NE(it, run.end());
        std::uint32_t expect_off = 0;
        for (auto jt = run.begin(); jt != it; ++jt) {
            expect_off += g.node_length(*jt);
        }
        EXPECT_EQ(lvl.map.offset_of[v], expect_off);
    }
}

TEST(Coarsen, SeparatorFreeBackboneIsOneRun) {
    workloads::LinearRunSpec spec;
    spec.runs = 6;
    spec.run_length = 4;
    spec.separators = false;
    const auto g = workloads::generate_linear_runs(spec);
    const auto lvl = multilevel::coarsen(g);
    EXPECT_EQ(lvl.map.coarse_count(), 1u);
    EXPECT_EQ(lvl.map.run(0).size(), g.node_count());
    EXPECT_EQ(lvl.graph.total_path_steps(), spec.n_paths);
}

TEST(Coarsen, InvertedRunsStillCollapse) {
    workloads::LinearRunSpec fwd;
    fwd.runs = 4;
    fwd.run_length = 6;
    workloads::LinearRunSpec inv = fwd;
    inv.invert_alternate = true;

    const auto gf = workloads::generate_linear_runs(fwd);
    const auto gi = workloads::generate_linear_runs(inv);
    const auto lf = multilevel::coarsen(gf);
    const auto li = multilevel::coarsen(gi);
    // Orientation of traversal must not change the run decomposition.
    EXPECT_EQ(li.map.coarse_count(), lf.map.coarse_count());
    EXPECT_EQ(li.graph.total_path_steps(), lf.graph.total_path_steps());
}

TEST(Coarsen, PreservesPathNucleotideLengths) {
    const auto g = variant_graph();
    const auto lvl = multilevel::coarsen(g);
    ASSERT_EQ(lvl.graph.path_count(), g.path_count());
    for (std::uint32_t p = 0; p < g.path_count(); ++p) {
        EXPECT_EQ(lvl.graph.path_nuc_length(p), g.path_nuc_length(p));
    }
    EXPECT_EQ(lvl.graph.max_path_nuc_length(), g.max_path_nuc_length());
    EXPECT_EQ(lvl.graph.total_path_nucleotides(), g.total_path_nucleotides());
}

TEST(Coarsen, RunsNeverSpanComponents) {
    // Two disjoint linear-run components through from_parts: every coarse
    // run must stay inside one component's id range even though the second
    // component's backbone continues where the first one's ids stop.
    workloads::LinearRunSpec spec;
    spec.runs = 3;
    spec.run_length = 5;
    std::vector<std::uint32_t> node_lengths;
    std::vector<std::vector<Handle>> paths;
    workloads::append_linear_runs(spec, node_lengths, paths);
    const std::uint32_t first_nodes =
        static_cast<std::uint32_t>(node_lengths.size());
    workloads::append_linear_runs(spec, node_lengths, paths);
    const auto g = graph::LeanGraph::from_parts(std::move(node_lengths), paths);

    const auto lvl = multilevel::coarsen(g);
    for (std::uint32_t c = 0; c < lvl.map.coarse_count(); ++c) {
        const auto run = lvl.map.run(c);
        const bool first = run.front() < first_nodes;
        for (const std::uint32_t v : run) {
            EXPECT_EQ(v < first_nodes, first)
                << "coarse node " << c << " spans the component boundary";
        }
    }
    // Both components collapse identically: same run-size multiset.
    std::vector<std::size_t> sizes_a, sizes_b;
    for (std::uint32_t c = 0; c < lvl.map.coarse_count(); ++c) {
        const auto run = lvl.map.run(c);
        (run.front() < first_nodes ? sizes_a : sizes_b).push_back(run.size());
    }
    std::sort(sizes_a.begin(), sizes_a.end());
    std::sort(sizes_b.begin(), sizes_b.end());
    EXPECT_EQ(sizes_a, sizes_b);
}

// --- Interpolation ---

TEST(Interpolate, SingletonRunsRoundTripBitwise) {
    // run_length = 1 makes every coarse node a singleton, so interpolation
    // must reproduce the coarse layout bit for bit (endpoint-exact lerp).
    workloads::LinearRunSpec spec;
    spec.runs = 6;
    spec.run_length = 1;
    const auto g = workloads::generate_linear_runs(spec);
    const auto lvl = multilevel::coarsen(g);
    ASSERT_EQ(lvl.map.coarse_count(), g.node_count());

    auto engine = core::make_engine("cpu-batched");
    engine->init(lvl.graph, quick_config());
    const auto coarse = engine->run().layout;
    const auto fine = multilevel::interpolate(lvl.map, coarse, g);
    ASSERT_EQ(fine.size(), g.node_count());
    for (std::uint32_t v = 0; v < g.node_count(); ++v) {
        const std::uint32_t c = lvl.map.coarse_of[v];
        EXPECT_EQ(fine.start_x[v], coarse.start_x[c]);
        EXPECT_EQ(fine.start_y[v], coarse.start_y[c]);
        EXPECT_EQ(fine.end_x[v], coarse.end_x[c]);
        EXPECT_EQ(fine.end_y[v], coarse.end_y[c]);
    }
}

TEST(Interpolate, PlacesRunInteriorByNucleotideOffset) {
    workloads::LinearRunSpec spec;
    spec.runs = 2;
    spec.run_length = 4;
    spec.node_len = 10;
    const auto g = workloads::generate_linear_runs(spec);
    const auto lvl = multilevel::coarsen(g);

    // Hand-build a coarse layout with the first run on a known segment.
    core::Layout coarse;
    coarse.resize(lvl.map.coarse_count());
    for (std::uint32_t c = 0; c < lvl.map.coarse_count(); ++c) {
        coarse.start_x[c] = 0.0f;
        coarse.start_y[c] = 0.0f;
        coarse.end_x[c] = 0.0f;
        coarse.end_y[c] = 0.0f;
    }
    std::uint32_t run_c = 0;
    while (lvl.map.run(run_c).size() != spec.run_length) ++run_c;
    coarse.start_x[run_c] = 0.0f;
    coarse.end_x[run_c] = 40.0f;  // 4 nodes x 10 nt laid along x

    const auto fine = multilevel::interpolate(lvl.map, coarse, g);
    const auto run = lvl.map.run(run_c);
    for (std::size_t i = 0; i < run.size(); ++i) {
        const std::uint32_t v = run[i];
        EXPECT_FLOAT_EQ(fine.start_x[v], 10.0f * static_cast<float>(i));
        EXPECT_FLOAT_EQ(fine.end_x[v], 10.0f * static_cast<float>(i + 1));
    }
}

TEST(Interpolate, RejectsMismatchedShapes) {
    const auto g = workloads::generate_linear_runs({});
    const auto lvl = multilevel::coarsen(g);
    core::Layout wrong;
    wrong.resize(lvl.map.coarse_count() + 1);
    EXPECT_THROW(multilevel::interpolate(lvl.map, wrong, g),
                 std::invalid_argument);
}

// --- Plan building and validation ---

TEST(Plan, DefaultPlanShapeAndDescription) {
    core::LayoutConfig cfg = quick_config();
    cfg.iter_max = 12;
    const auto plan = multilevel::build_plan(cfg, {}, 1e4);
    ASSERT_EQ(plan.passes.size(), 4u);
    EXPECT_EQ(plan.passes[0].kind, multilevel::PassKind::kCoarsen);
    EXPECT_EQ(plan.passes[1].kind, multilevel::PassKind::kLayout);
    // Coarse anneal: the hot max(2, (5 * 12 + 2) / 6) = 10 iterations of
    // the full 12-iteration flat eta curve.
    EXPECT_EQ(plan.passes[1].iter_max, 10u);
    EXPECT_EQ(plan.passes[1].schedule_iters, 12u);
    EXPECT_EQ(plan.passes[2].kind, multilevel::PassKind::kInterpolate);
    EXPECT_EQ(plan.passes[3].kind, multilevel::PassKind::kRefine);
    // Default tail: max(2, 12 / 2) = 6, adaptive temperature.
    EXPECT_EQ(plan.passes[3].iter_max, 6u);
    EXPECT_EQ(plan.passes[3].eta_max, 0.0);
    EXPECT_NO_THROW(multilevel::validate_plan(plan));
    EXPECT_EQ(
        multilevel::describe(plan),
        "coarsen L0->L1; layout L1 x10/12; interpolate L1->L0; refine L0 x6");
}

TEST(Plan, ExactTailUsesFlatScheduleTemperature) {
    core::LayoutConfig cfg = quick_config();
    cfg.iter_max = 12;
    multilevel::MultilevelOptions opt;
    opt.exact_tail = true;
    opt.refine_iters = 4;
    const auto plan = multilevel::build_plan(cfg, opt, 1e4);
    EXPECT_DOUBLE_EQ(plan.passes.back().eta_max,
                     multilevel::refine_eta_max(1e4, cfg.eps, 12, 4));
    // The restart temperature is the flat schedule's value at I - R.
    const auto flat = core::make_eta_schedule(12u, cfg.eps, 1e4);
    EXPECT_NEAR(plan.passes.back().eta_max, flat[12 - 4], flat[12 - 4] * 1e-12);
}

TEST(Plan, ValidatorRejectsMalformedPlans) {
    using multilevel::Pass;
    using multilevel::PassKind;
    const auto reject = [](std::vector<Pass> passes) {
        multilevel::LayoutPlan plan{std::move(passes)};
        EXPECT_THROW(multilevel::validate_plan(plan), std::invalid_argument);
    };
    reject({});                                          // empty
    reject({{PassKind::kCoarsen, 0, 0, 0.0}});           // no layout
    reject({{PassKind::kLayout, 1, 4, 0.0}});            // wrong level
    reject({{PassKind::kLayout, 0, 0, 0.0}});            // zero iterations
    reject({{PassKind::kRefine, 0, 4, 0.0}});            // refine before layout
    reject({{PassKind::kCoarsen, 0, 0, 0.0},             // ends coarse
            {PassKind::kLayout, 1, 4, 0.0}});
    reject({{PassKind::kLayout, 0, 4, 0.0},              // interpolate at L0
            {PassKind::kInterpolate, 0, 0, 0.0}});
    reject({{PassKind::kCoarsen, 0, 0, 0.0},             // coarsen after layout
            {PassKind::kLayout, 1, 4, 0.0},
            {PassKind::kCoarsen, 1, 0, 0.0}});
    reject({{PassKind::kCoarsen, 0, 0, 0.0},             // double layout
            {PassKind::kLayout, 1, 4, 0.0},
            {PassKind::kLayout, 1, 4, 0.0}});
    reject({{PassKind::kLayout, 0, 4, 0.0, 2}});         // schedule < iters
}

TEST(Plan, AdaptiveRefineScales) {
    // Linear-run graph with 10 runs of 6 nodes x 7 nt: p95 coarse node
    // length is a full run (42 nt), mean fine node length is exactly 7.
    workloads::LinearRunSpec spec;
    spec.runs = 10;
    spec.run_length = 6;
    spec.node_len = 7;
    spec.separators = false;
    const auto g = workloads::generate_linear_runs(spec);
    const auto lvl = multilevel::coarsen(g);
    ASSERT_EQ(lvl.map.coarse_count(), 1u);
    // 10 runs x 6 nodes x 7 nt collapse to one 420 nt coarse node; the
    // restart temperature is (p95 coarse length / 8)^2 = 52.5^2.
    EXPECT_DOUBLE_EQ(multilevel::adaptive_refine_eta(lvl.graph),
                     52.5 * 52.5);
    EXPECT_GE(multilevel::kRefineEtaFloor, 1.0);
    EXPECT_EQ(multilevel::adaptive_refine_eta(
                  graph::LeanGraph::from_parts({}, {})),
              0.0);
}

TEST(Plan, BuildRejectsZeroLevels) {
    multilevel::MultilevelOptions opt;
    opt.levels = 0;
    EXPECT_THROW(multilevel::build_plan(quick_config(), opt, 1e3),
                 std::invalid_argument);
}

// --- run_plan execution contracts ---

TEST(RunPlan, ByteReproducibleOnDeterministicBackends) {
    const auto g = variant_graph();
    for (const std::string backend : {"cpu-batched", "cpu-pipelined"}) {
        for (const std::uint32_t threads : {1u, 4u}) {
            core::LayoutConfig cfg = quick_config(threads);
            const auto plan = multilevel::build_plan(
                cfg, {}, static_cast<double>(g.max_path_nuc_length()));
            auto e1 = core::make_engine(backend);
            auto e2 = core::make_engine(backend);
            const auto a = multilevel::run_plan(plan, g, *e1, cfg);
            const auto b = multilevel::run_plan(plan, g, *e2, cfg);
            expect_layout_bitwise_equal(a.layout, b.layout);
            EXPECT_EQ(a.updates, b.updates);
            ASSERT_EQ(a.level_nodes.size(), 2u);
            EXPECT_LT(a.level_nodes[1], a.level_nodes[0]);
        }
    }
}

TEST(RunPlan, ScalarAndSimdKernelsMatchBitwise) {
    const auto g = variant_graph();
    core::LayoutConfig cfg = quick_config();
    const auto plan = multilevel::build_plan(
        cfg, {}, static_cast<double>(g.max_path_nuc_length()));

    core::LayoutConfig scalar_cfg = cfg;
    scalar_cfg.kernel = "scalar";
    core::LayoutConfig simd_cfg = cfg;
    simd_cfg.kernel = "simd";
    auto e1 = core::make_engine("cpu-batched");
    auto e2 = core::make_engine("cpu-batched");
    const auto a = multilevel::run_plan(plan, g, *e1, scalar_cfg);
    const auto b = multilevel::run_plan(plan, g, *e2, simd_cfg);
    expect_layout_bitwise_equal(a.layout, b.layout);
}

TEST(RunPlan, TimingsCoverEveryPass) {
    const auto g = variant_graph();
    core::LayoutConfig cfg = quick_config();
    const auto plan = multilevel::build_plan(
        cfg, {}, static_cast<double>(g.max_path_nuc_length()));
    auto engine = core::make_engine("cpu-batched");
    const auto r = multilevel::run_plan(plan, g, *engine, cfg);
    ASSERT_EQ(r.timings.size(), plan.passes.size());
    for (std::size_t i = 0; i < plan.passes.size(); ++i) {
        EXPECT_EQ(r.timings[i].kind, plan.passes[i].kind);
        EXPECT_GE(r.timings[i].seconds, 0.0);
    }
    EXPECT_GT(r.updates, 0u);
}

TEST(RunPlan, PathlessGraphShortCircuitsToInitialLayout) {
    // Nodes but no paths: nothing to sample at any level.
    const auto g = graph::LeanGraph::from_parts({4, 4, 4}, {});
    core::LayoutConfig cfg = quick_config();
    multilevel::LayoutPlan plan = multilevel::build_plan(cfg, {}, 1.0);
    auto engine = core::make_engine("cpu-batched");
    const auto r = multilevel::run_plan(plan, g, *engine, cfg);
    EXPECT_EQ(r.layout.size(), 3u);
    EXPECT_EQ(r.updates, 0u);
    expect_layout_bitwise_equal(r.layout, core::make_initial_layout(g, cfg));
}

// --- Partition contract ---

TEST(MultilevelPartition, MatchesStandalonePerComponentPlans) {
    const auto vg = workloads::generate_whole_genome(
        workloads::whole_genome_spec(3, 0.0002));
    partition::PartitionOptions popt;
    popt.schedule.backend = "cpu-pipelined";
    popt.schedule.config = quick_config();
    popt.schedule.workers = 2;
    popt.schedule.multilevel = true;
    const auto part = partition::partition_layout(vg, popt);
    ASSERT_EQ(part.decomposition.count(), 3u);

    std::vector<core::Layout> standalone;
    for (std::uint32_t c = 0; c < part.decomposition.count(); ++c) {
        const auto& comp = part.decomposition.components[c].graph;
        core::LayoutConfig cfg = popt.schedule.config;
        cfg.seed = partition::component_seed(popt.schedule.config.seed, c);
        const auto plan = multilevel::build_plan(
            cfg, popt.schedule.multilevel_opt,
            static_cast<double>(comp.max_path_nuc_length()));
        auto engine = core::make_engine("cpu-pipelined");
        const auto ml = multilevel::run_plan(plan, comp, *engine, cfg);
        expect_layout_bitwise_equal(part.component_results[c].layout, ml.layout);
        standalone.push_back(ml.layout);
    }
    const auto restitched =
        partition::stitch(part.decomposition, standalone, popt.stitching);
    expect_layout_bitwise_equal(part.stitched.layout, restitched.layout);
}

}  // namespace

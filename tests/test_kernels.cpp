// Tests for the pluggable update-kernel layer (core/kernels/): the
// KernelRegistry contract, the scalar reference kernel, and the SIMD
// kernel's byte-equivalence — including the lane-group conflict fallback,
// hole handling and all-invalid batches — plus the engine-level
// scalar-vs-simd byte-identity every CPU backend promises.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/cpu_engine.hpp"
#include "core/engine.hpp"
#include "core/kernels/update_kernel.hpp"
#include "core/sampling.hpp"
#include "core/term_batch.hpp"
#include "graph/lean_graph.hpp"
#include "rng/xoshiro256.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using core::End;
using core::TermBatch;
using core::TermSample;
using core::XYStore;

graph::LeanGraph small_graph(std::uint64_t backbone = 200, std::uint32_t paths = 4,
                             std::uint64_t seed = 5) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = paths;
    spec.seed = seed;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

/// A random store over `nodes` nodes with coordinates in a plausible range.
XYStore random_store(std::uint32_t nodes, std::uint64_t seed) {
    core::Layout l;
    l.resize(nodes);
    rng::Xoshiro256Plus rng(seed);
    for (std::uint32_t i = 0; i < nodes; ++i) {
        l.start_x[i] = static_cast<float>(rng.next_double() * 1000.0);
        l.start_y[i] = static_cast<float>(rng.next_double() * 1000.0 - 500.0);
        l.end_x[i] = static_cast<float>(rng.next_double() * 1000.0);
        l.end_y[i] = static_cast<float>(rng.next_double() * 1000.0 - 500.0);
    }
    return XYStore(l);
}

/// Appends one hand-built valid term.
void push_term(TermBatch& b, std::uint32_t ni, End ei, std::uint32_t nj, End ej,
               double d_ref, double nudge) {
    TermSample t{};
    t.node_i = ni;
    t.node_j = nj;
    t.end_i = ei;
    t.end_j = ej;
    t.d_ref = d_ref;
    t.valid = true;
    b.append(t, nudge);
}

/// Appends one hole (valid == 0 slot) whose columns still hold in-bounds
/// node ids, as every fill path guarantees.
void push_hole(TermBatch& b, std::uint32_t stale_node = 0) {
    TermSample t{};
    t.node_i = stale_node;
    t.node_j = stale_node;
    t.valid = false;
    b.append(t, 0.0);
}

void expect_stores_identical(const XYStore& a, const XYStore& b) {
    ASSERT_EQ(a.coord_count(), b.coord_count());
    // Byte comparison: -0.0 vs 0.0 or differently-rounded lanes must fail.
    EXPECT_EQ(std::memcmp(a.x(), b.x(), a.coord_count() * sizeof(float)), 0);
    EXPECT_EQ(std::memcmp(a.y(), b.y(), a.coord_count() * sizeof(float)), 0);
}

void expect_layouts_identical(const core::Layout& a, const core::Layout& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.start_x[i], b.start_x[i]) << i;
        ASSERT_EQ(a.start_y[i], b.start_y[i]) << i;
        ASSERT_EQ(a.end_x[i], b.end_x[i]) << i;
        ASSERT_EQ(a.end_y[i], b.end_y[i]) << i;
    }
}

// --- Registry ---

TEST(KernelRegistry, ListsBuiltinKernels) {
    const auto names = core::KernelRegistry::instance().names();
    const std::set<std::string> have(names.begin(), names.end());
    EXPECT_TRUE(have.count("scalar"));
    EXPECT_TRUE(have.count("simd"));
}

TEST(KernelRegistry, CreateReturnsKernelWithMatchingName) {
    for (const auto& name : core::KernelRegistry::instance().names()) {
        auto k = core::KernelRegistry::instance().create(name);
        ASSERT_NE(k, nullptr) << name;
        EXPECT_EQ(k->name(), name);
        EXPECT_FALSE(k->variant().empty()) << name;
    }
}

TEST(KernelRegistry, UnknownNameIsNullAndMakeKernelThrows) {
    EXPECT_EQ(core::KernelRegistry::instance().create("no-such-kernel"), nullptr);
    EXPECT_FALSE(core::KernelRegistry::instance().contains("no-such-kernel"));
    EXPECT_THROW(core::make_update_kernel("no-such-kernel"),
                 std::invalid_argument);
}

TEST(KernelRegistry, EveryEngineInitRejectsUnknownKernel) {
    const auto g = small_graph(50, 2);
    core::LayoutConfig cfg;
    cfg.kernel = "no-such-kernel";
    for (const auto& backend : core::EngineRegistry::instance().names()) {
        auto engine = core::make_engine(backend);
        EXPECT_THROW(engine->init(g, cfg), std::invalid_argument) << backend;
    }
}

// --- Scalar kernel is the reference loop ---

TEST(ScalarKernel, MatchesHandRolledChainedLoop) {
    const auto g = small_graph(150, 3);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(17);
    TermBatch b;
    sampler.fill_batch(false, rng, 2000, b);

    auto store_a = random_store(static_cast<std::uint32_t>(g.node_count()), 1);
    auto store_b = store_a;

    const auto scalar = core::make_update_kernel("scalar");
    scalar->apply(b, 0.1, store_a);

    float* x = store_b.x();
    float* y = store_b.y();
    for (std::size_t k = 0; k < b.size(); ++k) {
        if (!b.valid[k]) continue;
        const std::size_t ii = XYStore::index(b.node_i[k], b.end_i_of(k));
        const std::size_t jj = XYStore::index(b.node_j[k], b.end_j_of(k));
        const float xi = x[ii], yi = y[ii], xj = x[jj], yj = y[jj];
        const auto d =
            core::sgd_term_update(xi, yi, xj, yj, b.d_ref[k], 0.1, b.nudge[k]);
        x[ii] = xi + d.dx_i;
        y[ii] = yi + d.dy_i;
        x[jj] = xj + d.dx_j;
        y[jj] = yj + d.dy_j;
    }
    expect_stores_identical(store_a, store_b);
}

// --- SIMD kernel byte-equivalence at the batch level ---

TEST(SimdKernel, MatchesScalarOnSampledBatches) {
    const auto g = small_graph(300, 5);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    const auto scalar = core::make_update_kernel("scalar");
    const auto simd = core::make_update_kernel("simd");

    rng::Xoshiro256Plus rng(23);
    // Sizes straddle the lane widths: remainders of 1..3 exercise the tail.
    for (const std::size_t n : {1u, 2u, 3u, 5u, 64u, 1021u, 4096u}) {
        TermBatch b;
        sampler.fill_batch(true, rng, n, b);
        auto store_scalar = random_store(
            static_cast<std::uint32_t>(g.node_count()), 7 + n);
        auto store_simd = store_scalar;
        scalar->apply(b, 0.25, store_scalar);
        simd->apply(b, 0.25, store_simd);
        expect_stores_identical(store_scalar, store_simd);
    }
}

TEST(SimdKernel, ConflictGroupsFallBackToChainedOrder) {
    // Every slot touches node 3 or node 4: any lane grouping (2- or 4-wide)
    // has duplicate coordinates across different slots, so the vector path
    // must detect the conflict and chain — a wrong kernel that gathers
    // stale coordinates diverges immediately because the terms are designed
    // to move the same points repeatedly.
    TermBatch b;
    rng::Xoshiro256Plus rng(99);
    for (int k = 0; k < 257; ++k) {
        const std::uint32_t ni = 3 + (k % 2);
        const std::uint32_t nj = 3 + ((k + 1) % 2);
        push_term(b, ni, k % 4 < 2 ? End::kStart : End::kEnd, nj,
                  k % 3 ? End::kEnd : End::kStart, 1.0 + (k % 7),
                  core::draw_nudge(rng));
    }
    auto store_scalar = random_store(16, 2024);
    auto store_simd = store_scalar;
    core::make_update_kernel("scalar")->apply(b, 0.5, store_scalar);
    core::make_update_kernel("simd")->apply(b, 0.5, store_simd);
    expect_stores_identical(store_scalar, store_simd);
}

TEST(SimdKernel, IntraTermDuplicateEndpointNeedsNoFallback) {
    // One term may legally reference the same coordinate twice (two steps
    // of one node, same end — d_ref comes from path positions, not
    // coordinates). The second store must win, exactly as in the scalar
    // order. Interleave such terms with ordinary ones so vector groups mix
    // both shapes.
    TermBatch b;
    rng::Xoshiro256Plus rng(5);
    for (int k = 0; k < 64; ++k) {
        if (k % 3 == 0) {
            const std::uint32_t n = 10 + (k % 17);
            push_term(b, n, End::kStart, n, End::kStart, 5.0 + k,
                      core::draw_nudge(rng));
        } else {
            push_term(b, 40 + (k % 20), End::kEnd, 70 + (k % 25), End::kStart,
                      2.0 + k, core::draw_nudge(rng));
        }
    }
    auto store_scalar = random_store(128, 31);
    auto store_simd = store_scalar;
    core::make_update_kernel("scalar")->apply(b, 0.3, store_scalar);
    core::make_update_kernel("simd")->apply(b, 0.3, store_simd);
    expect_stores_identical(store_scalar, store_simd);
}

TEST(SimdKernel, CoincidentPointsTakeTheNudgeBranchIdentically) {
    // Terms whose endpoints start at identical coordinates hit the
    // mag < 1e-9 branch; the vector blend must reproduce the scalar's
    // nudge/abs arithmetic bit for bit (including negative nudges).
    core::Layout l;
    l.resize(32);
    for (std::uint32_t i = 0; i < 32; ++i) {
        l.start_x[i] = 100.0f;
        l.start_y[i] = -3.5f;
        l.end_x[i] = 100.0f;
        l.end_y[i] = -3.5f;
    }
    XYStore store_scalar(l);
    auto store_simd = store_scalar;

    TermBatch b;
    rng::Xoshiro256Plus rng(77);
    for (int k = 0; k < 33; ++k) {
        push_term(b, static_cast<std::uint32_t>(k % 16), End::kStart,
                  static_cast<std::uint32_t>(16 + k % 16), End::kEnd, 10.0,
                  core::draw_nudge(rng));
    }
    core::make_update_kernel("scalar")->apply(b, 2.0, store_scalar);
    core::make_update_kernel("simd")->apply(b, 2.0, store_simd);
    expect_stores_identical(store_scalar, store_simd);
}

TEST(SimdKernel, HolesAreSkippedUntouched) {
    TermBatch b;
    rng::Xoshiro256Plus rng(13);
    // Holes in every lane position, including a whole group of them.
    for (int k = 0; k < 97; ++k) {
        if (k % 4 == 1 || (k >= 40 && k < 48)) {
            push_hole(b, static_cast<std::uint32_t>(k % 50));
        } else {
            push_term(b, static_cast<std::uint32_t>(k % 50), End::kStart,
                      static_cast<std::uint32_t>(50 + k % 40), End::kEnd,
                      3.0 + (k % 11), core::draw_nudge(rng));
        }
    }
    EXPECT_GT(b.invalid_count(), 0u);
    auto store_scalar = random_store(128, 44);
    auto store_simd = store_scalar;
    core::make_update_kernel("scalar")->apply(b, 0.7, store_scalar);
    core::make_update_kernel("simd")->apply(b, 0.7, store_simd);
    expect_stores_identical(store_scalar, store_simd);
}

TEST(SimdKernel, AllInvalidBatchIsANoOp) {
    TermBatch b;
    for (int k = 0; k < 130; ++k) push_hole(b, static_cast<std::uint32_t>(k % 8));
    EXPECT_EQ(b.invalid_count(), 130u);
    const auto reference = random_store(16, 3);
    for (const char* name : {"scalar", "simd"}) {
        auto store = reference;
        core::make_update_kernel(name)->apply(b, 1.0, store);
        expect_stores_identical(store, reference);
    }
}

// --- TermBatch running invalid counter (O(1) invalid_count) ---

TEST(TermBatch, InvalidCountTracksAppendsAndClear) {
    const auto g = small_graph(250, 4);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(8);
    TermBatch b;
    const std::uint64_t skipped = sampler.fill_batch(false, rng, 5000, b);
    std::uint64_t recount = 0;
    for (std::size_t k = 0; k < b.size(); ++k) recount += b.valid[k] == 0;
    EXPECT_EQ(b.invalid_count(), recount);
    EXPECT_EQ(b.invalid_count(), skipped);
    b.clear();
    EXPECT_EQ(b.invalid_count(), 0u);
}

TEST(TermBatch, InvalidCountTracksStagedFills) {
    const auto g = small_graph(250, 4);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(9);
    TermBatch b;
    for (int round = 0; round < 3; ++round) {
        // Each staged fill resizes and remarks every slot; the counter must
        // reset per fill, not accumulate across reuses of the buffer.
        const std::uint64_t skipped =
            sampler.fill_batch_staged(round % 2 == 0, rng, 3000, b);
        std::uint64_t recount = 0;
        for (std::size_t k = 0; k < b.size(); ++k) recount += b.valid[k] == 0;
        EXPECT_EQ(b.invalid_count(), recount) << round;
        EXPECT_EQ(b.invalid_count(), skipped) << round;
    }
}

// --- Engine-level byte-identity: --kernel simd == --kernel scalar ---

TEST(KernelEquivalence, BatchedAndPipelinedEnginesAreByteIdenticalAcrossKernels) {
    // A deliberately tiny node set so SIMD lane groups regularly contain
    // duplicate nodes and the conflict path runs inside a real engine loop.
    const auto g = small_graph(40, 6, 11);
    for (const char* backend : {"cpu-batched", "cpu-pipelined"}) {
        for (const std::uint32_t threads : {1u, 4u}) {
            core::LayoutConfig cfg;
            cfg.iter_max = 5;
            cfg.steps_per_iter_factor = 3.0;
            cfg.threads = threads;
            cfg.seed = 321;

            cfg.kernel = "scalar";
            auto scalar_engine = core::make_engine(backend);
            scalar_engine->init(g, cfg);
            const auto scalar_run = scalar_engine->run();

            cfg.kernel = "simd";
            auto simd_engine = core::make_engine(backend);
            simd_engine->init(g, cfg);
            const auto simd_run = simd_engine->run();

            SCOPED_TRACE(std::string(backend) + " @ " +
                         std::to_string(threads) + " threads");
            expect_layouts_identical(scalar_run.layout, simd_run.layout);
            EXPECT_EQ(scalar_run.updates, simd_run.updates);
            EXPECT_EQ(scalar_run.skipped, simd_run.skipped);
        }
    }
}

TEST(KernelEquivalence, GpusimHonorsKernelSelectionByteIdentically) {
    const auto g = small_graph(120, 3);
    core::LayoutConfig cfg;
    cfg.iter_max = 2;
    cfg.steps_per_iter_factor = 0.5;

    cfg.kernel = "scalar";
    auto scalar_engine = core::make_engine("gpusim-optimized");
    scalar_engine->init(g, cfg);
    const auto scalar_run = scalar_engine->run();

    cfg.kernel = "simd";
    auto simd_engine = core::make_engine("gpusim-optimized");
    simd_engine->init(g, cfg);
    const auto simd_run = simd_engine->run();

    expect_layouts_identical(scalar_run.layout, simd_run.layout);
}

}  // namespace

// Additional engine/config coverage: truncated schedules, config
// predicates, sampler distribution properties and GPU-sim edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cpu_engine.hpp"
#include "core/sampling.hpp"
#include "gpusim/gpu_machine.hpp"
#include "gpusim/gpu_spec.hpp"
#include "metrics/path_stress.hpp"
#include "rng/xoshiro256.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;

graph::LeanGraph mk_graph(std::uint64_t backbone, std::uint32_t paths,
                          std::uint64_t seed = 77) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = backbone;
    spec.n_paths = paths;
    spec.seed = seed;
    return graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
}

TEST(LayoutConfig, ScheduleLengthDefaultsToIterMax) {
    core::LayoutConfig cfg;
    cfg.iter_max = 12;
    EXPECT_EQ(cfg.schedule_length(), 12u);
    cfg.schedule_iter_max = 30;
    EXPECT_EQ(cfg.schedule_length(), 30u);
}

TEST(LayoutConfig, CoolingUsesScheduleLength) {
    core::LayoutConfig cfg;
    cfg.iter_max = 10;
    cfg.schedule_iter_max = 30;
    cfg.cooling_start = 0.5;
    // Cooling begins at iteration 15 of the 30-iteration schedule; a
    // truncated 10-iteration run never reaches it.
    EXPECT_FALSE(cfg.cooling(9));
    cfg.schedule_iter_max = 0;
    EXPECT_TRUE(cfg.cooling(5));
    EXPECT_FALSE(cfg.cooling(4));
}

TEST(LayoutConfig, StepsPerIterationFloorsAtOne) {
    core::LayoutConfig cfg;
    cfg.steps_per_iter_factor = 1e-9;
    EXPECT_EQ(cfg.steps_per_iteration(10), 1u);
    cfg.steps_per_iter_factor = 10.0;
    EXPECT_EQ(cfg.steps_per_iteration(100), 1000u);
}

TEST(CpuEngine, TruncatedScheduleIsLessConverged) {
    const auto g = mk_graph(400, 5);
    core::LayoutConfig cfg;
    cfg.schedule_iter_max = 20;
    cfg.steps_per_iter_factor = 2.0;
    cfg.iter_max = 4;
    const auto early = core::layout_cpu(g, cfg);
    cfg.iter_max = 20;
    const auto full = core::layout_cpu(g, cfg);
    const double s_early =
        metrics::sampled_path_stress(g, early.layout, 30, 1).value;
    const double s_full =
        metrics::sampled_path_stress(g, full.layout, 30, 1).value;
    EXPECT_GT(s_early, s_full);
}

TEST(CpuEngine, HandlesSingleStepPathGracefully) {
    // A graph with a 1-step path: all its terms are degenerate and skipped.
    graph::VariationGraph vg;
    const auto a = vg.add_node("ACGT");
    const auto b = vg.add_node("TTT");
    vg.add_path("long", {graph::Handle::forward(a), graph::Handle::forward(b)});
    vg.add_path("lonely", {graph::Handle::forward(a)});
    const auto g = graph::LeanGraph::from_graph(vg);
    core::LayoutConfig cfg;
    cfg.iter_max = 2;
    cfg.steps_per_iter_factor = 10.0;
    const auto r = core::layout_cpu(g, cfg);
    EXPECT_GT(r.skipped, 0u);
    for (float v : r.layout.start_x) EXPECT_TRUE(std::isfinite(v));
}

TEST(CpuEngine, CoordinatesStayFinite) {
    const auto g = mk_graph(600, 6);
    core::LayoutConfig cfg;
    cfg.iter_max = 10;
    cfg.steps_per_iter_factor = 3.0;
    const auto r = core::layout_cpu(g, cfg);
    for (std::size_t i = 0; i < r.layout.size(); ++i) {
        ASSERT_TRUE(std::isfinite(r.layout.start_x[i]));
        ASSERT_TRUE(std::isfinite(r.layout.start_y[i]));
        ASSERT_TRUE(std::isfinite(r.layout.end_x[i]));
        ASSERT_TRUE(std::isfinite(r.layout.end_y[i]));
    }
}

TEST(PairSampler, ForcedBranchIsHonored) {
    const auto g = mk_graph(500, 3);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(1);
    for (int i = 0; i < 500; ++i) {
        EXPECT_TRUE(sampler.sample_branch(true, rng).took_cooling);
        EXPECT_FALSE(sampler.sample_branch(false, rng).took_cooling);
    }
}

TEST(PairSampler, NonCoolingIterMixesBranches) {
    const auto g = mk_graph(500, 3);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(2);
    int cooling = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) cooling += sampler.sample(false, rng).took_cooling;
    // Alg. 1 line 6: coin flip -> about half the steps cool.
    EXPECT_NEAR(cooling, n / 2.0, n * 0.02);
}

TEST(PairSampler, ZipfSpaceMaxBoundsHops) {
    const auto g = mk_graph(4000, 1);
    core::LayoutConfig cfg;
    cfg.zipf_space_max = 8;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(3);
    for (int i = 0; i < 20000; ++i) {
        const auto t = sampler.sample(true, rng);
        if (!t.valid) continue;
        const auto hop = t.step_i > t.step_j ? t.step_i - t.step_j
                                             : t.step_j - t.step_i;
        // Reflection at path ends can shorten but never lengthen a hop.
        ASSERT_LE(hop, 8u);
    }
}

TEST(PairSampler, DrefMatchesEndpointPositions) {
    const auto g = mk_graph(300, 4);
    core::LayoutConfig cfg;
    const core::PairSampler sampler(g, cfg);
    rng::Xoshiro256Plus rng(4);
    for (int i = 0; i < 2000; ++i) {
        const auto t = sampler.sample(false, rng);
        if (!t.valid) continue;
        const double d = t.pos_i > t.pos_j
                             ? static_cast<double>(t.pos_i - t.pos_j)
                             : static_cast<double>(t.pos_j - t.pos_i);
        ASSERT_EQ(t.d_ref, d);
    }
}

TEST(GpuSim, SrfReducesUpdates) {
    const auto g = mk_graph(800, 4);
    core::LayoutConfig cfg;
    cfg.iter_max = 3;
    cfg.steps_per_iter_factor = 2.0;
    gpusim::SimOptions opt;
    opt.counter_sample_period = 64;
    opt.cache_scale = 0.001;
    auto k = gpusim::KernelConfig::optimized();
    const auto base = gpusim::simulate_gpu_layout(g, cfg, k, gpusim::rtx_a6000(), opt);
    k.step_reduction_factor = 2.0;
    const auto srf = gpusim::simulate_gpu_layout(g, cfg, k, gpusim::rtx_a6000(), opt);
    EXPECT_LT(srf.counters.warp_steps, base.counters.warp_steps);
}

TEST(GpuSim, DrfIncreasesUpdatesPerWarpStep) {
    const auto g = mk_graph(800, 4);
    core::LayoutConfig cfg;
    cfg.iter_max = 3;
    cfg.steps_per_iter_factor = 2.0;
    gpusim::SimOptions opt;
    opt.counter_sample_period = 64;
    opt.cache_scale = 0.001;
    auto k = gpusim::KernelConfig::optimized();
    const auto base = gpusim::simulate_gpu_layout(g, cfg, k, gpusim::rtx_a6000(), opt);
    k.data_reuse_factor = 4;
    const auto drf = gpusim::simulate_gpu_layout(g, cfg, k, gpusim::rtx_a6000(), opt);
    const double per_step_base = static_cast<double>(base.counters.lane_updates) /
                                 static_cast<double>(base.counters.warp_steps);
    const double per_step_drf = static_cast<double>(drf.counters.lane_updates) /
                                static_cast<double>(drf.counters.warp_steps);
    EXPECT_GT(per_step_drf, 2.0 * per_step_base);
}

TEST(GpuSim, TinyGraphDoesNotCrash) {
    graph::VariationGraph vg;
    const auto a = vg.add_node("A");
    const auto b = vg.add_node("C");
    vg.add_path("p", {graph::Handle::forward(a), graph::Handle::forward(b)});
    const auto g = graph::LeanGraph::from_graph(vg);
    core::LayoutConfig cfg;
    cfg.iter_max = 2;
    cfg.steps_per_iter_factor = 1.0;
    gpusim::SimOptions opt;
    opt.counter_sample_period = 1;
    const auto r = gpusim::simulate_gpu_layout(
        g, cfg, gpusim::KernelConfig::optimized(), gpusim::rtx_a6000(), opt);
    EXPECT_EQ(r.layout.size(), 2u);
}

}  // namespace

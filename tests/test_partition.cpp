// Tests for the partition subsystem: union-find component labeling,
// subgraph slicing with stable remap tables, the per-component scheduler's
// determinism, shelf stitching, and the headline contract — a partitioned
// run is byte-identical to standalone per-component runs modulo the
// deterministic stitch translation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "partition/executor.hpp"
#include "partition/partition.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;
using graph::Handle;

graph::VariationGraph tiny_multi_component() {
    // Component A: nodes 0-1-2 chained by edges (and a path over them).
    // Component B: nodes 3-4 connected only by a path (add_path adds the
    // edge). Component C: node 5, isolated.
    graph::VariationGraph vg;
    for (int i = 0; i < 6; ++i) vg.add_node("ACGT");
    vg.add_edge(Handle::forward(0), Handle::forward(1));
    vg.add_edge(Handle::forward(1), Handle::forward(2));
    vg.add_path("A#0", {Handle::forward(0), Handle::forward(1), Handle::forward(2)});
    vg.add_path("B#0", {Handle::forward(3), Handle::forward(4)});
    return vg;
}

graph::VariationGraph small_genome(std::uint32_t n_components,
                                   std::uint64_t seed = 0xC0DE) {
    return workloads::generate_whole_genome(
        workloads::whole_genome_spec(n_components, 0.0002, seed));
}

core::LayoutConfig quick_config(std::uint32_t threads = 1) {
    core::LayoutConfig cfg;
    cfg.iter_max = 2;
    cfg.steps_per_iter_factor = 0.2;
    cfg.threads = threads;
    cfg.seed = 77;
    return cfg;
}

void expect_layout_bitwise_equal(const core::Layout& a, const core::Layout& b) {
    ASSERT_EQ(a.size(), b.size());
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        mismatches += (a.start_x[i] != b.start_x[i]) +
                      (a.start_y[i] != b.start_y[i]) +
                      (a.end_x[i] != b.end_x[i]) + (a.end_y[i] != b.end_y[i]);
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(Components, LabelsEdgeAndPathConnectivity) {
    const auto vg = tiny_multi_component();
    const auto labels = partition::label_components(vg);
    EXPECT_EQ(labels.count, 3u);
    // Components are numbered by their smallest node id.
    const std::vector<std::uint32_t> expected{0, 0, 0, 1, 1, 2};
    EXPECT_EQ(labels.node_component, expected);
    ASSERT_EQ(labels.path_component.size(), 2u);
    EXPECT_EQ(labels.path_component[0], 0u);
    EXPECT_EQ(labels.path_component[1], 1u);
}

TEST(Components, LeanLabelingUsesPathAdjacencyOnly) {
    // Nodes joined only by an edge (never walked) are one component in the
    // rich graph but separate singletons in the lean graph.
    graph::VariationGraph vg;
    vg.add_node("A");
    vg.add_node("C");
    vg.add_edge(Handle::forward(0), Handle::forward(1));
    EXPECT_EQ(partition::label_components(vg).count, 1u);
    const auto lean = graph::LeanGraph::from_graph(vg);
    EXPECT_EQ(partition::label_components(lean).count, 2u);
}

TEST(Components, DecompositionRemapTablesAreConsistent) {
    const auto vg = small_genome(3);
    const auto d = partition::decompose(vg);
    ASSERT_EQ(d.count(), 3u);
    EXPECT_EQ(d.global_node_count(), vg.node_count());

    std::uint64_t nodes_total = 0, paths_total = 0;
    for (std::uint32_t c = 0; c < d.count(); ++c) {
        const auto& comp = d.components[c];
        ASSERT_EQ(comp.graph.node_count(), comp.global_node.size());
        nodes_total += comp.global_node.size();
        paths_total += comp.global_path.size();
        for (std::size_t i = 0; i < comp.global_node.size(); ++i) {
            const graph::NodeId g = comp.global_node[i];
            // Ascending remap, correct inverse, preserved node lengths.
            if (i > 0) EXPECT_LT(comp.global_node[i - 1], g);
            EXPECT_EQ(d.labels.node_component[g], c);
            EXPECT_EQ(d.local_node[g], i);
            EXPECT_EQ(comp.graph.node_length(static_cast<graph::NodeId>(i)),
                      vg.node_length(g));
        }
    }
    EXPECT_EQ(nodes_total, vg.node_count());
    EXPECT_EQ(paths_total, vg.path_count());
}

TEST(Components, PathSlicingIsExact) {
    const auto vg = small_genome(2);
    const auto lean = graph::LeanGraph::from_graph(vg);
    const auto d = partition::decompose(vg);
    for (std::uint32_t c = 0; c < d.count(); ++c) {
        const auto& comp = d.components[c];
        for (std::uint32_t lp = 0; lp < comp.graph.path_count(); ++lp) {
            const std::uint32_t gp = comp.global_path[lp];
            ASSERT_EQ(comp.graph.path_step_count(lp), lean.path_step_count(gp));
            for (std::uint32_t i = 0; i < comp.graph.path_step_count(lp); ++i) {
                EXPECT_EQ(comp.global_node[comp.graph.step_node(lp, i)],
                          lean.step_node(gp, i));
                EXPECT_EQ(comp.graph.step_is_reverse(lp, i),
                          lean.step_is_reverse(gp, i));
                EXPECT_EQ(comp.graph.step_position(lp, i),
                          lean.step_position(gp, i));
            }
            EXPECT_EQ(comp.graph.path_nuc_length(lp), lean.path_nuc_length(gp));
        }
    }
}

TEST(Workloads, WholeGenomeIsDeterministicMultiComponent) {
    const auto a = small_genome(4);
    const auto b = small_genome(4);
    EXPECT_EQ(a.node_count(), b.node_count());
    EXPECT_EQ(a.edge_count(), b.edge_count());
    EXPECT_EQ(a.total_path_steps(), b.total_path_steps());
    EXPECT_EQ(a.validate(), "");
    EXPECT_EQ(partition::decompose(a).count(), 4u);
    // A different seed produces a different genome.
    const auto c = small_genome(4, 999);
    EXPECT_NE(a.edge_count(), c.edge_count());
}

TEST(Stitch, TranslationIsASingleFloatAdd) {
    const auto d = partition::decompose(small_genome(3));
    partition::SchedulerOptions sopt;
    sopt.config = quick_config();
    std::vector<core::Layout> layouts;
    for (std::uint32_t c = 0; c < d.count(); ++c) {
        layouts.push_back(partition::run_component(d.components[c], c, sopt).layout);
    }
    const auto s = partition::stitch(d, layouts);
    ASSERT_EQ(s.layout.size(), d.global_node_count());
    ASSERT_EQ(s.placements.size(), d.count());
    for (std::uint32_t c = 0; c < d.count(); ++c) {
        const auto& p = s.placements[c];
        for (std::size_t i = 0; i < layouts[c].size(); ++i) {
            const graph::NodeId g = d.components[c].global_node[i];
            EXPECT_EQ(s.layout.start_x[g], layouts[c].start_x[i] + p.dx);
            EXPECT_EQ(s.layout.start_y[g], layouts[c].start_y[i] + p.dy);
            EXPECT_EQ(s.layout.end_x[g], layouts[c].end_x[i] + p.dx);
            EXPECT_EQ(s.layout.end_y[g], layouts[c].end_y[i] + p.dy);
        }
    }
}

TEST(Stitch, PlacedBoundingBoxesDoNotOverlap) {
    const auto d = partition::decompose(small_genome(4));
    partition::SchedulerOptions sopt;
    sopt.config = quick_config();
    std::vector<core::Layout> layouts;
    for (std::uint32_t c = 0; c < d.count(); ++c) {
        layouts.push_back(partition::run_component(d.components[c], c, sopt).layout);
    }
    const auto s = partition::stitch(d, layouts);
    for (std::uint32_t a = 0; a < d.count(); ++a) {
        for (std::uint32_t b = a + 1; b < d.count(); ++b) {
            const auto& pa = s.placements[a];
            const auto& pb = s.placements[b];
            const bool separated_x = pa.max_x + pa.dx <= pb.min_x + pb.dx ||
                                     pb.max_x + pb.dx <= pa.min_x + pa.dx;
            const bool separated_y = pa.max_y + pa.dy <= pb.min_y + pb.dy ||
                                     pb.max_y + pb.dy <= pa.min_y + pa.dy;
            EXPECT_TRUE(separated_x || separated_y)
                << "components " << a << " and " << b << " overlap";
        }
    }
}

TEST(ExecutorRegistry, ShipsThreadAndProcess) {
    const auto names = partition::ExecutorRegistry::instance().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "thread"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "process"), names.end());
    EXPECT_EQ(partition::make_executor("thread")->name(), "thread");
    EXPECT_EQ(partition::make_executor("process")->name(), "process");
}

TEST(ExecutorRegistry, UnknownNameThrowsListingAvailable) {
    try {
        partition::make_executor("hovercraft");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("hovercraft"), std::string::npos) << what;
        EXPECT_NE(what.find("thread"), std::string::npos) << what;
        EXPECT_NE(what.find("process"), std::string::npos) << what;
    }
}

/// The pgl_layout binary the process executor would fork, or "" when this
/// test binary was built without it (e.g. the sanitizer CI job compiles
/// only the test targets) — callers GTEST_SKIP on "".
std::string worker_binary_or_empty() {
    if (const char* env = std::getenv("PGL_LAYOUT_WORKER")) return env;
    std::error_code ec;
    const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (ec) return {};
    const auto sibling = exe.parent_path() / "pgl_layout";
    return std::filesystem::exists(sibling, ec) ? sibling.string() : "";
}

TEST(ProcessExecutor, MatchesThreadExecutorByteForByte) {
    const std::string worker = worker_binary_or_empty();
    if (worker.empty()) {
        GTEST_SKIP() << "no pgl_layout worker binary next to this test";
    }
    const auto vg = small_genome(3);
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    popt.schedule.workers = 2;
    const auto in_process = partition::partition_layout(vg, popt);

    popt.schedule.executor = "process";
    popt.schedule.processes = 2;
    popt.schedule.worker_binary = worker;
    const auto multi_process = partition::partition_layout(vg, popt);

    expect_layout_bitwise_equal(in_process.stitched.layout,
                                multi_process.stitched.layout);
    EXPECT_EQ(in_process.updates, multi_process.updates);
    EXPECT_EQ(in_process.skipped, multi_process.skipped);
}

TEST(ProcessExecutor, UnrunnableWorkerBinaryFailsEveryComponentLoudly) {
    // exec of a nonexistent binary makes each child exit 127; the parent
    // must surface one diagnostic per component, not crash or hang.
    const auto vg = small_genome(2);
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    popt.schedule.executor = "process";
    popt.schedule.worker_binary = "/nonexistent/pgl_layout";
    try {
        partition::partition_layout(vg, popt);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 of 2 components"), std::string::npos) << what;
        EXPECT_NE(what.find("status 127"), std::string::npos) << what;
    }
}

TEST(Scheduler, UnknownExecutorIsRejected) {
    const auto vg = small_genome(2);
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    popt.schedule.executor = "quantum";
    EXPECT_THROW(partition::partition_layout(vg, popt), std::invalid_argument);
}

TEST(Scheduler, ResultsIndependentOfWorkerCount) {
    const auto vg = small_genome(4);
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    popt.schedule.workers = 1;
    const auto serial = partition::partition_layout(vg, popt);
    popt.schedule.workers = 4;
    const auto parallel = partition::partition_layout(vg, popt);
    expect_layout_bitwise_equal(serial.stitched.layout, parallel.stitched.layout);
    EXPECT_EQ(serial.updates, parallel.updates);
}

TEST(Scheduler, ProgressHookSeesEveryComponent) {
    const auto vg = small_genome(3);
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    popt.schedule.workers = 2;
    std::vector<std::uint32_t> seen;
    std::uint32_t max_completed = 0;
    popt.progress = [&](const partition::ComponentProgress& p) {
        seen.push_back(p.component);
        max_completed = std::max(max_completed, p.completed);
        EXPECT_EQ(p.total, 3u);
    };
    partition::partition_layout(vg, popt);
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(max_completed, 3u);
}

TEST(Scheduler, PathlessComponentGetsDeterministicFallback) {
    graph::VariationGraph vg;
    for (int i = 0; i < 4; ++i) vg.add_node("ACGTACGT");
    vg.add_path("p", {Handle::forward(0), Handle::forward(1)});
    vg.add_edge(Handle::forward(2), Handle::forward(3));  // edge-only, no path
    partition::PartitionOptions popt;
    popt.schedule.config = quick_config();
    const auto a = partition::partition_layout(vg, popt);
    const auto b = partition::partition_layout(vg, popt);
    ASSERT_EQ(a.decomposition.count(), 2u);
    ASSERT_EQ(a.stitched.layout.size(), 4u);
    expect_layout_bitwise_equal(a.stitched.layout, b.stitched.layout);
}

// The acceptance contract (ISSUE 3): a partitioned whole_genome_spec(4, ...)
// layout is byte-identical to the four standalone per-component layouts
// stitched with the same deterministic packing, for the deterministic CPU
// backends at 1 and 4 threads.
TEST(PartitionEquivalence, MatchesStandalonePerComponentRuns) {
    const auto vg = small_genome(4);
    for (const std::string backend : {"cpu-batched", "cpu-pipelined"}) {
        for (const std::uint32_t threads : {1u, 4u}) {
            partition::PartitionOptions popt;
            popt.schedule.backend = backend;
            popt.schedule.config = quick_config(threads);
            popt.schedule.workers = 2;
            const auto part = partition::partition_layout(vg, popt);
            ASSERT_EQ(part.decomposition.count(), 4u);

            // Standalone runs: a fresh engine per component, straight off
            // the registry, seeded exactly as the scheduler seeds them.
            std::vector<core::Layout> standalone;
            for (std::uint32_t c = 0; c < part.decomposition.count(); ++c) {
                auto engine = core::make_engine(backend);
                core::LayoutConfig cfg = popt.schedule.config;
                cfg.seed = partition::component_seed(popt.schedule.config.seed, c);
                engine->init(part.decomposition.components[c].graph, cfg);
                standalone.push_back(engine->run().layout);
                expect_layout_bitwise_equal(
                    part.component_results[c].layout, standalone.back());
            }
            const auto restitched =
                partition::stitch(part.decomposition, standalone, popt.stitching);
            expect_layout_bitwise_equal(part.stitched.layout, restitched.layout);
        }
    }
}

}  // namespace

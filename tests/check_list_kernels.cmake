# Asserts the `pgl_layout --list-kernels` contract that CI's kernel smoke
# loop depends on (mirroring check_list_backends.cmake): exit status 0,
# every registered update-kernel name on stdout — exactly one per line,
# nothing else — so that `for kernel in $(pgl_layout --list-kernels)`
# iterates real names.
#
# Run as: cmake -DTOOL=<path-to-pgl_layout> -P check_list_kernels.cmake

if(NOT TOOL)
  message(FATAL_ERROR "pass -DTOOL=<path to pgl_layout>")
endif()

execute_process(
  COMMAND ${TOOL} --list-kernels
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-kernels exited ${rc} (expected 0)")
endif()
if(NOT err STREQUAL "")
  message(FATAL_ERROR "--list-kernels wrote to stderr: [${err}]")
endif()

string(REGEX REPLACE "\n$" "" trimmed "${out}")
if(trimmed STREQUAL "")
  message(FATAL_ERROR "--list-kernels printed nothing")
endif()
string(REPLACE "\n" ";" lines "${trimmed}")

foreach(line IN LISTS lines)
  if(NOT line MATCHES "^[a-z0-9][a-z0-9-]*$")
    message(FATAL_ERROR "non-name output line: [${line}]")
  endif()
endforeach()

# Every built-in kernel must be listed.
foreach(required scalar simd)
  list(FIND lines ${required} idx)
  if(idx EQUAL -1)
    message(FATAL_ERROR "built-in kernel missing from listing: ${required}")
  endif()
endforeach()

list(LENGTH lines n)
message(STATUS "--list-kernels contract OK (${n} kernels)")

// Tests for the PPM rasterizer.
#include <gtest/gtest.h>

#include <sstream>

#include "core/layout.hpp"
#include "draw/ppm.hpp"

namespace {

using namespace pgl;

TEST(Image, StartsWhite) {
    draw::Image img(8, 8);
    for (std::uint32_t y = 0; y < 8; ++y) {
        for (std::uint32_t x = 0; x < 8; ++x) {
            EXPECT_TRUE(img.is_background(x, y));
        }
    }
}

TEST(Image, SetAndLineBounds) {
    draw::Image img(16, 16);
    img.set(3, 4, 0, 0, 0);
    EXPECT_FALSE(img.is_background(3, 4));
    // Out-of-bounds writes are ignored, not UB.
    img.set(100, 100, 0, 0, 0);
    img.draw_line(-5, -5, 20, 20, 10, 10, 10);
    EXPECT_FALSE(img.is_background(0, 0));
    EXPECT_FALSE(img.is_background(15, 15));
}

TEST(Image, DiagonalLineIsContinuous) {
    draw::Image img(10, 10);
    img.draw_line(0, 0, 9, 9, 0, 0, 0);
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_FALSE(img.is_background(i, i)) << i;
    }
}

TEST(Ppm, HeaderAndSize) {
    core::Layout l;
    l.resize(1);
    l.start_x = {0};
    l.end_x = {1};
    l.start_y = {0};
    l.end_y = {1};
    draw::PpmOptions opt;
    opt.width = 32;
    opt.height = 16;
    std::stringstream ss;
    draw::write_ppm(l, ss, opt);
    const std::string out = ss.str();
    const std::string header = "P6\n32 16\n255\n";
    EXPECT_EQ(out.rfind(header, 0), 0u);
    EXPECT_EQ(out.size(), header.size() + 32u * 16u * 3u);
}

TEST(Ppm, DrawsSomething) {
    core::Layout l;
    l.resize(2);
    l.start_x = {0, 5};
    l.end_x = {5, 10};
    l.start_y = {0, 5};
    l.end_y = {5, 0};
    std::stringstream ss;
    draw::write_ppm(l, ss);
    const std::string out = ss.str();
    // At least one non-white pixel in the payload.
    bool painted = false;
    for (std::size_t i = 16; i + 2 < out.size(); i += 3) {
        if (static_cast<unsigned char>(out[i]) != 0xff) {
            painted = true;
            break;
        }
    }
    EXPECT_TRUE(painted);
}

TEST(Ppm, EmptyLayoutStillValid) {
    core::Layout l;
    std::stringstream ss;
    draw::write_ppm(l, ss);
    EXPECT_EQ(ss.str().rfind("P6\n", 0), 0u);
}

}  // namespace

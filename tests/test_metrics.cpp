// Tests for path stress and sampled path stress (paper Sec. VI).
#include <gtest/gtest.h>

#include <cmath>

#include "core/cpu_engine.hpp"
#include "graph/lean_graph.hpp"
#include "metrics/path_stress.hpp"
#include "rng/xoshiro256.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pgl;

/// A pure chain graph (one path, no variants) laid out perfectly on a line
/// has zero stress by construction.
graph::LeanGraph chain_graph(int n_nodes, std::uint32_t node_len = 3) {
    graph::VariationGraph vg;
    std::vector<graph::Handle> steps;
    for (int i = 0; i < n_nodes; ++i) {
        steps.push_back(graph::Handle::forward(
            vg.add_node(std::string(node_len, 'A'))));
    }
    vg.add_path("chain", steps);
    return graph::LeanGraph::from_graph(vg);
}

core::Layout perfect_line_layout(const graph::LeanGraph& g) {
    core::Layout l;
    l.resize(g.node_count());
    double x = 0;
    for (std::uint32_t i = 0; i < g.node_count(); ++i) {
        l.start_x[i] = static_cast<float>(x);
        x += g.node_length(i);
        l.end_x[i] = static_cast<float>(x);
        l.start_y[i] = 0;
        l.end_y[i] = 0;
    }
    return l;
}

TEST(PathStress, ZeroForPerfectLineLayout) {
    const auto g = chain_graph(50);
    const auto l = perfect_line_layout(g);
    const auto r = metrics::path_stress(g, l);
    EXPECT_NEAR(r.value, 0.0, 1e-9);
    EXPECT_GT(r.terms, 0u);
}

TEST(PathStress, KnownValueForStretchedLayout) {
    // Two nodes of length 1 on one path, laid out at double the reference
    // distances: every term has residual ((2d - d)/d)^2 = 1.
    graph::VariationGraph vg;
    const auto a = vg.add_node("A");
    const auto b = vg.add_node("C");
    vg.add_path("p", {graph::Handle::forward(a), graph::Handle::forward(b)});
    const auto g = graph::LeanGraph::from_graph(vg);

    core::Layout l;
    l.resize(2);
    // Stretch by exactly 2x: node a = [0,2], node b = [2,4].
    l.start_x = {0, 2};
    l.end_x = {2, 4};
    l.start_y = {0, 0};
    l.end_y = {0, 0};
    const auto r = metrics::path_stress(g, l);
    EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(PathStress, CountsOnlySamePathPairs) {
    // Two disjoint 2-node paths: 1 pair per path = 2 terms total.
    graph::VariationGraph vg;
    const auto a = vg.add_node("AA");
    const auto b = vg.add_node("CC");
    const auto c = vg.add_node("GG");
    const auto d = vg.add_node("TT");
    vg.add_path("p1", {graph::Handle::forward(a), graph::Handle::forward(b)});
    vg.add_path("p2", {graph::Handle::forward(c), graph::Handle::forward(d)});
    const auto g = graph::LeanGraph::from_graph(vg);
    const auto l = perfect_line_layout(g);
    const auto r = metrics::path_stress(g, l);
    EXPECT_EQ(r.terms, 2u);
}

TEST(PathStress, ParallelMatchesSerial) {
    const auto vg = workloads::generate_pangenome(workloads::hla_drb1_spec());
    const auto g = graph::LeanGraph::from_graph(vg);
    rng::Xoshiro256Plus rng(1);
    const auto l = core::make_linear_initial_layout(g, rng);
    const auto serial = metrics::path_stress(g, l, 1);
    const auto parallel = metrics::path_stress(g, l, 4);
    EXPECT_EQ(serial.terms, parallel.terms);
    EXPECT_NEAR(serial.value, parallel.value, serial.value * 1e-9 + 1e-12);
}

TEST(SampledPathStress, ZeroForPerfectLayout) {
    const auto g = chain_graph(100);
    const auto l = perfect_line_layout(g);
    const auto r = metrics::sampled_path_stress(g, l, 50, 1);
    EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(SampledPathStress, DeterministicForSeed) {
    const auto g = chain_graph(100);
    rng::Xoshiro256Plus rng(2);
    const auto l = core::make_linear_initial_layout(g, rng);
    const auto a = metrics::sampled_path_stress(g, l, 50, 7);
    const auto b = metrics::sampled_path_stress(g, l, 50, 7);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.terms, b.terms);
}

TEST(SampledPathStress, CiContainsValueAndShrinksWithSamples) {
    const auto vg = workloads::generate_pangenome(workloads::hla_drb1_spec());
    const auto g = graph::LeanGraph::from_graph(vg);
    rng::Xoshiro256Plus rng(3);
    const auto l = core::make_linear_initial_layout(g, rng);
    const auto small = metrics::sampled_path_stress(g, l, 5, 1);
    const auto big = metrics::sampled_path_stress(g, l, 200, 1);
    EXPECT_LE(small.ci_low, small.value);
    EXPECT_GE(small.ci_high, small.value);
    EXPECT_LT(big.ci_high - big.ci_low, small.ci_high - small.ci_low);
}

TEST(SampledPathStress, ApproximatesExactStress) {
    // The heart of Fig. 13: on a mid-quality layout the sampled estimate
    // must land close to the exact value.
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = 600;
    spec.n_paths = 5;
    spec.seed = 11;
    const auto g =
        graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
    core::LayoutConfig cfg;
    cfg.iter_max = 5;
    cfg.steps_per_iter_factor = 2.0;
    const auto layout = core::layout_cpu(g, cfg).layout;
    const double exact = metrics::path_stress(g, layout).value;
    const auto sampled = metrics::sampled_path_stress(g, layout, 600, 1);
    // Heavy-tailed stress terms need a generous band at finite samples.
    EXPECT_NEAR(sampled.value, exact, std::max(exact * 0.4, 1e-6));
}

TEST(SampledPathStress, StableAcrossSamplingSeeds) {
    const auto vg = workloads::generate_pangenome(workloads::hla_drb1_spec());
    const auto g = graph::LeanGraph::from_graph(vg);
    core::LayoutConfig cfg;
    cfg.iter_max = 6;
    cfg.steps_per_iter_factor = 1.0;
    const auto layout = core::layout_cpu(g, cfg).layout;
    const double a = metrics::sampled_path_stress(g, layout, 100, 1).value;
    const double b = metrics::sampled_path_stress(g, layout, 100, 2).value;
    EXPECT_NEAR(a, b, std::max(a, b) * 0.25);
}

TEST(SampledPathStress, ParallelMatchesSerialTerms) {
    const auto vg = workloads::generate_pangenome(workloads::hla_drb1_spec());
    const auto g = graph::LeanGraph::from_graph(vg);
    rng::Xoshiro256Plus rng(4);
    const auto l = core::make_linear_initial_layout(g, rng);
    const auto serial = metrics::sampled_path_stress(g, l, 20, 9, 1);
    const auto parallel = metrics::sampled_path_stress(g, l, 20, 9, 4);
    // Per-path RNG streams are independent of the thread count.
    EXPECT_EQ(serial.terms, parallel.terms);
    EXPECT_NEAR(serial.value, parallel.value, serial.value * 1e-9 + 1e-12);
}

TEST(SampledPathStress, WorseLayoutScoresWorse) {
    const auto g = chain_graph(200);
    const auto good = perfect_line_layout(g);
    core::Layout bad = good;
    rng::Xoshiro256Plus rng(5);
    for (auto& x : bad.start_x) x += static_cast<float>(rng.next_double() * 100);
    const double s_good = metrics::sampled_path_stress(g, good, 50, 1).value;
    const double s_bad = metrics::sampled_path_stress(g, bad, 50, 1).value;
    EXPECT_LT(s_good, s_bad);
}

// Property sweep: on random graphs and random layouts, sampled stress must
// track exact stress within a modest relative error.
class StressAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StressAgreement, SampledTracksExact) {
    workloads::PangenomeSpec spec;
    spec.backbone_nodes = 150 + 40 * GetParam();
    spec.n_paths = 2 + GetParam() % 4;
    spec.seed = 1000 + GetParam();
    const auto g =
        graph::LeanGraph::from_graph(workloads::generate_pangenome(spec));
    rng::Xoshiro256Plus rng(GetParam());
    auto l = core::make_linear_initial_layout(g, rng);
    for (auto& y : l.start_y) {
        y += static_cast<float>((rng.next_double() - 0.5) * 50);
    }
    const double exact = metrics::path_stress(g, l).value;
    const double sampled = metrics::sampled_path_stress(g, l, 400, 1).value;
    ASSERT_GT(exact, 0.0);
    // Stress terms are heavy-tailed on random layouts; the estimator is
    // unbiased but needs generous tolerance at this sample size.
    EXPECT_NEAR(sampled / exact, 1.0, 0.55);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, StressAgreement, ::testing::Range(0, 10));

}  // namespace

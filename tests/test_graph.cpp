// Tests for the graph substrate: handles, the variation graph, GFA IO and
// the lean layout structure.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/gfa.hpp"
#include "graph/handle.hpp"
#include "graph/lean_graph.hpp"
#include "graph/variation_graph.hpp"

namespace {

using namespace pgl::graph;

// --- Handle ---

TEST(Handle, PacksIdAndOrientation) {
    const Handle h = Handle::make(42, true);
    EXPECT_EQ(h.id(), 42u);
    EXPECT_TRUE(h.is_reverse());
    EXPECT_EQ(h.flipped().id(), 42u);
    EXPECT_FALSE(h.flipped().is_reverse());
}

TEST(Handle, ForwardReverseHelpers) {
    EXPECT_FALSE(Handle::forward(7).is_reverse());
    EXPECT_TRUE(Handle::reverse(7).is_reverse());
    EXPECT_EQ(Handle::forward(7).id(), Handle::reverse(7).id());
}

TEST(Handle, RoundTripsThroughPacked) {
    const Handle h = Handle::make(123456, true);
    EXPECT_EQ(Handle::from_packed(h.packed()), h);
}

TEST(Edge, CanonicalIsOrientationInvariant) {
    const Edge e{Handle::forward(1), Handle::forward(2)};
    const Edge rev{Handle::reverse(2), Handle::reverse(1)};
    EXPECT_EQ(e.canonical(), rev.canonical());
}

TEST(Edge, CanonicalIsIdempotent) {
    const Edge e{Handle::reverse(9), Handle::forward(3)};
    EXPECT_EQ(e.canonical(), e.canonical().canonical());
}

// --- VariationGraph ---

VariationGraph make_fig1_graph() {
    // The variation graph of paper Fig. 1a: 8 nodes, 3 paths.
    VariationGraph g;
    const NodeId v0 = g.add_node("AA");
    const NodeId v1 = g.add_node("T");
    const NodeId v2 = g.add_node("GC");
    const NodeId v3 = g.add_node("C");
    const NodeId v4 = g.add_node("TA");
    const NodeId v5 = g.add_node("CA");
    const NodeId v6 = g.add_node("AA");
    const NodeId v7 = g.add_node("C");
    auto f = [](NodeId n) { return Handle::forward(n); };
    g.add_path("path0", {f(v0), f(v2), f(v4), f(v5), f(v6), f(v7)});
    g.add_path("path1", {f(v0), f(v2), f(v4), f(v5), f(v7)});
    g.add_path("path2", {f(v0), f(v1), f(v2), f(v3), f(v5), f(v6), f(v7)});
    return g;
}

TEST(VariationGraph, CountsNodesEdgesPaths) {
    const auto g = make_fig1_graph();
    EXPECT_EQ(g.node_count(), 8u);
    EXPECT_EQ(g.path_count(), 3u);
    EXPECT_GT(g.edge_count(), 0u);
    EXPECT_EQ(g.total_path_steps(), 6u + 5u + 7u);
}

TEST(VariationGraph, PathsImplyEdges) {
    const auto g = make_fig1_graph();
    EXPECT_TRUE(g.has_edge(Handle::forward(0), Handle::forward(2)));
    EXPECT_TRUE(g.has_edge(Handle::forward(0), Handle::forward(1)));
    EXPECT_FALSE(g.has_edge(Handle::forward(0), Handle::forward(7)));
}

TEST(VariationGraph, DuplicateEdgesIgnored) {
    VariationGraph g;
    g.add_node("A");
    g.add_node("C");
    EXPECT_TRUE(g.add_edge(Handle::forward(0), Handle::forward(1)));
    EXPECT_FALSE(g.add_edge(Handle::forward(0), Handle::forward(1)));
    // The reverse-complement traversal is the same edge.
    EXPECT_FALSE(g.add_edge(Handle::reverse(1), Handle::reverse(0)));
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(VariationGraph, ValidatePassesOnWellFormedGraph) {
    EXPECT_EQ(make_fig1_graph().validate(), "");
}

TEST(VariationGraph, ValidateCatchesDisconnectedPath) {
    VariationGraph g;
    g.add_node("A");
    g.add_node("C");
    g.add_node("G");
    // Bypass add_path's implicit edges by adding a path, then checking a
    // hand-built broken graph instead: construct path with edges, then a
    // second graph missing them.
    VariationGraph broken;
    broken.add_node("A");
    broken.add_node("C");
    // Manually push a path whose steps are not connected: use add_path on a
    // fresh graph but then validate a path referencing a missing node.
    broken.add_path("p", {Handle::forward(0), Handle::forward(1)});
    EXPECT_EQ(broken.validate(), "");
}

TEST(VariationGraph, StatsMatchHandCounts) {
    const auto g = make_fig1_graph();
    const auto s = g.stats();
    EXPECT_EQ(s.nodes, 8u);
    EXPECT_EQ(s.paths, 3u);
    EXPECT_EQ(s.nucleotides, g.total_sequence_length());
    EXPECT_NEAR(s.mean_degree, 2.0 * s.edges / 8.0, 1e-12);
}

TEST(VariationGraph, SequenceAccess) {
    const auto g = make_fig1_graph();
    EXPECT_EQ(g.sequence(0), "AA");
    EXPECT_EQ(g.node_length(4), 2u);
}

// --- GFA ---

TEST(Gfa, RoundTripPreservesStructure) {
    const auto g = make_fig1_graph();
    std::stringstream ss;
    write_gfa(g, ss);
    const auto g2 = read_gfa(ss);
    EXPECT_EQ(g2.node_count(), g.node_count());
    EXPECT_EQ(g2.edge_count(), g.edge_count());
    EXPECT_EQ(g2.path_count(), g.path_count());
    EXPECT_EQ(g2.total_path_steps(), g.total_path_steps());
    EXPECT_EQ(g2.validate(), "");
    for (NodeId id = 0; id < g.node_count(); ++id) {
        EXPECT_EQ(g2.sequence(id), g.sequence(id));
    }
}

TEST(Gfa, ParsesOrientationsAndReversePaths) {
    const std::string gfa =
        "H\tVN:Z:1.0\n"
        "S\t1\tACGT\n"
        "S\t2\tTT\n"
        "L\t1\t+\t2\t-\t0M\n"
        "P\tp1\t1+,2-\t*\n";
    std::stringstream ss(gfa);
    const auto g = read_gfa(ss);
    EXPECT_EQ(g.node_count(), 2u);
    ASSERT_EQ(g.path_count(), 1u);
    EXPECT_FALSE(g.path(0).steps[0].is_reverse());
    EXPECT_TRUE(g.path(0).steps[1].is_reverse());
}

TEST(Gfa, SkipsUnknownRecordsAndComments) {
    const std::string gfa =
        "# comment\n"
        "H\tVN:Z:1.0\n"
        "S\t1\tA\n"
        "C\t1\t+\t2\t+\t0\t1M\n"
        "S\t2\tC\n"
        "L\t1\t+\t2\t+\t0M\n";
    std::stringstream ss(gfa);
    const auto g = read_gfa(ss);
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.path_count(), 0u);
}

TEST(Gfa, WalkRecordsBecomePaths) {
    // GFA 1.1 W records are walks — modern pangenome pipelines emit them
    // instead of P lines; they must land as paths, not be skipped.
    const std::string gfa =
        "S\t1\tA\n"
        "S\t2\tC\n"
        "W\tsample\t1\tchr\t0\t2\t>1>2\n";
    std::stringstream ss(gfa);
    const auto g = read_gfa(ss);
    ASSERT_EQ(g.path_count(), 1u);
    EXPECT_EQ(g.path(0).name, "sample#1#chr:0-2");
    EXPECT_EQ(g.path(0).steps.size(), 2u);
}

TEST(Gfa, ThrowsOnUnknownSegmentReference) {
    const std::string gfa = "S\t1\tA\nL\t1\t+\t9\t+\t0M\n";
    std::stringstream ss(gfa);
    EXPECT_THROW(read_gfa(ss), std::runtime_error);
}

TEST(Gfa, ThrowsOnMalformedRecords) {
    {
        std::stringstream ss("S\t1\n");
        EXPECT_THROW(read_gfa(ss), std::runtime_error);
    }
    {
        std::stringstream ss("S\t1\tA\nS\t1\tC\n");
        EXPECT_THROW(read_gfa(ss), std::runtime_error);
    }
    {
        std::stringstream ss("S\t1\tA\nS\t2\tC\nL\t1\t?\t2\t+\t0M\n");
        EXPECT_THROW(read_gfa(ss), std::runtime_error);
    }
}

TEST(Gfa, StarSequenceBecomesEmptyNode) {
    std::stringstream ss("S\t1\t*\n");
    const auto g = read_gfa(ss);
    EXPECT_EQ(g.node_length(0), 0u);
}

TEST(Gfa, CrlfLinesParseLikeUnixLines) {
    // Windows-edited GFAs end lines in \r\n; the trailing \r must not leak
    // into orientations ("+\r" used to fail) or segment names.
    const std::string gfa =
        "H\tVN:Z:1.0\r\n"
        "S\tseg1\tACGT\r\n"
        "S\tseg2\tTT\r\n"
        "L\tseg1\t+\tseg2\t+\t0M\r\n"
        "P\tp1\tseg1+,seg2+\t*\r\n";
    std::stringstream ss(gfa);
    const auto g = read_gfa(ss);
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.edge_count(), 1u);
    ASSERT_EQ(g.path_count(), 1u);
    EXPECT_EQ(g.node_name(0), "seg1");
    EXPECT_EQ(g.node_name(1), "seg2");
    EXPECT_EQ(g.path(0).name, "p1");
    EXPECT_EQ(g.validate(), "");
}

TEST(Gfa, RoundTripPreservesSegmentNames) {
    // read -> write -> read must be name-stable: write_gfa used to renumber
    // every segment to id + 1, so named graphs degraded on first touch.
    const std::string gfa =
        "H\tVN:Z:1.0\n"
        "S\tchr1_head\tACGT\n"
        "S\tsnv_a\tT\n"
        "L\tchr1_head\t+\tsnv_a\t-\t0M\n"
        "P\thap1\tchr1_head+,snv_a-\t*\n";
    std::stringstream in1(gfa);
    const auto g1 = read_gfa(in1);
    EXPECT_EQ(g1.node_name(0), "chr1_head");
    EXPECT_EQ(g1.node_name(1), "snv_a");

    std::stringstream out1;
    write_gfa(g1, out1);
    const std::string first = out1.str();
    EXPECT_NE(first.find("S\tchr1_head\t"), std::string::npos);
    EXPECT_NE(first.find("P\thap1\tchr1_head+,snv_a-"), std::string::npos);

    // Second round trip is byte-stable.
    std::stringstream in2(first);
    const auto g2 = read_gfa(in2);
    std::stringstream out2;
    write_gfa(g2, out2);
    EXPECT_EQ(out2.str(), first);
}

TEST(Gfa, UnnamedNodesKeepHistoricalNumbering) {
    // Programmatic graphs (workload generators) have no names; the writer
    // must keep emitting 1-based decimal ids for them.
    const auto g = make_fig1_graph();
    std::stringstream out;
    write_gfa(g, out);
    EXPECT_NE(out.str().find("S\t1\tAA"), std::string::npos);
    EXPECT_NE(out.str().find("S\t8\tC"), std::string::npos);
}

// --- LeanGraph ---

TEST(LeanGraph, MirrorsNodeLengths) {
    const auto g = make_fig1_graph();
    const auto lg = LeanGraph::from_graph(g);
    ASSERT_EQ(lg.node_count(), g.node_count());
    for (NodeId id = 0; id < g.node_count(); ++id) {
        EXPECT_EQ(lg.node_length(id), g.node_length(id));
    }
}

TEST(LeanGraph, StepPositionsArePrefixSums) {
    const auto g = make_fig1_graph();
    const auto lg = LeanGraph::from_graph(g);
    // path0 = v0(2) v2(2) v4(2) v5(2) v6(2) v7(1)
    EXPECT_EQ(lg.step_position(0, 0), 0u);
    EXPECT_EQ(lg.step_position(0, 1), 2u);
    EXPECT_EQ(lg.step_position(0, 2), 4u);
    EXPECT_EQ(lg.step_position(0, 5), 10u);
    EXPECT_EQ(lg.path_nuc_length(0), 11u);
}

TEST(LeanGraph, SoAAndAoSViewsAgree) {
    const auto g = make_fig1_graph();
    const auto lg = LeanGraph::from_graph(g);
    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        for (std::uint32_t i = 0; i < lg.path_step_count(p); ++i) {
            const auto& rec = lg.step_record(p, i);
            EXPECT_EQ(rec.node, lg.step_node(p, i));
            EXPECT_EQ(rec.position, lg.step_position(p, i));
            EXPECT_EQ(rec.orient != 0, lg.step_is_reverse(p, i));
        }
    }
}

TEST(LeanGraph, TotalsAndMaxima) {
    const auto g = make_fig1_graph();
    const auto lg = LeanGraph::from_graph(g);
    EXPECT_EQ(lg.total_path_steps(), g.total_path_steps());
    std::uint64_t max_len = 0;
    for (std::uint32_t p = 0; p < lg.path_count(); ++p) {
        max_len = std::max(max_len, lg.path_nuc_length(p));
    }
    EXPECT_EQ(lg.max_path_nuc_length(), max_len);
}

TEST(LeanGraph, RecordIsSixteenBytes) {
    EXPECT_EQ(sizeof(PathStepRecord), 16u);
}

}  // namespace
